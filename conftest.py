"""Repo-wide pytest configuration: the ``--backend`` knob.

``pytest --backend numba`` re-runs backend-aware tests and benchmarks
(the worker-count-invariance matrix in ``tests/rrset/test_streams.py``,
the backend suite in ``tests/rrset/test_backends.py``, the Fig.-6
scalability bench) on the requested sampling backend — the CI numba leg
runs the rrset/tirm suites this way.  Tests that request the
``rrset_backend`` fixture are skipped, not failed, when the requested
backend's optional dependency is missing.
"""

from __future__ import annotations

import pytest

from repro.rrset.backends import BACKEND_MODES, numba_available


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--backend",
        default="numpy",
        choices=BACKEND_MODES,
        help="RR-set sampling backend for backend-aware tests/benches "
             "(numpy = reference, numba = JIT kernel, auto = best "
             "available); numba-requiring tests skip when it is not "
             "installed",
    )


@pytest.fixture(scope="session")
def rrset_backend(request) -> str:
    """The ``--backend`` name, skipping if its dependency is absent."""
    name = request.config.getoption("--backend")
    if name == "numba" and not numba_available():
        pytest.skip("numba backend requested but numba is not installed")
    return name
