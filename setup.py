"""Packaging for the ``repro`` reproduction package.

Kept as a plain ``setup.py`` so the legacy
``pip install -e . --no-use-pep517`` editable path works offline.
Optional extras:

* ``numba`` — the JIT sampling backend
  (``repro.rrset.backends.NumbaBackend``, CLI ``--backend numba``).
  The core package stays pure numpy; without the extra, ``--backend
  auto`` falls back to the numpy reference backend with a one-time
  warning, and ``--backend numba`` errors cleanly.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.5.0",
    description=(
        "Reproduction of 'Ad Allocation with Minimum Regret' (VLDB 2015)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        "numba": ["numba>=0.57"],
    },
)
