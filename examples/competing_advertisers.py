#!/usr/bin/env python
"""Hard competition constraints (§7 extension).

Two sneaker brands (same topic) and one coffee brand compete for seeds.
Topic-overlap rules forbid the sneaker rivals from sharing a seed; the
example allocates with TIRM, shows the violations an unconstrained
allocation incurs, repairs it, and re-measures regret.

Run:  python examples/competing_advertisers.py
"""

from __future__ import annotations

from repro import (
    AdAllocationProblem,
    AdCatalog,
    Advertiser,
    AttentionBounds,
    RegretEvaluator,
    TIRMAllocator,
    TopicDistribution,
)
from repro.advertising.competition import CompetitionRules
from repro.graph import power_law_graph
from repro.topics import synthetic_topic_model, uniform_ctps


def main() -> None:
    graph = power_law_graph(600, avg_out_degree=7.0, seed=3)
    model = synthetic_topic_model(
        graph, num_topics=4, edge_strength_mean=0.05, background_strength=0.002, seed=4
    )
    catalog = AdCatalog(
        [
            Advertiser("sneaker-A", budget=8.0, cpe=5.0,
                       topics=TopicDistribution.skewed(4, 0)),
            Advertiser("sneaker-B", budget=8.0, cpe=5.0,
                       topics=TopicDistribution.skewed(4, 0)),
            Advertiser("coffee", budget=5.0, cpe=6.0,
                       topics=TopicDistribution.skewed(4, 2)),
        ]
    )
    problem = AdAllocationProblem.from_topic_model(
        model,
        catalog,
        AttentionBounds.uniform(graph.num_nodes, 2),  # users accept 2 promoted posts
        ctps=uniform_ctps(len(catalog), graph.num_nodes, seed=5),
    )

    rules = CompetitionRules.from_topic_overlap(catalog, threshold=0.5)
    print(f"conflicting ad pairs: {rules.num_conflicts()} "
          f"(sneaker-A vs sneaker-B: {rules.in_conflict(0, 1)})")

    result = TIRMAllocator(seed=0, max_rr_sets_per_ad=15_000).allocate(problem)
    violations = rules.violations(result.allocation)
    print(f"unconstrained TIRM allocation: {len(violations)} competition violations")

    # Repair: the conflicting seed stays with the ad that values it more.
    keep_scores = problem.ctps * problem.catalog.cpes()[:, None]
    repaired = rules.repair(result.allocation, keep_scores=keep_scores)
    assert rules.is_compatible(repaired)

    evaluator = RegretEvaluator(problem, num_runs=600, seed=6)
    before = evaluator.evaluate(result.allocation, algorithm="TIRM")
    after = evaluator.evaluate(repaired, algorithm="TIRM+repair")
    print(f"regret before repair: {before.total_regret:.2f} "
          f"({before.total_seeds} seeds)")
    print(f"regret after repair:  {after.total_regret:.2f} "
          f"({after.total_seeds} seeds, 0 violations)")


if __name__ == "__main__":
    main()
