#!/usr/bin/env python
"""Multi-advertiser campaign on the Flixster-like network (§6.1 style).

Runs all four allocation algorithms on one quality dataset and prints
the §6-style comparison: total regret (absolute and as % of budget),
seeds used, distinct users targeted, and per-ad signed budget gaps.

Run:  python examples/campaign_flixster.py [--scale 0.02] [--kappa 1]
      [--penalty 0.0] [--eval-runs 300]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    GreedyIRIEAllocator,
    MyopicAllocator,
    MyopicPlusAllocator,
    RegretEvaluator,
    TIRMAllocator,
)
from repro.datasets import flixster_like
from repro.evaluation.reporting import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.02,
                        help="fraction of Flixster's 30K nodes (default 0.02)")
    parser.add_argument("--kappa", type=int, default=1, help="attention bound")
    parser.add_argument("--penalty", type=float, default=0.0, help="seed penalty lambda")
    parser.add_argument("--eval-runs", type=int, default=300,
                        help="Monte-Carlo referee runs (paper: 10000)")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    problem = flixster_like(
        scale=args.scale,
        attention_bound=args.kappa,
        penalty=args.penalty,
        seed=args.seed,
    )
    print(f"problem: {problem}  total budget {problem.catalog.total_budget():.1f}")

    allocators = {
        "Myopic": MyopicAllocator(),
        "Myopic+": MyopicPlusAllocator(),
        "Greedy-IRIE": GreedyIRIEAllocator(alpha=0.8),
        "TIRM": TIRMAllocator(seed=0, max_rr_sets_per_ad=20_000),
    }
    evaluator = RegretEvaluator(problem, num_runs=args.eval_runs, seed=99)

    rows = []
    gap_rows = []
    for name, allocator in allocators.items():
        result = allocator.allocate(problem)
        report = evaluator.evaluate(result.allocation, algorithm=name)
        rows.append(
            [
                name,
                report.total_regret,
                100 * report.regret.relative_to_budget(),
                report.total_seeds,
                report.num_targeted_users,
                result.runtime_seconds,
            ]
        )
        gap_rows.append([name, *np.round(report.regret.signed_budget_gaps(), 2)])

    print()
    print(format_table(
        ["algorithm", "regret", "% of B", "seeds", "targeted", "time (s)"],
        rows,
        title=f"Quality comparison (kappa={args.kappa}, lambda={args.penalty})",
    ))
    print()
    print(format_table(
        ["algorithm", *(f"ad{i}" for i in range(problem.num_ads))],
        gap_rows,
        title="Per-ad revenue - budget (Fig. 5 style; >0 = free service)",
    ))


if __name__ == "__main__":
    main()
