#!/usr/bin/env python
"""Quickstart: state a Problem-1 instance and solve it with TIRM.

Builds a small synthetic social network, defines three advertisers with
budgets/CPEs/topic profiles, allocates seeds with TIRM, and referees the
result with Monte-Carlo simulation — the full pipeline of the paper in
~60 lines.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AdAllocationProblem,
    AdCatalog,
    Advertiser,
    AttentionBounds,
    RegretEvaluator,
    TIRMAllocator,
    TopicDistribution,
)
from repro.graph import power_law_graph
from repro.topics import synthetic_topic_model, uniform_ctps


def main() -> None:
    # 1. The host's social graph: 800 users, heavy-tailed follower counts.
    graph = power_law_graph(800, avg_out_degree=8.0, seed=1)
    print(f"graph: {graph}")

    # 2. A topic model over K = 5 latent topics (learned offline in the
    #    paper; synthesised here).
    model = synthetic_topic_model(
        graph, num_topics=5, edge_strength_mean=0.05, background_strength=0.002, seed=2
    )

    # 3. Three advertisers, each with a budget, a cost-per-engagement and
    #    a topic profile for its ad.
    catalog = AdCatalog(
        [
            Advertiser("sneakers", budget=12.0, cpe=5.0,
                       topics=TopicDistribution.skewed(5, 0)),
            Advertiser("headphones", budget=9.0, cpe=4.0,
                       topics=TopicDistribution.skewed(5, 1)),
            Advertiser("coffee", budget=6.0, cpe=6.0,
                       topics=TopicDistribution.skewed(5, 2)),
        ]
    )

    # 4. Click-through probabilities (1–3%, as measured in the wild) and
    #    an attention bound of 2 promoted posts per user.
    ctps = uniform_ctps(len(catalog), graph.num_nodes, seed=3)
    attention = AttentionBounds.uniform(graph.num_nodes, 2)

    problem = AdAllocationProblem.from_topic_model(
        model, catalog, attention, ctps=ctps, penalty=0.0
    )

    # 5. Allocate with TIRM (Algorithm 2 of the paper).
    result = TIRMAllocator(seed=0, max_rr_sets_per_ad=20_000).allocate(problem)
    print(f"\nTIRM finished in {result.runtime_seconds:.1f}s, "
          f"{result.stats['total_rr_sets']} RR-sets sampled")
    for ad, advertiser in enumerate(catalog):
        print(f"  {advertiser.name:11s} seeds={len(result.allocation.seeds(ad)):4d} "
              f"estimated revenue={result.estimated_revenues[ad]:6.2f} "
              f"(budget {advertiser.budget:g})")

    # 6. Referee with neutral Monte-Carlo simulation (§6 protocol).
    report = RegretEvaluator(problem, num_runs=1_000, seed=4).evaluate(
        result.allocation, algorithm="TIRM"
    )
    print(f"\nmeasured revenues: {np.round(report.regret.revenues, 2)}")
    print(f"total regret: {report.total_regret:.2f} "
          f"({100 * report.regret.relative_to_budget():.1f}% of total budget)")


if __name__ == "__main__":
    main()
