#!/usr/bin/env python
"""Classic influence maximization with the TIM substrate.

The RR-set machinery TIRM builds on is a complete influence-maximization
stack in its own right (§5.1).  This example selects k seeds on a
power-law network with TIM and verifies the estimated spread against
Monte-Carlo simulation — then contrasts the TIM seeds with the IRIE
heuristic's ranking.

Run:  python examples/influence_maximization.py [--nodes 2000] [--k 10]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.algorithms.irie import influence_rank
from repro.diffusion import estimate_spread
from repro.evaluation.reporting import format_table
from repro.graph import power_law_graph, weighted_cascade_probabilities
from repro.rrset import TIMInfluenceMaximizer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=2_000)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--epsilon", type=float, default=0.2)
    args = parser.parse_args()

    graph = power_law_graph(args.nodes, avg_out_degree=8.0, seed=5)
    probs = weighted_cascade_probabilities(graph)
    print(f"graph: {graph} (weighted cascade)")

    tim = TIMInfluenceMaximizer(
        graph, probs, epsilon=args.epsilon, max_rr_sets=100_000, seed=1
    )
    result = tim.select(args.k)
    mc = estimate_spread(graph, probs, result.seeds, num_runs=500, seed=2)
    print(f"\nTIM: {result.num_rr_sets} RR-sets, "
          f"estimated spread {result.estimated_spread:.1f}, "
          f"Monte-Carlo check {mc.mean:.1f} ± {1.96 * mc.std_error:.1f}")

    # Contrast with IRIE's static top-k (no marginal discounting).
    rank = influence_rank(graph, probs, alpha=0.7)
    irie_seeds = np.argsort(-rank)[: args.k].tolist()
    irie_mc = estimate_spread(graph, probs, irie_seeds, num_runs=500, seed=3)

    overlap = len(set(result.seeds) & set(irie_seeds))
    print(format_table(
        ["method", "MC spread", "overlap with TIM"],
        [
            ["TIM", mc.mean, args.k],
            ["IRIE top-k", irie_mc.mean, overlap],
        ],
        title=f"\nSeed quality, k={args.k}",
    ))


if __name__ == "__main__":
    main()
