#!/usr/bin/env python
"""End-to-end: learn TIC probabilities from cascades, then allocate.

The paper assumes the host owns a topic model learned from historical
cascades (Barbieri et al. [3]).  This example closes that loop:

1. simulate "historical" cascades per topic under hidden ground-truth
   probabilities;
2. learn per-topic edge probabilities with EM maximum likelihood;
3. allocate seeds with TIRM *on the learned model*;
4. referee the allocation under the *true* model — measuring how much
   regret the learning error costs compared to allocating with oracle
   knowledge.

Run:  python examples/learn_and_allocate.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AdAllocationProblem,
    AdCatalog,
    Advertiser,
    AttentionBounds,
    RegretEvaluator,
    TIRMAllocator,
    TopicDistribution,
)
from repro.graph import power_law_graph
from repro.topics import (
    TopicModel,
    generate_cascades,
    learn_topic_model,
    uniform_ctps,
)
from repro.utils.rng import as_generator


def main() -> None:
    rng = as_generator(11)
    graph = power_law_graph(400, avg_out_degree=6.0, seed=rng)
    num_topics = 3

    # Hidden ground truth the host never sees directly.
    true_edge_probs = np.stack([
        np.minimum(rng.exponential(0.06, size=graph.num_edges), 1.0)
        for _ in range(num_topics)
    ])
    seed_probs = np.full((num_topics, graph.num_nodes), 0.02)
    true_model = TopicModel(graph, true_edge_probs, seed_probs)

    # 1. Historical cascades: 400 per topic, from single-topic campaigns.
    print("simulating historical cascades...")
    histories = [
        generate_cascades(graph, true_edge_probs[z], 400, seeds_per_cascade=2, seed=100 + z)
        for z in range(num_topics)
    ]

    # 2. EM learning.
    print("learning per-topic probabilities with EM...")
    learned_model = learn_topic_model(graph, histories, seed_probs=seed_probs)
    for z in range(num_topics):
        witnessed = learned_model.edge_probs[z] > 0
        err = np.abs(
            learned_model.edge_probs[z][witnessed] - true_edge_probs[z][witnessed]
        ).mean()
        print(f"  topic {z}: mean |error| on witnessed edges = {err:.3f}")

    # 3. Allocate on the learned model.
    catalog = AdCatalog([
        Advertiser(f"ad-{z}", budget=6.0, cpe=5.0,
                   topics=TopicDistribution.skewed(num_topics, z))
        for z in range(num_topics)
    ])
    ctps = uniform_ctps(len(catalog), graph.num_nodes, seed=12)
    attention = AttentionBounds.uniform(graph.num_nodes, 1)
    learned_problem = AdAllocationProblem.from_topic_model(
        learned_model, catalog, attention, ctps=ctps
    )
    true_problem = AdAllocationProblem.from_topic_model(
        true_model, catalog, attention, ctps=ctps
    )

    allocator = TIRMAllocator(seed=0, max_rr_sets_per_ad=15_000)
    from_learned = allocator.allocate(learned_problem)
    from_oracle = TIRMAllocator(seed=0, max_rr_sets_per_ad=15_000).allocate(true_problem)

    # 4. Referee both under the TRUE model.
    evaluator = RegretEvaluator(true_problem, num_runs=600, seed=13)
    learned_report = evaluator.evaluate(from_learned.allocation, algorithm="learned")
    oracle_report = evaluator.evaluate(from_oracle.allocation, algorithm="oracle")
    print(f"\nregret allocating with learned model: {learned_report.total_regret:.2f}")
    print(f"regret allocating with oracle model:  {oracle_report.total_regret:.2f}")
    print("(both refereed under the true propagation model)")


if __name__ == "__main__":
    main()
