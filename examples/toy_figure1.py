#!/usr/bin/env python
"""Reproduce Figure 1 and Examples 1–2 of the paper, exactly.

Computes — by exact possible-world enumeration — the expected clicks and
regrets of the two allocations the paper walks through on its six-node
gadget, and compares them with the paper's (independence-approximated,
rounded) numbers.

Run:  python examples/toy_figure1.py
"""

from __future__ import annotations

from repro.advertising.regret import allocation_regret
from repro.datasets.toy import (
    PAPER_EXPECTED_CLICKS_A,
    PAPER_EXPECTED_CLICKS_B,
    PAPER_REGRET_A_LAMBDA0,
    PAPER_REGRET_A_LAMBDA01,
    PAPER_REGRET_B_LAMBDA0,
    PAPER_REGRET_B_LAMBDA01,
    figure1_allocation_a,
    figure1_allocation_b,
    figure1_problem,
)
from repro.diffusion import exact_click_probabilities, exact_spread
from repro.evaluation.reporting import format_table


def main() -> None:
    problem = figure1_problem()
    allocations = {"A (myopic)": figure1_allocation_a(), "B (viral)": figure1_allocation_b()}

    rows = []
    revenue_vectors = {}
    for name, allocation in allocations.items():
        revenues = [
            exact_spread(
                problem.graph,
                problem.ad_edge_probabilities(ad),
                allocation.seed_array(ad),
                ctps=problem.ad_ctps(ad),
            )
            * problem.catalog[ad].cpe
            for ad in range(problem.num_ads)
        ]
        revenue_vectors[name] = revenues
        rows.append([name, sum(revenues)])
    rows[0].append(PAPER_EXPECTED_CLICKS_A)
    rows[1].append(PAPER_EXPECTED_CLICKS_B)
    print(format_table(["allocation", "exact E[clicks]", "paper"], rows,
                       title="Figure 1: expected clicks"))

    print()
    regret_rows = []
    paper = {
        ("A (myopic)", 0.0): PAPER_REGRET_A_LAMBDA0,
        ("B (viral)", 0.0): PAPER_REGRET_B_LAMBDA0,
        ("A (myopic)", 0.1): PAPER_REGRET_A_LAMBDA01,
        ("B (viral)", 0.1): PAPER_REGRET_B_LAMBDA01,
    }
    for lam in (0.0, 0.1):
        for name, allocation in allocations.items():
            breakdown = allocation_regret(
                revenue_vectors[name],
                problem.catalog.budgets(),
                allocation.seed_counts(),
                lam,
            )
            regret_rows.append([name, lam, breakdown.total, paper[(name, lam)]])
    print(format_table(["allocation", "lambda", "exact regret", "paper"],
                       regret_rows, title="Examples 1-2: regrets"))

    print("\nPer-node click probabilities for ad 'a' under Allocation A")
    clicks = exact_click_probabilities(
        problem.graph,
        problem.ad_edge_probabilities(0),
        figure1_allocation_a().seed_array(0),
        ctps=problem.ad_ctps(0),
    )
    paper_clicks = [0.9, 0.9, 0.93, 0.95, 0.95, 0.92]
    print(format_table(
        ["node", "exact", "paper (approx.)"],
        [[f"v{i + 1}", clicks[i], paper_clicks[i]] for i in range(6)],
    ))
    print("\n(the paper treats v4/v5 as independent when scoring v6; exact")
    print(" enumeration accounts for their shared ancestor v3 — see DESIGN.md)")


if __name__ == "__main__":
    main()
