#!/usr/bin/env python
"""Scalability study (§6.2 / Fig. 6 style) on the DBLP-like network.

Measures TIRM wall-clock time and memory as the number of advertisers
grows, in the paper's fully competitive setting (identical ads, CTP =
CPE = 1, weighted-cascade probabilities, κ = 1), and optionally compares
with Greedy-IRIE (which the paper found orders of magnitude slower).

Run:  python examples/scalability_study.py [--scale 0.003]
      [--ads 1 2 4] [--with-irie]
"""

from __future__ import annotations

import argparse

from repro import GreedyIRIEAllocator, TIRMAllocator
from repro.datasets import dblp_like
from repro.evaluation.reporting import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.003,
                        help="fraction of DBLP's 317K nodes (default 0.003)")
    parser.add_argument("--ads", type=int, nargs="+", default=[1, 2, 4],
                        help="advertiser counts to sweep")
    parser.add_argument("--with-irie", action="store_true",
                        help="also time Greedy-IRIE (slow)")
    parser.add_argument("--max-rr-sets", type=int, default=20_000)
    args = parser.parse_args()

    rows = []
    for h in args.ads:
        problem = dblp_like(scale=args.scale, num_ads=h, seed=13)
        tirm = TIRMAllocator(
            seed=0, epsilon=0.2, max_rr_sets_per_ad=args.max_rr_sets
        )
        result = tirm.allocate(problem)
        row = [
            h,
            problem.num_nodes,
            result.runtime_seconds,
            result.allocation.total_seeds(),
            result.stats["total_rr_sets"],
            result.stats["rr_memory_bytes"] / 1e6,
        ]
        if args.with_irie:
            irie_result = GreedyIRIEAllocator(alpha=0.7).allocate(problem)
            row.append(irie_result.runtime_seconds)
        rows.append(row)

    headers = ["h", "n", "TIRM time (s)", "seeds", "RR-sets", "RR memory (MB)"]
    if args.with_irie:
        headers.append("IRIE time (s)")
    print(format_table(headers, rows, title="TIRM scalability vs. number of advertisers"))
    print("\nThe paper's Fig. 6 shape: TIRM grows ~linearly in h and stays")
    print("~flat in per-ad budget; Greedy-IRIE grows superlinearly.")


if __name__ == "__main__":
    main()
