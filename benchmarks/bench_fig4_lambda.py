"""F4 — Fig. 4: total regret vs. the seed penalty λ.

Paper: regret grows with λ for every algorithm, the algorithm hierarchy
is unchanged (TIRM the consistent winner), and TIRM stays strong even at
λ = 1, beyond the conservative Theorem-2 assumption λ ≤ δ·cpe.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    EPINIONS_SCALE,
    EVAL_RUNS,
    FLIXSTER_SCALE,
    quality_allocators,
)
from repro.datasets.synthetic import epinions_like, flixster_like
from repro.evaluation.experiments import sweep_penalties
from repro.evaluation.reporting import format_records

LAMBDAS = (0.0, 0.1, 0.5, 1.0)


@pytest.mark.parametrize("dataset", ["flixster", "epinions"])
def test_fig4_total_regret_vs_lambda(run_once, dataset):
    if dataset == "flixster":
        factory = lambda lam: flixster_like(  # noqa: E731
            scale=FLIXSTER_SCALE, attention_bound=1, penalty=lam, seed=7
        )
    else:
        factory = lambda lam: epinions_like(  # noqa: E731
            scale=EPINIONS_SCALE, attention_bound=1, penalty=lam, seed=11
        )

    records = run_once(
        sweep_penalties,
        f"fig4-{dataset}",
        factory,
        quality_allocators(),
        LAMBDAS,
        eval_runs=EVAL_RUNS,
        eval_seed=101,
    )
    print()
    print(format_records(
        records, title=f"Fig. 4 ({dataset}, kappa=1): total regret vs lambda"
    ))

    by_cell = {(r.parameters["lambda"], r.algorithm): r.total_regret for r in records}
    for lam in LAMBDAS:
        assert by_cell[(lam, "TIRM")] < by_cell[(lam, "Myopic")]
        assert by_cell[(lam, "TIRM")] < by_cell[(lam, "Myopic+")]
    # Regret rises with λ for the seed-hungry baselines (they pay the
    # penalty on every one of their thousands of seeds).
    assert by_cell[(1.0, "Myopic")] > by_cell[(0.0, "Myopic")]
    assert by_cell[(1.0, "Myopic+")] > by_cell[(0.0, "Myopic+")]
    # TIRM still wins at λ = 1 (the paper's "conservative assumption"
    # observation).
    assert by_cell[(1.0, "TIRM")] == min(by_cell[(1.0, a)] for a in
                                         ("TIRM", "IRIE", "Myopic", "Myopic+"))
