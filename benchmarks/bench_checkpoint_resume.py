"""Kill-and-resume smoke: a real process restart around a checkpoint.

This is the CI leg for the checkpoint subsystem
(:mod:`repro.rrset.checkpoint`): phase 1 runs a TIRM allocation in a
**child process** that stops after ``KILL_AFTER`` iterations (writing a
checkpoint at every boundary, exactly as a preempted production run
would have), the child exits, and the parent — a fresh process with no
shared state — resumes from the artifact and must land on an allocation
byte-identical to an uninterrupted reference run.

The timing section reports the resume cost (re-deriving every RR set
from the counter-based streams vs loading the legacy member spill);
like the sharded smokes, wall-clock is *reported*, never asserted.

Run standalone with
``PYTHONPATH=src python benchmarks/bench_checkpoint_resume.py``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time

import numpy as np

from repro.algorithms.tirm import TIRMAllocator
from repro.datasets.synthetic import dblp_like
from repro.evaluation.reporting import format_table

SCALE = 0.0015
SEED = 11
KILL_AFTER = 3
MAX_RR_SETS = 4_000
INITIAL_PILOT = 500

#: Phase-1 child: allocate, checkpoint every boundary, die after
#: KILL_AFTER iterations.  Runs via ``python -c`` so the resume below
#: genuinely crosses a process boundary.
_CHILD_SCRIPT = """
import sys
from repro.algorithms.tirm import TIRMAllocator
from repro.datasets.synthetic import dblp_like

scale, seed, kill_after, rng, path = (
    float(sys.argv[1]), int(sys.argv[2]), int(sys.argv[3]), sys.argv[4],
    sys.argv[5],
)
problem = dblp_like(scale=scale, seed=0)
result = TIRMAllocator(
    seed=seed, rng=rng, initial_pilot=%d, max_rr_sets_per_ad=%d,
    checkpoint_path=path, max_iterations=kill_after,
).allocate(problem)
assert result.stats["truncated"] is True
assert result.stats["iterations"] == kill_after
""" % (INITIAL_PILOT, MAX_RR_SETS)


def _fingerprint(result) -> dict:
    return {
        "seeds": [sorted(result.allocation.seeds(ad))
                  for ad in range(result.allocation.num_ads)],
        "revenues": np.asarray(result.estimated_revenues).tobytes().hex(),
        "theta": result.stats["theta_per_ad"],
        "iterations": result.stats["iterations"],
    }


def run_kill_and_resume(rng: str, workdir: str) -> tuple[list, dict, dict]:
    """Reference run, child kill, in-parent resume; returns timing rows
    plus the two fingerprints (asserted equal by the caller)."""
    problem = dblp_like(scale=SCALE, seed=0)
    kwargs = dict(
        seed=SEED, rng=rng, initial_pilot=INITIAL_PILOT,
        max_rr_sets_per_ad=MAX_RR_SETS,
    )
    t0 = time.perf_counter()
    reference = TIRMAllocator(**kwargs).allocate(problem)
    t_reference = time.perf_counter() - t0
    assert reference.stats["iterations"] > KILL_AFTER, (
        "smoke fixture must run past the kill point"
    )

    path = os.path.join(workdir, f"smoke-{rng}.ckpt.npz")
    env = dict(os.environ)
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    t0 = time.perf_counter()
    subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT, str(SCALE), str(SEED),
         str(KILL_AFTER), rng, path],
        check=True, env=env,
    )
    t_child = time.perf_counter() - t0
    assert os.path.exists(path), "child did not leave a checkpoint behind"

    t0 = time.perf_counter()
    resumed = TIRMAllocator(resume_from=path, **kwargs).allocate(problem)
    t_resume = time.perf_counter() - t0
    assert resumed.stats["resumed_at_iteration"] == KILL_AFTER

    artifact_kb = os.path.getsize(path) / 1024
    spill = [f for f in os.listdir(workdir) if f.startswith(
        os.path.basename(path) + ".members-")]
    spill_kb = sum(
        os.path.getsize(os.path.join(workdir, f)) for f in spill
    ) / 1024
    if rng == "philox":
        assert not spill, "philox artifact must not spill RR members"
    rows = [
        [rng, "reference (uninterrupted)", reference.stats["iterations"],
         t_reference, artifact_kb, spill_kb],
        [rng, f"killed child (restart at k={KILL_AFTER})",
         KILL_AFTER, t_child, artifact_kb, spill_kb],
        [rng, "resume to completion", resumed.stats["iterations"],
         t_resume, artifact_kb, spill_kb],
    ]
    return rows, _fingerprint(reference), _fingerprint(resumed)


def _smoke_rows(workdir: str) -> list:
    rows = []
    for rng in ("philox", "legacy"):
        section, reference, resumed = run_kill_and_resume(rng, workdir)
        assert resumed == reference, (
            f"resumed allocation diverged from the uninterrupted run ({rng}):\n"
            f"{json.dumps(resumed, indent=2)[:2000]}"
        )
        rows.extend(section)
    return rows


def test_kill_and_resume_smoke(run_once, tmp_path):
    """A TIRM run killed in a child process and resumed in this one must
    reproduce the uninterrupted allocation byte-for-byte (asserted in
    ``_smoke_rows``), for both RNG modes."""
    rows = run_once(_smoke_rows, str(tmp_path))
    print()
    print(
        format_table(
            ["rng", "phase", "iterations", "wall (s)", "artifact (KB)",
             "spill (KB)"],
            rows,
            title=f"Checkpoint kill-and-resume smoke (kill at k={KILL_AFTER})",
        )
    )


if __name__ == "__main__":
    with tempfile.TemporaryDirectory() as workdir:
        print(
            format_table(
                ["rng", "phase", "iterations", "wall (s)", "artifact (KB)",
                 "spill (KB)"],
                _smoke_rows(workdir),
                title=f"Checkpoint kill-and-resume smoke (kill at k={KILL_AFTER})",
            )
        )
