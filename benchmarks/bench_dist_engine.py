"""Distributed sampling benchmark: socket workers vs the serial engine.

Times one sharded ``ensure`` (the TIRM growth workload) on the serial
:class:`~repro.rrset.sharded.ShardedSamplingEngine` against the same
targets scattered over a :class:`~repro.dist.DistributedEngine` fleet of
1/2/4 in-process socket workers, and one TIRM allocation end-to-end
under chaos (a worker crashing mid-run).  Byte-equality is asserted
inside every section while it runs — shard fingerprints and dsan roots
for the sampling rows, the full allocation record for the chaos row —
so a written report certifies that every variant it times was also
bit-identical to the serial reference.  Speedups are *recorded*, never
asserted: in-process worker threads on a single-core bench box measure
framing overhead, not scatter wins.

Run standalone with ``PYTHONPATH=src python benchmarks/bench_dist_engine.py``;
``--json`` writes ``benchmarks/BENCH_PR10.json`` and ``--cache DIR``
additionally records the rows in DIR's experiment catalog
(``repro ls --benchmarks``).
"""

from __future__ import annotations

import argparse
import json
import os
import threading
import time

from repro.algorithms.tirm import TIRMAllocator
from repro.datasets.synthetic import dblp_like
from repro.dist import Coordinator, DistributedEngine, WorkerHost
from repro.dist.worker import WorkerExit
from repro.evaluation.reporting import format_table
from repro.rrset.sharded import ShardedSamplingEngine

#: Sampling section: h advertisers, θ sets each, dblp-like graph scale.
DIST_ADS = 4
DIST_THETA = 4_000
DIST_SCALE = 0.003
CHUNK = 512
FLEETS = (1, 2, 4)
#: Chaos section: TIRM RR-set cap for the crash-mid-run allocation.
CHAOS_RR_CAP = 6_000
#: Default artifact path for ``--json`` (see ``write_json_report``).
JSON_REPORT = os.path.join(os.path.dirname(__file__), "BENCH_PR10.json")

_SECTION_COLUMNS = ("phase", "n", "variant", "ads", "theta", "wall_s", "speedup")


def _as_records(rows):
    return [dict(zip(_SECTION_COLUMNS, row)) for row in rows]


class _CrashingWorker(WorkerHost):
    """Crashes (drops the connection) just before sending chunk N."""

    def __init__(self, host, port, *, fail_on: int):
        super().__init__(host, port, name="bench-chaos")
        self._fail_on = fail_on

    def _before_result(self, ad, chunk_index):
        if self.chunks_served == self._fail_on:
            raise WorkerExit("bench chaos crash")


def _spawn_fleet(coordinator, workers):
    threads = [
        threading.Thread(target=worker.run, daemon=True) for worker in workers
    ]
    for thread in threads:
        thread.start()
    coordinator.wait_for_workers(len(workers), timeout=30.0)
    return threads


def _fingerprint(engine):
    out = []
    for ad in range(engine.num_ads):
        shard = engine.shard(ad)
        view = shard.prefix_view()
        out.append(
            (shard.num_total, view.members.tobytes(), view.indptr.tobytes())
        )
    return out


def _dist_rows(theta: int = DIST_THETA, scale: float = DIST_SCALE):
    """Serial ensure vs 1/2/4-worker scatter; byte-equality asserted."""
    problem = dblp_like(scale=scale, num_ads=DIST_ADS, seed=13)
    probs = [problem.ad_edge_probabilities(ad) for ad in range(DIST_ADS)]
    targets = {ad: theta for ad in range(DIST_ADS)}
    n = problem.num_nodes

    t0 = time.perf_counter()
    with ShardedSamplingEngine(
        problem.graph, probs, seeds=7, chunk_size=CHUNK, dsan=True
    ) as engine:
        engine.ensure(targets)
        reference = _fingerprint(engine)
        reference_root = engine.dsan_root()
    serial_wall = time.perf_counter() - t0

    rows = [["dist-sampling", n, "serial", DIST_ADS, theta, serial_wall, 1.0]]
    for count in FLEETS:
        with Coordinator() as coordinator:
            workers = [
                WorkerHost("127.0.0.1", coordinator.port, name=f"w{i}")
                for i in range(count)
            ]
            threads = _spawn_fleet(coordinator, workers)
            t0 = time.perf_counter()
            with DistributedEngine(
                problem.graph, probs, coordinator=coordinator, seeds=7,
                chunk_size=CHUNK, dsan=True,
            ) as engine:
                engine.ensure(targets)
                wall = time.perf_counter() - t0
                assert _fingerprint(engine) == reference, count
                assert engine.dsan_root() == reference_root, count
                assert engine.dist_stats()["local_fallbacks"] == 0
        for thread in threads:
            thread.join(timeout=30.0)
        rows.append([
            "dist-sampling", n, f"{count}-worker", DIST_ADS, theta, wall,
            serial_wall / wall if wall else 0.0,
        ])
    return rows


def _chaos_rows(max_rr_sets: int = CHAOS_RR_CAP, scale: float = DIST_SCALE):
    """TIRM with a worker crashing mid-run vs serial; equality asserted."""
    problem = dblp_like(scale=scale, num_ads=DIST_ADS, seed=13)
    kwargs = dict(seed=0, max_rr_sets_per_ad=max_rr_sets, chunk_size=CHUNK,
                  dsan=True)
    n = problem.num_nodes

    t0 = time.perf_counter()
    reference = TIRMAllocator(**kwargs).allocate(problem)
    serial_wall = time.perf_counter() - t0

    with Coordinator(task_timeout=30.0) as coordinator:
        chaos = _CrashingWorker("127.0.0.1", coordinator.port, fail_on=2)
        good = WorkerHost("127.0.0.1", coordinator.port, name="bench-good")
        threads = _spawn_fleet(coordinator, [chaos, good])
        t0 = time.perf_counter()
        result = TIRMAllocator(
            engine="dist", coordinator=coordinator, **kwargs
        ).allocate(problem)
        wall = time.perf_counter() - t0
    for thread in threads:
        thread.join(timeout=30.0)

    assert result.allocation == reference.allocation
    assert result.stats["dsan_root"] == reference.stats["dsan_root"]
    dist = result.stats["dist"]
    assert dist["retries"] >= 1 and dist["disconnects"] >= 1
    rows = [
        ["dist-chaos", n, "serial", DIST_ADS, max_rr_sets, serial_wall, 1.0],
        ["dist-chaos", n, "crash-1of2", DIST_ADS, max_rr_sets, wall,
         serial_wall / wall if wall else 0.0],
    ]
    return rows, dist


def write_json_report(
    path: str = JSON_REPORT,
    *,
    dist_theta: int = DIST_THETA,
    chaos_rr_cap: int = CHAOS_RR_CAP,
) -> dict:
    """Run every section and write a machine-readable report."""
    chaos, dist_stats = _chaos_rows(max_rr_sets=chaos_rr_cap)
    report = {
        "benchmark": "dist_engine",
        "cpu_count": os.cpu_count() or 1,
        "thetas": {"dist_theta": dist_theta, "chaos_rr_cap": chaos_rr_cap},
        "chaos_counters": {
            key: dist_stats[key]
            for key in ("retries", "timeouts", "disconnects",
                        "corrupt_blocks", "tasks_completed")
        },
        "sections": {
            "dist_sampling": _as_records(_dist_rows(theta=dist_theta)),
            "dist_chaos": _as_records(chaos),
        },
    }
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def record_report_to_catalog(report: dict, cache_dir: str, report_name: str) -> None:
    """Append the section rows to ``cache_dir``'s experiment catalog."""
    from repro.store.catalog import ExperimentCatalog

    rows = [row for section in report["sections"].values() for row in section]
    with ExperimentCatalog(cache_dir) as catalog:
        catalog.record_benchmarks(rows, report=report_name)


# ---------------------------------------------------------------------------
# Smoke entry points (pytest-benchmark): reduced θ, equality still asserted
# ---------------------------------------------------------------------------
def test_dist_sampling_smoke(run_once):
    """Serial vs fleet scatter must be byte-identical (asserted inside
    ``_dist_rows``); the speedup is reported, never asserted — thread
    workers on a one-core runner measure framing overhead."""
    rows = run_once(_dist_rows, theta=600)
    print()
    print(
        format_table(
            ["phase", "n", "fleet", "ads", "theta", "wall (s)", "speedup"],
            rows,
            title=f"Distributed sampling: serial vs socket-worker fleets "
                  f"({os.cpu_count() or 1} cores visible)",
        )
    )


def test_dist_chaos_smoke(run_once):
    """A worker crash mid-allocation must not change a byte (asserted
    inside ``_chaos_rows``); the retry counters are printed as the
    failure's only trace."""
    rows, dist = run_once(_chaos_rows, max_rr_sets=1_500)
    print()
    print(
        format_table(
            ["phase", "n", "run", "ads", "rr cap", "wall (s)", "speedup"],
            rows,
            title=f"TIRM under chaos: {dist['retries']} retries, "
                  f"{dist['disconnects']} disconnects — zero byte drift",
        )
    )


def test_json_report_smoke(tmp_path):
    """``--json`` artifact: both sections present, rows well-formed."""
    path = str(tmp_path / "BENCH_PR10.json")
    report = write_json_report(path, dist_theta=400, chaos_rr_cap=1_000)
    with open(path) as handle:
        on_disk = json.load(handle)
    assert on_disk == report
    sections = on_disk["sections"]
    assert set(sections) == {"dist_sampling", "dist_chaos"}
    assert {row["variant"] for row in sections["dist_sampling"]} == {
        "serial", "1-worker", "2-worker", "4-worker",
    }
    assert {row["variant"] for row in sections["dist_chaos"]} == {
        "serial", "crash-1of2",
    }
    assert all(row["wall_s"] >= 0 for section in sections.values()
               for row in section)
    assert on_disk["chaos_counters"]["retries"] >= 1


def test_report_recorded_to_catalog(tmp_path):
    from repro.store.catalog import ExperimentCatalog

    report = {
        "sections": {
            "dist_sampling": _as_records(
                [["dist-sampling", 100, "2-worker", 4, 500, 0.1, 1.5]]
            ),
        },
    }
    record_report_to_catalog(report, str(tmp_path), "BENCH_PR10.json")
    with ExperimentCatalog(str(tmp_path)) as catalog:
        (row,) = catalog.list_benchmarks()
    assert row["phase"] == "dist-sampling"
    assert row["report"] == "BENCH_PR10.json"


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json", nargs="?", const=JSON_REPORT, default=None, metavar="PATH",
        help=f"write a machine-readable report (default: {JSON_REPORT})",
    )
    parser.add_argument(
        "--cache", default=os.environ.get("REPRO_CACHE") or None, metavar="DIR",
        help="record the report's rows in this cache directory's "
             "experiment catalog (default: $REPRO_CACHE when set)",
    )
    cli_args = parser.parse_args()
    if cli_args.json:
        report = write_json_report(cli_args.json)
        if cli_args.cache:
            record_report_to_catalog(
                report, cli_args.cache, os.path.basename(cli_args.json)
            )
            print(f"benchmark rows recorded in catalog at {cli_args.cache}")
        for name, rows in report["sections"].items():
            for row in rows:
                print(
                    f"{row['phase']:14s} n={row['n']:7d} "
                    f"{row['variant']:10s} wall={row['wall_s']:7.3f}s "
                    f"speedup={row['speedup']:5.2f}x"
                )
    else:
        for row in _dist_rows():
            print(row)
