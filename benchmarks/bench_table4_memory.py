"""T4 — Table 4: memory usage of TIRM vs Greedy-IRIE.

Paper: TIRM's memory is dominated by the stored RR-sets and grows
steadily with h (DBLP: 2.6 GB at h=1 → 61 GB at h=20); Greedy-IRIE only
needs the input graph and a few per-node vectors, an order of magnitude
less.  We account the same quantities at bench scale: the RR-set
collections' bytes for TIRM vs the graph + rank/AP vectors for IRIE.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import DBLP_SCALE, MAX_RR_SETS
from repro.algorithms.tirm import TIRMAllocator
from repro.datasets.synthetic import dblp_like
from repro.evaluation.reporting import format_table


def test_table4_memory_vs_num_ads(run_once):
    counts = (1, 5, 10)

    def experiment():
        rows = []
        for h in counts:
            problem = dblp_like(scale=DBLP_SCALE, num_ads=h, seed=13)
            result = TIRMAllocator(
                seed=0, epsilon=0.2, max_rr_sets_per_ad=MAX_RR_SETS
            ).allocate(problem)
            tirm_bytes = result.stats["rr_memory_bytes"]
            # IRIE's working set: the graph CSR plus rank/AP float vectors
            # per ad (its "merely the input graph and probabilities").
            irie_bytes = problem.graph.memory_bytes() + 2 * 8 * problem.num_nodes * h
            rows.append([h, tirm_bytes / 1e6, irie_bytes / 1e6,
                         result.stats["total_rr_sets"]])
        return rows

    rows = run_once(experiment)
    print()
    print(format_table(
        ["h", "TIRM RR-set MB", "IRIE MB", "RR-sets"],
        rows,
        title="Table 4 (dblp-like): memory vs number of advertisers",
    ))
    memory = {h: mb for h, mb, _, _ in rows}
    # memory grows with h (one RR-set collection per advertiser)...
    assert memory[5] > memory[1]
    assert memory[10] > memory[5]
    # ...and TIRM uses much more memory than IRIE's working set.
    for h, tirm_mb, irie_mb, _ in rows:
        if h >= 5:
            assert tirm_mb > irie_mb
