"""F5 — Fig. 5: distribution of per-ad budget regrets, TIRM vs IRIE.

Paper (λ=0, κ=5): on Flixster both algorithms overshoot but TIRM's
revenue−budget gaps are far more uniform across ads than Greedy-IRIE's
(IRIE regrets up to 3.8× TIRM's, heavy skew); on Epinions IRIE falls
short on 7/10 ads while TIRM stays near the budgets.  We check TIRM's
per-ad budget regret is smaller in aggregate and less skewed.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import (
    EPINIONS_SCALE,
    EVAL_RUNS,
    FLIXSTER_SCALE,
    MAX_RR_SETS,
)
from repro.algorithms.irie import GreedyIRIEAllocator
from repro.algorithms.tirm import TIRMAllocator
from repro.datasets.synthetic import epinions_like, flixster_like
from repro.evaluation.evaluator import RegretEvaluator
from repro.evaluation.reporting import format_table


@pytest.mark.parametrize("dataset", ["flixster", "epinions"])
def test_fig5_individual_budget_regrets(run_once, dataset):
    if dataset == "flixster":
        problem = flixster_like(scale=FLIXSTER_SCALE, attention_bound=5, seed=7)
    else:
        problem = epinions_like(scale=EPINIONS_SCALE, attention_bound=5, seed=11)

    def experiment():
        evaluator = RegretEvaluator(problem, num_runs=EVAL_RUNS, seed=103)
        reports = {}
        for name, allocator in (
            # scalar sampler on the legacy streams: quality assertions
            # calibrated on the reference stream (see benchmarks/conftest.py)
            ("TIRM", TIRMAllocator(seed=0, max_rr_sets_per_ad=MAX_RR_SETS,
                                   sampler_mode="scalar", rng="legacy")),
            ("IRIE", GreedyIRIEAllocator(alpha=0.8)),
        ):
            result = allocator.allocate(problem)
            reports[name] = evaluator.evaluate(result.allocation, algorithm=name)
        return reports

    reports = run_once(experiment)
    gaps = {name: r.regret.signed_budget_gaps() for name, r in reports.items()}

    print()
    print(format_table(
        ["algorithm", *(f"ad{i}" for i in range(problem.num_ads))],
        [[name, *np.round(g, 2)] for name, g in gaps.items()],
        title=f"Fig. 5 ({dataset}, lambda=0, kappa=5): revenue - budget per ad",
    ))

    tirm_abs = np.abs(gaps["TIRM"])
    irie_abs = np.abs(gaps["IRIE"])
    # At bench scale the two are close; the reproduction claims are that
    # TIRM tracks budgets comparably in aggregate (paper: better and far
    # more uniform at full scale)...
    assert tirm_abs.sum() <= irie_abs.sum() * 1.6
    # ...and that its worst ad is not dramatically further off.
    assert tirm_abs.max() <= irie_abs.max() * 2.0
    # Every TIRM gap is small relative to its budget (the Fig. 5 scale:
    # gaps are a fraction of the ~budget-sized bars).
    budgets = problem.catalog.budgets()
    assert np.all(tirm_abs <= budgets)
