"""AB3 — ablation: the boosted-budget β of the §3 "Discussion".

The paper notes that overshoot (free service) may be more acceptable
than undershoot (lost revenue) and proposes measuring regret against a
boosted budget ``B' = (1 + β)·B``, leaving all results intact.  We run
TIRM with and without a boost and verify the intended effect: boosted
allocations push revenues up, trading a controlled amount of free
service for less undershoot.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import EVAL_RUNS, FLIXSTER_SCALE, MAX_RR_SETS
from repro.advertising.advertiser import Advertiser
from repro.advertising.catalog import AdCatalog
from repro.advertising.problem import AdAllocationProblem
from repro.algorithms.tirm import TIRMAllocator
from repro.datasets.synthetic import flixster_like
from repro.evaluation.evaluator import RegretEvaluator
from repro.evaluation.reporting import format_table

BETA = 0.3


def _with_boost(problem, beta):
    catalog = AdCatalog(
        [
            Advertiser(name=ad.name, budget=ad.budget, cpe=ad.cpe,
                       topics=ad.topics, boost=beta)
            for ad in problem.catalog
        ]
    )
    return AdAllocationProblem(
        problem.graph, catalog, problem.edge_probabilities, problem.ctps,
        problem.attention, problem.penalty,
    )


def test_boosted_budget_shifts_revenue_up(run_once):
    base = flixster_like(scale=FLIXSTER_SCALE, attention_bound=3, seed=7)
    boosted = _with_boost(base, BETA)

    def experiment():
        plain_result = TIRMAllocator(seed=0, max_rr_sets_per_ad=MAX_RR_SETS).allocate(base)
        boost_result = TIRMAllocator(seed=0, max_rr_sets_per_ad=MAX_RR_SETS).allocate(boosted)
        evaluator = RegretEvaluator(base, num_runs=EVAL_RUNS, seed=111)
        plain_rev, _ = evaluator.measure_revenues(plain_result.allocation)
        boost_rev, _ = evaluator.measure_revenues(boost_result.allocation)
        return plain_result, boost_result, plain_rev, boost_rev

    plain_result, boost_result, plain_rev, boost_rev = run_once(experiment)
    budgets = base.catalog.budgets()

    print()
    print(format_table(
        ["quantity", "beta=0", f"beta={BETA}"],
        [
            ["total measured revenue", plain_rev.sum(), boost_rev.sum()],
            ["total seeds", plain_result.allocation.total_seeds(),
             boost_result.allocation.total_seeds()],
            ["ads under original budget", int((plain_rev < budgets).sum()),
             int((boost_rev < budgets).sum())],
        ],
        title=f"AB3: boosted budgets B' = (1+{BETA})B on flixster-like",
    ))

    # The boost targets a (1+β) revenue level: more seeds, more revenue.
    assert boost_result.allocation.total_seeds() >= plain_result.allocation.total_seeds()
    assert boost_rev.sum() > plain_rev.sum()
    # Internally, TIRM tracked the boosted budgets, not the originals.
    assert np.all(
        boost_result.budgets == pytest.approx((1 + BETA) * budgets)
    )
