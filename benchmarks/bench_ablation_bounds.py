"""TB — ablation: achieved regret vs. the Theorem 2/3/4 bounds.

The theorems bound *Greedy's* budget-regret at λ = 0 by
``min(p_max/2, 1 − p_max)·B`` (Thm 4, ≤ B/3 of Thm 3) under the
assumption p_i ∈ (0, 1).  We estimate p_i and s_opt from RR-samples,
run TIRM (the scalable Greedy instantiation) and check its *internal*
budget-regret — the quantity the greedy argument controls — sits under
the bounds, while reporting the measured (MC) regret alongside.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import EVAL_RUNS, FLIXSTER_SCALE, MAX_RR_SETS
from repro.algorithms.bounds import compute_bounds
from repro.algorithms.tirm import TIRMAllocator
from repro.datasets.synthetic import flixster_like
from repro.evaluation.evaluator import RegretEvaluator
from repro.evaluation.reporting import format_table


def test_bounds_vs_achieved_regret(run_once):
    problem = flixster_like(scale=FLIXSTER_SCALE, attention_bound=5, seed=7)

    def experiment():
        bounds = compute_bounds(problem, rr_sets_per_ad=4_000, seed=1)
        result = TIRMAllocator(seed=0, max_rr_sets_per_ad=MAX_RR_SETS).allocate(problem)
        report = RegretEvaluator(problem, num_runs=EVAL_RUNS, seed=107).evaluate(
            result.allocation
        )
        return bounds, result, report

    bounds, result, report = run_once(experiment)
    internal = result.estimated_regret().total_budget_regret
    measured = report.regret.total_budget_regret

    rows = [
        ["p_max", bounds.p_max],
        ["Theorem 3 bound (B/3)", bounds.theorem3],
        ["Theorem 4 bound", bounds.theorem4 if bounds.theorem4_applicable else "n/a"],
        ["Theorem 2 bound (lambda=0)", bounds.theorem2],
        ["TIRM internal budget-regret", internal],
        ["TIRM measured budget-regret", measured],
        ["total budget B", bounds.total_budget],
    ]
    print()
    print(format_table(["quantity", "value"], rows, title="Theorem bounds ablation"))

    assert internal <= bounds.theorem3 + 1e-6
    if bounds.theorem4_applicable:
        assert internal <= bounds.theorem4 * 1.05
    # Theorem 2 at λ=0 is Σ p_i B_i / 2 — the tightest of the three.
    assert bounds.theorem2 <= bounds.theorem3 + 1e-9
    # Greedy's control is on its own estimates; the measured regret is
    # larger only through estimator bias, which stays within B/3 here.
    assert measured <= bounds.theorem3 * 1.5
