"""Shared benchmark configuration.

The benchmarks regenerate every table and figure of the paper's §6 at
laptop scale (see DESIGN.md §3–4).  Each module prints its results in
the paper's layout; EXPERIMENTS.md records the paper-vs-measured
comparison.  Scale knobs live here so a beefier machine can turn them up
towards paper scale.
"""

from __future__ import annotations

import pytest

from repro.algorithms.irie import GreedyIRIEAllocator
from repro.algorithms.myopic import MyopicAllocator, MyopicPlusAllocator
from repro.algorithms.tirm import TIRMAllocator

#: Scale of the quality datasets (fraction of the paper's node counts).
FLIXSTER_SCALE = 0.01
EPINIONS_SCALE = 0.012
#: Scale of the scalability datasets.
DBLP_SCALE = 0.003
LIVEJOURNAL_SCALE = 0.0005
#: Monte-Carlo referee runs (paper: 10 000).
EVAL_RUNS = 150
#: RR-set cap per advertiser for TIRM benches.
MAX_RR_SETS = 8_000


def quality_allocators(seed: int = 0) -> dict:
    """The four §6 algorithms with their quality-experiment settings.

    TIRM is pinned to the ``scalar`` sampler and the ``legacy`` streams
    here: the quality figures' assertions were calibrated against the
    reference Mersenne stream at bench scale, where the marginal
    TIRM-vs-Myopic+ gaps are within seed noise.  The scalability benches
    (F6/T4) exercise the default ``blocked`` fast path on the
    counter-based streams.
    """
    return {
        "Myopic": MyopicAllocator(),
        "Myopic+": MyopicPlusAllocator(),
        "IRIE": GreedyIRIEAllocator(alpha=0.8),
        "TIRM": TIRMAllocator(
            seed=seed, epsilon=0.1, max_rr_sets_per_ad=MAX_RR_SETS,
            sampler_mode="scalar", rng="legacy",
        ),
    }


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
