"""F6 — Fig. 6: running time vs. number of advertisers and vs. budget.

Paper (§6.2, CTP = CPE = 1, weighted cascade, κ=1, ε=0.2): TIRM scales
~linearly in h on both DBLP and LiveJournal; its time stays ~flat as
per-ad budgets grow (seed selection is linear once RR-sets exist);
Greedy-IRIE's time grows superlinearly in budget ("due to more
iterations of seed selections") and falls behind TIRM as h grows.

Bench-scale budgets are raised above the proportional default so that
allocations need hundreds of seeds — the regime the paper's timing
claims are about.

``pytest benchmarks/bench_fig6_scalability.py --backend numba`` re-runs
the TIRM columns on the JIT sampling backend (allocations are
byte-identical across backends, so only the timings move); the default
is the numpy reference backend.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import DBLP_SCALE, LIVEJOURNAL_SCALE, MAX_RR_SETS
from repro.algorithms.irie import GreedyIRIEAllocator
from repro.algorithms.tirm import TIRMAllocator
from repro.datasets.synthetic import dblp_like, livejournal_like
from repro.evaluation.reporting import format_table

#: Per-ad budget making each ad need tens of seeds at bench scale.
DBLP_BUDGET = 60.0


def _tirm(backend: str = "numpy"):
    return TIRMAllocator(
        seed=0, epsilon=0.2, max_rr_sets_per_ad=MAX_RR_SETS, backend=backend
    )


def test_fig6a_dblp_time_vs_num_ads(run_once, rrset_backend):
    counts = (1, 5, 10)

    def experiment():
        rows = []
        for h in counts:
            problem = dblp_like(
                scale=DBLP_SCALE, num_ads=h, budget_per_ad=DBLP_BUDGET, seed=13
            )
            tirm_result = _tirm(rrset_backend).allocate(problem)
            irie_time = GreedyIRIEAllocator(alpha=0.7).allocate(problem).runtime_seconds
            rows.append([h, tirm_result.runtime_seconds, irie_time,
                         tirm_result.allocation.total_seeds()])
        return rows

    rows = run_once(experiment)
    print()
    print(format_table(
        ["h", "TIRM (s)", "IRIE (s)", "TIRM seeds"],
        rows,
        title="Fig. 6(a) dblp-like: running time vs number of advertisers",
    ))
    tirm_times = {h: t for h, t, _, _ in rows}
    irie_times = {h: t for h, _, t, _ in rows}
    # TIRM ~linear in h: 10x the ads costs well under quadratic blowup.
    assert tirm_times[10] >= tirm_times[1]
    assert tirm_times[10] <= max(tirm_times[1], 0.05) * 25
    # IRIE's cost grows substantially with h (every seed of every ad
    # triggers an IR solve).  At bench scale TIRM carries a fixed RR-set
    # sampling overhead that keeps IRIE absolutely faster; the paper's
    # crossover (IRIE 6x slower at h=15, DNF at h>=5 on LiveJournal)
    # appears once budgets require thousands of seeds.
    assert irie_times[10] > irie_times[1] * 2


def test_fig6b_dblp_time_vs_budget(run_once, rrset_backend):
    budgets = (30.0, 60.0, 120.0)

    def experiment():
        rows = []
        for budget in budgets:
            problem = dblp_like(
                scale=DBLP_SCALE, num_ads=5, budget_per_ad=budget, seed=13
            )
            result = _tirm(rrset_backend).allocate(problem)
            irie_time = GreedyIRIEAllocator(alpha=0.7).allocate(problem).runtime_seconds
            rows.append([budget, result.runtime_seconds, irie_time,
                         result.allocation.total_seeds()])
        return rows

    rows = run_once(experiment)
    print()
    print(format_table(
        ["budget/ad", "TIRM (s)", "IRIE (s)", "TIRM seeds"],
        rows,
        title="Fig. 6(b) dblp-like: time vs per-ad budget",
    ))
    tirm_times = [t for _, t, _, _ in rows]
    irie_times = [t for _, _, t, _ in rows]
    # TIRM ~flat in budget: 4x budget costs < 5x time ("relatively
    # stable, barring minor fluctuations").
    assert max(tirm_times) <= max(min(tirm_times), 0.05) * 5.0
    # IRIE grows with budget (more seed-selection iterations, each with
    # an IR solve).
    assert irie_times[-1] > irie_times[0]


def test_fig6cd_livejournal(run_once, rrset_backend):
    def experiment():
        rows = []
        for h in (1, 5):
            problem = livejournal_like(
                scale=LIVEJOURNAL_SCALE, num_ads=h, budget_per_ad=120.0, seed=17
            )
            result = _tirm(rrset_backend).allocate(problem)
            rows.append([h, problem.num_nodes, result.runtime_seconds,
                         result.allocation.total_seeds()])
        return rows

    rows = run_once(experiment)
    print()
    print(format_table(
        ["h", "n", "TIRM (s)", "seeds"],
        rows,
        title="Fig. 6(c,d) livejournal-like: TIRM time vs h",
    ))
    assert rows[1][2] >= rows[0][2]  # more ads cost more time
    assert rows[1][2] <= max(rows[0][2], 0.05) * 15  # ...but ~linearly
