"""AB1 — ablation: RRC-sets vs CTP-weighted RR-sets (§5.2's key choice).

The paper argues sampling RRC-sets directly would need ~two orders of
magnitude more samples at 1–3% CTPs, because the number of samples is
inversely proportional to OPT and OPT shrinks by the CTP factor; TIRM
therefore samples plain RR-sets and multiplies marginals by δ (Theorem
5).  We measure exactly that: at an equal sample count, the RRC
estimate of a seed set's spread is far noisier than the RR+δ estimate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import flixster_like
from repro.evaluation.reporting import format_table
from repro.rrset.rrc import sample_rrc_sets
from repro.rrset.sampler import sample_rr_sets

SAMPLES = 3_000
TRIALS = 12


def test_rrc_vs_weighted_rr_variance(run_once):
    problem = flixster_like(scale=0.005, num_ads=1, seed=7)
    graph = problem.graph
    probs = problem.ad_edge_probabilities(0)
    delta = problem.ad_ctps(0)
    rng = np.random.default_rng(5)
    seeds = rng.choice(graph.num_nodes, size=10, replace=False)
    seed_set = set(int(s) for s in seeds)

    def experiment():
        rr_estimates, rrc_estimates = [], []
        for trial in range(TRIALS):
            rr = sample_rr_sets(graph, probs, SAMPLES, rng=1000 + trial)
            # Theorem-5 estimator: per-seed delta-weighted marginal
            # coverage (sets credited to the first seed that hits them).
            total = 0.0
            for batch in rr:
                members = set(batch.tolist()) & seed_set
                if members:
                    # expected contribution: 1 - prod(1-δ) ≈ Σδ at small δ
                    miss = 1.0
                    for node in members:
                        miss *= 1.0 - delta[node]
                    total += 1.0 - miss
            rr_estimates.append(graph.num_nodes * total / SAMPLES)
            rrc = sample_rrc_sets(graph, probs, delta, SAMPLES, rng=2000 + trial)
            hits = sum(1 for batch in rrc if seed_set & set(batch.tolist()))
            rrc_estimates.append(graph.num_nodes * hits / SAMPLES)
        return np.asarray(rr_estimates), np.asarray(rrc_estimates)

    rr_est, rrc_est = run_once(experiment)
    rows = [
        ["RR + delta-weighting", rr_est.mean(), rr_est.std()],
        ["RRC direct", rrc_est.mean(), rrc_est.std()],
    ]
    print()
    print(format_table(
        ["estimator", "mean spread", "std over trials"],
        rows,
        title=f"AB1: {SAMPLES} samples, {TRIALS} trials, 10 seeds, CTP 1-3%",
    ))
    # Both estimate the same quantity...
    assert rr_est.mean() == pytest.approx(rrc_est.mean(), rel=0.6, abs=1.0)
    # ...but the RRC estimator's variance is dramatically larger.
    assert rrc_est.std() > 2.0 * rr_est.std()
