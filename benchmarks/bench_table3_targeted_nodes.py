"""T3 — Table 3: number of distinct targeted users vs. attention bound.

Paper (λ=0): TIRM targets orders of magnitude fewer distinct users than
the Myopics (Flixster κ=1: TIRM 868 vs Myopic 29K = all users, Myopic+
27K); the count *decreases* as κ grows for every budget-aware algorithm
(users become "more available"), while Myopic always targets everyone.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import EVAL_RUNS, FLIXSTER_SCALE, quality_allocators
from repro.datasets.synthetic import flixster_like
from repro.evaluation.experiments import sweep_attention_bounds
from repro.evaluation.reporting import format_records

KAPPAS = (1, 3, 5)


def test_table3_targeted_users_vs_attention(run_once):
    records = run_once(
        sweep_attention_bounds,
        "table3-flixster",
        lambda kappa: flixster_like(
            scale=FLIXSTER_SCALE, attention_bound=kappa, penalty=0.0, seed=7
        ),
        quality_allocators(),
        KAPPAS,
        eval_runs=EVAL_RUNS,
        eval_seed=105,
    )
    print()
    print(format_records(
        records,
        value="num_targeted_users",
        title="Table 3 (flixster, lambda=0): distinct targeted users vs kappa",
    ))

    by_cell = {
        (r.parameters["kappa"], r.algorithm): r.num_targeted_users for r in records
    }
    n = flixster_like(scale=FLIXSTER_SCALE, seed=7).num_nodes
    for kappa in KAPPAS:
        # Myopic targets every user at every kappa.
        assert by_cell[(kappa, "Myopic")] == n
        # TIRM targets fewer users than both Myopics (paper: 868 vs 29K
        # on the full Flixster; the gap shrinks at 1/100th scale where
        # budgets still need a sizable fraction of all users).
        assert by_cell[(kappa, "TIRM")] < by_cell[(kappa, "Myopic+")]
        assert by_cell[(kappa, "TIRM")] < int(0.7 * n)
    # Budget-aware algorithms need fewer distinct users as kappa grows.
    assert by_cell[(5, "Myopic+")] <= by_cell[(1, "Myopic+")]
    assert by_cell[(5, "TIRM")] <= by_cell[(1, "TIRM")] * 1.2
