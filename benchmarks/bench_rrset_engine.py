"""RR-set engine micro-benchmark: sample → index → cover → remove.

Times the four phases that dominate TIRM's runtime (§5, Fig. 6) on the
flat-CSR :class:`~repro.rrset.pool.RRSetPool`, at several graph scales
and for both sampler paths:

* ``scalar``  — the bit-compatible Mersenne BFS written straight into
  the pool (``sample_into``);
* ``blocked`` — the vectorized batched sampler (``sample_blocked_into``,
  RNG drawn in blocks).

The loop mirrors one TIRM growth cycle: draw θ sets (sample+index),
greedy-cover s seeds over a pilot CSR window, then remove the sets the
chosen seeds cover.  Before/after numbers vs the seed implementation are
recorded in CHANGES.md; run standalone with
``PYTHONPATH=src python benchmarks/bench_rrset_engine.py``.
"""

from __future__ import annotations

import time

from repro.datasets.synthetic import dblp_like
from repro.evaluation.reporting import format_table
from repro.rrset.pool import RRSetPool
from repro.rrset.sampler import RRSetSampler
from repro.rrset.tim import greedy_max_coverage

#: (label, dblp-like scale) — bench-box sizes; raise on a beefier machine.
SCALES = (("dblp-1x", 0.003), ("dblp-3x", 0.01))
THETA = 20_000
SEEDS_TO_PICK = 50
PILOT = 2_000


def run_engine_cycle(graph, probs, *, mode: str, seed: int = 0) -> dict:
    """One sample→index→cover→remove cycle; returns phase timings."""
    n = graph.num_nodes
    sampler = RRSetSampler(graph, probs, seed=seed)
    pool = RRSetPool(n)

    t0 = time.perf_counter()
    if mode == "blocked":
        sampler.sample_blocked_into(pool, THETA)
    else:
        sampler.sample_into(pool, THETA)
    t1 = time.perf_counter()

    pilot = pool.prefix_view(PILOT)
    seeds, covered = greedy_max_coverage(pilot, n, SEEDS_TO_PICK)
    t2 = time.perf_counter()

    removed = 0
    for node in seeds:
        removed += pool.remove_covered(node)
    fr = pool.coverage_of_set(seeds)
    t3 = time.perf_counter()

    return {
        "sample+index": t1 - t0,
        "cover": t2 - t1,
        "remove": t3 - t2,
        "total": t3 - t0,
        "covered": covered,
        "removed": removed,
        "memory_mb": pool.memory_bytes() / 1e6,
        "avg_size": pool.average_set_size(),
        "residual_coverage": fr,
    }


def _rows():
    rows = []
    for label, scale in SCALES:
        problem = dblp_like(scale=scale, num_ads=1, seed=13)
        probs = problem.ad_edge_probabilities(0)
        for mode in ("scalar", "blocked"):
            r = run_engine_cycle(problem.graph, probs, mode=mode)
            rows.append(
                [
                    label,
                    problem.num_nodes,
                    mode,
                    r["sample+index"],
                    r["cover"],
                    r["remove"],
                    r["total"],
                    r["memory_mb"],
                ]
            )
    return rows


def test_rrset_engine_cycle(run_once):
    rows = run_once(_rows)
    print()
    print(
        format_table(
            ["graph", "n", "sampler", "sample+index (s)", "cover (s)",
             "remove (s)", "total (s)", "RR mem (MB)"],
            rows,
            title=f"RR-set engine: θ={THETA}, {SEEDS_TO_PICK} seeds per cycle",
        )
    )
    by_mode = {(r[0], r[2]): r[6] for r in rows}
    for label, _ in SCALES:
        # the blocked path must never lose badly to the scalar one
        assert by_mode[(label, "blocked")] <= by_mode[(label, "scalar")] * 1.5
    # sanity: every phase completed with data flowing through the pool
    assert all(r[7] > 0 for r in rows)


if __name__ == "__main__":
    for row in _rows():
        label, n, mode, si, cov, rem, tot, mem = row
        print(
            f"{label:10s} n={n:7d} {mode:8s} sample+index={si:7.3f}s "
            f"cover={cov:6.3f}s remove={rem:6.3f}s total={tot:7.3f}s "
            f"mem={mem:7.2f}MB"
        )
