"""RR-set engine micro-benchmark: sample → index → cover → remove.

Times the four phases that dominate TIRM's runtime (§5, Fig. 6) on the
flat-CSR :class:`~repro.rrset.pool.RRSetPool`, at several graph scales
and for both sampler paths:

* ``scalar``  — the bit-compatible Mersenne BFS written straight into
  the pool (``sample_into``);
* ``blocked`` — the vectorized batched sampler (``sample_blocked_into``,
  RNG drawn in blocks).

The loop mirrors one TIRM growth cycle: draw θ sets (sample+index),
greedy-cover s seeds over a pilot CSR window, then remove the sets the
chosen seeds cover.  Before/after numbers vs the seed implementation are
recorded in CHANGES.md; run standalone with
``PYTHONPATH=src python benchmarks/bench_rrset_engine.py``.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.datasets.synthetic import dblp_like
from repro.evaluation.reporting import format_table
from repro.rrset.pool import RRSetPool
from repro.rrset.sampler import RRSetSampler
from repro.rrset.sharded import ShardedSamplingEngine
from repro.rrset.tim import greedy_max_coverage

#: (label, dblp-like scale) — bench-box sizes; raise on a beefier machine.
SCALES = (("dblp-1x", 0.003), ("dblp-3x", 0.01))
THETA = 20_000
SEEDS_TO_PICK = 50
PILOT = 2_000
#: Sharded-engine pilot phase: h advertisers, θ sets each.
SHARDED_ADS = 6
SHARDED_THETA = 4_000
SHARDED_SCALE = 0.003


def run_engine_cycle(graph, probs, *, mode: str, seed: int = 0) -> dict:
    """One sample→index→cover→remove cycle; returns phase timings."""
    n = graph.num_nodes
    sampler = RRSetSampler(graph, probs, seed=seed)
    pool = RRSetPool(n)

    t0 = time.perf_counter()
    if mode == "blocked":
        sampler.sample_blocked_into(pool, THETA)
    else:
        sampler.sample_into(pool, THETA)
    t1 = time.perf_counter()

    pilot = pool.prefix_view(PILOT)
    seeds, covered = greedy_max_coverage(pilot, n, SEEDS_TO_PICK)
    t2 = time.perf_counter()

    removed = 0
    for node in seeds:
        removed += pool.remove_covered(node)
    fr = pool.coverage_of_set(seeds)
    t3 = time.perf_counter()

    return {
        "sample+index": t1 - t0,
        "cover": t2 - t1,
        "remove": t3 - t2,
        "total": t3 - t0,
        "covered": covered,
        "removed": removed,
        "memory_mb": pool.memory_bytes() / 1e6,
        "avg_size": pool.average_set_size(),
        "residual_coverage": fr,
    }


def _rows():
    rows = []
    for label, scale in SCALES:
        problem = dblp_like(scale=scale, num_ads=1, seed=13)
        probs = problem.ad_edge_probabilities(0)
        for mode in ("scalar", "blocked"):
            r = run_engine_cycle(problem.graph, probs, mode=mode)
            rows.append(
                [
                    label,
                    problem.num_nodes,
                    mode,
                    r["sample+index"],
                    r["cover"],
                    r["remove"],
                    r["total"],
                    r["memory_mb"],
                ]
            )
    return rows


def run_sharded_pilot(
    problem, *, engine: str, mode: str = "blocked", theta: int = SHARDED_THETA,
    seed: int = 0,
) -> tuple[float, list[tuple[int, np.ndarray, np.ndarray]]]:
    """One TIRM-style pilot phase (θ sets for every ad) through the
    sharded engine; returns the wall-clock and per-shard fingerprints."""
    h = problem.num_ads
    probs = [problem.ad_edge_probabilities(ad) for ad in range(h)]
    with ShardedSamplingEngine(
        problem.graph, probs, seeds=seed, mode=mode, engine=engine
    ) as eng:
        # Warm the worker pool so fork/startup cost is not charged to the
        # timed pilot (the executor is created lazily on first sample).
        eng.sample({ad: 1 for ad in range(h)})
        t0 = time.perf_counter()
        eng.sample({ad: theta for ad in range(h)})
        elapsed = time.perf_counter() - t0
        shards = []
        for ad in range(h):
            view = eng.shard(ad).prefix_view()
            shards.append(
                (eng.shard(ad).num_total, view.members.copy(), view.indptr.copy())
            )
    return elapsed, shards


def _sharded_rows(theta: int = SHARDED_THETA, scale: float = SHARDED_SCALE):
    """Serial vs process pilot phase for h advertisers; the two engines
    must agree set-for-set (the CI smoke asserts exactly this)."""
    problem = dblp_like(scale=scale, num_ads=SHARDED_ADS, seed=13)
    t_serial, shards_serial = run_sharded_pilot(problem, engine="serial", theta=theta)
    t_process, shards_process = run_sharded_pilot(problem, engine="process", theta=theta)
    for (ns, ms, ps), (np_, mp_, pp_) in zip(shards_serial, shards_process):
        assert ns == np_
        assert np.array_equal(ms, mp_)
        assert np.array_equal(ps, pp_)
    speedup = t_serial / t_process if t_process > 0 else float("inf")
    return [
        ["sharded-pilot", problem.num_nodes, "serial", SHARDED_ADS, theta, t_serial, 1.0],
        ["sharded-pilot", problem.num_nodes, "process", SHARDED_ADS, theta, t_process,
         speedup],
    ]


def test_rrset_engine_cycle(run_once):
    rows = run_once(_rows)
    print()
    print(
        format_table(
            ["graph", "n", "sampler", "sample+index (s)", "cover (s)",
             "remove (s)", "total (s)", "RR mem (MB)"],
            rows,
            title=f"RR-set engine: θ={THETA}, {SEEDS_TO_PICK} seeds per cycle",
        )
    )
    by_mode = {(r[0], r[2]): r[6] for r in rows}
    for label, _ in SCALES:
        # the blocked path must never lose badly to the scalar one
        assert by_mode[(label, "blocked")] <= by_mode[(label, "scalar")] * 1.5
    # sanity: every phase completed with data flowing through the pool
    assert all(r[7] > 0 for r in rows)


def test_sharded_engine_smoke(run_once):
    """Serial vs process sharded pilot must agree set-for-set.

    This is the CI smoke: a sub-30-second pilot phase at reduced θ whose
    per-shard members/indptr blocks are asserted identical inside
    ``_sharded_rows``.  Speedup is *reported*, never asserted, here: at
    smoke scale the workload is tens of milliseconds, so wall-clock
    ratios measure scheduler noise, not the engine (and a single-core
    runner cannot express a speedup at all).  The ≥2× multi-core figure
    belongs to the full-θ standalone run on a quiet bench box.
    """
    rows = run_once(_sharded_rows, theta=1_000)
    print()
    print(
        format_table(
            ["phase", "n", "engine", "ads", "theta/ad", "wall (s)", "speedup"],
            rows,
            title=f"Sharded pilot phase: h={SHARDED_ADS} advertisers "
                  f"({os.cpu_count() or 1} cores visible)",
        )
    )


if __name__ == "__main__":
    for row in _rows():
        label, n, mode, si, cov, rem, tot, mem = row
        print(
            f"{label:10s} n={n:7d} {mode:8s} sample+index={si:7.3f}s "
            f"cover={cov:6.3f}s remove={rem:6.3f}s total={tot:7.3f}s "
            f"mem={mem:7.2f}MB"
        )
    for row in _sharded_rows():
        label, n, engine, ads, theta, wall, speedup = row
        print(
            f"{label:13s} n={n:7d} {engine:8s} h={ads} theta={theta} "
            f"wall={wall:7.3f}s speedup={speedup:5.2f}x"
        )
