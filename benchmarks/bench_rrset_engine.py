"""RR-set engine micro-benchmark: sample → index → cover → remove.

Times the four phases that dominate TIRM's runtime (§5, Fig. 6) on the
flat-CSR :class:`~repro.rrset.pool.RRSetPool`, at several graph scales
and for both sampler paths:

* ``scalar``  — the bit-compatible Mersenne BFS written straight into
  the pool (``sample_into``);
* ``blocked`` — the vectorized batched sampler (``sample_blocked_into``,
  RNG drawn in blocks).

The loop mirrors one TIRM growth cycle: draw θ sets (sample+index),
greedy-cover s seeds over a pilot CSR window, then remove the sets the
chosen seeds cover.  Before/after numbers vs the seed implementation are
recorded in CHANGES.md; run standalone with
``PYTHONPATH=src python benchmarks/bench_rrset_engine.py``.

Additional sections: the sharded pilot phase and single-ad growth
top-up (serial vs process, byte-equality asserted), the sampling
*backend* comparison (numpy reference vs numba JIT kernel on the same
stream — byte-equality asserted, speedup reported; see
``docs/rrset_engine.md`` §backends), the shard-cache section (TIRM
cold populate vs warm zero-sampling rerun — identical allocation and
zero backend invocations asserted, speedup reported), and the service
section (cold submit vs warm resubmit vs incremental re-allocation
through one :class:`~repro.service.jobs.JobManager` — warm resubmit
must invoke the sampling backend zero times and every variant must
stay byte-identical to its cold batch reference, all asserted).  With
``--cache DIR`` (or ``$REPRO_CACHE``), ``--json`` runs also append
their section rows to that cache's experiment catalog
(``repro ls --benchmarks``).
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

from repro.algorithms.tirm import TIRMAllocator
from repro.datasets.synthetic import dblp_like
from repro.evaluation.reporting import format_table
from repro.rrset.backends import NumbaBackend, NumpyBackend, numba_available
from repro.rrset.pool import RRSetPool
from repro.rrset.sampler import RRSetSampler
from repro.rrset.sharded import ShardedSamplingEngine
from repro.rrset.tim import greedy_max_coverage

#: (label, dblp-like scale) — bench-box sizes; raise on a beefier machine.
SCALES = (("dblp-1x", 0.003), ("dblp-3x", 0.01))
THETA = 20_000
SEEDS_TO_PICK = 50
PILOT = 2_000
#: Sharded-engine pilot phase: h advertisers, θ sets each.
SHARDED_ADS = 6
SHARDED_THETA = 4_000
SHARDED_SCALE = 0.003
#: Growth-phase section: one ad's θ top-up (Algorithm 4), the request
#: shape that was strictly serial before counter-based streams.
GROWTH_THETA = 12_000
GROWTH_CHUNK = 512
#: Backend-comparison section: blocked sampling, numpy vs numba.
BACKEND_THETA = 20_000
BACKEND_SCALE = 0.003
#: Transport-comparison section: pickle vs shared-memory descriptors.
TRANSPORT_THETA = 8_000
#: Prefetch section: TIRM with speculative θ-growth prefetch on vs off.
PREFETCH_RR_CAP = 6_000
#: Shard-cache section: TIRM cold (populating) vs warm (zero sampling).
SHARD_CACHE_RR_CAP = 6_000
#: Service section: cold submit vs warm resubmit vs incremental realloc.
SERVICE_RR_CAP = 6_000
#: Default artifact path for ``--json`` (see ``write_json_report``).
JSON_REPORT = os.path.join(os.path.dirname(__file__), "BENCH_PR9.json")


def run_engine_cycle(
    graph, probs, *, mode: str, seed: int = 0, theta: int = THETA
) -> dict:
    """One sample→index→cover→remove cycle; returns phase timings."""
    n = graph.num_nodes
    sampler = RRSetSampler(graph, probs, seed=seed)
    pool = RRSetPool(n)

    t0 = time.perf_counter()
    if mode == "blocked":
        sampler.sample_blocked_into(pool, theta)
    else:
        sampler.sample_into(pool, theta)
    t1 = time.perf_counter()

    pilot = pool.prefix_view(PILOT)
    seeds, covered = greedy_max_coverage(pilot, n, SEEDS_TO_PICK)
    t2 = time.perf_counter()

    removed = 0
    for node in seeds:
        removed += pool.remove_covered(node)
    fr = pool.coverage_of_set(seeds)
    t3 = time.perf_counter()

    return {
        "sample+index": t1 - t0,
        "cover": t2 - t1,
        "remove": t3 - t2,
        "total": t3 - t0,
        "covered": covered,
        "removed": removed,
        "memory_mb": pool.memory_bytes() / 1e6,
        "avg_size": pool.average_set_size(),
        "residual_coverage": fr,
    }


def _rows(theta: int = THETA):
    rows = []
    for label, scale in SCALES:
        problem = dblp_like(scale=scale, num_ads=1, seed=13)
        probs = problem.ad_edge_probabilities(0)
        for mode in ("scalar", "blocked"):
            r = run_engine_cycle(problem.graph, probs, mode=mode, theta=theta)
            rows.append(
                [
                    label,
                    problem.num_nodes,
                    mode,
                    r["sample+index"],
                    r["cover"],
                    r["remove"],
                    r["total"],
                    r["memory_mb"],
                ]
            )
    return rows


def run_sharded_pilot(
    problem, *, engine: str, mode: str = "blocked", theta: int = SHARDED_THETA,
    seed: int = 0, transport: str = "auto",
) -> tuple[float, list[tuple[int, np.ndarray, np.ndarray]]]:
    """One TIRM-style pilot phase (θ sets for every ad) through the
    sharded engine; returns the wall-clock and per-shard fingerprints."""
    h = problem.num_ads
    probs = [problem.ad_edge_probabilities(ad) for ad in range(h)]
    with ShardedSamplingEngine(
        problem.graph, probs, seeds=seed, mode=mode, engine=engine,
        transport=transport,
    ) as eng:
        # Warm the worker pool so fork/startup cost is not charged to the
        # timed pilot (the executor is created lazily on first sample).
        eng.sample({ad: 1 for ad in range(h)})
        t0 = time.perf_counter()
        eng.sample({ad: theta for ad in range(h)})
        elapsed = time.perf_counter() - t0
        shards = []
        for ad in range(h):
            view = eng.shard(ad).prefix_view()
            shards.append(
                (eng.shard(ad).num_total, view.members.copy(), view.indptr.copy())
            )
    return elapsed, shards


def _sharded_rows(theta: int = SHARDED_THETA, scale: float = SHARDED_SCALE):
    """Serial vs process pilot phase for h advertisers; the two engines
    must agree set-for-set (the CI smoke asserts exactly this)."""
    problem = dblp_like(scale=scale, num_ads=SHARDED_ADS, seed=13)
    t_serial, shards_serial = run_sharded_pilot(problem, engine="serial", theta=theta)
    t_process, shards_process = run_sharded_pilot(problem, engine="process", theta=theta)
    for (ns, ms, ps), (np_, mp_, pp_) in zip(shards_serial, shards_process):
        assert ns == np_
        assert np.array_equal(ms, mp_)
        assert np.array_equal(ps, pp_)
    speedup = t_serial / t_process if t_process > 0 else float("inf")
    return [
        ["sharded-pilot", problem.num_nodes, "serial", SHARDED_ADS, theta, t_serial, 1.0],
        ["sharded-pilot", problem.num_nodes, "process", SHARDED_ADS, theta, t_process,
         speedup],
    ]


def run_growth_topup(
    problem, *, engine: str, theta: int, chunk_size: int = GROWTH_CHUNK,
    mode: str = "blocked", seed: int = 0,
) -> tuple[float, tuple[int, np.ndarray, np.ndarray]]:
    """One Algorithm-4-style growth event: a *single ad's* θ top-up.

    Under the stateful legacy streams this request shape had no
    parallelism to exploit; the counter-based streams split it into
    ``(ad, chunk)`` tasks, so process mode fans one ad's top-up across
    the worker pool.  Returns the wall-clock and the shard fingerprint.
    """
    probs = [problem.ad_edge_probabilities(0)]
    with ShardedSamplingEngine(
        problem.graph, probs, seeds=seed, mode=mode, engine=engine,
        chunk_size=chunk_size,
    ) as eng:
        # Warm the pool (and the pilot prefix) outside the timed region:
        # both engines advance through the same set indices, so the timed
        # request covers the same index range either way.
        eng.sample({0: 2 * chunk_size})
        t0 = time.perf_counter()
        eng.sample({0: theta})
        elapsed = time.perf_counter() - t0
        view = eng.shard(0).prefix_view()
        fingerprint = (
            eng.shard(0).num_total, view.members.copy(), view.indptr.copy(),
        )
    return elapsed, fingerprint


def _growth_rows(theta: int = GROWTH_THETA, scale: float = SHARDED_SCALE):
    """Serial vs chunked-process single-ad growth top-up; byte-identical
    shards are asserted (the CI smoke runs this at reduced θ)."""
    problem = dblp_like(scale=scale, num_ads=1, seed=13)
    t_serial, fp_serial = run_growth_topup(problem, engine="serial", theta=theta)
    t_process, fp_process = run_growth_topup(problem, engine="process", theta=theta)
    assert fp_serial[0] == fp_process[0]
    assert np.array_equal(fp_serial[1], fp_process[1])
    assert np.array_equal(fp_serial[2], fp_process[2])
    speedup = t_serial / t_process if t_process > 0 else float("inf")
    return [
        ["growth-topup", problem.num_nodes, "serial", 1, theta, t_serial, 1.0],
        ["growth-topup", problem.num_nodes, "process", 1, theta, t_process, speedup],
    ]


def run_backend_blocked(problem, backend, *, theta: int, seed: int = 0):
    """Time one blocked-sampling pass (θ sets, single ad) on ``backend``.

    JIT warmup runs *outside* the timed region — first-call compilation
    is a one-time cost the steady-state throughput figure must not
    carry.  Returns the wall-clock and the packed block fingerprint.
    """
    probs = problem.ad_edge_probabilities(0)
    sampler = RRSetSampler(problem.graph, probs, seed=seed, backend=backend)
    sampler.backend.warmup(problem.graph)
    t0 = time.perf_counter()
    members, lengths = sampler.sample_flat(theta, mode="blocked")
    elapsed = time.perf_counter() - t0
    return elapsed, (members, lengths)


def _backend_rows(theta: int = BACKEND_THETA, scale: float = BACKEND_SCALE):
    """NumPy reference vs numba JIT kernel on the same PCG64 stream: the
    packed blocks must be byte-identical (asserted; the determinism
    contract is backend-invariant), the speedup is reported.

    Without numba installed the comparison falls back to the uncompiled
    kernel (labelled ``numba(py)``) so the byte-equality assertion still
    runs everywhere; the throughput column is then meaningless and the
    ≥2× JIT figure belongs to a bench box with the extra installed.
    """
    problem = dblp_like(scale=scale, num_ads=1, seed=13)
    t_ref, block_ref = run_backend_blocked(problem, NumpyBackend(), theta=theta)
    if numba_available():
        label, alternative = "numba", NumbaBackend()
    else:
        label, alternative = "numba(py)", NumbaBackend(jit=False)
    t_alt, block_alt = run_backend_blocked(problem, alternative, theta=theta)
    assert block_ref[0].tobytes() == block_alt[0].tobytes()
    assert block_ref[1].tobytes() == block_alt[1].tobytes()
    speedup = t_ref / t_alt if t_alt > 0 else float("inf")
    return [
        ["backend-blocked", problem.num_nodes, "numpy", 1, theta, t_ref, 1.0],
        ["backend-blocked", problem.num_nodes, label, 1, theta, t_alt, speedup],
    ]


def _transport_rows(theta: int = TRANSPORT_THETA, scale: float = SHARDED_SCALE):
    """Pickle vs shared-memory transport on the process engine: the
    descriptor path must produce byte-identical shards (asserted) — it
    only changes how the same bytes cross the process boundary."""
    problem = dblp_like(scale=scale, num_ads=SHARDED_ADS, seed=13)
    t_pickle, shards_pickle = run_sharded_pilot(
        problem, engine="process", theta=theta, transport="pickle"
    )
    t_shm, shards_shm = run_sharded_pilot(
        problem, engine="process", theta=theta, transport="shm"
    )
    for (ns, ms, ps), (nh, mh, ph) in zip(shards_pickle, shards_shm):
        assert ns == nh
        assert np.array_equal(ms, mh)
        assert np.array_equal(ps, ph)
    speedup = t_pickle / t_shm if t_shm > 0 else float("inf")
    return [
        ["transport", problem.num_nodes, "pickle", SHARDED_ADS, theta,
         t_pickle, 1.0],
        ["transport", problem.num_nodes, "shm", SHARDED_ADS, theta,
         t_shm, speedup],
    ]


def _prefetch_rows(max_rr_sets: int = PREFETCH_RR_CAP, scale: float = SHARDED_SCALE):
    """TIRM with speculative θ-growth prefetch on vs off: the allocation
    must be identical (asserted) — prefetch only overlaps next-iteration
    sampling with the greedy phase, it never changes which sets exist."""
    problem = dblp_like(scale=scale, num_ads=3, seed=13)

    def run(prefetch: bool) -> tuple[float, object]:
        allocator = TIRMAllocator(
            seed=0, epsilon=0.3, max_rr_sets_per_ad=max_rr_sets,
            engine="process", chunk_size=512, prefetch=prefetch,
        )
        t0 = time.perf_counter()
        result = allocator.allocate(problem)
        return time.perf_counter() - t0, result

    t_off, off = run(False)
    t_on, on = run(True)
    assert on.allocation == off.allocation
    assert on.stats["theta_per_ad"] == off.stats["theta_per_ad"]
    speedup = t_off / t_on if t_on > 0 else float("inf")
    return [
        ["tirm-prefetch", problem.num_nodes, "off", 3, max_rr_sets, t_off, 1.0],
        ["tirm-prefetch", problem.num_nodes, "on", 3, max_rr_sets, t_on, speedup],
    ]


def _shard_cache_rows(
    max_rr_sets: int = SHARD_CACHE_RR_CAP, scale: float = SHARDED_SCALE
):
    """TIRM cold (populating an empty shard cache) vs warm (every block
    served from it): the warm run must perform **zero** sampling-backend
    invocations and allocate byte-identically (both asserted).  The
    speedup is the whole point of the store, but it is *reported*, never
    asserted — on a loaded runner the cold wall-clock is noise."""
    import tempfile

    problem = dblp_like(scale=scale, num_ads=3, seed=13)

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache_dir:

        def run() -> tuple[float, object]:
            allocator = TIRMAllocator(
                seed=0, epsilon=0.3, max_rr_sets_per_ad=max_rr_sets,
                chunk_size=512, cache=cache_dir, dataset="bench-dblp",
            )
            t0 = time.perf_counter()
            result = allocator.allocate(problem)
            return time.perf_counter() - t0, result

        t_cold, cold = run()
        t_warm, warm = run()
    assert cold.stats["backend_invocations"] > 0
    assert warm.stats["backend_invocations"] == 0
    assert warm.stats["cache"]["hits"] > 0
    assert warm.allocation == cold.allocation
    assert np.array_equal(warm.estimated_revenues, cold.estimated_revenues)
    assert warm.stats["theta_per_ad"] == cold.stats["theta_per_ad"]
    speedup = t_cold / t_warm if t_warm > 0 else float("inf")
    return [
        ["shard-cache", problem.num_nodes, "cold", 3, max_rr_sets, t_cold, 1.0],
        ["shard-cache", problem.num_nodes, "warm", 3, max_rr_sets, t_warm, speedup],
    ]


def _service_rows(
    max_rr_sets: int = SERVICE_RR_CAP, scale: float = SHARDED_SCALE
):
    """Allocation-as-a-service: cold submit vs warm resubmit vs
    incremental re-allocation through one job manager's engine pool.

    The warm resubmit must perform **zero** sampling-backend invocations
    yet allocate byte-identically to the cold job; the re-allocation
    (one ad's budget bumped 1.5×) must re-lease the warm engine and
    match a cold batch run of the modified instance.  All equality is
    asserted; the speedups are reported, never asserted."""
    import tempfile

    from repro.service.jobs import JobManager, modified_problem

    problem = dblp_like(scale=scale, num_ads=3, seed=13)
    params = {
        "seed": 0, "epsilon": 0.3, "max_rr_sets_per_ad": max_rr_sets,
        "chunk_size": 512,
    }
    new_budget = float(problem.catalog[0].budget * 1.5)

    with tempfile.TemporaryDirectory(prefix="repro-bench-svc-") as cache_dir:
        with JobManager(cache=cache_dir) as manager:

            def run(submit) -> tuple[float, object, object]:
                t0 = time.perf_counter()
                job = submit()
                result = manager.result(job.job_id)
                return time.perf_counter() - t0, job, result

            t_cold, cold_job, cold = run(
                lambda: manager.submit(problem=problem, params=params)
            )
            t_warm, warm_job, warm = run(
                lambda: manager.submit(problem=problem, params=params)
            )
            t_realloc, realloc_job, realloc = run(
                lambda: manager.reallocate(
                    cold_job.job_id, update_budgets={0: new_budget}
                )
            )
        # Cold batch reference for the modified instance (same cache so
        # the comparison stays hermetic under $REPRO_CACHE).
        reference = TIRMAllocator(cache=cache_dir, **params).allocate(
            modified_problem(problem, update_budgets={0: new_budget})
        )
    assert cold_job.engine_warm is False
    assert warm_job.engine_warm is True
    assert realloc_job.engine_warm is True
    assert warm.stats["backend_invocations"] == 0
    assert warm.allocation == cold.allocation
    assert np.array_equal(warm.estimated_revenues, cold.estimated_revenues)
    assert realloc.allocation == reference.allocation
    assert np.array_equal(
        realloc.estimated_revenues, reference.estimated_revenues
    )
    assert realloc.stats["theta_per_ad"] == reference.stats["theta_per_ad"]
    return [
        ["service", problem.num_nodes, "cold", 3, max_rr_sets, t_cold, 1.0],
        ["service", problem.num_nodes, "warm", 3, max_rr_sets, t_warm,
         t_cold / t_warm if t_warm > 0 else float("inf")],
        ["service", problem.num_nodes, "realloc", 3, max_rr_sets, t_realloc,
         t_cold / t_realloc if t_realloc > 0 else float("inf")],
    ]


_SECTION_COLUMNS = ("phase", "n", "variant", "ads", "theta", "wall_s", "speedup")


def _as_records(rows):
    return [dict(zip(_SECTION_COLUMNS, row)) for row in rows]


def write_json_report(
    path: str = JSON_REPORT,
    *,
    cycle_theta: int = THETA,
    sharded_theta: int = SHARDED_THETA,
    growth_theta: int = GROWTH_THETA,
    transport_theta: int = TRANSPORT_THETA,
    prefetch_rr_cap: int = PREFETCH_RR_CAP,
    shard_cache_rr_cap: int = SHARD_CACHE_RR_CAP,
    service_rr_cap: int = SERVICE_RR_CAP,
) -> dict:
    """Run every section and write a machine-readable report.

    Byte-equality is asserted inside each section builder while it runs,
    so a written report certifies that every variant pair it times was
    also bit-identical.  Speedups are *recorded*, never asserted — on a
    single-core runner they measure scheduler noise, not the engine.
    """
    cycle = []
    for label, scale in SCALES:
        problem = dblp_like(scale=scale, num_ads=1, seed=13)
        probs = problem.ad_edge_probabilities(0)
        for mode in ("scalar", "blocked"):
            r = run_engine_cycle(
                problem.graph, probs, mode=mode, theta=cycle_theta
            )
            cycle.append(
                {"graph": label, "n": problem.num_nodes, "mode": mode, **r}
            )
    report = {
        "benchmark": "rrset_engine",
        "cpu_count": os.cpu_count() or 1,
        "numba": numba_available(),
        "thetas": {
            "engine_cycle": cycle_theta,
            "sharded_pilot": sharded_theta,
            "growth_topup": growth_theta,
            "transport": transport_theta,
            "prefetch_rr_cap": prefetch_rr_cap,
            "shard_cache_rr_cap": shard_cache_rr_cap,
            "service_rr_cap": service_rr_cap,
        },
        "sections": {
            "engine_cycle": cycle,
            "sharded_pilot": _as_records(_sharded_rows(theta=sharded_theta)),
            "growth_topup": _as_records(_growth_rows(theta=growth_theta)),
            "transport": _as_records(_transport_rows(theta=transport_theta)),
            "prefetch": _as_records(_prefetch_rows(max_rr_sets=prefetch_rr_cap)),
            "shard_cache": _as_records(
                _shard_cache_rows(max_rr_sets=shard_cache_rr_cap)
            ),
            "service": _as_records(_service_rows(max_rr_sets=service_rr_cap)),
        },
    }
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def test_rrset_engine_cycle(run_once):
    rows = run_once(_rows)
    print()
    print(
        format_table(
            ["graph", "n", "sampler", "sample+index (s)", "cover (s)",
             "remove (s)", "total (s)", "RR mem (MB)"],
            rows,
            title=f"RR-set engine: θ={THETA}, {SEEDS_TO_PICK} seeds per cycle",
        )
    )
    by_mode = {(r[0], r[2]): r[6] for r in rows}
    for label, _ in SCALES:
        # the blocked path must never lose badly to the scalar one
        assert by_mode[(label, "blocked")] <= by_mode[(label, "scalar")] * 1.5
    # sanity: every phase completed with data flowing through the pool
    assert all(r[7] > 0 for r in rows)


def test_sharded_engine_smoke(run_once):
    """Serial vs process sharded pilot must agree set-for-set.

    This is the CI smoke: a sub-30-second pilot phase at reduced θ whose
    per-shard members/indptr blocks are asserted identical inside
    ``_sharded_rows``.  Speedup is *reported*, never asserted, here: at
    smoke scale the workload is tens of milliseconds, so wall-clock
    ratios measure scheduler noise, not the engine (and a single-core
    runner cannot express a speedup at all).  The ≥2× multi-core figure
    belongs to the full-θ standalone run on a quiet bench box.
    """
    rows = run_once(_sharded_rows, theta=1_000)
    print()
    print(
        format_table(
            ["phase", "n", "engine", "ads", "theta/ad", "wall (s)", "speedup"],
            rows,
            title=f"Sharded pilot phase: h={SHARDED_ADS} advertisers "
                  f"({os.cpu_count() or 1} cores visible)",
        )
    )


def test_growth_topup_smoke(run_once):
    """Single-ad chunked growth: serial vs process must agree byte-for-
    byte (asserted inside ``_growth_rows``).

    Like the sharded smoke, the speedup is *reported*, never asserted:
    at smoke θ the workload is milliseconds and a single-core runner
    cannot express one.  The multi-core figure belongs to the full-θ
    standalone run — the point of the section is that the growth phase,
    which bypassed the pool entirely before counter-based streams, now
    scales with workers at all.
    """
    rows = run_once(_growth_rows, theta=2_000)
    print()
    print(
        format_table(
            ["phase", "n", "engine", "ads", "theta", "wall (s)", "speedup"],
            rows,
            title=f"Single-ad growth top-up, chunk={GROWTH_CHUNK} "
                  f"({os.cpu_count() or 1} cores visible)",
        )
    )


def test_backend_comparison_smoke(run_once):
    """NumPy vs numba backend on the same stream: byte-equality is
    asserted inside ``_backend_rows`` at reduced θ.

    The speedup is *reported*, never asserted, here: the smoke runs at
    tiny θ (and falls back to the uncompiled kernel without numba, where
    the column measures interpreter overhead, not the JIT).  The ≥2×
    figure belongs to the full-θ standalone run with the numba extra
    installed.
    """
    theta = 2_000 if numba_available() else 400
    rows = run_once(_backend_rows, theta=theta)
    print()
    print(
        format_table(
            ["phase", "n", "backend", "ads", "theta", "wall (s)", "speedup"],
            rows,
            title="Blocked-sampling backends (byte-equality asserted; "
                  f"numba installed: {numba_available()})",
        )
    )


def test_transport_comparison_smoke(run_once):
    """Pickle vs shm transport must agree set-for-set (asserted inside
    ``_transport_rows``); the speedup is reported, never asserted — at
    smoke θ on a single-core runner it measures noise."""
    rows = run_once(_transport_rows, theta=1_000)
    print()
    print(
        format_table(
            ["phase", "n", "transport", "ads", "theta/ad", "wall (s)", "speedup"],
            rows,
            title=f"Worker transport: pickle vs shared-memory descriptors "
                  f"({os.cpu_count() or 1} cores visible)",
        )
    )


def test_prefetch_smoke(run_once):
    """TIRM prefetch on vs off must allocate identically (asserted in
    ``_prefetch_rows``); the overlap win is reported, never asserted."""
    rows = run_once(_prefetch_rows, max_rr_sets=1_500)
    print()
    print(
        format_table(
            ["phase", "n", "prefetch", "ads", "rr cap", "wall (s)", "speedup"],
            rows,
            title=f"TIRM speculative θ-growth prefetch "
                  f"({os.cpu_count() or 1} cores visible)",
        )
    )


def test_shard_cache_smoke(run_once):
    """Cold vs warm TIRM through the shard cache: the warm run must
    perform zero backend invocations and allocate identically (both
    asserted inside ``_shard_cache_rows``); the speedup is reported,
    never asserted."""
    rows = run_once(_shard_cache_rows, max_rr_sets=1_500)
    print()
    print(
        format_table(
            ["phase", "n", "run", "ads", "rr cap", "wall (s)", "speedup"],
            rows,
            title="Shard cache: cold populate vs warm zero-sampling rerun",
        )
    )


def test_service_smoke(run_once):
    """Cold submit vs warm resubmit vs incremental re-allocation through
    the service's engine pool: zero warm backend invocations and byte-
    equality vs the cold batch references (all asserted inside
    ``_service_rows``); the speedups are reported, never asserted."""
    rows = run_once(_service_rows, max_rr_sets=1_500)
    print()
    print(
        format_table(
            ["phase", "n", "job", "ads", "rr cap", "wall (s)", "speedup"],
            rows,
            title="Allocation service: cold vs warm vs incremental realloc",
        )
    )


def test_json_report_smoke(tmp_path):
    """``--json`` artifact: every section present, rows well-formed."""
    path = str(tmp_path / "BENCH_PR9.json")
    report = write_json_report(
        path,
        cycle_theta=500,
        sharded_theta=300,
        growth_theta=1_000,
        transport_theta=300,
        prefetch_rr_cap=1_000,
        shard_cache_rr_cap=1_000,
        service_rr_cap=1_000,
    )
    with open(path) as handle:
        on_disk = json.load(handle)
    assert on_disk == report
    sections = on_disk["sections"]
    assert set(sections) == {
        "engine_cycle", "sharded_pilot", "growth_topup", "transport",
        "prefetch", "shard_cache", "service",
    }
    assert {row["variant"] for row in sections["service"]} == {
        "cold", "warm", "realloc",
    }
    assert {row["variant"] for row in sections["transport"]} == {"pickle", "shm"}
    assert {row["variant"] for row in sections["prefetch"]} == {"on", "off"}
    assert {row["variant"] for row in sections["shard_cache"]} == {"cold", "warm"}
    assert all(row["wall_s"] >= 0 for row in sections["transport"])
    assert all(r["total"] > 0 for r in sections["engine_cycle"])


def test_report_recorded_to_catalog(tmp_path):
    """With a cache configured, the section rows land in the catalog's
    benchmark history (``repro ls --benchmarks`` reads them back)."""
    from repro.store.catalog import ExperimentCatalog

    report = {
        "sections": {
            "engine_cycle": [{"total": 1.0}],
            "shard_cache": _as_records(
                [["shard-cache", 100, "warm", 3, 500, 0.1, 4.0]]
            ),
        },
    }
    record_report_to_catalog(report, str(tmp_path), "BENCH_PR9.json")
    with ExperimentCatalog(str(tmp_path)) as catalog:
        (row,) = catalog.list_benchmarks()
    assert row["phase"] == "shard-cache"
    assert row["report"] == "BENCH_PR9.json"


def record_report_to_catalog(report: dict, cache_dir: str, report_name: str) -> None:
    """Append every timed section row to ``cache_dir``'s experiment
    catalog (``benchmarks`` table) so ``repro ls --benchmarks`` tracks
    bench history next to the allocations that share the cache."""
    from repro.store.catalog import ExperimentCatalog

    rows = [
        row
        for name, section in report["sections"].items()
        if name != "engine_cycle"
        for row in section
    ]
    with ExperimentCatalog(cache_dir) as catalog:
        catalog.record_benchmarks(rows, report=report_name)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json", nargs="?", const=JSON_REPORT, default=None, metavar="PATH",
        help=f"write a machine-readable report (default: {JSON_REPORT})",
    )
    parser.add_argument(
        "--cache", default=os.environ.get("REPRO_CACHE") or None, metavar="DIR",
        help="record the report's section rows in this cache directory's "
             "experiment catalog (default: $REPRO_CACHE when set)",
    )
    cli_args = parser.parse_args()
    if cli_args.json:
        report = write_json_report(cli_args.json)
        if cli_args.cache:
            record_report_to_catalog(
                report, cli_args.cache, os.path.basename(cli_args.json)
            )
            print(f"benchmark rows recorded in catalog at {cli_args.cache}")
        for name, rows in report["sections"].items():
            if name == "engine_cycle":
                continue
            for row in rows:
                print(
                    f"{row['phase']:15s} n={row['n']:7d} "
                    f"{row['variant']:8s} wall={row['wall_s']:7.3f}s "
                    f"speedup={row['speedup']:5.2f}x"
                )
        print(f"report written to {cli_args.json}")
        raise SystemExit(0)
    for row in _rows():
        label, n, mode, si, cov, rem, tot, mem = row
        print(
            f"{label:10s} n={n:7d} {mode:8s} sample+index={si:7.3f}s "
            f"cover={cov:6.3f}s remove={rem:6.3f}s total={tot:7.3f}s "
            f"mem={mem:7.2f}MB"
        )
    for row in _sharded_rows():
        label, n, engine, ads, theta, wall, speedup = row
        print(
            f"{label:13s} n={n:7d} {engine:8s} h={ads} theta={theta} "
            f"wall={wall:7.3f}s speedup={speedup:5.2f}x"
        )
    for row in _growth_rows():
        label, n, engine, ads, theta, wall, speedup = row
        print(
            f"{label:13s} n={n:7d} {engine:8s} h={ads} theta={theta} "
            f"wall={wall:7.3f}s speedup={speedup:5.2f}x"
        )
    if numba_available():
        for row in _backend_rows():
            label, n, backend, ads, theta, wall, speedup = row
            print(
                f"{label:15s} n={n:7d} {backend:9s} theta={theta} "
                f"wall={wall:7.3f}s speedup={speedup:5.2f}x"
            )
    else:
        print(
            "backend-blocked: numba not installed — JIT comparison skipped "
            "(pip install numba; byte-equality of the kernel is still "
            "covered by the smoke test and tests/rrset/test_backends.py)"
        )
    for row in _transport_rows():
        label, n, transport, ads, theta, wall, speedup = row
        print(
            f"{label:13s} n={n:7d} {transport:8s} h={ads} theta={theta} "
            f"wall={wall:7.3f}s speedup={speedup:5.2f}x"
        )
    for row in _prefetch_rows():
        label, n, prefetch, ads, cap, wall, speedup = row
        print(
            f"{label:13s} n={n:7d} {prefetch:8s} h={ads} rr_cap={cap} "
            f"wall={wall:7.3f}s speedup={speedup:5.2f}x"
        )
    for row in _shard_cache_rows():
        label, n, variant, ads, cap, wall, speedup = row
        print(
            f"{label:13s} n={n:7d} {variant:8s} h={ads} rr_cap={cap} "
            f"wall={wall:7.3f}s speedup={speedup:5.2f}x"
        )
    for row in _service_rows():
        label, n, variant, ads, cap, wall, speedup = row
        print(
            f"{label:13s} n={n:7d} {variant:8s} h={ads} rr_cap={cap} "
            f"wall={wall:7.3f}s speedup={speedup:5.2f}x"
        )
