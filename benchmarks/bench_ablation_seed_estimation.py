"""AB2 — ablation: TIRM's iterative seed-size estimation vs fixed-s TIM.

TIM needs the seed count as input; budgets don't reveal it (§5.2).  We
run TIRM (which discovers the count while allocating) and then give the
*discovered* count to a fixed-s TIM + budget-blind allocation; TIRM
matches or beats the oracle-assisted TIM on regret, showing the
iterative estimation loses nothing — and without it the count would
simply be unknown.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import EVAL_RUNS, MAX_RR_SETS
from repro.advertising.allocation import Allocation
from repro.algorithms.tirm import TIRMAllocator
from repro.datasets.synthetic import flixster_like
from repro.evaluation.evaluator import RegretEvaluator
from repro.evaluation.reporting import format_table
from repro.rrset.tim import TIMInfluenceMaximizer


def test_iterative_estimation_vs_fixed_s_tim(run_once):
    problem = flixster_like(scale=0.01, num_ads=3, seed=7)

    def experiment():
        tirm_result = TIRMAllocator(seed=0, max_rr_sets_per_ad=MAX_RR_SETS).allocate(
            problem
        )
        seed_counts = tirm_result.allocation.seed_counts()
        # Oracle-assisted baseline: run classic TIM per ad with TIRM's
        # final seed counts (information TIM cannot know by itself),
        # ignoring budgets during selection.
        tim_allocation = Allocation(problem.num_ads, problem.num_nodes)
        taken = np.zeros(problem.num_nodes, dtype=np.int64)
        for ad in range(problem.num_ads):
            k = max(int(seed_counts[ad]), 1)
            tim = TIMInfluenceMaximizer(
                problem.graph,
                problem.ad_edge_probabilities(ad),
                epsilon=0.2,
                max_rr_sets=MAX_RR_SETS,
                seed=10 + ad,
            )
            for node in tim.select(k).seeds:
                if taken[node] < problem.attention[node]:
                    tim_allocation.assign(node, ad)
                    taken[node] += 1
        evaluator = RegretEvaluator(problem, num_runs=EVAL_RUNS, seed=109)
        return (
            seed_counts,
            evaluator.evaluate(tirm_result.allocation, algorithm="TIRM"),
            evaluator.evaluate(tim_allocation, algorithm="fixed-s TIM"),
        )

    seed_counts, tirm_report, tim_report = run_once(experiment)
    print()
    print(format_table(
        ["allocator", "total regret", "relative"],
        [
            ["TIRM (iterative s)", tirm_report.total_regret,
             tirm_report.regret.relative_to_budget()],
            ["TIM (oracle s)", tim_report.total_regret,
             tim_report.regret.relative_to_budget()],
        ],
        title=f"AB2: seed counts discovered by TIRM = {seed_counts.tolist()}",
    ))
    # TIRM must be competitive with the oracle-assisted TIM baseline.
    assert tirm_report.total_regret <= tim_report.total_regret * 1.2
