"""F3 — Fig. 3: total regret vs. attention bound κ.

Paper (Flixster, λ=0, κ=1): TIRM 2.5%, Greedy-IRIE 26.1%, Myopic 122%,
Myopic+ 141% of total budget; TIRM's regret falls (or stays flat) as κ
grows while the Myopics' rises; the hierarchy TIRM < IRIE ≪ Myopic(+)
holds everywhere.  We check the same orderings and trends at 1/100th
scale (κ ∈ {1, 3, 5}, λ ∈ {0, 0.5}).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    EPINIONS_SCALE,
    EVAL_RUNS,
    FLIXSTER_SCALE,
    quality_allocators,
)
from repro.datasets.synthetic import epinions_like, flixster_like
from repro.evaluation.experiments import sweep_attention_bounds
from repro.evaluation.reporting import format_records

KAPPAS = (1, 3, 5)


def _factory(dataset, penalty):
    if dataset == "flixster":
        return lambda kappa: flixster_like(
            scale=FLIXSTER_SCALE, attention_bound=kappa, penalty=penalty, seed=7
        )
    return lambda kappa: epinions_like(
        scale=EPINIONS_SCALE, attention_bound=kappa, penalty=penalty, seed=11
    )


@pytest.mark.parametrize("dataset", ["flixster", "epinions"])
@pytest.mark.parametrize("penalty", [0.0, 0.5])
def test_fig3_total_regret_vs_attention(run_once, dataset, penalty):
    records = run_once(
        sweep_attention_bounds,
        f"fig3-{dataset}-lambda{penalty}",
        _factory(dataset, penalty),
        quality_allocators(),
        KAPPAS,
        eval_runs=EVAL_RUNS,
        eval_seed=99,
    )
    print()
    print(format_records(
        records,
        title=f"Fig. 3 ({dataset}, lambda={penalty}): total regret vs kappa",
    ))

    by_cell = {(r.parameters["kappa"], r.algorithm): r.total_regret for r in records}
    for kappa in KAPPAS:
        # the paper's hierarchy: TIRM beats both Myopics everywhere...
        assert by_cell[(kappa, "TIRM")] < by_cell[(kappa, "Myopic")]
        assert by_cell[(kappa, "TIRM")] < by_cell[(kappa, "Myopic+")]
        # ...and IRIE beats plain Myopic.
        assert by_cell[(kappa, "IRIE")] < by_cell[(kappa, "Myopic")]
    # Myopic's regret rises with kappa (more seeds, more overshoot).
    assert by_cell[(KAPPAS[-1], "Myopic")] >= by_cell[(KAPPAS[0], "Myopic")]
