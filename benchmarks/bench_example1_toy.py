"""EX1 — Figure 1 / Examples 1–2: the toy gadget numbers.

Paper: Allocation A yields ≈5.55 expected clicks and regret 6.6 (λ=0) /
7.2 (λ=0.1); Allocation B yields ≈6.3 clicks and regret 2.7 / 3.3.
Our exact enumerator reproduces all of them (±0.06, the paper's own
rounding / independence slack).
"""

from __future__ import annotations

import pytest

from repro.advertising.regret import allocation_regret
from repro.datasets.toy import (
    PAPER_EXPECTED_CLICKS_A,
    PAPER_EXPECTED_CLICKS_B,
    PAPER_REGRET_A_LAMBDA0,
    PAPER_REGRET_A_LAMBDA01,
    PAPER_REGRET_B_LAMBDA0,
    PAPER_REGRET_B_LAMBDA01,
    figure1_allocation_a,
    figure1_allocation_b,
    figure1_problem,
)
from repro.diffusion.exact import exact_spread
from repro.evaluation.reporting import format_table


def _revenues(problem, allocation):
    return [
        exact_spread(
            problem.graph,
            problem.ad_edge_probabilities(ad),
            allocation.seed_array(ad),
            ctps=problem.ad_ctps(ad),
        )
        * problem.catalog[ad].cpe
        for ad in range(problem.num_ads)
    ]


def test_example1_exact_reproduction(run_once):
    problem = figure1_problem()
    alloc_a, alloc_b = figure1_allocation_a(), figure1_allocation_b()

    def experiment():
        return _revenues(problem, alloc_a), _revenues(problem, alloc_b)

    revenues_a, revenues_b = run_once(experiment)

    clicks_a, clicks_b = sum(revenues_a), sum(revenues_b)
    budgets = problem.catalog.budgets()
    rows = []
    for lam, paper_a, paper_b in (
        (0.0, PAPER_REGRET_A_LAMBDA0, PAPER_REGRET_B_LAMBDA0),
        (0.1, PAPER_REGRET_A_LAMBDA01, PAPER_REGRET_B_LAMBDA01),
    ):
        regret_a = allocation_regret(revenues_a, budgets, alloc_a.seed_counts(), lam).total
        regret_b = allocation_regret(revenues_b, budgets, alloc_b.seed_counts(), lam).total
        rows.append([lam, regret_a, paper_a, regret_b, paper_b])
        assert regret_a == pytest.approx(paper_a, abs=0.06)
        assert regret_b == pytest.approx(paper_b, abs=0.06)

    print()
    print(format_table(
        ["clicks", "measured", "paper"],
        [["A", clicks_a, PAPER_EXPECTED_CLICKS_A], ["B", clicks_b, PAPER_EXPECTED_CLICKS_B]],
        title="EX1 expected clicks",
    ))
    print(format_table(
        ["lambda", "regret A", "paper A", "regret B", "paper B"],
        rows,
        title="EX1 regrets",
    ))
    assert clicks_a == pytest.approx(PAPER_EXPECTED_CLICKS_A, abs=0.05)
    assert clicks_b == pytest.approx(PAPER_EXPECTED_CLICKS_B, abs=0.05)
    assert clicks_b > clicks_a  # virality-aware allocation wins
