"""Theorem 2/3/4 bounds."""

import numpy as np
import pytest

from repro.algorithms.bounds import (
    compute_bounds,
    theorem2_bound,
    theorem3_bound,
    theorem4_bound,
)
from repro.datasets.toy import figure1_problem


class TestTheorem4:
    def test_meets_theorem3_at_two_thirds(self):
        """The paper notes p_max/2 and 1 − p_max meet at 1/3 when
        p_max = 2/3."""
        assert theorem4_bound(2.0 / 3.0, 9.0) == pytest.approx(theorem3_bound(9.0))

    def test_small_pmax_tightens(self):
        assert theorem4_bound(0.1, 100.0) == pytest.approx(5.0)

    def test_large_pmax_uses_other_branch(self):
        assert theorem4_bound(0.9, 100.0) == pytest.approx(10.0)

    def test_validates_pmax(self):
        with pytest.raises(ValueError):
            theorem4_bound(0.0, 10.0)
        with pytest.raises(ValueError):
            theorem4_bound(1.0, 10.0)


class TestTheorem2:
    def test_lambda_zero_reduces_to_half_sum(self):
        bound = theorem2_bound([10.0, 20.0], [0.2, 0.1], 0.0, [5, 5])
        assert bound == pytest.approx((0.2 * 10 + 0.1 * 20) / 2.0)

    def test_positive_lambda_adds_seed_term(self):
        without = theorem2_bound([10.0], [0.4], 0.0, [3])
        with_pen = theorem2_bound([10.0], [0.4], 0.1, [3])
        assert with_pen > without

    def test_violated_assumption_gives_inf(self):
        # p/2 - λ/(2B) <= 0  ->  inf
        assert theorem2_bound([10.0], [0.01], 1.0, [3]) == float("inf")

    def test_misaligned_shapes(self):
        with pytest.raises(ValueError):
            theorem2_bound([1.0, 2.0], [0.1], 0.0, [1, 2])

    def test_negative_penalty(self):
        with pytest.raises(ValueError):
            theorem2_bound([1.0], [0.1], -0.1, [1])


class TestComputeBounds:
    def test_on_figure1(self):
        problem = figure1_problem()
        bounds = compute_bounds(problem, rr_sets_per_ad=4_000, seed=1)
        assert bounds.p_values.shape == (4,)
        assert np.all(bounds.p_values > 0)
        assert bounds.total_budget == pytest.approx(9.0)
        assert bounds.theorem3 == pytest.approx(3.0)
        # Ad d (budget 1, δ=0.6) can overshoot with a single seed, so the
        # gadget violates the p_i < 1 assumption: theorem4 must refuse.
        assert not bounds.theorem4_applicable
        with pytest.raises(ValueError):
            _ = bounds.theorem4

    def test_theorem4_applicable_on_big_budget_variant(self):
        """Scaling all budgets up by 4x brings every p_i below 1."""
        from repro.advertising.advertiser import Advertiser
        from repro.advertising.catalog import AdCatalog
        from repro.advertising.problem import AdAllocationProblem

        base = figure1_problem()
        catalog = AdCatalog(
            [
                Advertiser(name=ad.name, budget=ad.budget * 4, cpe=ad.cpe)
                for ad in base.catalog
            ]
        )
        problem = AdAllocationProblem(
            base.graph, catalog, base.edge_probabilities, base.ctps, base.attention
        )
        bounds = compute_bounds(problem, rr_sets_per_ad=4_000, seed=1)
        assert bounds.theorem4_applicable
        assert 0 < bounds.theorem4 <= bounds.theorem3 + 1e-9

    def test_s_opt_reasonable(self):
        """Ad a (budget 4): a handful of seeds suffice on the gadget."""
        problem = figure1_problem()
        bounds = compute_bounds(problem, rr_sets_per_ad=4_000, seed=2)
        assert 1 <= bounds.s_opt_values[0] <= 6

    def test_validates_rr_sets(self):
        with pytest.raises(ValueError):
            compute_bounds(figure1_problem(), rr_sets_per_ad=0)
