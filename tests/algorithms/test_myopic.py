"""Myopic and Myopic+ baselines."""

import numpy as np
import pytest

from repro.advertising.attention import AttentionBounds
from repro.algorithms.myopic import MyopicAllocator, MyopicPlusAllocator
from repro.datasets.toy import figure1_problem


class TestMyopic:
    def test_reproduces_allocation_a_on_figure1(self):
        """On the Fig.-1 gadget Myopic gives exactly Allocation A: every
        user gets ad a (highest δ·cpe)."""
        problem = figure1_problem()
        result = MyopicAllocator().allocate(problem)
        assert result.allocation.seeds(0) == {0, 1, 2, 3, 4, 5}
        for ad in (1, 2, 3):
            assert result.allocation.seeds(ad) == frozenset()

    def test_targets_every_user(self, two_ad_problem):
        result = MyopicAllocator().allocate(two_ad_problem)
        assert len(result.allocation.targeted_users()) == two_ad_problem.num_nodes

    def test_respects_attention(self, two_ad_problem):
        result = MyopicAllocator().allocate(two_ad_problem)
        assert result.allocation.is_valid(two_ad_problem.attention)

    def test_higher_kappa_assigns_more(self, two_ad_problem):
        one = MyopicAllocator().allocate(two_ad_problem)
        two = MyopicAllocator().allocate(
            two_ad_problem.with_attention(AttentionBounds.uniform(4, 2))
        )
        assert two.allocation.total_seeds() > one.allocation.total_seeds()

    def test_kappa_capped_by_num_ads(self, two_ad_problem):
        problem = two_ad_problem.with_attention(AttentionBounds.uniform(4, 99))
        result = MyopicAllocator().allocate(problem)
        # at most h = 2 ads per user even with huge attention
        assert result.allocation.user_assignment_counts().max() <= 2

    def test_estimates_are_no_network(self, two_ad_problem):
        result = MyopicAllocator().allocate(two_ad_problem)
        for ad in range(2):
            seeds = result.allocation.seed_array(ad)
            expected = two_ad_problem.expected_seed_revenue(ad)[seeds].sum()
            assert result.estimated_revenues[ad] == pytest.approx(expected)


class TestMyopicPlus:
    def test_stops_at_budget(self):
        problem = figure1_problem()
        result = MyopicPlusAllocator().allocate(problem)
        # each ad's no-network revenue estimate must not exceed budget by
        # more than one seed's worth
        budgets = problem.catalog.budgets()
        cpes = problem.catalog.cpes()
        for ad in range(problem.num_ads):
            max_step = problem.ctps[ad].max() * cpes[ad]
            assert result.estimated_revenues[ad] <= budgets[ad] + max_step + 1e-9

    def test_targets_fewer_than_myopic_under_loose_attention(self):
        problem = figure1_problem().with_attention(AttentionBounds.uniform(6, 4))
        myopic = MyopicAllocator().allocate(problem)
        plus = MyopicPlusAllocator().allocate(problem)
        assert plus.allocation.total_seeds() <= myopic.allocation.total_seeds()

    def test_respects_attention(self, two_ad_problem):
        result = MyopicPlusAllocator().allocate(two_ad_problem)
        assert result.allocation.is_valid(two_ad_problem.attention)

    def test_ranks_users_by_ctp(self):
        """With a single ad and budget for ~2 seeds, the two highest-CTP
        users must be picked."""
        import numpy as np

        from repro.advertising.advertiser import Advertiser
        from repro.advertising.catalog import AdCatalog
        from repro.advertising.problem import AdAllocationProblem
        from repro.graph.generators import cycle_graph

        graph = cycle_graph(5)
        catalog = AdCatalog([Advertiser(name="a", budget=1.5, cpe=1.0)])
        ctps = np.asarray([[0.1, 0.9, 0.2, 0.8, 0.3]])
        problem = AdAllocationProblem(
            graph,
            catalog,
            np.zeros((1, 5)),
            ctps,
            AttentionBounds.uniform(5, 1),
        )
        result = MyopicPlusAllocator().allocate(problem)
        assert result.allocation.seeds(0) == {1, 3}
