"""TIRM (Algorithms 2–4)."""

import numpy as np
import pytest

from repro.advertising.advertiser import Advertiser
from repro.advertising.attention import AttentionBounds
from repro.advertising.catalog import AdCatalog
from repro.advertising.problem import AdAllocationProblem
from repro.algorithms.tirm import TIRMAllocator
from repro.datasets.toy import figure1_problem
from repro.errors import ConfigurationError
from repro.evaluation.evaluator import RegretEvaluator
from repro.graph.generators import erdos_renyi, star_graph
from repro.graph.probabilities import constant_probabilities


def tirm(**kwargs):
    defaults = dict(seed=0, initial_pilot=500, max_rr_sets_per_ad=8_000)
    defaults.update(kwargs)
    return TIRMAllocator(**defaults)


class TestConfiguration:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epsilon": 0.0},
            {"epsilon": 1.0},
            {"ell": 0.0},
            {"select_rule": "banana"},
            {"min_rr_sets_per_ad": 0},
            {"min_rr_sets_per_ad": 10, "max_rr_sets_per_ad": 5},
        ],
    )
    def test_rejects_bad_params(self, kwargs):
        with pytest.raises(ConfigurationError):
            TIRMAllocator(**kwargs)


class TestToyBehaviour:
    def test_beats_myopic_on_figure1(self):
        from repro.algorithms.myopic import MyopicAllocator

        problem = figure1_problem()
        evaluator = RegretEvaluator(problem, num_runs=2_000, seed=9)
        tirm_report = evaluator.evaluate(tirm().allocate(problem).allocation)
        myopic_report = evaluator.evaluate(MyopicAllocator().allocate(problem).allocation)
        assert tirm_report.total_regret < myopic_report.total_regret

    def test_valid_allocation(self):
        problem = figure1_problem()
        result = tirm().allocate(problem)
        assert result.allocation.is_valid(problem.attention)

    def test_deterministic_under_seed(self):
        problem = figure1_problem()
        a = tirm(seed=5).allocate(problem)
        b = tirm(seed=5).allocate(problem)
        assert a.allocation == b.allocation
        assert np.allclose(a.estimated_revenues, b.estimated_revenues)

    def test_stats_shape(self):
        problem = figure1_problem()
        result = tirm().allocate(problem)
        assert len(result.stats["theta_per_ad"]) == problem.num_ads
        assert result.stats["total_rr_sets"] >= problem.num_ads * 500
        assert result.stats["rr_memory_bytes"] > 0

    def test_coverage_rule_runs(self):
        problem = figure1_problem()
        result = tirm(select_rule="coverage").allocate(problem)
        assert result.allocation.is_valid(problem.attention)


class TestBudgetTracking:
    def test_internal_estimates_near_budgets_when_feasible(self):
        """On a graph with plenty of independent nodes and CTP 1, TIRM's
        internal revenue estimates should land within one marginal gain
        of each budget."""
        graph = erdos_renyi(120, 0.01, seed=3)
        catalog = AdCatalog(
            [Advertiser(name=f"a{i}", budget=8.0, cpe=1.0) for i in range(2)]
        )
        problem = AdAllocationProblem(
            graph,
            catalog,
            constant_probabilities(graph, 0.05),
            1.0,
            AttentionBounds.uniform(120, 2),
        )
        result = tirm().allocate(problem)
        for ad in range(2):
            assert result.estimated_revenues[ad] == pytest.approx(8.0, abs=2.5)

    def test_seed_size_estimates_grow(self):
        graph = erdos_renyi(120, 0.01, seed=4)
        catalog = AdCatalog([Advertiser(name="a", budget=10.0, cpe=1.0)])
        problem = AdAllocationProblem(
            graph,
            catalog,
            constant_probabilities(graph, 0.02),
            1.0,
            AttentionBounds.uniform(120, 1),
        )
        result = tirm().allocate(problem)
        # ~10 seeds needed; s must have been revised beyond its initial 1
        assert result.stats["seed_size_estimates"][0] > 1
        assert result.allocation.seed_counts()[0] >= 5

    def test_hub_not_picked_when_it_overshoots(self):
        """Star hub has spread 21 but budget is 2: TIRM must prefer
        leaves (spread 1 each) to the hub."""
        graph = star_graph(20)
        catalog = AdCatalog([Advertiser(name="a", budget=2.0, cpe=1.0)])
        problem = AdAllocationProblem(
            graph,
            catalog,
            constant_probabilities(graph, 1.0),
            1.0,
            AttentionBounds.uniform(21, 1),
        )
        result = tirm().allocate(problem)
        assert 0 not in result.allocation.seeds(0)
        assert result.estimated_regret().total < 1.0


class TestPenalty:
    def test_penalty_reduces_seed_usage(self):
        problem = figure1_problem()
        free = tirm().allocate(problem)
        taxed = tirm().allocate(problem.with_penalty(0.5))
        assert taxed.allocation.total_seeds() <= free.allocation.total_seeds()


class TestAttention:
    def test_attention_bound_shared_across_ads(self):
        """With κ=1 a user can serve only one ad even if both want it."""
        graph = star_graph(6)
        catalog = AdCatalog(
            [
                Advertiser(name="a", budget=6.0, cpe=1.0),
                Advertiser(name="b", budget=6.0, cpe=1.0),
            ]
        )
        problem = AdAllocationProblem(
            graph,
            catalog,
            constant_probabilities(graph, 1.0),
            1.0,
            AttentionBounds.uniform(7, 1),
        )
        result = tirm().allocate(problem)
        assert result.allocation.is_valid(problem.attention)
        # the hub (spread 7 > budget...) — regardless of who gets what,
        # no user may appear in both seed sets
        overlap = result.allocation.seeds(0) & result.allocation.seeds(1)
        assert overlap == frozenset()
