"""TIRM (Algorithms 2–4)."""

import numpy as np
import pytest

from repro.advertising.advertiser import Advertiser
from repro.advertising.attention import AttentionBounds
from repro.advertising.catalog import AdCatalog
from repro.advertising.problem import AdAllocationProblem
from repro.algorithms.tirm import TIRMAllocator
from repro.datasets.toy import figure1_problem
from repro.errors import ConfigurationError
from repro.graph.digraph import DirectedGraph
from repro.evaluation.evaluator import RegretEvaluator
from repro.graph.generators import erdos_renyi, star_graph
from repro.graph.probabilities import constant_probabilities


def tirm(**kwargs):
    defaults = dict(seed=0, initial_pilot=500, max_rr_sets_per_ad=8_000)
    defaults.update(kwargs)
    return TIRMAllocator(**defaults)


class TestConfiguration:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epsilon": 0.0},
            {"epsilon": 1.0},
            {"ell": 0.0},
            {"select_rule": "banana"},
            {"min_rr_sets_per_ad": 0},
            {"min_rr_sets_per_ad": 10, "max_rr_sets_per_ad": 5},
        ],
    )
    def test_rejects_bad_params(self, kwargs):
        with pytest.raises(ConfigurationError):
            TIRMAllocator(**kwargs)


class TestToyBehaviour:
    def test_beats_myopic_on_figure1(self):
        from repro.algorithms.myopic import MyopicAllocator

        problem = figure1_problem()
        evaluator = RegretEvaluator(problem, num_runs=2_000, seed=9)
        tirm_report = evaluator.evaluate(tirm().allocate(problem).allocation)
        myopic_report = evaluator.evaluate(MyopicAllocator().allocate(problem).allocation)
        assert tirm_report.total_regret < myopic_report.total_regret

    def test_valid_allocation(self):
        problem = figure1_problem()
        result = tirm().allocate(problem)
        assert result.allocation.is_valid(problem.attention)

    def test_deterministic_under_seed(self):
        problem = figure1_problem()
        a = tirm(seed=5).allocate(problem)
        b = tirm(seed=5).allocate(problem)
        assert a.allocation == b.allocation
        assert np.allclose(a.estimated_revenues, b.estimated_revenues)

    def test_stats_shape(self):
        problem = figure1_problem()
        result = tirm().allocate(problem)
        assert len(result.stats["theta_per_ad"]) == problem.num_ads
        assert result.stats["total_rr_sets"] >= problem.num_ads * 500
        assert result.stats["rr_memory_bytes"] > 0

    def test_coverage_rule_runs(self):
        problem = figure1_problem()
        result = tirm(select_rule="coverage").allocate(problem)
        assert result.allocation.is_valid(problem.attention)


class TestBudgetTracking:
    def test_internal_estimates_near_budgets_when_feasible(self):
        """On a graph with plenty of independent nodes and CTP 1, TIRM's
        internal revenue estimates should land within one marginal gain
        of each budget."""
        graph = erdos_renyi(120, 0.01, seed=3)
        catalog = AdCatalog(
            [Advertiser(name=f"a{i}", budget=8.0, cpe=1.0) for i in range(2)]
        )
        problem = AdAllocationProblem(
            graph,
            catalog,
            constant_probabilities(graph, 0.05),
            1.0,
            AttentionBounds.uniform(120, 2),
        )
        result = tirm().allocate(problem)
        for ad in range(2):
            assert result.estimated_revenues[ad] == pytest.approx(8.0, abs=2.5)

    def test_seed_size_estimates_grow(self):
        graph = erdos_renyi(120, 0.01, seed=4)
        catalog = AdCatalog([Advertiser(name="a", budget=10.0, cpe=1.0)])
        problem = AdAllocationProblem(
            graph,
            catalog,
            constant_probabilities(graph, 0.02),
            1.0,
            AttentionBounds.uniform(120, 1),
        )
        result = tirm().allocate(problem)
        # ~10 seeds needed; s must have been revised beyond its initial 1
        assert result.stats["seed_size_estimates"][0] > 1
        assert result.allocation.seed_counts()[0] >= 5

    def test_hub_not_picked_when_it_overshoots(self):
        """Star hub has spread 21 but budget is 2: TIRM must prefer
        leaves (spread 1 each) to the hub."""
        graph = star_graph(20)
        catalog = AdCatalog([Advertiser(name="a", budget=2.0, cpe=1.0)])
        problem = AdAllocationProblem(
            graph,
            catalog,
            constant_probabilities(graph, 1.0),
            1.0,
            AttentionBounds.uniform(21, 1),
        )
        result = tirm().allocate(problem)
        assert 0 not in result.allocation.seeds(0)
        assert result.estimated_regret().total < 1.0


class TestTieBreaking:
    """Near-ties in the cross-ad argmax must not resolve by catalog order."""

    @staticmethod
    def _two_ad_problem(ctps_rows):
        """Two mutually-linked users with p=1: every RR-set is {0, 1}, so
        coverage is θ for both nodes and all marginals are exact — the
        only noise left is the crafted sub-1e-12 gap in the CTPs."""
        graph = DirectedGraph(2, [0, 1], [1, 0])
        catalog = AdCatalog(
            [Advertiser(name=name, budget=100.0, cpe=1.0) for name, _ in ctps_rows]
        )
        return AdAllocationProblem(
            graph,
            catalog,
            np.ones((2, 2)),
            np.asarray([row for _, row in ctps_rows]),
            AttentionBounds.uniform(2, 1),
        )

    def test_near_tie_is_permutation_invariant(self):
        """Ads A and B both want node 0 with drops 4e-13 apart — inside
        the float-noise band the old rule resolved by scan order, so
        permuting the catalog changed the allocation and the regret.
        The (drop, node, raw-drop) cascade must give ad A (whose raw
        drop is exactly larger) node 0 under either catalog order."""
        a = ("A", [1.0, 0.9])
        b = ("B", [1.0 - 2e-13, 0.3])
        kwargs = dict(
            seed=0, initial_pilot=100, min_rr_sets_per_ad=100,
            max_rr_sets_per_ad=500, epsilon=0.3,
        )
        first = TIRMAllocator(**kwargs).allocate(self._two_ad_problem([a, b]))
        second = TIRMAllocator(**kwargs).allocate(self._two_ad_problem([b, a]))
        # map positions back to advertiser identity: A is 0 then 1
        assert first.allocation.seeds(0) == second.allocation.seeds(1)
        assert first.allocation.seeds(1) == second.allocation.seeds(0)
        assert first.estimated_revenues[0] == second.estimated_revenues[1]
        assert first.estimated_revenues[1] == second.estimated_revenues[0]
        # the exactly-larger raw drop wins the contested node either way
        assert 0 in first.allocation.seeds(0)
        assert 0 in second.allocation.seeds(1)
        assert first.estimated_regret().total == second.estimated_regret().total

    def test_selection_is_scan_order_independent(self):
        """Pairwise ε-comparisons are not transitive: drops can chain
        across the 1e-12 band (a≈b, b≈c, a<c).  The anchored-max rule
        must pick the same candidate under every scan permutation."""
        import itertools

        from repro.algorithms.tirm import _select_candidate

        chain = [
            (1.0, 0, 10, 0),
            (1.0 + 8e-13, 5, 10, 1),
            (1.0 + 1.6e-12, 9, 10, 2),
        ]
        picks = {
            _select_candidate(list(perm))[1]
            for perm in itertools.permutations(chain)
        }
        assert len(picks) == 1

    def test_distinct_node_ties_prefer_smaller_node(self):
        """When tied candidates propose different nodes, the smaller node
        id wins regardless of which ad scanned first."""
        a = ("A", [0.8, 1.0])
        b = ("B", [1.0, 0.8])
        kwargs = dict(
            seed=0, initial_pilot=100, min_rr_sets_per_ad=100,
            max_rr_sets_per_ad=500, epsilon=0.3,
        )
        # A's best is node 1, B's best is node 0, scores exactly equal:
        # node 0 must be assigned first under both catalog orders.
        first = TIRMAllocator(**kwargs).allocate(self._two_ad_problem([a, b]))
        second = TIRMAllocator(**kwargs).allocate(self._two_ad_problem([b, a]))
        assert first.allocation.seeds(1) == {0}
        assert second.allocation.seeds(0) == {0}
        assert first.allocation.seeds(0) == {1}
        assert second.allocation.seeds(1) == {1}


class TestPenalty:
    def test_penalty_reduces_seed_usage(self):
        problem = figure1_problem()
        free = tirm().allocate(problem)
        taxed = tirm().allocate(problem.with_penalty(0.5))
        assert taxed.allocation.total_seeds() <= free.allocation.total_seeds()


class TestAttention:
    def test_attention_bound_shared_across_ads(self):
        """With κ=1 a user can serve only one ad even if both want it."""
        graph = star_graph(6)
        catalog = AdCatalog(
            [
                Advertiser(name="a", budget=6.0, cpe=1.0),
                Advertiser(name="b", budget=6.0, cpe=1.0),
            ]
        )
        problem = AdAllocationProblem(
            graph,
            catalog,
            constant_probabilities(graph, 1.0),
            1.0,
            AttentionBounds.uniform(7, 1),
        )
        result = tirm().allocate(problem)
        assert result.allocation.is_valid(problem.attention)
        # the hub (spread 7 > budget...) — regardless of who gets what,
        # no user may appear in both seed sets
        overlap = result.allocation.seeds(0) & result.allocation.seeds(1)
        assert overlap == frozenset()


class TestCheckpointKnobValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"chunk_size": 0},
            {"rng": "mersenne"},
            {"max_workers": 0},
            {"max_workers": -4},
            {"checkpoint_every": 0, "checkpoint_path": "x.npz"},
            {"checkpoint_every": 2},  # every without a path
            {"max_iterations": 0},
        ],
    )
    def test_rejects_bad_knobs_at_the_boundary(self, kwargs):
        with pytest.raises(ConfigurationError):
            TIRMAllocator(**kwargs)

    def test_checkpoint_path_defaults_every_to_one(self, tmp_path):
        allocator = TIRMAllocator(checkpoint_path=tmp_path / "ck.npz")
        assert allocator.checkpoint_every == 1
        assert TIRMAllocator().checkpoint_every is None
