"""End-to-end verification of the Theorem 3/4 regret guarantees.

With the exact spread oracle, Greedy's revenue bookkeeping *is* the true
expected revenue, so the theorems apply rigorously: on any instance with
``p_i ∈ (0, 1)`` for all ads (and enough nodes to reach the budgets, the
§4.1 "practical considerations"), the λ=0 budget-regret of Algorithm 1
is at most ``min(p_max/2, 1 − p_max)·B ≤ B/3``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.advertising.advertiser import Advertiser
from repro.advertising.attention import AttentionBounds
from repro.advertising.catalog import AdCatalog
from repro.advertising.problem import AdAllocationProblem
from repro.algorithms.bounds import theorem3_bound, theorem4_bound
from repro.algorithms.greedy import GreedyAllocator
from repro.diffusion.exact import exact_spread
from repro.diffusion.spread import ExactSpreadOracle
from repro.graph.digraph import DirectedGraph
from repro.utils.rng import as_generator


def _random_instance(seed: int, num_ads: int = 2):
    """A small exact-enumerable instance with p_i < 1 by construction."""
    rng = as_generator(seed)
    num_nodes = int(rng.integers(8, 14))
    edges = set()
    while len(edges) < 10:
        u, v = rng.integers(0, num_nodes, size=2)
        if u != v:
            edges.add((int(u), int(v)))
    graph = DirectedGraph.from_edges(sorted(edges), num_nodes=num_nodes)
    edge_probs = rng.uniform(0.05, 0.6, size=(num_ads, graph.num_edges))
    ctps = rng.uniform(0.3, 1.0, size=(num_ads, num_nodes))

    # Budgets: between the largest single-node revenue (so p_i < 1) and
    # roughly half the total achievable revenue (so budgets are
    # reachable) — the §4.1 practical regime.
    budgets = []
    for ad in range(num_ads):
        singles = [
            exact_spread(graph, edge_probs[ad], [v], ctps=ctps[ad])
            for v in range(num_nodes)
        ]
        top = max(singles)
        budgets.append(float(np.clip(1.8 * top, top + 0.5, 0.6 * sum(singles))))
    catalog = AdCatalog(
        [
            Advertiser(name=f"a{i}", budget=budgets[i], cpe=1.0)
            for i in range(num_ads)
        ]
    )
    attention = AttentionBounds.uniform(num_nodes, num_ads)  # κ_u ≥ h
    return AdAllocationProblem(graph, catalog, edge_probs, ctps, attention)


@pytest.mark.parametrize("seed", [1, 2, 3, 5, 8, 13])
def test_theorem4_budget_regret_bound(seed):
    problem = _random_instance(seed)
    oracle = ExactSpreadOracle(problem)
    result = GreedyAllocator(oracle_factory=ExactSpreadOracle).allocate(problem)

    budgets = problem.catalog.budgets()
    # p_i computed exactly from singleton revenues.
    p_values = []
    for ad in range(problem.num_ads):
        top = max(
            oracle.revenue(ad, frozenset({v})) for v in range(problem.num_nodes)
        )
        p_values.append(top / budgets[ad])
    p_max = max(p_values)
    assert 0 < p_max < 1, "instance generator must keep p_i in (0, 1)"

    # True budget-regret of the greedy allocation (exact revenues).
    regret = sum(
        abs(budgets[ad] - oracle.revenue(ad, result.allocation.seeds(ad)))
        for ad in range(problem.num_ads)
    )
    total_budget = problem.catalog.total_budget()
    assert regret <= theorem4_bound(p_max, total_budget) + 1e-9
    assert regret <= theorem3_bound(total_budget) + 1e-9


@pytest.mark.parametrize("seed", [21, 34])
def test_internal_estimates_are_exact_with_exact_oracle(seed):
    """The premise of the theorem checks: Greedy's reported revenues are
    the true expected revenues when the oracle is exact."""
    problem = _random_instance(seed)
    result = GreedyAllocator(oracle_factory=ExactSpreadOracle).allocate(problem)
    for ad in range(problem.num_ads):
        seeds = result.allocation.seed_array(ad)
        truth = (
            exact_spread(
                problem.graph,
                problem.ad_edge_probabilities(ad),
                seeds,
                ctps=problem.ad_ctps(ad),
            )
            * problem.catalog[ad].cpe
            if seeds.size
            else 0.0
        )
        assert result.estimated_revenues[ad] == pytest.approx(truth, abs=1e-9)
