"""IRIE: influence rank, activation probabilities, Greedy-IRIE."""

import numpy as np
import pytest

from repro.algorithms.irie import (
    GreedyIRIEAllocator,
    estimate_activation_probabilities,
    influence_rank,
)
from repro.datasets.toy import figure1_problem
from repro.errors import ConfigurationError
from repro.graph.digraph import DirectedGraph
from repro.graph.generators import star_graph
from repro.graph.probabilities import constant_probabilities


class TestInfluenceRank:
    def test_sink_has_rank_one(self, line_graph):
        rank = influence_rank(line_graph, np.ones(3), alpha=1.0)
        assert rank[3] == pytest.approx(1.0)

    def test_line_graph_closed_form(self, line_graph):
        """With p=1, α=1: r(3)=1, r(2)=2, r(1)=3, r(0)=4."""
        rank = influence_rank(line_graph, np.ones(3), alpha=1.0, max_iterations=50)
        assert np.allclose(rank, [4.0, 3.0, 2.0, 1.0])

    def test_damping_shrinks_rank(self, line_graph):
        damped = influence_rank(line_graph, np.ones(3), alpha=0.5, max_iterations=50)
        full = influence_rank(line_graph, np.ones(3), alpha=1.0, max_iterations=50)
        assert np.all(damped <= full + 1e-12)

    def test_activation_discount(self, line_graph):
        ap = np.asarray([0.0, 1.0, 0.0, 0.0])
        rank = influence_rank(line_graph, np.ones(3), alpha=1.0, activation_probs=ap)
        assert rank[1] == pytest.approx(0.0)

    def test_hub_ranks_highest(self):
        g = star_graph(10)
        rank = influence_rank(g, constant_probabilities(g, 0.5), alpha=0.7)
        assert np.argmax(rank) == 0

    def test_validation(self, line_graph):
        with pytest.raises(ValueError):
            influence_rank(line_graph, np.ones(3), alpha=1.5)
        with pytest.raises(ValueError):
            influence_rank(line_graph, np.ones(2))
        with pytest.raises(ValueError):
            influence_rank(line_graph, np.ones(3), activation_probs=np.ones(2))


class TestActivationProbabilities:
    def test_no_seeds_all_zero(self, line_graph):
        ap = estimate_activation_probabilities(line_graph, np.ones(3), [])
        assert not ap.any()

    def test_deterministic_line(self, line_graph):
        ap = estimate_activation_probabilities(line_graph, np.ones(3), [0])
        assert np.allclose(ap, 1.0)

    def test_ctp_gates_seed(self, line_graph):
        ap = estimate_activation_probabilities(
            line_graph, np.ones(3), [0], ctps=np.full(4, 0.5)
        )
        assert ap[0] == pytest.approx(0.5)
        assert ap[1] == pytest.approx(0.5)  # activated only through 0

    def test_matches_exact_on_tree(self, line_graph):
        """On a tree (no convergent paths) the independence approximation
        is exact: AP(v) = δ·Π p along the path."""
        probs = np.asarray([0.8, 0.4, 0.9])
        ap = estimate_activation_probabilities(
            line_graph, probs, [0], ctps=np.full(4, 0.7)
        )
        assert ap[0] == pytest.approx(0.7)
        assert ap[1] == pytest.approx(0.7 * 0.8)
        assert ap[2] == pytest.approx(0.7 * 0.8 * 0.4)
        assert ap[3] == pytest.approx(0.7 * 0.8 * 0.4 * 0.9)


class TestGreedyIRIE:
    def test_valid_allocation_on_figure1(self):
        problem = figure1_problem()
        result = GreedyIRIEAllocator().allocate(problem)
        assert result.allocation.is_valid(problem.attention)
        assert result.allocation.total_seeds() > 0

    def test_beats_myopic_on_figure1(self):
        from repro.algorithms.myopic import MyopicAllocator
        from repro.evaluation.evaluator import RegretEvaluator

        problem = figure1_problem()
        evaluator = RegretEvaluator(problem, num_runs=2_000, seed=3)
        irie = evaluator.evaluate(GreedyIRIEAllocator().allocate(problem).allocation)
        myopic = evaluator.evaluate(MyopicAllocator().allocate(problem).allocation)
        assert irie.total_regret < myopic.total_regret

    def test_ir_solves_counted(self):
        problem = figure1_problem()
        result = GreedyIRIEAllocator().allocate(problem)
        # one initial solve per ad plus one per assigned seed
        assert result.stats["ir_solves"] == problem.num_ads + result.stats["iterations"]

    def test_deterministic(self):
        problem = figure1_problem()
        a = GreedyIRIEAllocator().allocate(problem)
        b = GreedyIRIEAllocator().allocate(problem)
        assert a.allocation == b.allocation

    def test_validates_alpha(self):
        with pytest.raises(ConfigurationError):
            GreedyIRIEAllocator(alpha=1.2)
