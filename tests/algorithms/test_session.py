"""AllocationSession: the TIRM loop as an externally driven machine.

The batch facade's equivalence is covered by tests/rrset/test_equivalence;
here the *session* semantics are on trial: state progression, progress
snapshots, boundary cancellation, terminal absorption, error capture,
and the injected-engine contract (never closed, must start empty).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.advertising.advertiser import Advertiser
from repro.advertising.attention import AttentionBounds
from repro.advertising.catalog import AdCatalog
from repro.advertising.problem import AdAllocationProblem
from repro.algorithms.session import (
    CANCELLED,
    DONE,
    ESTIMATE_THETA,
    FAILED,
    GROW,
    PILOT,
    SELECT,
    TERMINAL_STATES,
    AllocationSession,
)
from repro.algorithms.tirm import TIRMAllocator
from repro.errors import SessionError
from repro.graph.generators import erdos_renyi
from repro.graph.probabilities import constant_probabilities


def _problem(seed: int = 0, num_ads: int = 3, budget: float = 6.0):
    graph = erdos_renyi(60, 0.05, seed=seed)
    catalog = AdCatalog(
        [Advertiser(name=f"a{i}", budget=budget, cpe=1.0) for i in range(num_ads)]
    )
    return AdAllocationProblem(
        graph,
        catalog,
        constant_probabilities(graph, 0.08),
        0.4,
        AttentionBounds.uniform(graph.num_nodes, num_ads),
    )


def _allocator(**kwargs):
    kwargs.setdefault("seed", 0)
    kwargs.setdefault("max_rr_sets_per_ad", 1_000)
    return TIRMAllocator(**kwargs)


def _session(problem, allocator, **kwargs):
    engine = allocator._build_engine(problem, None, None)
    return engine, AllocationSession(problem, allocator, engine=engine, **kwargs)


class TestStateMachine:
    def test_progression_pilot_theta_select(self):
        problem = _problem()
        engine, session = _session(problem, _allocator())
        with engine:
            assert session.state == PILOT
            session.step()
            assert session.state == ESTIMATE_THETA
            assert engine.total_sets() > 0
            session.step()
            assert session.state == SELECT
            while session.state not in TERMINAL_STATES:
                assert session.state in (SELECT, GROW)
                session.step()
            assert session.state == DONE

    def test_run_matches_batch_facade(self):
        problem = _problem()
        batch = _allocator(dsan=True).allocate(problem)
        allocator = _allocator(dsan=True)
        engine, session = _session(problem, allocator)
        with engine:
            result = session.run()
        assert result.allocation == batch.allocation
        assert result.stats["dsan_root"] == batch.stats["dsan_root"]
        assert np.array_equal(result.estimated_revenues, batch.estimated_revenues)
        assert result.stats["theta_per_ad"] == batch.stats["theta_per_ad"]

    def test_terminal_states_are_absorbing(self):
        problem = _problem()
        engine, session = _session(problem, _allocator())
        with engine:
            result = session.run()
            iterations = session.iterations
            snapshot = session.step()  # no-op
            assert session.state == DONE
            assert session.iterations == iterations
            assert snapshot["state"] == DONE
            assert session.result() is result

    def test_session_never_closes_the_engine(self):
        problem = _problem()
        engine, session = _session(problem, _allocator())
        with engine:
            session.run()
            assert engine._finalizer.alive  # still usable after the run

    def test_step_snapshots_carry_progress(self):
        problem = _problem()
        engine, session = _session(problem, _allocator())
        with engine:
            first = session.step()
            assert first["state"] == ESTIMATE_THETA
            assert first["total_seeds"] == 0
            # Once per-ad state exists the snapshot is checkpoint-shaped.
            second = session.step()
            for key in ("theta", "seeds", "revenue", "active", "config"):
                assert key in second, key
            final = session.run()
            stats = final.stats
            assert stats["iterations"] == session.iterations > 0


class TestCancellation:
    def test_cancel_before_loop_returns_empty_truncated(self):
        problem = _problem()
        engine, session = _session(problem, _allocator())
        with engine:
            session.request_cancel()
            result = session.run()
        assert session.state == CANCELLED
        assert result.stats["truncated"] is True
        assert result.allocation.total_seeds() == 0

    def test_cancel_mid_grow_matches_max_iterations_truncation(self):
        """Cancel requested while the machine sits in GROW lands at the
        post-growth boundary — byte-identical to a batch run truncated
        by ``max_iterations`` at the same iteration count."""
        problem = _problem()
        allocator = _allocator()
        engine, session = _session(problem, allocator)
        with engine:
            while session.state != GROW:
                session.step()
                assert session.state not in TERMINAL_STATES, (
                    "fixture never grew; enlarge the problem"
                )
            k = session.iterations
            session.request_cancel()
            result = session.run()
        assert session.state == CANCELLED
        assert result.stats["truncated"] is True
        assert result.stats["iterations"] == k
        batch = _allocator(max_iterations=k).allocate(problem)
        assert result.allocation == batch.allocation
        assert np.array_equal(
            result.estimated_revenues, batch.estimated_revenues
        )

    def test_cancel_helper_drives_to_terminal(self):
        problem = _problem()
        engine, session = _session(problem, _allocator())
        with engine:
            session.step()
            result = session.cancel()
        assert session.state == CANCELLED
        assert result.stats["truncated"] is True


class TestErrors:
    def test_requires_matching_engine_shape(self):
        problem = _problem(num_ads=3)
        other = _problem(num_ads=2)
        allocator = _allocator()
        engine = allocator._build_engine(other, None, None)
        with engine:
            with pytest.raises(SessionError, match="shards"):
                AllocationSession(problem, allocator, engine=engine)

    def test_requires_empty_engine_when_fresh(self):
        problem = _problem()
        allocator = _allocator()
        engine = allocator._build_engine(problem, None, None)
        with engine:
            engine.ensure({0: 32})
            with pytest.raises(SessionError, match="reset_for_reuse"):
                AllocationSession(problem, allocator, engine=engine)

    def test_result_before_terminal_raises(self):
        problem = _problem()
        engine, session = _session(problem, _allocator())
        with engine:
            with pytest.raises(SessionError, match="no result"):
                session.result()

    def test_step_failure_lands_in_failed_state(self):
        class Exploding(TIRMAllocator):
            def _rebuild_heap(self, problem, ad, state):
                raise ValueError("boom")

        problem = _problem()
        allocator = Exploding(seed=0, max_rr_sets_per_ad=1_000)
        engine, session = _session(problem, allocator)
        with engine:
            with pytest.raises(ValueError, match="boom"):
                session.run()
        assert session.state == FAILED
        assert session.error is not None
        with pytest.raises(SessionError, match="failed"):
            session.result()
