"""Algorithm 1 (Greedy) with exact and Monte-Carlo oracles."""

import numpy as np
import pytest

from repro.advertising.advertiser import Advertiser
from repro.advertising.attention import AttentionBounds
from repro.advertising.catalog import AdCatalog
from repro.advertising.problem import AdAllocationProblem
from repro.algorithms.greedy import GreedyAllocator
from repro.diffusion.spread import ExactSpreadOracle
from repro.errors import ConfigurationError
from repro.graph.digraph import DirectedGraph


def exact_greedy(**kwargs):
    return GreedyAllocator(oracle_factory=ExactSpreadOracle, **kwargs)


@pytest.fixture
def single_ad_problem():
    """One ad, budget 2, over a 3-node line with CTP 1 and p 1: revenue is
    exactly the number of reachable nodes — easy to reason about."""
    graph = DirectedGraph.from_edges([(0, 1), (1, 2)])
    catalog = AdCatalog([Advertiser(name="only", budget=2.0, cpe=1.0)])
    return AdAllocationProblem(
        graph,
        catalog,
        np.ones((1, 2)),
        1.0,
        AttentionBounds.uniform(3, 1),
    )


class TestBasicBehaviour:
    def test_stops_at_budget(self, single_ad_problem):
        """Seeding node 1 gives spread 2 = budget exactly; greedy should
        pick it (or an equivalent) and stop with zero regret."""
        result = exact_greedy().allocate(single_ad_problem)
        assert result.estimated_regret().total == pytest.approx(0.0)
        assert result.allocation.seeds(0) == {1}

    def test_never_increases_regret(self, two_ad_problem):
        result = exact_greedy().allocate(two_ad_problem)
        oracle = ExactSpreadOracle(two_ad_problem)
        # empty allocation regret = sum of budgets
        empty_regret = float(two_ad_problem.catalog.budgets().sum())
        assert result.estimated_regret().total <= empty_regret + 1e-9

    def test_respects_attention_bound(self, two_ad_problem):
        result = exact_greedy().allocate(two_ad_problem)
        assert result.allocation.is_valid(two_ad_problem.attention)

    def test_estimates_match_oracle(self, two_ad_problem):
        result = exact_greedy().allocate(two_ad_problem)
        oracle = ExactSpreadOracle(two_ad_problem)
        for ad in range(2):
            expected = oracle.revenue(ad, result.allocation.seeds(ad))
            assert result.estimated_revenues[ad] == pytest.approx(expected)

    def test_exhaustive_matches_celf_on_tiny(self, two_ad_problem):
        """CELF is an exact speedup of the scan under submodularity; the
        two modes must choose allocations with equal regret."""
        celf = exact_greedy().allocate(two_ad_problem)
        exhaustive = exact_greedy(exhaustive=True).allocate(two_ad_problem)
        assert exhaustive.estimated_regret().total == pytest.approx(
            celf.estimated_regret().total, abs=1e-9
        )

    def test_penalty_discourages_seeds(self, two_ad_problem):
        cheap = exact_greedy().allocate(two_ad_problem)
        pricey = exact_greedy().allocate(two_ad_problem.with_penalty(0.5))
        assert pricey.allocation.total_seeds() <= cheap.allocation.total_seeds()

    def test_monte_carlo_oracle_close_to_exact(self, two_ad_problem):
        mc = GreedyAllocator(num_runs=2000, seed=0).allocate(two_ad_problem)
        exact = exact_greedy().allocate(two_ad_problem)
        assert mc.estimated_regret().total == pytest.approx(
            exact.estimated_regret().total, abs=0.25
        )

    def test_stats_populated(self, two_ad_problem):
        result = exact_greedy().allocate(two_ad_problem)
        assert result.stats["iterations"] == result.allocation.total_seeds()
        assert result.runtime_seconds >= 0

    def test_validates_num_runs(self):
        with pytest.raises(ConfigurationError):
            GreedyAllocator(num_runs=0)


class TestZeroBudgetEdge:
    def test_huge_single_gain_leaves_ad_empty(self):
        """The §4.1 extreme: one seed overshoots a tiny budget so much
        that the empty allocation has lower regret — greedy must leave
        the seed set empty."""
        graph = DirectedGraph.from_edges([(0, i) for i in range(1, 10)])
        catalog = AdCatalog([Advertiser(name="tiny", budget=0.5, cpe=1.0)])
        problem = AdAllocationProblem(
            graph,
            catalog,
            np.ones((1, 9)),
            1.0,
            AttentionBounds.uniform(10, 1),
        )
        result = exact_greedy().allocate(problem)
        # any leaf alone gives revenue 1.0 -> regret 0.5 = budget; the
        # hub gives 10 -> far worse. Adding a leaf does not STRICTLY
        # decrease |0.5 - 1.0| vs |0.5 - 0|, so greedy stays empty.
        assert result.allocation.seeds(0) == frozenset()
        assert result.estimated_regret().total == pytest.approx(0.5)
