"""Shared fixtures: small deterministic graphs and problem instances."""

from __future__ import annotations

import numpy as np
import pytest

from repro.advertising.advertiser import Advertiser
from repro.advertising.attention import AttentionBounds
from repro.advertising.catalog import AdCatalog
from repro.advertising.problem import AdAllocationProblem
from repro.graph.digraph import DirectedGraph
from repro.graph.generators import erdos_renyi
from repro.graph.probabilities import constant_probabilities


@pytest.fixture
def line_graph() -> DirectedGraph:
    """0 → 1 → 2 → 3."""
    return DirectedGraph.from_edges([(0, 1), (1, 2), (2, 3)], num_nodes=4)


@pytest.fixture
def diamond_graph() -> DirectedGraph:
    """0 → {1, 2} → 3 (two length-2 paths)."""
    return DirectedGraph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3)], num_nodes=4)


@pytest.fixture
def small_random_graph() -> DirectedGraph:
    """A deterministic 60-node G(n, p) used by the sampling tests."""
    return erdos_renyi(60, 0.06, seed=123)


@pytest.fixture
def two_ad_problem(diamond_graph) -> AdAllocationProblem:
    """Two ads over the diamond with uniform probabilities and CTPs."""
    catalog = AdCatalog(
        [
            Advertiser(name="alpha", budget=2.0, cpe=1.0),
            Advertiser(name="beta", budget=1.0, cpe=2.0),
        ]
    )
    edge_probs = np.vstack(
        [
            constant_probabilities(diamond_graph, 0.5),
            constant_probabilities(diamond_graph, 0.2),
        ]
    )
    ctps = np.vstack(
        [np.full(diamond_graph.num_nodes, 0.8), np.full(diamond_graph.num_nodes, 0.5)]
    )
    attention = AttentionBounds.uniform(diamond_graph.num_nodes, 1)
    return AdAllocationProblem(diamond_graph, catalog, edge_probs, ctps, attention)
