"""Protocol fuzz: malformed wire traffic must surface ProtocolError.

The codec is the trust boundary of the distributed tier — every byte a
worker sends crosses it before touching an allocation.  These tests
feed it truncated headers, oversize and negative length prefixes, bad
magic, torn frames, JSON garbage, and bit-flipped result payloads, and
demand a clean :class:`~repro.errors.ProtocolError` (or its
:class:`~repro.dist.FrameIntegrityError` subclass) every time — never a
traceback of some other flavour, never a hang, never a silently
accepted block.
"""

from __future__ import annotations

import socket
import struct
import threading

import numpy as np
import pytest

from repro.dist import FrameIntegrityError, FrameDecoder, frames
from repro.errors import ProtocolError


def _result_payload(ad: int = 0, chunk: int = 3) -> bytes:
    members = np.array([1, 2, 3, 4, 5, 6], dtype=np.int32)
    lengths = np.array([2, 1, 3], dtype=np.int64)
    return frames.pack_result(ad, chunk, members, lengths)


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------
class TestFrameDecoder:
    def test_roundtrip_single_and_coalesced_frames(self):
        decoder = FrameDecoder()
        wire = frames.pack_json(frames.TASK, {"ad": 1}) + frames.pack_frame(
            frames.PAYLOAD, b"abc"
        )
        decoder.feed(wire)
        kind, payload = decoder.next_frame()
        assert kind == frames.TASK
        assert frames.parse_json(payload) == {"ad": 1}
        assert decoder.next_frame() == (frames.PAYLOAD, b"abc")
        assert decoder.next_frame() is None

    def test_byte_at_a_time_reassembly(self):
        decoder = FrameDecoder()
        wire = frames.pack_frame(frames.RESULT, b"xyz")
        got = []
        for i in range(len(wire)):
            decoder.feed(wire[i:i + 1])
            frame = decoder.next_frame()
            if frame is not None:
                got.append(frame)
        assert got == [(frames.RESULT, b"xyz")]

    def test_truncated_header_is_incomplete_not_an_error(self):
        decoder = FrameDecoder()
        decoder.feed(frames.pack_frame(frames.TASK, b"")[:10])
        assert decoder.next_frame() is None
        assert decoder.buffered == 10

    def test_bad_magic_rejected(self):
        decoder = FrameDecoder()
        decoder.feed(b"EVIL" + frames.pack_frame(frames.TASK, b"")[4:])
        with pytest.raises(ProtocolError, match="magic"):
            decoder.next_frame()

    def test_unknown_kind_rejected(self):
        decoder = FrameDecoder()
        decoder.feed(struct.pack("<4sB3xq", frames.MAGIC, 99, 0))
        with pytest.raises(ProtocolError, match="kind"):
            decoder.next_frame()

    def test_negative_length_rejected(self):
        decoder = FrameDecoder()
        decoder.feed(struct.pack("<4sB3xq", frames.MAGIC, frames.TASK, -1))
        with pytest.raises(ProtocolError, match="length"):
            decoder.next_frame()

    def test_oversize_length_prefix_rejected_before_any_payload(self):
        decoder = FrameDecoder(max_frame_bytes=1024)
        # The header alone must be refused — a hostile peer must not be
        # able to make the coordinator buffer gigabytes.
        decoder.feed(struct.pack("<4sB3xq", frames.MAGIC, frames.TASK, 1 << 40))
        with pytest.raises(ProtocolError, match="exceeds"):
            decoder.next_frame()

    def test_close_mid_frame_rejected(self):
        decoder = FrameDecoder()
        decoder.feed(frames.pack_frame(frames.TASK, b"abcdef")[:-2])
        with pytest.raises(ProtocolError, match="mid-frame"):
            decoder.close()

    def test_close_at_boundary_is_clean(self):
        decoder = FrameDecoder()
        decoder.feed(frames.pack_frame(frames.TASK, b""))
        decoder.next_frame()
        decoder.close()  # no buffered bytes: a clean EOF

    def test_random_garbage_never_hangs_or_escapes(self):
        rng = np.random.default_rng(0)
        for trial in range(50):
            blob = rng.integers(0, 256, size=64, dtype=np.uint8).tobytes()
            decoder = FrameDecoder(max_frame_bytes=4096)
            decoder.feed(blob)
            try:
                while decoder.next_frame() is not None:
                    pass
                decoder.close()
            except ProtocolError:
                pass  # the only acceptable failure flavour


class TestJsonPayloads:
    def test_parse_json_garbage_rejected(self):
        with pytest.raises(ProtocolError, match="JSON"):
            frames.parse_json(b"\xff\xfe not json")

    def test_parse_json_non_object_rejected(self):
        with pytest.raises(ProtocolError):
            frames.parse_json(b"[1, 2, 3]")


# ---------------------------------------------------------------------------
# RESULT payloads
# ---------------------------------------------------------------------------
class TestResultCodec:
    def test_roundtrip(self):
        ad, chunk, members, lengths = frames.unpack_result(_result_payload())
        assert (ad, chunk) == (0, 3)
        assert members.tolist() == [1, 2, 3, 4, 5, 6]
        assert lengths.tolist() == [2, 1, 3]
        assert members.dtype == np.int32 and lengths.dtype == np.int64

    def test_truncated_header_rejected(self):
        with pytest.raises(ProtocolError, match="short"):
            frames.unpack_result(_result_payload()[:20])

    def test_size_mismatch_rejected(self):
        with pytest.raises(ProtocolError):
            frames.unpack_result(_result_payload() + b"\x00" * 8)

    def test_every_single_bit_flip_is_caught(self):
        """Flip each byte of the data section in turn: the digest (or a
        structural check) must refute every one — this is the property
        the chaos suite's 'corrupt' mode rides on."""
        payload = _result_payload()
        for offset in range(frames.RESULT_HEADER_SIZE, len(payload)):
            corrupted = bytearray(payload)
            corrupted[offset] ^= 0x01
            with pytest.raises(ProtocolError):
                frames.unpack_result(bytes(corrupted))

    def test_digest_stamp_flip_is_caught(self):
        payload = bytearray(_result_payload())
        payload[40] ^= 0x01  # inside the stamped digest itself
        with pytest.raises(FrameIntegrityError):
            frames.unpack_result(bytes(payload))


# ---------------------------------------------------------------------------
# Sockets
# ---------------------------------------------------------------------------
class TestRecvFrame:
    def _pair(self):
        left, right = socket.socketpair()
        left.settimeout(5.0)
        right.settimeout(5.0)
        return left, right

    def test_clean_eof_returns_none(self):
        left, right = self._pair()
        try:
            right.close()
            assert frames.recv_frame(left, FrameDecoder()) is None
        finally:
            left.close()

    def test_mid_frame_disconnect_rejected(self):
        left, right = self._pair()
        try:
            wire = frames.pack_frame(frames.RESULT, b"abcdef")
            right.sendall(wire[: len(wire) - 3])
            right.close()
            decoder = FrameDecoder()
            with pytest.raises(ProtocolError, match="mid-frame"):
                while True:
                    if frames.recv_frame(left, decoder) is None:
                        break
        finally:
            left.close()

    def test_send_then_recv_roundtrip_threads(self):
        left, right = self._pair()
        payload = _result_payload()

        def _send():
            frames.send_frame(right, frames.RESULT, payload)
            right.close()

        thread = threading.Thread(target=_send)
        thread.start()
        try:
            decoder = FrameDecoder()
            assert frames.recv_frame(left, decoder) == (frames.RESULT, payload)
            assert frames.recv_frame(left, decoder) is None
        finally:
            thread.join()
            left.close()
