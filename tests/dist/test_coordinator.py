"""Coordinator lifecycle, bind guard, grace, and hostile clients.

Everything protocol-level that does *not* need a real sampling payload:
binding policy (loopback unless ``allow_remote``), worker waits, the
zero-worker grace that fails queued futures, close semantics, and the
promise that a malformed or hostile client connection is dropped and
counted — never a traceback in a serving thread, never a wedged
coordinator.
"""

from __future__ import annotations

import socket
import time

import pytest

from repro.dist import Coordinator, WorkersUnavailableError, frames
from repro.errors import ConfigurationError


class TestBindGuard:
    def test_loopback_hosts_accepted_silently(self):
        for host in ("127.0.0.1", "localhost"):
            Coordinator(host=host)  # never started; validation is eager

    def test_non_loopback_host_refused(self):
        with pytest.raises(ConfigurationError, match="non-loopback"):
            Coordinator(host="0.0.0.0")

    def test_allow_remote_opts_in_with_a_warning(self):
        with pytest.warns(RuntimeWarning, match="non-loopback"):
            coordinator = Coordinator(host="0.0.0.0", allow_remote=True)
        assert coordinator.host == "0.0.0.0"  # validated, never bound here


class TestLifecycle:
    def test_start_binds_ephemeral_port_and_is_idempotent(self):
        with Coordinator() as coordinator:
            assert coordinator.started
            port = coordinator.port
            assert port > 0
            assert coordinator.start() is coordinator
            assert coordinator.port == port

    def test_close_is_idempotent_and_start_after_close_refused(self):
        coordinator = Coordinator().start()
        coordinator.close()
        coordinator.close()
        with pytest.raises(ConfigurationError, match="closed"):
            coordinator.start()

    def test_wait_for_workers_times_out_cleanly(self):
        with Coordinator() as coordinator:
            with pytest.raises(ConfigurationError, match="timed out"):
                coordinator.wait_for_workers(1, timeout=0.3)

    def test_submit_requires_registered_session(self):
        with Coordinator() as coordinator:
            with pytest.raises(ConfigurationError, match="session"):
                coordinator.submit(999, 0, 0, "blocked")

    def test_submit_after_close_refused(self):
        coordinator = Coordinator().start()
        session = coordinator.register_session({"k": 1}, b"payload")
        coordinator.close()
        with pytest.raises(ConfigurationError, match="closed"):
            coordinator.submit(session, 0, 0, "blocked")

    def test_stats_shape(self):
        with Coordinator() as coordinator:
            stats = coordinator.stats()
            for key in ("tasks_completed", "retries", "timeouts",
                        "disconnects", "corrupt_blocks",
                        "workers_connected", "workers", "queued", "events"):
                assert key in stats


class TestGrace:
    def test_empty_fleet_fails_queued_futures_after_grace(self):
        with Coordinator(worker_grace=0.3) as coordinator:
            session = coordinator.register_session({"k": 1}, b"")
            future = coordinator.submit(session, 0, 0, "blocked")
            with pytest.raises(WorkersUnavailableError, match="no workers"):
                future.result(timeout=10.0)

    def test_close_fails_queued_futures_immediately(self):
        coordinator = Coordinator().start()
        session = coordinator.register_session({"k": 1}, b"")
        future = coordinator.submit(session, 0, 0, "blocked")
        coordinator.close()
        with pytest.raises(WorkersUnavailableError, match="closed"):
            future.result(timeout=5.0)

    def test_released_session_fails_late_submitted_future(self):
        # A task queued against a session that is released before any
        # worker picks it up must fail, not hang.
        with Coordinator(worker_grace=0.3) as coordinator:
            session = coordinator.register_session({"k": 1}, b"")
            future = coordinator.submit(session, 0, 0, "blocked")
            coordinator.release_session(session)
            with pytest.raises(WorkersUnavailableError):
                future.result(timeout=10.0)


def _await_stat(coordinator, key, minimum, timeout=5.0) -> dict:
    deadline = time.monotonic() + timeout
    while True:
        stats = coordinator.stats()
        if stats[key] >= minimum:
            return stats
        if time.monotonic() > deadline:
            raise AssertionError(f"{key} never reached {minimum}: {stats}")
        time.sleep(0.02)


class TestHostileClients:
    def test_garbage_bytes_drop_the_connection_and_count(self):
        with Coordinator() as coordinator:
            with socket.create_connection(
                ("127.0.0.1", coordinator.port), timeout=5.0
            ) as conn:
                conn.sendall(b"\x00" * 64)  # not a frame at all
                # The coordinator closes on us; drain until EOF.
                conn.settimeout(5.0)
                while conn.recv(4096):
                    pass
            stats = _await_stat(coordinator, "disconnects", 1)
            assert stats["workers_connected"] == 0  # never handshaken

    def test_wrong_protocol_version_is_refused(self):
        with Coordinator() as coordinator:
            with socket.create_connection(
                ("127.0.0.1", coordinator.port), timeout=5.0
            ) as conn:
                frames.send_json(conn, frames.HELLO, {"protocol": 999})
                conn.settimeout(5.0)
                while conn.recv(4096):
                    pass
            stats = _await_stat(coordinator, "disconnects", 1)
            assert stats["workers_connected"] == 0

    def test_hostile_client_does_not_wedge_real_traffic(self):
        """A garbage connection before *and during* real work must not
        affect the fleet: tasks still complete on the honest worker."""
        import threading

        from repro.dist import WorkerHost

        with Coordinator() as coordinator:
            with socket.create_connection(
                ("127.0.0.1", coordinator.port), timeout=5.0
            ) as conn:
                conn.sendall(b"EVIL" * 8)
            _await_stat(coordinator, "disconnects", 1)

            worker = WorkerHost("127.0.0.1", coordinator.port)
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            coordinator.wait_for_workers(1, timeout=10.0)
            assert len(coordinator.stats()["workers"]) == 1
        thread.join(timeout=10.0)
        assert not thread.is_alive()
