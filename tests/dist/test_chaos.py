"""The chaos suite: every worker failure mode ends byte-identically.

The PR's acceptance criterion, verbatim: killing any single worker at
any point mid-allocation must still yield a byte-identical allocation
(equal dsan root) to the serial run — demonstrated across crash, stall,
and corrupt-payload failure modes (plus torn mid-frame writes), with
the failure visible only as retry provenance.
"""

from __future__ import annotations

import warnings

import pytest

from chaos import ChaosWorker, join_workers, start_workers
from repro.advertising.advertiser import Advertiser
from repro.advertising.attention import AttentionBounds
from repro.advertising.catalog import AdCatalog
from repro.advertising.problem import AdAllocationProblem
from repro.algorithms.tirm import TIRMAllocator
from repro.dist import Coordinator, WorkerHost
from repro.graph.generators import erdos_renyi
from repro.graph.probabilities import constant_probabilities

#: Which coordinator counter each injected failure must land in.
EXPECTED_COUNTER = {
    "crash": "disconnects",
    "stall": "timeouts",
    "corrupt": "corrupt_blocks",
    "truncate": "disconnects",
}


def _problem(num_ads: int = 3):
    graph = erdos_renyi(60, 0.05, seed=5)
    catalog = AdCatalog(
        [Advertiser(name=f"a{i}", budget=6.0, cpe=1.0)
         for i in range(num_ads)]
    )
    return AdAllocationProblem(
        graph,
        catalog,
        constant_probabilities(graph, 0.08),
        0.4,
        AttentionBounds.uniform(graph.num_nodes, num_ads),
    )


def _allocator(**kwargs) -> TIRMAllocator:
    defaults = dict(seed=0, max_rr_sets_per_ad=1_500, chunk_size=128,
                    dsan=True)
    defaults.update(kwargs)
    return TIRMAllocator(**defaults)


def _assert_identical(result, reference):
    assert result.allocation == reference.allocation
    assert result.stats["dsan_root"] == reference.stats["dsan_root"]
    assert result.stats["theta_per_ad"] == reference.stats["theta_per_ad"]


@pytest.fixture(scope="module")
def serial_reference():
    problem = _problem()
    return problem, _allocator().allocate(problem)


class TestSingleWorkerFailure:
    @pytest.mark.parametrize("failure", sorted(EXPECTED_COUNTER))
    def test_failure_mid_allocation_is_byte_identical(
        self, serial_reference, failure
    ):
        problem, reference = serial_reference
        task_timeout = 1.0 if failure == "stall" else 10.0
        with Coordinator(task_timeout=task_timeout) as coordinator:
            chaos = ChaosWorker(
                "127.0.0.1", coordinator.port, failure=failure, fail_on=2,
                stall_seconds=4.0, name="chaos",
            )
            good = WorkerHost("127.0.0.1", coordinator.port, name="good")
            threads = start_workers(coordinator, [chaos, good])
            result = _allocator(
                engine="dist", coordinator=coordinator
            ).allocate(problem)
        join_workers(threads)

        _assert_identical(result, reference)
        assert chaos.failures_injected == 1
        dist = result.stats["dist"]
        assert dist["retries"] >= 1, failure
        assert dist[EXPECTED_COUNTER[failure]] >= 1, failure
        # The failure is provenance: the allocation record carries the
        # retry counters without them ever touching a sample byte.
        provenance = result.allocation.provenance["dist"]
        assert provenance["retries"] >= 1
        assert provenance[EXPECTED_COUNTER[failure]] >= 1
        assert chaos.error is None and good.error is None

    @pytest.mark.parametrize("fail_on", [1, 2, 4])
    def test_crash_at_any_chunk_boundary(self, serial_reference, fail_on):
        """'at any point mid-allocation': the crash ordinal sweeps the
        first chunks a worker serves, including its very first."""
        problem, reference = serial_reference
        with Coordinator(task_timeout=10.0) as coordinator:
            chaos = ChaosWorker(
                "127.0.0.1", coordinator.port, failure="crash",
                fail_on=fail_on,
            )
            good = WorkerHost("127.0.0.1", coordinator.port)
            threads = start_workers(coordinator, [chaos, good])
            result = _allocator(
                engine="dist", coordinator=coordinator
            ).allocate(problem)
        join_workers(threads)
        _assert_identical(result, reference)
        assert result.stats["dist"]["disconnects"] >= 1


class TestFleetDeath:
    def test_every_worker_dead_still_completes_byte_identically(
        self, serial_reference
    ):
        """The sole worker crashes mid-run and nobody replaces it: the
        engine's local fallback finishes the allocation with identical
        bytes (the same pure (seed, ad, chunk) function, computed in
        process)."""
        problem, reference = serial_reference
        with Coordinator(
            task_timeout=5.0, worker_grace=0.3, max_retries=2
        ) as coordinator:
            chaos = ChaosWorker(
                "127.0.0.1", coordinator.port, failure="crash", fail_on=3
            )
            threads = start_workers(coordinator, [chaos])
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                result = _allocator(
                    engine="dist", coordinator=coordinator
                ).allocate(problem)
        join_workers(threads)
        _assert_identical(result, reference)
        dist = result.stats["dist"]
        assert dist["local_fallbacks"] >= 1
        assert dist["disconnects"] >= 1


class TestChaosWorkerHarness:
    def test_unknown_failure_mode_rejected(self):
        with pytest.raises(ValueError, match="failure mode"):
            ChaosWorker("127.0.0.1", 1, failure="meteor")
