"""Service tier over the distributed engine: dist jobs, warm reuse.

``engine="dist"`` is just another allocator knob to the service — the
job manager injects its shared coordinator, the engine pool leases and
warm-reuses distributed engines like any other, and the result is
byte-identical to a serial batch run.  Requests for dist jobs on a
manager without a coordinator are refused with a clean ServiceError.
"""

from __future__ import annotations

import numpy as np
import pytest

from chaos import join_workers, start_workers
from repro.advertising.advertiser import Advertiser
from repro.advertising.attention import AttentionBounds
from repro.advertising.catalog import AdCatalog
from repro.advertising.problem import AdAllocationProblem
from repro.algorithms.tirm import TIRMAllocator
from repro.dist import Coordinator, WorkerHost
from repro.errors import ServiceError
from repro.graph.generators import erdos_renyi
from repro.graph.probabilities import constant_probabilities
from repro.service.jobs import JobManager


@pytest.fixture(autouse=True)
def _no_ambient_cache(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE", raising=False)


def _problem(num_ads: int = 3):
    graph = erdos_renyi(60, 0.05, seed=9)
    catalog = AdCatalog(
        [Advertiser(name=f"a{i}", budget=6.0, cpe=1.0)
         for i in range(num_ads)]
    )
    return AdAllocationProblem(
        graph,
        catalog,
        constant_probabilities(graph, 0.08),
        0.4,
        AttentionBounds.uniform(graph.num_nodes, num_ads),
    )


PARAMS = {"seed": 0, "max_rr_sets_per_ad": 1_000, "chunk_size": 128,
          "dsan": True}


def test_dist_job_matches_serial_batch_run():
    problem = _problem()
    batch = TIRMAllocator(**PARAMS).allocate(problem)
    with Coordinator() as coordinator:
        workers = [WorkerHost("127.0.0.1", coordinator.port)
                   for _ in range(2)]
        threads = start_workers(coordinator, workers)
        with JobManager(coordinator=coordinator) as manager:
            job = manager.submit(
                problem=problem, params={**PARAMS, "engine": "dist"}
            )
            result = manager.result(job.job_id)
    join_workers(threads)
    assert result.allocation == batch.allocation
    assert result.stats["dsan_root"] == batch.stats["dsan_root"]
    assert np.array_equal(result.estimated_revenues, batch.estimated_revenues)
    assert result.stats["dist"]["tasks_completed"] > 0
    assert result.allocation.provenance["dist"]["retries"] == 0


def test_dist_jobs_warm_reuse_the_pooled_engine():
    problem = _problem()
    with Coordinator() as coordinator:
        workers = [WorkerHost("127.0.0.1", coordinator.port)]
        threads = start_workers(coordinator, workers)
        with JobManager(coordinator=coordinator) as manager:
            params = {**PARAMS, "engine": "dist"}
            first = manager.submit(problem=problem, params=params)
            cold = manager.result(first.job_id)
            second = manager.submit(problem=problem, params=params)
            warm = manager.result(second.job_id)
            assert first.engine_warm is False
            assert second.engine_warm is True
            assert cold.allocation == warm.allocation
            assert cold.stats["dsan_root"] == warm.stats["dsan_root"]
            # The warm lease replays retained blocks: no chunk crosses
            # the wire a second time.
            assert warm.stats["backend_invocations"] == 0
    join_workers(threads)


def test_dist_job_without_a_coordinator_is_refused():
    with JobManager() as manager:
        with pytest.raises(ServiceError, match="coordinator"):
            manager.submit(problem=_problem(), params={"engine": "dist"})


def test_manager_owns_a_spec_built_coordinator():
    manager = JobManager(coordinator={"port": 0})
    coordinator = manager.coordinator
    assert coordinator is not None and coordinator.started
    manager.close()
    assert not coordinator.started
