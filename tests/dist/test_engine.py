"""DistributedEngine: byte-identity with serial, fallback, lifecycle.

The tentpole invariant — every chunk is a pure function of
``(seed, ad, chunk)`` — means the distributed engine must produce
shards byte-identical to the serial engine regardless of worker count,
worker backend, scatter order, prefetching, or a completely empty
fleet (local fallback).  These tests pin that, plus the engine-side
plumbing: session registration/release, spec-dict coordinator
ownership, legacy-rng refusal, and allocator-level validation.
"""

from __future__ import annotations

import threading

import pytest

from chaos import join_workers, start_workers
from repro.algorithms.tirm import TIRMAllocator
from repro.dist import Coordinator, DistributedEngine, WorkerHost
from repro.errors import ConfigurationError
from repro.graph.generators import erdos_renyi
from repro.graph.probabilities import constant_probabilities
from repro.rrset.sharded import ShardedSamplingEngine

CHUNK = 128
TARGETS = {0: 500, 1: 700}


def _graph():
    return erdos_renyi(50, 0.06, seed=11)


def _probs(graph, h=2):
    probs = constant_probabilities(graph, 0.1)
    return [probs for _ in range(h)]


def _fingerprint(engine) -> list[tuple]:
    out = []
    for ad in range(engine.num_ads):
        shard = engine.shard(ad)
        view = shard.prefix_view()
        out.append((
            shard.num_total,
            view.members.tobytes(),
            view.indptr.tobytes(),
        ))
    return out


def _serial_reference(graph, probs):
    with ShardedSamplingEngine(
        graph, probs, seeds=7, chunk_size=CHUNK, dsan=True
    ) as engine:
        engine.ensure(TARGETS)
        return _fingerprint(engine), engine.dsan_root()


class TestByteIdentity:
    @pytest.mark.parametrize("num_workers", [1, 2, 4])
    def test_matches_serial_for_any_worker_count(self, num_workers):
        graph = _graph()
        probs = _probs(graph)
        reference, reference_root = _serial_reference(graph, probs)
        with Coordinator() as coordinator:
            workers = [
                WorkerHost("127.0.0.1", coordinator.port, name=f"w{i}")
                for i in range(num_workers)
            ]
            threads = start_workers(coordinator, workers)
            with DistributedEngine(
                graph, probs, coordinator=coordinator, seeds=7,
                chunk_size=CHUNK, dsan=True,
            ) as engine:
                engine.ensure(TARGETS)
                assert _fingerprint(engine) == reference
                assert engine.dsan_root() == reference_root
                stats = engine.dist_stats()
                assert stats["tasks_completed"] > 0
                assert stats["local_fallbacks"] == 0
        join_workers(threads)
        assert sum(w.chunks_served for w in workers) == stats["tasks_completed"]

    def test_prefetch_overlaps_without_changing_bytes(self):
        graph = _graph()
        probs = _probs(graph)
        reference, reference_root = _serial_reference(graph, probs)
        with Coordinator() as coordinator:
            workers = [WorkerHost("127.0.0.1", coordinator.port)
                       for _ in range(2)]
            threads = start_workers(coordinator, workers)
            with DistributedEngine(
                graph, probs, coordinator=coordinator, seeds=7,
                chunk_size=CHUNK, dsan=True,
            ) as engine:
                submitted = engine.prefetch(TARGETS)
                assert submitted > 0
                engine.ensure(TARGETS)
                assert _fingerprint(engine) == reference
                assert engine.dsan_root() == reference_root
        join_workers(threads)

    def test_empty_fleet_falls_back_locally_byte_identically(self):
        graph = _graph()
        probs = _probs(graph)
        reference, reference_root = _serial_reference(graph, probs)
        with Coordinator(worker_grace=0.2) as coordinator:
            with DistributedEngine(
                graph, probs, coordinator=coordinator, seeds=7,
                chunk_size=CHUNK, dsan=True,
            ) as engine:
                with pytest.warns(RuntimeWarning, match="computing\\s+locally"):
                    engine.ensure(TARGETS)
                assert _fingerprint(engine) == reference
                assert engine.dsan_root() == reference_root
                assert engine.dist_stats()["local_fallbacks"] > 0

    def test_mixed_backend_fleet_matches_serial(self):
        from repro.rrset.backends import resolve_backend

        try:
            resolve_backend("numba")
        except ConfigurationError:
            pytest.skip("numba backend not installed")
        graph = _graph()
        probs = _probs(graph)
        reference, reference_root = _serial_reference(graph, probs)
        with Coordinator() as coordinator:
            workers = [
                WorkerHost("127.0.0.1", coordinator.port, backend="numpy"),
                WorkerHost("127.0.0.1", coordinator.port, backend="numba"),
            ]
            threads = start_workers(coordinator, workers)
            with DistributedEngine(
                graph, probs, coordinator=coordinator, seeds=7,
                chunk_size=CHUNK, dsan=True,
            ) as engine:
                engine.ensure(TARGETS)
                assert _fingerprint(engine) == reference
                assert engine.dsan_root() == reference_root
        join_workers(threads)


class TestWorkerLocalCache:
    def test_second_session_is_served_from_the_worker_cache(self, tmp_path):
        graph = _graph()
        probs = _probs(graph)
        with Coordinator() as coordinator:
            worker = WorkerHost(
                "127.0.0.1", coordinator.port, cache=str(tmp_path)
            )
            threads = start_workers(coordinator, [worker])
            reference, reference_root = _serial_reference(graph, probs)
            for _ in range(2):
                with DistributedEngine(
                    graph, probs, coordinator=coordinator, seeds=7,
                    chunk_size=CHUNK, dsan=True,
                ) as engine:
                    engine.ensure(TARGETS)
                    assert _fingerprint(engine) == reference
                    assert engine.dsan_root() == reference_root
            assert worker.cache_hits > 0
        join_workers(threads)


class TestLifecycle:
    def test_legacy_rng_refused(self):
        graph = _graph()
        with Coordinator() as coordinator:
            with pytest.raises(ConfigurationError, match="philox"):
                DistributedEngine(
                    graph, _probs(graph), coordinator=coordinator,
                    seeds=7, rng="legacy", chunk_size=CHUNK,
                )

    def test_non_coordinator_refused(self):
        graph = _graph()
        with pytest.raises(ConfigurationError, match="coordinator"):
            DistributedEngine(
                graph, _probs(graph), coordinator=object(), seeds=7,
                chunk_size=CHUNK,
            )

    def test_spec_dict_builds_an_owned_coordinator(self):
        graph = _graph()
        probs = _probs(graph)
        engine = DistributedEngine(
            graph, probs, coordinator={"port": 0, "worker_grace": 5.0},
            seeds=7, chunk_size=CHUNK,
        )
        try:
            coordinator = engine.coordinator
            assert coordinator.started
            worker = WorkerHost("127.0.0.1", coordinator.port)
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            coordinator.wait_for_workers(1, timeout=10.0)
            engine.ensure({0: 300})
            assert engine.shard(0).num_total >= 300
        finally:
            engine.close()
        assert not coordinator.started  # owned: closed with the engine
        thread.join(timeout=10.0)
        assert not thread.is_alive()

    def test_unknown_spec_keys_refused(self):
        graph = _graph()
        with pytest.raises(ConfigurationError, match="spec"):
            DistributedEngine(
                graph, _probs(graph), coordinator={"bogus": 1}, seeds=7,
                chunk_size=CHUNK,
            )

    def test_close_releases_the_session(self):
        graph = _graph()
        with Coordinator() as coordinator:
            engine = DistributedEngine(
                graph, _probs(graph), coordinator=coordinator, seeds=7,
                chunk_size=CHUNK,
            )
            session = engine.session_id
            engine.close()
            assert coordinator.started  # borrowed: stays up
            with pytest.raises(ConfigurationError, match="session"):
                coordinator.submit(session, 0, 0, "blocked")

    def test_engine_reports_socket_substrate(self):
        graph = _graph()
        with Coordinator() as coordinator:
            with DistributedEngine(
                graph, _probs(graph), coordinator=coordinator, seeds=7,
                chunk_size=CHUNK,
            ) as engine:
                assert engine.engine == "dist"
                assert engine.transport == "socket"


class TestAllocatorValidation:
    def test_dist_engine_needs_a_coordinator(self):
        with pytest.raises(ConfigurationError, match="coordinator"):
            TIRMAllocator(engine="dist")

    def test_coordinator_needs_the_dist_engine(self):
        with pytest.raises(ConfigurationError, match="dist"):
            TIRMAllocator(engine="serial", coordinator={"port": 0})

    def test_dist_engine_refuses_legacy_rng(self):
        with pytest.raises(ConfigurationError, match="philox"):
            TIRMAllocator(engine="dist", coordinator={"port": 0},
                          rng="legacy")
