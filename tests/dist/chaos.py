"""Fault-injection harness for the distributed tier.

:class:`ChaosWorker` is a :class:`~repro.dist.WorkerHost` that
misbehaves at an exact chunk boundary, through the worker's two chaos
seams (``_before_result`` / ``_send_result``) — the protocol and
sampling code under test is never touched:

``crash``
    Close the connection abruptly after computing the Nth chunk, before
    sending it (the coordinator sees EOF awaiting RESULT).
``stall``
    Sleep past the coordinator's ``task_timeout`` instead of answering
    (the coordinator's read times out and drops the worker).
``corrupt``
    Bit-flip one byte of the Nth RESULT payload's member data (the
    frame parses; the blake2 digest check refutes it).
``truncate``
    Send only half of the Nth RESULT frame, then close mid-frame (the
    decoder refuses the torn frame).

Every mode must end the same way: the chunk is requeued to a surviving
worker (or computed locally), and the allocation is byte-identical to a
serial run — with the failure visible only in the retry provenance.

Workers here run in daemon threads over real sockets; the CI smoke leg
exercises the same protocol across process boundaries.
"""

from __future__ import annotations

import threading
import time

from repro.dist import WorkerHost
from repro.dist.worker import WorkerExit

FAILURE_MODES = ("crash", "stall", "corrupt", "truncate")


class ChaosWorker(WorkerHost):
    """A worker that fails in ``failure`` fashion on its Nth chunk.

    ``fail_on`` is 1-based: ``fail_on=1`` hits the very first chunk this
    worker is handed.  ``stall_seconds`` only matters for ``stall`` and
    should comfortably exceed the coordinator's ``task_timeout``.
    """

    def __init__(self, host, port, *, failure: str, fail_on: int = 1,
                 stall_seconds: float = 5.0, **kwargs) -> None:
        if failure not in FAILURE_MODES:
            raise ValueError(f"unknown failure mode {failure!r}")
        super().__init__(host, port, **kwargs)
        self.failure = failure
        self.fail_on = int(fail_on)
        self.stall_seconds = float(stall_seconds)
        self.failures_injected = 0

    def _armed(self) -> bool:
        # chunks_served is incremented before the seams fire, so the
        # Nth chunk sees chunks_served == N exactly once.
        return self.chunks_served == self.fail_on

    def _before_result(self, ad: int, chunk_index: int) -> None:
        if not self._armed():
            return
        if self.failure == "crash":
            self.failures_injected += 1
            raise WorkerExit  # run() closes the socket: EOF mid-task
        if self.failure == "stall":
            self.failures_injected += 1
            time.sleep(self.stall_seconds)
            raise WorkerExit  # never answer; the coordinator moved on

    def _send_result(self, sock, ad: int, chunk_index: int,
                     payload: bytes) -> None:
        if self._armed() and self.failure == "corrupt":
            self.failures_injected += 1
            import struct

            from repro.dist import frames

            corrupted = bytearray(payload)
            # Flip a bit of the member data (falling back to the digest
            # stamp for an empty block): the frame still parses
            # structurally, so only the digest check can catch it.
            _, _, num_sets, num_members, _ = struct.unpack_from(
                "<qqqq32s", payload
            )
            if num_members > 0:
                corrupted[frames.RESULT_HEADER_SIZE + 8 * num_sets] ^= 0x40
            else:
                corrupted[40] ^= 0x01
            frames.send_frame(sock, frames.RESULT, bytes(corrupted))
            return
        if self._armed() and self.failure == "truncate":
            self.failures_injected += 1
            from repro.dist import frames

            wire = frames.pack_frame(frames.RESULT, payload)
            sock.sendall(wire[: len(wire) // 2])
            raise WorkerExit  # run() closes the socket mid-frame
        super()._send_result(sock, ad, chunk_index, payload)


def start_workers(coordinator, workers) -> list[threading.Thread]:
    """Run each worker's :meth:`run` in a daemon thread; any uncaught
    error is published on ``worker.error`` for the test to assert on."""
    threads = []
    for worker in workers:
        worker.error = None

        def _run(worker=worker):
            try:
                worker.run()
            except BaseException as exc:  # published for the test
                worker.error = exc

        thread = threading.Thread(target=_run, daemon=True)
        thread.start()
        threads.append(thread)
    coordinator.wait_for_workers(len(workers), timeout=10.0)
    return threads


def join_workers(threads, timeout: float = 10.0) -> None:
    for thread in threads:
        thread.join(timeout)
