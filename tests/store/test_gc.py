"""Cache eviction: LRU under a byte budget, orphans first, checkpoint
references protected, dry-run leaves the directory untouched."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.errors import StoreError
from repro.store.cache import ShardCache
from repro.store.catalog import ExperimentCatalog
from repro.store.gc import cache_usage, collect_garbage


def _block(fill: int):
    lengths = np.array([4], dtype=np.int64)
    members = np.full(4, fill, dtype=np.int32)
    return members, lengths


def _populate(directory, keys):
    """Store one block per key, ordered LRU-oldest first."""
    with ShardCache(directory) as cache:
        for index, key in enumerate(keys):
            members, lengths = _block(index)
            cache.store(key, 0, members, lengths)
        cache.flush()
        # Deterministic LRU order without wall-clock sleeps.
        for order, key in enumerate(keys):
            cache.catalog._conn.execute(
                "UPDATE shards SET last_used_at = ? WHERE shard_key = ?",
                (1000.0 + order, key),
            )
        cache.catalog._conn.commit()


def test_gc_rejects_bad_inputs(tmp_path):
    with pytest.raises(StoreError):
        collect_garbage(tmp_path / "absent", max_bytes=0)
    _populate(tmp_path, ["k1"])
    with pytest.raises(StoreError):
        collect_garbage(tmp_path, max_bytes=-1)


def test_gc_noop_under_budget(tmp_path):
    _populate(tmp_path, ["k1", "k2"])
    before = cache_usage(tmp_path)
    report = collect_garbage(tmp_path, max_bytes=10**9)
    assert report.evicted_entries == 0
    assert cache_usage(tmp_path) == before


def test_gc_evicts_lru_first(tmp_path):
    _populate(tmp_path, ["old", "mid", "new"])
    entry_bytes = cache_usage(tmp_path)["bytes"] // 3
    report = collect_garbage(tmp_path, max_bytes=2 * entry_bytes)
    assert report.evicted_entries == 1
    assert report.evicted == [("old", 0)]
    assert cache_usage(tmp_path)["entries"] == 2
    with ExperimentCatalog(str(tmp_path)) as catalog:
        assert {r["shard_key"] for r in catalog.list_shards()} == {"mid", "new"}


def test_gc_protects_checkpoint_referenced_shards(tmp_path):
    _populate(tmp_path, ["pinned", "loose"])
    artifact = tmp_path / "ckpt.npz"
    artifact.write_bytes(b"x")
    with ExperimentCatalog(str(tmp_path)) as catalog:
        catalog.record_checkpoint(
            str(artifact), iterations=1, config={}, shard_refs=[("pinned", 0)]
        )
    report = collect_garbage(tmp_path, max_bytes=0)
    # "pinned" survives even though it is LRU-oldest; "loose" goes.
    assert ("pinned", 0) not in report.evicted
    assert ("loose", 0) in report.evicted
    assert report.protected_entries == 1
    assert report.over_budget  # protected bytes alone exceed budget 0


def test_gc_orphans_evicted_before_catalog_rows(tmp_path):
    _populate(tmp_path, ["recorded"])
    orphan_dir = tmp_path / "objects" / "orphankey"
    orphan_dir.mkdir()
    (orphan_dir / "0.blk").write_bytes(b"z" * 50)
    entry_bytes = cache_usage(tmp_path)["bytes"] - 50
    report = collect_garbage(tmp_path, max_bytes=entry_bytes)
    assert report.orphans_evicted == 1
    assert report.evicted == [("orphankey", 0)]
    assert cache_usage(tmp_path)["entries"] == 1


def test_gc_dry_run_deletes_nothing(tmp_path):
    _populate(tmp_path, ["k1", "k2"])
    before = cache_usage(tmp_path)
    report = collect_garbage(tmp_path, max_bytes=0, dry_run=True)
    assert report.dry_run
    assert report.evicted_entries == 2
    assert cache_usage(tmp_path) == before


def test_gc_reconciles_rows_for_vanished_files(tmp_path):
    _populate(tmp_path, ["gone", "here"])
    with ShardCache(str(tmp_path)) as cache:
        os.remove(cache.entry_path("gone", 0))
    collect_garbage(tmp_path, max_bytes=10**9)
    with ExperimentCatalog(str(tmp_path)) as catalog:
        assert {r["shard_key"] for r in catalog.list_shards()} == {"here"}
