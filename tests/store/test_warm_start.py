"""The warm-start contract, end to end.

A second run against a populated cache must perform **zero**
sampling-backend invocations while producing byte-identical shards,
dsan roots, and allocations — across engines, transports, and rng
disciplines.  And the cache must be failure-transparent: poisoned
entries are quarantined and recomputed, diverged legacy sequences fall
back to sampling, concurrent writers race benignly.
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

import repro
from repro.advertising.advertiser import Advertiser
from repro.advertising.attention import AttentionBounds
from repro.advertising.catalog import AdCatalog
from repro.advertising.problem import AdAllocationProblem
from repro.algorithms.tirm import TIRMAllocator
from repro.graph.generators import erdos_renyi
from repro.graph.probabilities import constant_probabilities
from repro.rrset.sharded import ShardedSamplingEngine
from repro.store.blocks import HEADER_SIZE
from repro.store.cache import ShardCache

REQUESTS = ({0: 120, 1: 80, 2: 40}, {1: 30}, {0: 5, 2: 200})


def _inputs(seed: int = 2):
    graph = erdos_renyi(60, 0.05, seed=seed)
    probs = [constant_probabilities(graph, p) for p in (0.05, 0.08, 0.1)]
    return graph, probs


def _problem(seed: int = 6, num_ads: int = 2):
    graph = erdos_renyi(60, 0.05, seed=seed)
    catalog = AdCatalog(
        [Advertiser(name=f"a{i}", budget=6.0, cpe=1.0) for i in range(num_ads)]
    )
    return AdAllocationProblem(
        graph,
        catalog,
        constant_probabilities(graph, 0.08),
        0.4,
        AttentionBounds.uniform(graph.num_nodes, num_ads),
    )


def _assert_shards_equal(a: ShardedSamplingEngine, b: ShardedSamplingEngine):
    for ad in range(a.num_ads):
        pa, pb = a.shard(ad), b.shard(ad)
        assert pa.num_total == pb.num_total
        for i in range(pa.num_total):
            assert np.array_equal(pa.get_set(i), pb.get_set(i))


def _run(cache, *, engine="serial", rng="philox", **kwargs):
    graph, probs = _inputs()
    eng = ShardedSamplingEngine(
        graph, probs, seeds=5, engine=engine, rng=rng, chunk_size=64,
        dsan=True, cache=cache, **kwargs,
    )
    with eng:
        for requests in REQUESTS:
            eng.sample(requests)
        return eng, eng.backend_invocations, eng.dsan_root(), dict(eng.cache_stats() or {})


class TestWarmStartMatrix:
    @pytest.mark.parametrize(
        "engine,rng",
        [("serial", "philox"), ("process", "philox"), ("serial", "legacy")],
    )
    def test_warm_run_performs_zero_backend_invocations(self, tmp_path, engine, rng):
        graph, probs = _inputs()
        kwargs = dict(seeds=5, engine=engine, rng=rng, chunk_size=64, dsan=True)
        with ShardedSamplingEngine(
            graph, probs, cache=str(tmp_path), **kwargs
        ) as cold:
            for requests in REQUESTS:
                cold.sample(requests)
            cold_invocations = cold.backend_invocations
            cold_root = cold.dsan_root()
        assert cold_invocations > 0

        with ShardedSamplingEngine(
            graph, probs, cache=str(tmp_path), **kwargs
        ) as warm, ShardedSamplingEngine(graph, probs, **kwargs) as uncached:
            for requests in REQUESTS:
                warm.sample(requests)
                uncached.sample(requests)
            assert warm.backend_invocations == 0  # the headline invariant
            stats = warm.cache_stats()
            assert stats["hits"] > 0
            assert warm.dsan_root() == cold_root == uncached.dsan_root()
            _assert_shards_equal(warm, uncached)

    def test_warm_run_shm_transport(self, tmp_path):
        if ShardedSamplingEngine.resolve_transport("auto") != "shm":
            pytest.skip("shared-memory transport unavailable on this platform")
        _, cold_invocations, cold_root, _ = _run(
            str(tmp_path), engine="process", transport="shm"
        )
        assert cold_invocations > 0
        _, warm_invocations, warm_root, stats = _run(
            str(tmp_path), engine="process", transport="shm"
        )
        assert warm_invocations == 0
        assert warm_root == cold_root
        assert stats["hits"] > 0

    def test_warm_prefetch_spawns_no_worker_pool(self, tmp_path):
        _run(str(tmp_path), engine="serial")
        graph, probs = _inputs()
        with ShardedSamplingEngine(
            graph, probs, seeds=5, engine="process", chunk_size=64,
            cache=str(tmp_path),
        ) as warm:
            targets = {ad: sum(r.get(ad, 0) for r in REQUESTS) for ad in range(3)}
            assert warm.prefetch(targets) == 0
            warm.ensure(targets)
            assert warm.backend_invocations == 0
            # A fully warm run never pays for process-pool spin-up.
            assert warm._resources["executor"] is None

    def test_cache_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        graph, probs = _inputs()
        with ShardedSamplingEngine(graph, probs, seeds=5) as eng:
            assert eng.cache is None
            assert eng.cache_stats() is None


class TestFailureTransparency:
    def test_poisoned_entry_quarantined_and_recomputed(self, tmp_path):
        _, cold_invocations, cold_root, _ = _run(str(tmp_path))
        blocks = []
        for root, _, names in os.walk(tmp_path / "objects"):
            blocks += [os.path.join(root, n) for n in names if n.endswith(".blk")]
        assert blocks
        with open(sorted(blocks)[0], "r+b") as handle:
            handle.seek(HEADER_SIZE + 4)
            byte = handle.read(1)
            handle.seek(HEADER_SIZE + 4)
            handle.write(bytes([byte[0] ^ 0xFF]))

        with pytest.warns(RuntimeWarning, match="corrupt entry"):
            _, warm_invocations, warm_root, stats = _run(str(tmp_path))
        # Exactly the poisoned block was recomputed; bytes unchanged.
        assert warm_invocations == 1
        assert warm_root == cold_root
        assert stats["corrupt"] == 1

    def test_diverged_legacy_sequence_falls_back_to_sampling(self, tmp_path):
        graph, probs = _inputs()
        kwargs = dict(seeds=5, rng="legacy", dsan=True)
        with ShardedSamplingEngine(graph, probs, cache=str(tmp_path), **kwargs) as cold:
            cold.sample({0: 100, 1: 50, 2: 50})
        # Different request counts: the cached sequence no longer
        # matches, so the engine must sample — and still be bit-exact.
        with ShardedSamplingEngine(
            graph, probs, cache=str(tmp_path), **kwargs
        ) as warm, ShardedSamplingEngine(graph, probs, **kwargs) as plain:
            for eng in (warm, plain):
                eng.sample({0: 60, 1: 50, 2: 50})
                eng.sample({0: 40})
            # ads 1 and 2 hit (same counts); ad 0 diverged, so both of
            # its requests resampled.
            assert warm.backend_invocations == 2
            assert warm.dsan_root() == plain.dsan_root()
            _assert_shards_equal(warm, plain)

    def test_concurrent_writers_agree(self, tmp_path):
        """Two processes cold-populating one cache directory race
        benignly (atomic renames, WAL catalog); a warm run against the
        result is complete and bit-exact."""
        script = tmp_path / "populate.py"
        script.write_text(
            "import sys\n"
            "from repro.graph.generators import erdos_renyi\n"
            "from repro.graph.probabilities import constant_probabilities\n"
            "from repro.rrset.sharded import ShardedSamplingEngine\n"
            "graph = erdos_renyi(60, 0.05, seed=2)\n"
            "probs = [constant_probabilities(graph, p) for p in (0.05, 0.08, 0.1)]\n"
            "with ShardedSamplingEngine(graph, probs, seeds=5, chunk_size=64,\n"
            "                           dsan=True, cache=sys.argv[1]) as eng:\n"
            "    for requests in ({0: 120, 1: 80, 2: 40}, {1: 30}, {0: 5, 2: 200}):\n"
            "        eng.sample(requests)\n"
            "    print(eng.dsan_root())\n",
            encoding="utf-8",
        )
        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        cache_dir = tmp_path / "cache"
        writers = [
            subprocess.Popen(
                [sys.executable, str(script), str(cache_dir)],
                env=env, stdout=subprocess.PIPE, text=True,
            )
            for _ in range(2)
        ]
        roots = []
        for writer in writers:
            out, _ = writer.communicate(timeout=120)
            assert writer.returncode == 0
            roots.append(out.strip())
        assert roots[0] == roots[1]

        _, warm_invocations, warm_root, stats = _run(str(cache_dir))
        assert warm_invocations == 0
        assert warm_root == roots[0]
        assert stats["hits"] > 0


class TestTIRMWarmStart:
    def test_second_allocation_skips_sampling_and_matches(self, tmp_path):
        problem = _problem()
        kwargs = dict(
            seed=6, initial_pilot=400, max_rr_sets_per_ad=3_000, epsilon=0.2,
            cache=str(tmp_path), dataset="toy",
        )
        cold = TIRMAllocator(**kwargs).allocate(problem)
        warm = TIRMAllocator(**kwargs).allocate(problem)
        assert cold.stats["backend_invocations"] > 0
        assert warm.stats["backend_invocations"] == 0
        assert warm.allocation == cold.allocation
        assert np.array_equal(warm.estimated_revenues, cold.estimated_revenues)
        assert warm.stats["theta_per_ad"] == cold.stats["theta_per_ad"]

        with ShardCache(tmp_path) as cache:
            rows = cache.catalog.list_allocations()
            assert len(rows) == 2
            assert rows[0]["dataset"] == rows[1]["dataset"] == "toy"
            assert rows[1]["backend_invocations"] == 0
            record = cache.catalog.get_allocation(rows[0]["id"])
            assert record["stats"]["total_rr_sets"] == record["total_rr_sets"]

    def test_warm_process_engine_matches_cold_serial(self, tmp_path):
        """Cache entries are engine-agnostic: blocks written by the
        serial engine warm-start the process engine bit-exactly."""
        problem = _problem()
        kwargs = dict(
            seed=6, initial_pilot=400, max_rr_sets_per_ad=3_000, epsilon=0.2,
            cache=str(tmp_path), dataset="toy",
        )
        cold = TIRMAllocator(engine="serial", **kwargs).allocate(problem)
        warm = TIRMAllocator(engine="process", **kwargs).allocate(problem)
        assert warm.stats["backend_invocations"] == 0
        assert warm.allocation == cold.allocation
        assert warm.stats["theta_per_ad"] == cold.stats["theta_per_ad"]
