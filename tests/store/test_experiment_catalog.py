"""ExperimentCatalog: the WAL-mode SQLite index — row round-trips,
LRU bookkeeping, checkpoint lineage/protection, benchmark history."""

from __future__ import annotations

import pytest

from repro.store.catalog import ExperimentCatalog


def _shard_row(key: str, index: int, **overrides):
    row = dict(
        shard_key=key, block_index=index, ad=0, rng="philox", mode="blocked",
        chunk_size=64, entropy="123", graph_hash="g" * 32,
        num_sets=64, num_members=200, nbytes=1024, digest="d" * 32,
    )
    row.update(overrides)
    return row


@pytest.fixture
def catalog(tmp_path):
    with ExperimentCatalog(str(tmp_path)) as cat:
        yield cat


def test_record_and_list_shards(catalog):
    catalog.record_shards([_shard_row("k1", 0), _shard_row("k1", 1)])
    rows = catalog.list_shards()
    assert [(r["shard_key"], r["block_index"]) for r in rows] == [
        ("k1", 0), ("k1", 1)
    ]
    assert catalog.total_shard_bytes() == 2048


def test_touch_bumps_uses(catalog):
    catalog.record_shards([_shard_row("k1", 0)])
    catalog.touch_shards([("k1", 0), ("k1", 0)])
    (row,) = catalog.list_shards()
    assert row["uses"] == 2
    assert row["last_used_at"] >= row["created_at"]


def test_forget_shard(catalog):
    catalog.record_shards([_shard_row("k1", 0)])
    catalog.forget_shard("k1", 0)
    assert catalog.list_shards() == []


def test_allocation_roundtrip(catalog):
    record_id = catalog.record_allocation({
        "algorithm": "tirm", "dataset": "figure1", "seed": 7,
        "rng": "philox", "chunk_size": 64, "engine": "serial",
        "backend": "numpy", "transport": "none", "dsan_root": "r" * 32,
        "iterations": 3, "total_rr_sets": 900, "cache_hits": 5,
        "cache_misses": 1, "backend_invocations": 1,
        "provenance": {"start_method": None},
        "stats": {"theta_per_ad": [300, 300, 300]},
    })
    assert record_id == 1
    record = catalog.get_allocation(record_id)
    assert record["algorithm"] == "tirm"
    assert record["dataset"] == "figure1"
    assert record["backend_invocations"] == 1
    assert record["provenance"] == {"start_method": None}
    assert record["stats"]["theta_per_ad"] == [300, 300, 300]
    (summary,) = catalog.list_allocations()
    assert summary["id"] == record_id
    assert "provenance" not in summary  # list view is the slim projection


def test_get_unknown_allocation_is_none(catalog):
    assert catalog.get_allocation(99) is None


def test_checkpoint_reregistration_replaces_refs(catalog, tmp_path):
    artifact = tmp_path / "ckpt.npz"
    artifact.write_bytes(b"x")
    catalog.record_checkpoint(
        str(artifact), iterations=1, config={}, shard_refs=[("k1", 2)]
    )
    catalog.record_checkpoint(
        str(artifact), iterations=2, config={}, shard_refs=[("k1", 5), ("k2", 0)]
    )
    (row,) = catalog.list_checkpoints()
    assert row["iterations"] == 2
    assert catalog.protected_shards() == {"k1": 5, "k2": 0}


def test_dead_checkpoint_stops_pinning(catalog, tmp_path):
    artifact = tmp_path / "ckpt.npz"
    artifact.write_bytes(b"x")
    catalog.record_checkpoint(
        str(artifact), iterations=1, config={}, shard_refs=[("k1", 3)]
    )
    artifact.unlink()
    assert catalog.protected_shards() == {}
    assert catalog.list_checkpoints() == []


def test_protected_shards_takes_max_over_checkpoints(catalog, tmp_path):
    for name, max_index in (("a.npz", 2), ("b.npz", 7)):
        artifact = tmp_path / name
        artifact.write_bytes(b"x")
        catalog.record_checkpoint(
            str(artifact), iterations=1, config={}, shard_refs=[("k1", max_index)]
        )
    assert catalog.protected_shards() == {"k1": 7}


def test_benchmark_history_roundtrip(catalog):
    catalog.record_benchmarks(
        [{"phase": "shard_cache", "variant": "warm", "n": 400, "ads": 3,
          "theta": 900, "wall_s": 0.12, "speedup": 4.5}],
        report="BENCH_PR8.json",
    )
    (row,) = catalog.list_benchmarks()
    assert row["phase"] == "shard_cache"
    assert row["variant"] == "warm"
    assert row["report"] == "BENCH_PR8.json"
    assert row["speedup"] == "4.5"


def test_concurrent_connections_share_one_database(tmp_path):
    with ExperimentCatalog(str(tmp_path)) as writer, ExperimentCatalog(
        str(tmp_path)
    ) as reader:
        writer.record_shards([_shard_row("k1", 0)])
        assert len(reader.list_shards()) == 1
        reader.record_shards([_shard_row("k2", 0)])
        assert len(writer.list_shards()) == 2
