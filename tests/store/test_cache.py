"""ShardCache semantics: read-through hits/misses, quarantine of
poisoned entries, idempotent stores, failure-transparent writes, and
the tri-state ``resolve_cache`` knob."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.store.blocks import HEADER_SIZE
from repro.store.cache import ENV_VAR, ShardCache, resolve_cache

KEY = "a" * 32


def _block():
    lengths = np.array([2, 2], dtype=np.int64)
    members = np.array([1, 3, 0, 2], dtype=np.int32)
    return members, lengths


def test_store_then_load_hits(tmp_path):
    with ShardCache(tmp_path) as cache:
        members, lengths = _block()
        assert cache.store(KEY, 0, members, lengths)
        entry = cache.load(KEY, 0)
        assert entry is not None
        assert np.array_equal(entry.members, members)
        entry.release()
        assert cache.stats["hits"] == 1
        assert cache.stats["stores"] == 1


def test_load_miss_counts(tmp_path):
    with ShardCache(tmp_path) as cache:
        assert cache.load(KEY, 0) is None
        assert not cache.has(KEY, 0)
        assert cache.stats["misses"] == 2
        assert cache.stats["hits"] == 0


def test_store_is_idempotent(tmp_path):
    with ShardCache(tmp_path) as cache:
        members, lengths = _block()
        assert cache.store(KEY, 0, members, lengths)
        mtime = os.path.getmtime(cache.entry_path(KEY, 0))
        assert cache.store(KEY, 0, members, lengths)
        assert cache.stats["stores"] == 1  # second store kept the entry
        assert os.path.getmtime(cache.entry_path(KEY, 0)) == mtime


def test_poisoned_entry_quarantined_and_reported_as_miss(tmp_path):
    with ShardCache(tmp_path) as cache:
        members, lengths = _block()
        cache.store(KEY, 0, members, lengths)
        cache.flush()
        path = cache.entry_path(KEY, 0)
        with open(path, "r+b") as handle:
            handle.seek(HEADER_SIZE)
            handle.write(b"\xff" * 4)
        with pytest.warns(RuntimeWarning, match="corrupt entry"):
            assert cache.load(KEY, 0) is None
        assert cache.stats["corrupt"] == 1
        assert not os.path.exists(path)  # removed, will be recomputed
        cache.flush()
        assert cache.catalog.list_shards() == []  # row dropped too


def test_store_failure_warns_once_and_keeps_serving(tmp_path, monkeypatch):
    with ShardCache(tmp_path) as cache:
        members, lengths = _block()

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr("repro.store.cache.write_block", boom)
        with pytest.warns(RuntimeWarning, match="cannot store"):
            assert not cache.store(KEY, 0, members, lengths)
        # Second failure is silent — the warning fires once per cache.
        assert not cache.store(KEY, 1, members, lengths)
        assert cache.stats["store_errors"] == 2


def test_catalog_rows_flushed_on_close(tmp_path):
    cache = ShardCache(tmp_path)
    members, lengths = _block()
    cache.store(KEY, 0, members, lengths, meta={"ad": 3, "rng": "philox"})
    cache.close()
    with ShardCache(tmp_path) as reopened:
        rows = reopened.catalog.list_shards()
        assert len(rows) == 1
        assert rows[0]["shard_key"] == KEY
        assert rows[0]["ad"] == 3
        assert rows[0]["rng"] == "philox"


def test_hits_touch_lru_bookkeeping(tmp_path):
    with ShardCache(tmp_path) as cache:
        members, lengths = _block()
        cache.store(KEY, 0, members, lengths)
        cache.load(KEY, 0).release()
        cache.load(KEY, 0).release()
        cache.flush()
        (row,) = cache.catalog.list_shards()
        assert row["uses"] == 2


class TestResolveCache:
    def test_none_without_env_disables(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_cache(None) == (None, False)

    def test_none_with_env_opens_owned(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_VAR, str(tmp_path))
        cache, owned = resolve_cache(None)
        assert owned and cache.directory == str(tmp_path)
        cache.close()

    def test_blank_env_disables(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "   ")
        assert resolve_cache(None) == (None, False)

    def test_path_opens_owned(self, tmp_path):
        cache, owned = resolve_cache(tmp_path)
        assert owned and isinstance(cache, ShardCache)
        cache.close()

    def test_instance_is_shared_not_owned(self, tmp_path):
        with ShardCache(tmp_path) as cache:
            resolved, owned = resolve_cache(cache)
            assert resolved is cache
            assert not owned
