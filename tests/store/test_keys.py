"""Key schema: content addresses are stable, collision-free across the
fields they digest, and insensitive to substrate knobs by construction
(the functions simply take no substrate parameters)."""

from __future__ import annotations

import json

from repro.store.keys import legacy_shard_key, philox_shard_key, state_hash


def _philox(**overrides):
    base = dict(
        graph_hash="g" * 32, probs_hash="p" * 32, entropy=12345, ad=0,
        chunk_size=1024, mode="blocked",
    )
    base.update(overrides)
    return philox_shard_key(**base)


def _legacy(**overrides):
    base = dict(
        graph_hash="g" * 32, probs_hash="p" * 32, state_hash="s" * 32,
        ad=0, mode="blocked",
    )
    base.update(overrides)
    return legacy_shard_key(**base)


def test_philox_key_is_deterministic():
    assert _philox() == _philox()
    assert len(_philox()) == 32  # 16-byte blake2b hexdigest


def test_philox_key_varies_with_every_field():
    base = _philox()
    assert _philox(graph_hash="h" * 32) != base
    assert _philox(probs_hash="q" * 32) != base
    assert _philox(entropy=12346) != base
    assert _philox(ad=1) != base
    assert _philox(chunk_size=512) != base
    assert _philox(mode="scalar") != base


def test_legacy_key_varies_with_every_field():
    base = _legacy()
    assert _legacy(graph_hash="h" * 32) != base
    assert _legacy(probs_hash="q" * 32) != base
    assert _legacy(state_hash="t" * 32) != base
    assert _legacy(ad=1) != base
    assert _legacy(mode="scalar") != base


def test_philox_and_legacy_namespaces_disjoint():
    assert _philox() != _legacy()


def test_state_hash_canonical_over_json_roundtrip():
    state = {"kind": "legacy", "position": 7, "seeds": [3, 1]}
    rehydrated = json.loads(json.dumps(state))
    assert state_hash(state) == state_hash(rehydrated)
    assert state_hash(state) != state_hash({**state, "position": 8})


def test_state_hash_key_order_independent():
    assert state_hash({"a": 1, "b": 2}) == state_hash({"b": 2, "a": 1})
