"""Block entry files: roundtrip, atomicity, and corruption detection.

The block file is the store's trust boundary — every failure mode here
must surface as :class:`CorruptBlockError` (so the cache quarantines
and recomputes), never as a silently wrong splice.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.store.blocks import (
    HEADER_SIZE,
    MAGIC,
    BlockEntry,
    CorruptBlockError,
    load_block,
    write_block,
)


def _sample_block():
    lengths = np.array([3, 1, 2], dtype=np.int64)
    members = np.array([4, 9, 2, 7, 1, 5], dtype=np.int32)
    return members, lengths


def test_roundtrip_preserves_payload(tmp_path):
    members, lengths = _sample_block()
    path = str(tmp_path / "0.blk")
    nbytes, digest = write_block(path, members, lengths)
    assert nbytes == os.path.getsize(path)
    entry = load_block(path)
    assert isinstance(entry, BlockEntry)
    assert entry.num_sets == 3
    assert entry.num_members == 6
    assert entry.digest == digest
    assert entry.state is None
    assert np.array_equal(entry.lengths, lengths)
    assert np.array_equal(entry.members, members)
    entry.release()
    assert entry.buffer is None


def test_roundtrip_preserves_stream_state(tmp_path):
    members, lengths = _sample_block()
    path = str(tmp_path / "0.blk")
    state = {"kind": "legacy", "position": 42, "seeds": [1, 2, 3]}
    write_block(path, members, lengths, state=state)
    entry = load_block(path)
    assert entry.state == state
    entry.release()


def test_offsets_match_packed_layout(tmp_path):
    members, lengths = _sample_block()
    path = str(tmp_path / "0.blk")
    write_block(path, members, lengths)
    entry = load_block(path)
    assert entry.lengths_offset == HEADER_SIZE
    assert entry.members_offset == HEADER_SIZE + lengths.size * 8
    raw = np.frombuffer(
        entry.buffer, dtype=np.int32, count=members.size,
        offset=entry.members_offset,
    )
    assert np.array_equal(raw, members)
    entry.release()


def test_missing_entry_is_a_plain_miss(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_block(str(tmp_path / "absent.blk"))


def test_no_tmp_files_left_behind(tmp_path):
    members, lengths = _sample_block()
    write_block(str(tmp_path / "0.blk"), members, lengths)
    assert sorted(p.name for p in tmp_path.iterdir()) == ["0.blk"]


def test_write_is_idempotent_bytes(tmp_path):
    members, lengths = _sample_block()
    a, b = str(tmp_path / "a.blk"), str(tmp_path / "b.blk")
    write_block(a, members, lengths)
    write_block(b, members, lengths)
    assert open(a, "rb").read() == open(b, "rb").read()


class TestCorruption:
    def _written(self, tmp_path):
        members, lengths = _sample_block()
        path = str(tmp_path / "0.blk")
        write_block(path, members, lengths)
        return path

    def test_truncated_file(self, tmp_path):
        path = self._written(tmp_path)
        with open(path, "r+b") as handle:
            handle.truncate(HEADER_SIZE - 10)
        with pytest.raises(CorruptBlockError, match="truncated"):
            load_block(path)

    def test_truncated_payload(self, tmp_path):
        path = self._written(tmp_path)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 4)
        with pytest.raises(CorruptBlockError, match="inconsistent sizes"):
            load_block(path)

    def test_bad_magic(self, tmp_path):
        path = self._written(tmp_path)
        with open(path, "r+b") as handle:
            handle.write(b"XXSBLK99")
        with pytest.raises(CorruptBlockError, match="bad magic"):
            load_block(path)
        assert MAGIC != b"XXSBLK99"

    def test_flipped_payload_byte_fails_digest(self, tmp_path):
        path = self._written(tmp_path)
        with open(path, "r+b") as handle:
            handle.seek(HEADER_SIZE + 8)  # inside the lengths payload
            byte = handle.read(1)
            handle.seek(HEADER_SIZE + 8)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(CorruptBlockError, match="digest mismatch"):
            load_block(path)

    def test_undecodable_state(self, tmp_path):
        members, lengths = _sample_block()
        path = str(tmp_path / "0.blk")
        write_block(path, members, lengths, state={"position": 1})
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.seek(size - 3)
            handle.write(b"\xff\xff\xff")
        with pytest.raises(CorruptBlockError, match="stream state"):
            load_block(path)
