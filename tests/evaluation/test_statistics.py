"""Bootstrap statistics."""

import numpy as np
import pytest

from repro.evaluation.statistics import (
    bootstrap_mean,
    paired_regret_comparison,
)


class TestBootstrapMean:
    def test_interval_contains_estimate(self):
        rng = np.random.default_rng(0)
        interval = bootstrap_mean(rng.normal(5.0, 1.0, size=200), seed=1)
        assert interval.low <= interval.estimate <= interval.high
        assert interval.contains(interval.estimate)

    def test_interval_covers_true_mean_usually(self):
        rng = np.random.default_rng(2)
        interval = bootstrap_mean(rng.normal(3.0, 0.5, size=500), seed=3)
        assert interval.contains(3.0)

    def test_narrower_with_more_data(self):
        rng = np.random.default_rng(4)
        small = bootstrap_mean(rng.normal(0, 1, size=20), seed=5)
        large = bootstrap_mean(rng.normal(0, 1, size=2000), seed=5)
        assert (large.high - large.low) < (small.high - small.low)

    def test_deterministic_under_seed(self):
        data = [1.0, 2.0, 3.0, 4.0]
        a = bootstrap_mean(data, seed=6)
        b = bootstrap_mean(data, seed=6)
        assert (a.low, a.high) == (b.low, b.high)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"values": []},
            {"values": [1.0], "confidence": 0.0},
            {"values": [1.0], "confidence": 1.0},
            {"values": [1.0], "num_resamples": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            bootstrap_mean(kwargs.pop("values"), **kwargs)


class TestPairedComparison:
    def test_clear_winner(self):
        rng = np.random.default_rng(7)
        a = rng.normal(1.0, 0.1, size=50)
        b = rng.normal(2.0, 0.1, size=50)
        comparison = paired_regret_comparison(a, b, seed=8)
        assert comparison.mean_difference < 0
        assert comparison.significant
        assert comparison.win_rate > 0.9

    def test_no_difference_not_significant(self):
        rng = np.random.default_rng(9)
        a = rng.normal(1.0, 0.5, size=40)
        b = a + rng.normal(0.0, 0.01, size=40)
        comparison = paired_regret_comparison(a, b, seed=10)
        assert not comparison.significant or abs(comparison.mean_difference) < 0.02

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_regret_comparison([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            paired_regret_comparison([], [])
