"""Experiment record export."""

import csv
import json

import pytest

from repro.evaluation.experiments import ExperimentRecord
from repro.evaluation.export import (
    load_records_json,
    record_to_dict,
    records_to_csv,
    records_to_json,
)


@pytest.fixture
def records():
    return [
        ExperimentRecord(
            experiment="fig3",
            algorithm="TIRM",
            parameters={"kappa": 1},
            total_regret=5.0,
            relative_regret=0.05,
            num_targeted_users=100,
            total_seeds=120,
            runtime_seconds=1.5,
            extras={"stats": {"theta": 1000}},
        ),
        ExperimentRecord(
            experiment="fig4",
            algorithm="Myopic",
            parameters={"lambda": 0.5},
            total_regret=50.0,
            relative_regret=0.5,
            num_targeted_users=300,
            total_seeds=300,
            runtime_seconds=0.01,
        ),
    ]


def test_record_to_dict_flattens_params(records):
    row = record_to_dict(records[0])
    assert row["algorithm"] == "TIRM"
    assert row["param_kappa"] == 1
    assert "extras" not in row
    with_extras = record_to_dict(records[0], include_extras=True)
    assert with_extras["extras"]["stats"]["theta"] == 1000


def test_json_roundtrip(records, tmp_path):
    path = tmp_path / "records.json"
    text = records_to_json(records, path)
    assert json.loads(text) == load_records_json(path)
    loaded = load_records_json(path)
    assert loaded[0]["total_regret"] == 5.0
    assert loaded[1]["param_lambda"] == 0.5


def test_json_without_path_returns_text(records):
    text = records_to_json(records, include_extras=False)
    payload = json.loads(text)
    assert len(payload) == 2
    assert "extras" not in payload[0]


def test_csv_union_of_parameters(records, tmp_path):
    path = tmp_path / "records.csv"
    records_to_csv(records, path)
    with open(path) as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == 2
    assert rows[0]["param_kappa"] == "1"
    assert rows[0]["param_lambda"] == ""  # missing for the fig3 record
    assert rows[1]["param_lambda"] == "0.5"
    assert rows[1]["algorithm"] == "Myopic"
