"""Experiment sweep helpers."""

import pytest

from repro.algorithms.myopic import MyopicAllocator, MyopicPlusAllocator
from repro.datasets.toy import figure1_problem
from repro.evaluation.experiments import (
    run_allocator,
    sweep_attention_bounds,
    sweep_penalties,
)


def test_run_allocator_protocol():
    problem = figure1_problem()
    result, report = run_allocator(
        problem, MyopicAllocator(), eval_runs=200, eval_seed=1
    )
    assert result.algorithm == "Myopic"
    assert report.algorithm == "Myopic"
    assert report.total_regret > 0


def test_sweep_attention_bounds_grid():
    def factory(kappa):
        return figure1_problem().with_attention(
            __import__("repro.advertising.attention", fromlist=["AttentionBounds"])
            .AttentionBounds.uniform(6, kappa)
        )

    records = sweep_attention_bounds(
        "fig3-test",
        factory,
        {"Myopic": MyopicAllocator(), "Myopic+": MyopicPlusAllocator()},
        [1, 2],
        eval_runs=100,
        eval_seed=2,
    )
    assert len(records) == 4
    kappas = {r.parameters["kappa"] for r in records}
    assert kappas == {1, 2}
    algorithms = {r.algorithm for r in records}
    assert algorithms == {"Myopic", "Myopic+"}
    for record in records:
        assert record.experiment == "fig3-test"
        assert record.total_regret >= 0
        assert record.runtime_seconds >= 0


def test_sweep_penalties_grid():
    records = sweep_penalties(
        "fig4-test",
        lambda lam: figure1_problem(penalty=lam),
        {"Myopic": MyopicAllocator()},
        [0.0, 0.1],
        eval_runs=100,
        eval_seed=3,
    )
    assert len(records) == 2
    assert records[0].parameters["lambda"] == 0.0
    assert records[1].parameters["lambda"] == 0.1
    # regret grows with lambda for a fixed allocation
    assert records[1].total_regret >= records[0].total_regret


def test_records_carry_signed_gaps():
    records = sweep_penalties(
        "x",
        lambda lam: figure1_problem(penalty=lam),
        {"Myopic": MyopicAllocator()},
        [0.0],
        eval_runs=50,
        eval_seed=4,
    )
    gaps = records[0].extras["signed_gaps"]
    assert len(gaps) == 4
