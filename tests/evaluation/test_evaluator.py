"""The Monte-Carlo regret referee."""

import numpy as np
import pytest

from repro.advertising.allocation import Allocation
from repro.datasets.toy import (
    PAPER_REGRET_A_LAMBDA0,
    PAPER_REGRET_B_LAMBDA0,
    figure1_allocation_a,
    figure1_allocation_b,
    figure1_problem,
)
from repro.diffusion.exact import exact_spread
from repro.errors import ConfigurationError
from repro.evaluation.evaluator import RegretEvaluator


class TestMeasureRevenues:
    def test_matches_exact_on_gadget(self):
        problem = figure1_problem()
        alloc = figure1_allocation_b()
        evaluator = RegretEvaluator(problem, num_runs=6_000, seed=1)
        revenues, errors = evaluator.measure_revenues(alloc)
        for ad in range(4):
            expected = exact_spread(
                problem.graph,
                problem.ad_edge_probabilities(ad),
                alloc.seed_array(ad),
                ctps=problem.ad_ctps(ad),
            )
            assert revenues[ad] == pytest.approx(expected, abs=4 * errors[ad] + 0.02)

    def test_empty_ad_zero(self):
        problem = figure1_problem()
        alloc = Allocation(4, 6)
        evaluator = RegretEvaluator(problem, num_runs=10, seed=2)
        revenues, errors = evaluator.measure_revenues(alloc)
        assert np.all(revenues == 0)
        assert np.all(errors == 0)

    def test_ad_count_mismatch(self):
        problem = figure1_problem()
        evaluator = RegretEvaluator(problem, num_runs=10)
        with pytest.raises(ConfigurationError):
            evaluator.measure_revenues(Allocation(3, 6))

    def test_deterministic_under_seed(self):
        problem = figure1_problem()
        alloc = figure1_allocation_b()
        a, _ = RegretEvaluator(problem, num_runs=100, seed=3).measure_revenues(alloc)
        b, _ = RegretEvaluator(problem, num_runs=100, seed=3).measure_revenues(alloc)
        assert np.allclose(a, b)


class TestEvaluate:
    def test_example1_regrets(self):
        """Example 1: regret(A) ≈ 6.6, regret(B) ≈ 2.7 at λ = 0."""
        problem = figure1_problem()
        evaluator = RegretEvaluator(problem, num_runs=8_000, seed=4)
        report_a = evaluator.evaluate(figure1_allocation_a(), algorithm="A")
        report_b = evaluator.evaluate(figure1_allocation_b(), algorithm="B")
        assert report_a.total_regret == pytest.approx(PAPER_REGRET_A_LAMBDA0, abs=0.15)
        assert report_b.total_regret == pytest.approx(PAPER_REGRET_B_LAMBDA0, abs=0.15)

    def test_penalty_included(self):
        problem = figure1_problem(penalty=0.1)
        evaluator = RegretEvaluator(problem, num_runs=4_000, seed=5)
        report = evaluator.evaluate(figure1_allocation_b())
        # Example 2: 2.7 + 0.1 * 6 seeds = 3.3
        assert report.total_regret == pytest.approx(3.3, abs=0.15)

    def test_report_counters(self):
        problem = figure1_problem()
        evaluator = RegretEvaluator(problem, num_runs=50, seed=6)
        report = evaluator.evaluate(figure1_allocation_b(), algorithm="B")
        assert report.algorithm == "B"
        assert report.num_targeted_users == 6
        assert report.total_seeds == 6
        assert report.num_runs == 50

    def test_validates_num_runs(self):
        with pytest.raises(ConfigurationError):
            RegretEvaluator(figure1_problem(), num_runs=0)
