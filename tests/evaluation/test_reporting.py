"""Plain-text report formatting."""

from repro.evaluation.experiments import ExperimentRecord
from repro.evaluation.reporting import format_records, format_series, format_table


def test_format_table_alignment():
    text = format_table(["name", "value"], [["a", 1], ["bbbb", 22]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1]
    assert set(lines[2]) <= {"-", "+"}
    # all data lines same width
    assert len(lines[3]) == len(lines[4])


def test_format_table_float_formatting():
    text = format_table(["v"], [[0.123456], [12345.6], [0.0001234], [0]])
    assert "0.12" in text
    assert "1.23e+04" in text or "12345" in text
    assert "0.000123" in text
    assert "\n0" in text or "| 0" in text or text.endswith("0")


def test_format_series():
    text = format_series(
        "kappa", [1, 2], {"TIRM": [5.0, 4.0], "Myopic": [9.0, 11.0]}, title="Fig 3"
    )
    assert "Fig 3" in text
    assert "kappa" in text
    assert "TIRM" in text
    assert "Myopic" in text
    assert len(text.splitlines()) == 5


def _record(algorithm, kappa, regret):
    return ExperimentRecord(
        experiment="e",
        algorithm=algorithm,
        parameters={"kappa": kappa},
        total_regret=regret,
        relative_regret=regret / 10,
        num_targeted_users=3,
        total_seeds=3,
        runtime_seconds=0.1,
    )


def test_format_records_pivot():
    records = [
        _record("TIRM", 1, 5.0),
        _record("TIRM", 2, 4.0),
        _record("Myopic", 1, 9.0),
        _record("Myopic", 2, 11.0),
    ]
    text = format_records(records, title="pivot")
    lines = text.splitlines()
    assert lines[0] == "pivot"
    assert "Myopic" in lines[1] and "TIRM" in lines[1]
    assert len(lines) == 5  # title + header + sep + 2 rows


def test_format_records_missing_cell():
    records = [_record("TIRM", 1, 5.0), _record("Myopic", 2, 9.0)]
    text = format_records(records)
    assert "-" in text


def test_format_records_other_value():
    records = [_record("TIRM", 1, 5.0)]
    text = format_records(records, value="total_seeds")
    assert "3" in text
