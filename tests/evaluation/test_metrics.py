"""Derived metrics."""

import pytest

from repro.advertising.allocation import Allocation
from repro.advertising.regret import allocation_regret
from repro.evaluation.metrics import (
    overshoot_count,
    regret_skew,
    relative_regret,
    targeted_node_counts,
    undershoot_count,
)


@pytest.fixture
def breakdown():
    return allocation_regret(
        revenues=[12.0, 8.0, 10.0],
        budgets=[10.0, 10.0, 10.0],
        seed_counts=[3, 2, 1],
        penalty=0.0,
    )


def test_relative_regret(breakdown):
    assert relative_regret(breakdown) == pytest.approx(4.0 / 30.0)


def test_overshoot_undershoot(breakdown):
    assert overshoot_count(breakdown) == 1
    assert undershoot_count(breakdown) == 1


def test_regret_skew(breakdown):
    # budget regrets: [2, 2, 0] -> median 2, max 2 -> skew 1
    assert regret_skew(breakdown) == pytest.approx(1.0)


def test_regret_skew_degenerate():
    perfect = allocation_regret([10.0], [10.0], [0], 0.0)
    assert regret_skew(perfect) == 0.0


def test_targeted_node_counts():
    allocations = {
        "a": Allocation.from_seed_sets([[0, 1], [1]], num_nodes=5),
        "b": Allocation.from_seed_sets([[2], []], num_nodes=5),
    }
    assert targeted_node_counts(allocations) == {"a": 2, "b": 1}
