"""EnginePool + JobManager: warm reuse, concurrency, incremental jobs.

The service's whole promise is *substrate, never contract*: whichever
engine a job leases — cold, warm, shared with N concurrent clients, or
re-leased for an incremental re-allocation — the allocation bytes must
equal a cold batch run of the same instance (equal dsan roots), with
the warm paths merely skipping sampling-backend invocations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.advertising.advertiser import Advertiser
from repro.advertising.attention import AttentionBounds
from repro.advertising.catalog import AdCatalog
from repro.advertising.problem import AdAllocationProblem
from repro.algorithms.tirm import TIRMAllocator
from repro.errors import ServiceError
from repro.graph.generators import erdos_renyi
from repro.graph.probabilities import constant_probabilities
from repro.service.jobs import JobManager, build_allocator, modified_problem
from repro.service.pool import EnginePool


@pytest.fixture(autouse=True)
def _no_ambient_cache(monkeypatch):
    """``cache=None`` must mean "no cache" here, not the env default."""
    monkeypatch.delenv("REPRO_CACHE", raising=False)


def _problem(seed: int = 0, num_ads: int = 3, budget: float = 6.0):
    graph = erdos_renyi(60, 0.05, seed=seed)
    catalog = AdCatalog(
        [Advertiser(name=f"a{i}", budget=budget, cpe=1.0) for i in range(num_ads)]
    )
    return AdAllocationProblem(
        graph,
        catalog,
        constant_probabilities(graph, 0.08),
        0.4,
        AttentionBounds.uniform(graph.num_nodes, num_ads),
    )


PARAMS = {"seed": 0, "max_rr_sets_per_ad": 1_000, "dsan": True}


def _assert_same_result(result, batch):
    assert result.allocation == batch.allocation
    assert result.stats["dsan_root"] == batch.stats["dsan_root"]
    assert np.array_equal(result.estimated_revenues, batch.estimated_revenues)


class TestEnginePool:
    def test_cold_then_warm_lease(self):
        problem = _problem()
        allocator = build_allocator(PARAMS, dataset=None)
        with EnginePool() as pool:
            lease = pool.lease(problem, allocator)
            assert not lease.warm
            engine = lease.engine
            engine.ensure({0: 32})  # dirty it
            lease.release()
            second = pool.lease(problem, allocator)
            assert second.warm
            assert second.engine is engine
            assert second.engine.total_sets() == 0  # reset on lease
            second.release()
            assert pool.stats() == {
                "warm_leases": 1, "cold_builds": 1,
                "idle_engines": 1, "idle_keys": 1,
            }

    def test_leases_are_exclusive(self):
        problem = _problem()
        allocator = build_allocator(PARAMS, dataset=None)
        with EnginePool() as pool:
            first = pool.lease(problem, allocator)
            second = pool.lease(problem, allocator)  # builds, never shares
            assert first.engine is not second.engine
            first.release()
            second.release()

    def test_key_covers_contract_and_content(self):
        problem = _problem()
        base = build_allocator(PARAMS, dataset=None)
        assert EnginePool.lease_key(problem, base) == EnginePool.lease_key(
            problem, build_allocator(PARAMS, dataset=None)
        )
        for change in (
            {"seed": 1},
            {"chunk_size": 64},
            {"rng": "legacy"},
            {"sampler_mode": "scalar"},
        ):
            other = build_allocator({**PARAMS, **change}, dataset=None)
            assert EnginePool.lease_key(problem, other) != EnginePool.lease_key(
                problem, base
            )
        # Different problem content → different key.
        assert EnginePool.lease_key(_problem(5), base) != EnginePool.lease_key(
            problem, base
        )

    def test_generator_seeds_are_not_poolable(self):
        problem = _problem()
        allocator = TIRMAllocator(seed=np.random.default_rng(0))
        assert EnginePool.lease_key(problem, allocator) is None
        with EnginePool() as pool:
            lease = pool.lease(problem, allocator)
            assert not lease.warm
            engine = lease.engine
            lease.release()  # closed, never pooled
            assert pool.stats()["idle_engines"] == 0
            assert not engine._finalizer.alive

    def test_closed_pool_closes_released_engines(self):
        problem = _problem()
        allocator = build_allocator(PARAMS, dataset=None)
        pool = EnginePool()
        lease = pool.lease(problem, allocator)
        pool.close()
        lease.release()
        assert not lease.engine._finalizer.alive
        with pytest.raises(ServiceError, match="closed"):
            pool.lease(problem, allocator)


class TestJobManager:
    def test_warm_resubmit_is_byte_identical_with_zero_invocations(self):
        problem = _problem()
        batch = TIRMAllocator(**PARAMS).allocate(problem)
        with JobManager(cache=None) as manager:
            cold = manager.submit(problem=problem, params=PARAMS)
            first = manager.result(cold.job_id)
            warm = manager.submit(problem=problem, params=PARAMS)
            second = manager.result(warm.job_id)
        assert cold.engine_warm is False
        assert warm.engine_warm is True
        _assert_same_result(first, batch)
        _assert_same_result(second, batch)
        assert first.stats["backend_invocations"] > 0
        assert second.stats["backend_invocations"] == 0

    def test_concurrent_clients_match_serial_batch(self):
        """N clients hammering one pool — every result byte-identical
        (equal dsan roots) to the serial batch allocation."""
        problem = _problem()
        batch = TIRMAllocator(**PARAMS).allocate(problem)
        with JobManager(cache=None) as manager:
            jobs = [
                manager.submit(problem=problem, params=PARAMS)
                for _ in range(4)
            ]
            results = [manager.result(job.job_id) for job in jobs]
        for result in results:
            _assert_same_result(result, batch)

    def test_cancel_returns_valid_truncated_partial(self):
        problem = _problem()
        with JobManager(cache=None) as manager:
            job = manager.submit(problem=problem, params=PARAMS)
            manager.cancel(job.job_id, wait=True, timeout=60)
            assert job.state in ("cancelled", "done")  # raced completion
            result = job.result
            assert result is not None
            assert result.allocation.total_seeds() == result.stats["iterations"]
            if job.state == "cancelled":
                assert result.stats["truncated"] is True

    def test_progress_and_list_jobs(self):
        problem = _problem()
        with JobManager(cache=None) as manager:
            job = manager.submit(problem=problem, params=PARAMS)
            manager.wait(job.job_id, timeout=60)
            record = manager.progress(job.job_id)
            assert record["state"] == "done"
            assert record["iterations"] > 0
            assert record["snapshot"]["theta"] == job.result.stats["theta_per_ad"]
            rows = manager.list_jobs()
            assert [row["job_id"] for row in rows] == [job.job_id]
            assert rows[0]["catalog_id"] is None  # no cache configured
            with pytest.raises(ServiceError, match="unknown job"):
                manager.progress("job-9999")

    def test_failed_job_surfaces_error(self, monkeypatch):
        problem = _problem()
        with JobManager(cache=None) as manager:
            with pytest.raises(ServiceError, match="unknown allocator"):
                manager.submit(problem=problem, params={"bogus_knob": 1})
            with pytest.raises(ServiceError, match="dataset name or a problem"):
                manager.submit()

            def boom(problem, allocator):
                raise ValueError("lease exploded")

            monkeypatch.setattr(manager.pool, "lease", boom)
            job = manager.submit(problem=problem, params=PARAMS)
            job.done.wait(60)
            assert job.state == "failed"
            summary = job.summary()
            assert summary["state"] == "failed"
            assert "lease exploded" in summary["error"]
            with pytest.raises(ServiceError, match="failed"):
                manager.result(job.job_id)
            with pytest.raises(ServiceError, match="failed"):
                manager.reallocate(job.job_id, update_budgets={0: 9.0})

    def test_restart_over_cache_dir_serves_warm_runs(self, tmp_path):
        """A killed-and-restarted service over the same --cache dir
        serves reruns from the shard store: zero backend invocations in
        the fresh process, byte-identical allocation, and catalog rows
        carrying the job ids of both lives."""
        problem = _problem()
        batch = TIRMAllocator(**PARAMS).allocate(problem)
        cache_dir = str(tmp_path / "store")
        with JobManager(cache=cache_dir) as first_life:
            job1 = first_life.submit(problem=problem, params=PARAMS)
            result1 = first_life.result(job1.job_id)
        assert result1.stats["backend_invocations"] > 0
        with JobManager(cache=cache_dir) as second_life:
            job2 = second_life.submit(problem=problem, params=PARAMS)
            result2 = second_life.result(job2.job_id)
            rows = second_life.cache.catalog.list_allocations()
        assert job2.engine_warm is False  # fresh process, cold engine...
        assert result2.stats["backend_invocations"] == 0  # ...warm store
        _assert_same_result(result2, batch)
        assert [row["job_id"] for row in rows] == ["job-0001", "job-0001"]
        assert all(row["dsan_root"] == batch.stats["dsan_root"] for row in rows)


class TestReallocate:
    def test_budget_update_releases_warm_engine_and_matches_cold(self):
        problem = _problem()
        new_budget = float(problem.catalog[0].budget * 1.5)
        with JobManager(cache=None) as manager:
            job = manager.submit(problem=problem, params=PARAMS)
            manager.wait(job.job_id, timeout=60)
            retry = manager.reallocate(
                job.job_id, update_budgets={"0": new_budget}
            )
            result = manager.result(retry.job_id)
        assert retry.source_job_id == job.job_id
        assert retry.engine_warm is True
        modified = modified_problem(problem, update_budgets={0: new_budget})
        cold = TIRMAllocator(**PARAMS).allocate(modified)
        _assert_same_result(result, cold)
        # Backend runs only for θ ranges grown past the source job's —
        # the retained blocks serve everything sampled before.
        assert result.stats["backend_invocations"] <= cold.stats[
            "backend_invocations"
        ]

    def test_add_and_remove_ads_rebuild_the_instance(self):
        problem = _problem()
        with JobManager(cache=None) as manager:
            job = manager.submit(problem=problem, params=PARAMS)
            manager.wait(job.job_id, timeout=60)
            grown = manager.reallocate(
                job.job_id,
                add_ads=[{"name": "a9", "budget": 4.0, "cpe": 1.0, "like": 0}],
            )
            grown_result = manager.result(grown.job_id)
            shrunk = manager.reallocate(job.job_id, remove_ads=[1])
            shrunk_result = manager.result(shrunk.job_id)
        assert grown.problem.num_ads == problem.num_ads + 1
        assert shrunk.problem.num_ads == problem.num_ads - 1
        cold_grown = TIRMAllocator(**PARAMS).allocate(grown.problem)
        cold_shrunk = TIRMAllocator(**PARAMS).allocate(shrunk.problem)
        _assert_same_result(grown_result, cold_grown)
        _assert_same_result(shrunk_result, cold_shrunk)

    def test_reallocate_validation(self):
        problem = _problem()
        with JobManager(cache=None) as manager:
            job = manager.submit(problem=problem, params=PARAMS)
            manager.wait(job.job_id, timeout=60)
            with pytest.raises(ServiceError, match="needs"):
                manager.reallocate(job.job_id)
            with pytest.raises(ServiceError, match="no ad"):
                manager.reallocate(job.job_id, update_budgets={7: 1.0})
            with pytest.raises(ServiceError, match="empty catalog"):
                manager.reallocate(job.job_id, remove_ads=[0, 1, 2])
            with pytest.raises(ServiceError, match="unknown job"):
                manager.reallocate("job-9999", remove_ads=[0])


class TestEstimateSpread:
    def test_estimates_through_the_pool(self):
        from repro.rrset.estimator import estimate_spread_from_sets

        problem = _problem()
        with JobManager(cache=None) as manager:
            job = manager.submit(problem=problem, params=PARAMS)
            result = manager.result(job.job_id)
            seeds = [int(v) for v in result.allocation.seed_array(0)]
            estimate = manager.estimate_spread(
                problem=problem, ad=0, seeds=seeds, num_sets=512,
                params=PARAMS,
            )
        assert estimate["engine_warm"] is True
        assert estimate["num_sets"] == 512
        # Reference: the same estimator over a fresh engine's sets.
        allocator = TIRMAllocator(**PARAMS)
        with allocator._build_engine(problem, None, None) as engine:
            engine.ensure({0: 512})
            expected = estimate_spread_from_sets(
                engine.shard(0), problem.num_nodes, seeds
            )
        assert estimate["spread"] == pytest.approx(expected)
