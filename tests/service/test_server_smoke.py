"""End-to-end smoke: a real ``repro serve`` subprocess over TCP.

Everything here crosses a process boundary on purpose — the in-process
semantics live in test_service.py; this file is about the wire: the
port-file handshake, the line-delimited JSON protocol, byte-equality of
served allocations against in-process batch runs, crash-restart over a
shared cache directory, clean shutdown, and ``/dev/shm`` hygiene.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.algorithms.tirm import TIRMAllocator
from repro.datasets.registry import load_dataset
from repro.errors import ServiceError
from repro.service.client import ServiceClient
from repro.service.jobs import modified_problem

ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SRC = os.path.join(ROOT, "src")

DATASET = "flixster"
DATASET_KWARGS = {"scale": 0.002}
PARAMS = {"seed": 0, "max_rr_sets_per_ad": 1_000, "dsan": True}


def _shm_segments() -> set[str]:
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith("psm_")}
    except FileNotFoundError:
        return set()


def _spawn_server(port_file, cache_dir) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=SRC)
    env.pop("REPRO_CACHE", None)
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port-file", str(port_file), "--cache", str(cache_dir),
        ],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )


def _await_port_file(proc: subprocess.Popen, port_file, timeout=60.0) -> None:
    deadline = time.monotonic() + timeout
    while not os.path.exists(port_file):
        assert proc.poll() is None, (
            f"server died before publishing its port:\n{proc.stdout.read()}"
        )
        assert time.monotonic() < deadline, "server never published its port"
        time.sleep(0.05)


def _stop(proc: subprocess.Popen, client: ServiceClient | None = None) -> None:
    if proc.poll() is None:
        try:
            if client is not None:
                client.shutdown()
        except ServiceError:
            proc.terminate()
        try:
            proc.wait(30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(30)


def _batch(problem):
    return TIRMAllocator(**PARAMS).allocate(problem)


def _assert_payload_matches(payload: dict, batch) -> None:
    assert payload["stats"]["dsan_root"] == batch.stats["dsan_root"]
    assert payload["seeds_per_ad"] == [
        [int(v) for v in batch.allocation.seed_array(ad)]
        for ad in range(len(payload["seeds_per_ad"]))
    ]


class TestServerRoundTrip:
    def test_full_protocol_round_trip(self, tmp_path):
        problem = load_dataset(DATASET, **DATASET_KWARGS)
        batch = _batch(problem)
        shm_before = _shm_segments()
        port_file = tmp_path / "port"
        proc = _spawn_server(port_file, tmp_path / "cache")
        client = ServiceClient(port_file=port_file, timeout=120.0)
        try:
            _await_port_file(proc, port_file)
            assert client.ping()["pong"] is True

            # Cold allocation, byte-identical to the in-process batch run.
            cold = client.submit(
                DATASET, params=PARAMS, dataset_kwargs=DATASET_KWARGS
            )
            payload = client.wait(cold, timeout=300)
            assert payload["state"] == "done"
            assert payload["engine_warm"] is False
            assert payload["stats"]["backend_invocations"] > 0
            _assert_payload_matches(payload, batch)

            # Warm resubmit: zero backend invocations, same bytes.
            warm = client.submit(
                DATASET, params=PARAMS, dataset_kwargs=DATASET_KWARGS
            )
            rerun = client.wait(warm, timeout=300)
            assert rerun["engine_warm"] is True
            assert rerun["stats"]["backend_invocations"] == 0
            _assert_payload_matches(rerun, batch)

            # Finished jobs expose checkpoint-shaped progress snapshots.
            progress = client.progress(cold)
            assert progress["state"] == "done"
            assert progress["snapshot"]["iterations"] == payload["iterations"]

            # Incremental re-allocation re-leases the warm engine and
            # matches a cold batch run of the modified instance.
            new_budget = float(problem.catalog[0].budget * 1.5)
            retry = client.reallocate(cold, update_budgets={"0": new_budget})
            bumped = client.wait(retry, timeout=300)
            assert bumped["source_job_id"] == cold
            assert bumped["engine_warm"] is True
            modified = modified_problem(problem, update_budgets={0: new_budget})
            modified_batch = _batch(modified)
            _assert_payload_matches(bumped, modified_batch)
            assert bumped["stats"]["backend_invocations"] <= (
                modified_batch.stats["backend_invocations"]
            )

            # Cancellation lands in a valid terminal state.
            doomed = client.submit(
                DATASET, params=PARAMS, dataset_kwargs=DATASET_KWARGS
            )
            cancelled = client.cancel(doomed, wait=True, timeout=300)
            assert cancelled["state"] in ("cancelled", "done")

            # Spread estimation rides the same warm pool.
            seeds = payload["seeds_per_ad"][0]
            estimate = client.estimate_spread(
                DATASET, ad=0, seeds=seeds, num_sets=512,
                params=PARAMS, dataset_kwargs=DATASET_KWARGS,
            )
            assert estimate["engine_warm"] is True
            assert estimate["spread"] >= 0.0

            # Every finished job landed in the experiment catalog.
            jobs = client.list_jobs()
            assert [j["job_id"] for j in jobs] == [cold, warm, retry, doomed]
            assert all(
                j["catalog_id"] is not None
                for j in jobs if j["state"] == "done"
            )

            # Malformed requests error without killing the server.
            with pytest.raises(ServiceError, match="unknown op"):
                client.request("frobnicate")
            assert client.ping()["pong"] is True

            client.shutdown()
            assert proc.wait(30) == 0
        finally:
            _stop(proc, client)
        assert not os.path.exists(port_file)  # removed on clean exit
        assert _shm_segments() == shm_before  # no leaked segments

    def test_killed_server_restarts_warm_over_cache_dir(self, tmp_path):
        """SIGKILL the server mid-life; a fresh server over the same
        ``--cache`` directory serves the rerun from the shard store with
        zero backend invocations and identical bytes."""
        problem = load_dataset(DATASET, **DATASET_KWARGS)
        batch = _batch(problem)
        shm_before = _shm_segments()
        port_file = tmp_path / "port"
        cache_dir = tmp_path / "cache"

        first = _spawn_server(port_file, cache_dir)
        client = ServiceClient(port_file=port_file, timeout=120.0)
        try:
            _await_port_file(first, port_file)
            job = client.submit(
                DATASET, params=PARAMS, dataset_kwargs=DATASET_KWARGS
            )
            payload = client.wait(job, timeout=300)
            assert payload["stats"]["backend_invocations"] > 0
        finally:
            first.send_signal(signal.SIGKILL)
            first.wait(30)
        os.unlink(port_file)  # a SIGKILL'd server cannot clean up

        second = _spawn_server(port_file, cache_dir)
        try:
            _await_port_file(second, port_file)
            job = client.submit(
                DATASET, params=PARAMS, dataset_kwargs=DATASET_KWARGS
            )
            rerun = client.wait(job, timeout=300)
            # Fresh process → cold engine, but the shard store replays
            # every block: the sampling backend is never invoked.
            assert rerun["engine_warm"] is False
            assert rerun["stats"]["backend_invocations"] == 0
            _assert_payload_matches(rerun, batch)
            client.shutdown()
            assert second.wait(30) == 0
        finally:
            _stop(second, client)
        assert _shm_segments() == shm_before
