"""Hard competition constraints (§7 extension)."""

import numpy as np
import pytest

from repro.advertising.advertiser import Advertiser
from repro.advertising.allocation import Allocation
from repro.advertising.catalog import AdCatalog
from repro.advertising.competition import CompetitionRules
from repro.errors import AllocationError
from repro.topics.distribution import TopicDistribution


class TestRules:
    def test_symmetric(self):
        rules = CompetitionRules(3, [(0, 2)])
        assert rules.in_conflict(0, 2)
        assert rules.in_conflict(2, 0)
        assert not rules.in_conflict(0, 1)
        assert rules.num_conflicts() == 1

    def test_conflicting_ads(self):
        rules = CompetitionRules(4, [(0, 1), (0, 3)])
        assert rules.conflicting_ads(0).tolist() == [1, 3]
        assert rules.conflicting_ads(2).tolist() == []

    def test_validation(self):
        with pytest.raises(AllocationError):
            CompetitionRules(0)
        with pytest.raises(AllocationError):
            CompetitionRules(2, [(0, 0)])
        with pytest.raises(AllocationError):
            CompetitionRules(2, [(0, 5)])


class TestFromTopicOverlap:
    def test_same_topic_ads_conflict(self):
        catalog = AdCatalog(
            [
                Advertiser("a", budget=1, cpe=1, topics=TopicDistribution.skewed(5, 0)),
                Advertiser("b", budget=1, cpe=1, topics=TopicDistribution.skewed(5, 0)),
                Advertiser("c", budget=1, cpe=1, topics=TopicDistribution.skewed(5, 3)),
            ]
        )
        rules = CompetitionRules.from_topic_overlap(catalog, threshold=0.5)
        assert rules.in_conflict(0, 1)
        assert not rules.in_conflict(0, 2)

    def test_missing_topics_rejected(self):
        catalog = AdCatalog([Advertiser("a", budget=1, cpe=1)])
        with pytest.raises(AllocationError, match="lack topic"):
            CompetitionRules.from_topic_overlap(catalog)

    def test_threshold_validated(self):
        catalog = AdCatalog(
            [Advertiser("a", budget=1, cpe=1, topics=TopicDistribution.uniform(2))]
        )
        with pytest.raises(AllocationError):
            CompetitionRules.from_topic_overlap(catalog, threshold=1.5)


class TestViolationsAndRepair:
    @pytest.fixture
    def rules(self):
        return CompetitionRules(3, [(0, 1)])

    def test_violations_found(self, rules):
        allocation = Allocation.from_seed_sets([[0, 1], [1, 2], [1]], num_nodes=4)
        assert rules.violations(allocation) == [(1, 0, 1)]
        assert not rules.is_compatible(allocation)

    def test_compatible_allocation(self, rules):
        allocation = Allocation.from_seed_sets([[0], [1], [0, 1]], num_nodes=3)
        assert rules.is_compatible(allocation)
        assert rules.violations(allocation) == []

    def test_ad_count_checked(self, rules):
        with pytest.raises(AllocationError):
            rules.violations(Allocation(2, 3))

    def test_repair_removes_later_ad_by_default(self, rules):
        allocation = Allocation.from_seed_sets([[1], [1], []], num_nodes=2)
        repaired = rules.repair(allocation)
        assert repaired.seeds(0) == {1}
        assert repaired.seeds(1) == frozenset()
        assert rules.is_compatible(repaired)
        # original untouched
        assert allocation.seeds(1) == {1}

    def test_repair_keeps_higher_score(self, rules):
        allocation = Allocation.from_seed_sets([[1], [1], []], num_nodes=2)
        scores = np.asarray([[0.0, 0.1], [0.0, 0.9]])  # ad 1 values user 1 more
        repaired = rules.repair(allocation, keep_scores=scores)
        assert repaired.seeds(0) == frozenset()
        assert repaired.seeds(1) == {1}

    def test_repair_never_adds(self, rules):
        allocation = Allocation.from_seed_sets([[0, 1], [1], [2]], num_nodes=3)
        repaired = rules.repair(allocation)
        for ad in range(3):
            assert repaired.seeds(ad) <= allocation.seeds(ad)
