"""Attention bounds κ_u."""

import numpy as np
import pytest

from repro.advertising.attention import AttentionBounds
from repro.errors import AllocationError


def test_uniform():
    bounds = AttentionBounds.uniform(5, 2)
    assert bounds.num_nodes == 5
    assert bounds[3] == 2


def test_unlimited_equals_num_ads():
    bounds = AttentionBounds.unlimited(4, 7)
    assert np.all(bounds.kappa == 7)


def test_per_user_values():
    bounds = AttentionBounds([1, 2, 3])
    assert bounds[2] == 3


def test_remaining():
    bounds = AttentionBounds([2, 2, 1])
    remaining = bounds.remaining(np.asarray([0, 2, 5]))
    assert remaining.tolist() == [2, 0, 0]


def test_remaining_shape_checked():
    bounds = AttentionBounds([1, 1])
    with pytest.raises(AllocationError):
        bounds.remaining(np.asarray([1]))


def test_immutability():
    bounds = AttentionBounds([1, 2])
    with pytest.raises(ValueError):
        bounds.kappa[0] = 5


@pytest.mark.parametrize("bad", [[], [-1, 2]])
def test_validation(bad):
    with pytest.raises(AllocationError):
        AttentionBounds(bad)


def test_uniform_negative_rejected():
    with pytest.raises(AllocationError):
        AttentionBounds.uniform(3, -1)
