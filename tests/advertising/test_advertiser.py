"""Advertiser entity."""

import pytest

from repro.advertising.advertiser import Advertiser
from repro.topics.distribution import TopicDistribution


def test_basic():
    ad = Advertiser(name="a", budget=100.0, cpe=2.0)
    assert ad.effective_budget == 100.0
    assert ad.clicks_to_budget() == pytest.approx(50.0)


def test_boost_raises_effective_budget():
    """The β of the §3 Discussion: B' = (1 + β)·B."""
    ad = Advertiser(name="a", budget=100.0, cpe=1.0, boost=0.2)
    assert ad.effective_budget == pytest.approx(120.0)
    assert ad.clicks_to_budget() == pytest.approx(120.0)


def test_topics_optional():
    ad = Advertiser(name="a", budget=1.0, cpe=1.0, topics=TopicDistribution.uniform(3))
    assert ad.topics.num_topics == 3


@pytest.mark.parametrize(
    "kwargs",
    [
        {"name": "a", "budget": 0.0, "cpe": 1.0},
        {"name": "a", "budget": -1.0, "cpe": 1.0},
        {"name": "a", "budget": 1.0, "cpe": 0.0},
        {"name": "a", "budget": 1.0, "cpe": 1.0, "boost": -0.1},
        {"name": "", "budget": 1.0, "cpe": 1.0},
    ],
)
def test_validation(kwargs):
    with pytest.raises(ValueError):
        Advertiser(**kwargs)


def test_frozen():
    ad = Advertiser(name="a", budget=1.0, cpe=1.0)
    with pytest.raises(AttributeError):
        ad.budget = 5.0
