"""Allocation: assignment bookkeeping and validity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.advertising.allocation import Allocation
from repro.advertising.attention import AttentionBounds
from repro.errors import AllocationError


def test_assign_and_query():
    alloc = Allocation(2, 5)
    alloc.assign(3, 0)
    alloc.assign(3, 1)
    assert alloc.seeds(0) == {3}
    assert alloc.ads_of_user(3) == [0, 1]
    assert alloc.user_assignment_counts()[3] == 2


def test_double_assign_same_ad_rejected():
    alloc = Allocation(1, 3)
    alloc.assign(0, 0)
    with pytest.raises(AllocationError):
        alloc.assign(0, 0)


def test_out_of_range_user_rejected():
    alloc = Allocation(1, 3)
    with pytest.raises(AllocationError):
        alloc.assign(3, 0)


def test_unassign():
    alloc = Allocation(1, 3)
    alloc.assign(1, 0)
    alloc.unassign(1, 0)
    assert alloc.seeds(0) == frozenset()
    assert alloc.user_assignment_counts()[1] == 0
    with pytest.raises(AllocationError):
        alloc.unassign(1, 0)


def test_from_seed_sets():
    alloc = Allocation.from_seed_sets([[0, 1], [2]], num_nodes=4)
    assert alloc.seed_counts().tolist() == [2, 1]
    assert alloc.targeted_users() == {0, 1, 2}


def test_from_seed_sets_validates_attention_bounds():
    """§3: a deserialized allocation must respect κ_u when bounds are
    provided — user 0 appears in two seed sets but κ=1."""
    with pytest.raises(AllocationError, match="attention bounds.*0"):
        Allocation.from_seed_sets(
            [[0, 1], [0]], num_nodes=3, bounds=AttentionBounds.uniform(3, 1)
        )


def test_from_seed_sets_accepts_valid_allocation_with_bounds():
    alloc = Allocation.from_seed_sets(
        [[0, 1], [0]], num_nodes=3, bounds=AttentionBounds.uniform(3, 2)
    )
    assert alloc.seed_counts().tolist() == [2, 1]
    assert alloc.is_valid(AttentionBounds.uniform(3, 2))


def test_from_seed_sets_without_bounds_stays_permissive():
    # compat: no bounds, no validation — the historical behaviour
    alloc = Allocation.from_seed_sets([[0], [0], [0]], num_nodes=1)
    assert alloc.user_assignment_counts()[0] == 3


def test_seed_array_sorted():
    alloc = Allocation.from_seed_sets([[3, 0, 2]], num_nodes=4)
    assert alloc.seed_array(0).tolist() == [0, 2, 3]


def test_validity_and_violations():
    alloc = Allocation.from_seed_sets([[0], [0]], num_nodes=2)
    tight = AttentionBounds.uniform(2, 1)
    loose = AttentionBounds.uniform(2, 2)
    assert not alloc.is_valid(tight)
    assert alloc.violations(tight).tolist() == [0]
    assert alloc.is_valid(loose)


def test_validity_shape_checked():
    alloc = Allocation(1, 2)
    with pytest.raises(AllocationError):
        alloc.is_valid(AttentionBounds.uniform(3, 1))


def test_can_assign_respects_bounds():
    alloc = Allocation(2, 2)
    bounds = AttentionBounds.uniform(2, 1)
    assert alloc.can_assign(0, 0, bounds)
    alloc.assign(0, 0)
    assert not alloc.can_assign(0, 0, bounds)  # already a seed
    assert not alloc.can_assign(0, 1, bounds)  # attention exhausted


def test_total_seeds_counts_multiplicity():
    alloc = Allocation.from_seed_sets([[0], [0]], num_nodes=1)
    assert alloc.total_seeds() == 2
    assert len(alloc.targeted_users()) == 1


def test_copy_is_independent():
    alloc = Allocation.from_seed_sets([[0]], num_nodes=2)
    clone = alloc.copy()
    clone.assign(1, 0)
    assert alloc.seeds(0) == {0}
    assert clone.seeds(0) == {0, 1}


def test_equality():
    a = Allocation.from_seed_sets([[0, 1]], num_nodes=3)
    b = Allocation.from_seed_sets([[1, 0]], num_nodes=3)
    assert a == b


@given(
    ops=st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 2)), max_size=30
    )
)
@settings(max_examples=50, deadline=None)
def test_counts_invariant_under_random_assignments(ops):
    """user_assignment_counts always equals the per-user multiplicity of
    the seed sets, whatever sequence of assigns happened."""
    alloc = Allocation(3, 5)
    for user, ad in ops:
        if user not in alloc.seeds(ad):
            alloc.assign(user, ad)
    expected = np.zeros(5, dtype=int)
    for ad in range(3):
        for user in alloc.seeds(ad):
            expected[user] += 1
    assert np.array_equal(alloc.user_assignment_counts(), expected)
    assert alloc.total_seeds() == int(expected.sum())


def test_provenance_roundtrip_and_equality_exclusion():
    """Provenance records the producer's reproducibility contract; it is
    metadata — merged across calls, copied with the allocation, and
    excluded from equality."""
    a = Allocation(2, 4)
    assert a.provenance is None
    a.set_provenance(rng="philox", chunk_size=64)
    a.set_provenance(stream_entropy=7)
    assert a.provenance == {"rng": "philox", "chunk_size": 64, "stream_entropy": 7}
    clone = a.copy()
    assert clone.provenance == a.provenance
    clone.set_provenance(rng="legacy")
    assert a.provenance["rng"] == "philox"  # copies do not share the dict
    b = Allocation(2, 4)
    assert a == b  # provenance never participates in equality
