"""AdCatalog ordering and array views."""

import numpy as np
import pytest

from repro.advertising.advertiser import Advertiser
from repro.advertising.catalog import AdCatalog
from repro.errors import AllocationError


@pytest.fixture
def catalog():
    return AdCatalog(
        [
            Advertiser(name="x", budget=10.0, cpe=1.0),
            Advertiser(name="y", budget=20.0, cpe=2.0, boost=0.5),
        ]
    )


def test_len_and_iteration(catalog):
    assert len(catalog) == 2
    assert [ad.name for ad in catalog] == ["x", "y"]


def test_indexing(catalog):
    assert catalog[1].name == "y"


def test_index_of(catalog):
    assert catalog.index_of("x") == 0
    with pytest.raises(AllocationError):
        catalog.index_of("nope")


def test_budgets_use_boost(catalog):
    assert np.allclose(catalog.budgets(), [10.0, 30.0])


def test_cpes(catalog):
    assert np.allclose(catalog.cpes(), [1.0, 2.0])


def test_total_budget(catalog):
    assert catalog.total_budget() == pytest.approx(40.0)


def test_rejects_empty():
    with pytest.raises(AllocationError):
        AdCatalog([])


def test_rejects_duplicate_names():
    ads = [Advertiser(name="a", budget=1.0, cpe=1.0)] * 2
    with pytest.raises(AllocationError, match="duplicate"):
        AdCatalog(ads)
