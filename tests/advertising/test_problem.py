"""AdAllocationProblem: validation, broadcasting, topic-model collapse."""

import numpy as np
import pytest

from repro.advertising.advertiser import Advertiser
from repro.advertising.attention import AttentionBounds
from repro.advertising.catalog import AdCatalog
from repro.advertising.problem import AdAllocationProblem
from repro.errors import ConfigurationError
from repro.topics.distribution import TopicDistribution
from repro.topics.model import TopicModel


def test_shapes(two_ad_problem):
    assert two_ad_problem.num_ads == 2
    assert two_ad_problem.num_nodes == 4
    assert two_ad_problem.edge_probabilities.shape == (2, 4)
    assert two_ad_problem.ctps.shape == (2, 4)


def test_broadcasting_1d_edge_probs(diamond_graph):
    catalog = AdCatalog([Advertiser(name="a", budget=1.0, cpe=1.0)] )
    problem = AdAllocationProblem(
        diamond_graph,
        catalog,
        np.full(4, 0.3),
        0.5,
        AttentionBounds.uniform(4, 1),
    )
    assert problem.edge_probabilities.shape == (1, 4)
    assert np.all(problem.ctps == 0.5)


def test_scalar_ctp_broadcast(two_ad_problem, diamond_graph):
    problem = AdAllocationProblem(
        diamond_graph,
        two_ad_problem.catalog,
        two_ad_problem.edge_probabilities,
        1.0,
        two_ad_problem.attention,
    )
    assert np.all(problem.ctps == 1.0)


def test_expected_seed_revenue(two_ad_problem):
    # ad 1 (beta): cpe 2.0, ctp 0.5 -> 1.0 per user
    assert np.allclose(two_ad_problem.expected_seed_revenue(1), 1.0)


def test_max_penalty_for_theorem2(two_ad_problem):
    # min over ads of min-CTP * cpe = min(0.8*1, 0.5*2) = 0.8
    assert two_ad_problem.max_penalty_for_theorem2() == pytest.approx(0.8)


def test_with_penalty_shares_arrays(two_ad_problem):
    changed = two_ad_problem.with_penalty(0.7)
    assert changed.penalty == 0.7
    assert changed.edge_probabilities is two_ad_problem.edge_probabilities


def test_with_attention(two_ad_problem):
    new_bounds = AttentionBounds.uniform(4, 2)
    changed = two_ad_problem.with_attention(new_bounds)
    assert changed.attention is new_bounds
    assert changed.penalty == two_ad_problem.penalty


def test_memory_bytes_positive(two_ad_problem):
    assert two_ad_problem.memory_bytes() > 0


class TestValidation:
    def test_bad_edge_prob_shape(self, diamond_graph, two_ad_problem):
        with pytest.raises(ConfigurationError):
            AdAllocationProblem(
                diamond_graph,
                two_ad_problem.catalog,
                np.zeros((2, 3)),
                0.5,
                two_ad_problem.attention,
            )

    def test_bad_ctp_shape(self, diamond_graph, two_ad_problem):
        with pytest.raises(ConfigurationError):
            AdAllocationProblem(
                diamond_graph,
                two_ad_problem.catalog,
                two_ad_problem.edge_probabilities,
                np.zeros((2, 3)),
                two_ad_problem.attention,
            )

    def test_bad_attention_size(self, diamond_graph, two_ad_problem):
        with pytest.raises(ConfigurationError):
            AdAllocationProblem(
                diamond_graph,
                two_ad_problem.catalog,
                two_ad_problem.edge_probabilities,
                0.5,
                AttentionBounds.uniform(5, 1),
            )

    def test_negative_penalty(self, diamond_graph, two_ad_problem):
        with pytest.raises(ConfigurationError):
            AdAllocationProblem(
                diamond_graph,
                two_ad_problem.catalog,
                two_ad_problem.edge_probabilities,
                0.5,
                two_ad_problem.attention,
                penalty=-0.1,
            )


class TestFromTopicModel:
    @pytest.fixture
    def model(self, diamond_graph):
        edge_probs = np.asarray([[0.2] * 4, [0.6] * 4])
        seed_probs = np.asarray([[0.02] * 4, [0.08] * 4])
        return TopicModel(diamond_graph, edge_probs, seed_probs)

    def test_collapse(self, model, diamond_graph):
        catalog = AdCatalog(
            [
                Advertiser(
                    name="a", budget=1.0, cpe=1.0, topics=TopicDistribution.point(2, 0)
                ),
                Advertiser(
                    name="b", budget=1.0, cpe=1.0, topics=TopicDistribution.point(2, 1)
                ),
            ]
        )
        problem = AdAllocationProblem.from_topic_model(
            model, catalog, AttentionBounds.uniform(4, 1)
        )
        assert np.allclose(problem.ad_edge_probabilities(0), 0.2)
        assert np.allclose(problem.ad_edge_probabilities(1), 0.6)
        assert np.allclose(problem.ad_ctps(0), 0.02)
        assert np.allclose(problem.ad_ctps(1), 0.08)

    def test_explicit_ctps_override(self, model):
        catalog = AdCatalog(
            [Advertiser(name="a", budget=1.0, cpe=1.0, topics=TopicDistribution.point(2, 0))]
        )
        problem = AdAllocationProblem.from_topic_model(
            model, catalog, AttentionBounds.uniform(4, 1), ctps=np.full((1, 4), 0.5)
        )
        assert np.all(problem.ctps == 0.5)

    def test_missing_topics_rejected(self, model):
        catalog = AdCatalog([Advertiser(name="a", budget=1.0, cpe=1.0)])
        with pytest.raises(ConfigurationError, match="lack topic distributions"):
            AdAllocationProblem.from_topic_model(
                model, catalog, AttentionBounds.uniform(4, 1)
            )
