"""Regret objective (Eq. 3–4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.advertising.regret import (
    RegretBreakdown,
    allocation_regret,
    budget_regret,
    regret_of,
)


def test_budget_regret_symmetric():
    assert budget_regret(10, 12) == pytest.approx(2.0)
    assert budget_regret(10, 8) == pytest.approx(2.0)


def test_regret_of_includes_penalty():
    assert regret_of(10, 8, 0.5, 4) == pytest.approx(2.0 + 2.0)


def test_regret_of_validates():
    with pytest.raises(ValueError):
        regret_of(10, 8, -0.1, 2)
    with pytest.raises(ValueError):
        regret_of(10, 8, 0.1, -2)


class TestBreakdown:
    @pytest.fixture
    def breakdown(self):
        return allocation_regret(
            revenues=[5.6, 0.0, 0.0, 0.0],
            budgets=[4.0, 2.0, 2.0, 1.0],
            seed_counts=[6, 0, 0, 0],
            penalty=0.1,
        )

    def test_example2_numbers(self, breakdown):
        """Example 2: allocation A has regret 6.6 + 0.1·6 = 7.2."""
        assert breakdown.total_budget_regret == pytest.approx(6.6)
        assert breakdown.total == pytest.approx(7.2)

    def test_per_ad(self, breakdown):
        assert breakdown.per_ad().tolist() == pytest.approx([1.6 + 0.6, 2.0, 2.0, 1.0])

    def test_signed_gaps(self, breakdown):
        gaps = breakdown.signed_budget_gaps()
        assert gaps[0] == pytest.approx(1.6)
        assert gaps[1] == pytest.approx(-2.0)

    def test_relative_to_budget(self, breakdown):
        assert breakdown.relative_to_budget() == pytest.approx(7.2 / 9.0)

    def test_misaligned_shapes_rejected(self):
        with pytest.raises(ValueError):
            RegretBreakdown(
                revenues=np.zeros(2), budgets=np.zeros(3), seed_counts=np.zeros(2), penalty=0.0
            )

    def test_negative_penalty_rejected(self):
        with pytest.raises(ValueError):
            allocation_regret([1.0], [1.0], [0], -0.5)


@given(
    budgets=st.lists(st.floats(0.1, 100), min_size=1, max_size=6),
    revenues=st.lists(st.floats(0, 200), min_size=1, max_size=6),
    penalty=st.floats(0, 2),
)
@settings(max_examples=60, deadline=None)
def test_total_equals_sum_of_parts(budgets, revenues, penalty):
    """Eq. (4) decomposition: total = Σ budget-regret + Σ seed-regret."""
    size = min(len(budgets), len(revenues))
    budgets, revenues = budgets[:size], revenues[:size]
    seeds = list(range(size))
    breakdown = allocation_regret(revenues, budgets, seeds, penalty)
    expected = sum(
        abs(b - r) + penalty * s for b, r, s in zip(budgets, revenues, seeds)
    )
    assert breakdown.total == pytest.approx(expected, rel=1e-9)
    assert breakdown.total >= breakdown.total_budget_regret - 1e-12
