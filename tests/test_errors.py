"""The exception hierarchy is catchable at the root."""

import pytest

from repro.errors import (
    AllocationError,
    ConfigurationError,
    EstimationError,
    GraphError,
    ReproError,
    TopicModelError,
)


@pytest.mark.parametrize(
    "exc",
    [GraphError, TopicModelError, AllocationError, ConfigurationError, EstimationError],
)
def test_all_errors_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)
    with pytest.raises(ReproError):
        raise exc("boom")


def test_repro_error_is_an_exception():
    assert issubclass(ReproError, Exception)
