"""Rule-level tests for the determinism-contract linter.

Each rule gets a seeded fixture tree (one violation per rule, written
under a ``repro/``-shaped layout so the config's module matching
applies) plus targeted positive/negative cases for its semantics.
"""

from __future__ import annotations

import pytest

from repro.analysis import lint_file, lint_paths
from repro.analysis.config import DEFAULT_CONFIG, AnalysisConfig, module_key
from repro.analysis.rules import ALL_RULES, default_rules, rules_by_code


def _write(tmp_path, relpath: str, source: str):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return path


def _codes(findings):
    return [f.code for f in findings]


# ----------------------------------------------------------------------
# The fixture tree: one violation per rule, plus a clean module
# ----------------------------------------------------------------------
FIXTURES = {
    "R101": (
        "repro/diffusion/stray_rng.py",
        "import numpy as np\n"
        "\n"
        "def draw():\n"
        "    rng = np.random.default_rng(3)\n"
        "    return rng.random(4)\n",
        4,
    ),
    "R102": (
        "repro/algorithms/clocked.py",
        "import time\n"
        "\n"
        "def entropy():\n"
        "    return int(time.time())\n",
        4,
    ),
    "R103": (
        "repro/rrset/hotset.py",
        "def splice(ids):\n"
        "    for member in set(ids):\n"
        "        yield member\n",
        2,
    ),
    "R104": (
        "repro/rrset/leaky.py",
        "from multiprocessing import shared_memory\n"
        "\n"
        "def publish(data):\n"
        "    segment = shared_memory.SharedMemory(create=True, size=len(data))\n"
        "    segment.buf[: len(data)] = data\n"
        "    return segment.name\n",
        4,
    ),
    "R105": (
        "repro/evaluation/poker.py",
        "def peek(pool):\n"
        "    return pool._members[:10]\n",
        2,
    ),
}

CLEAN = (
    "repro/evaluation/clean.py",
    "def total(values):\n"
    "    return sum(sorted(values))\n",
)


@pytest.fixture
def fixture_tree(tmp_path):
    for relpath, source, _ in FIXTURES.values():
        _write(tmp_path, relpath, source)
    _write(tmp_path, *CLEAN)
    return tmp_path


def test_fixture_tree_one_finding_per_rule(fixture_tree):
    findings = lint_paths([fixture_tree])
    assert sorted(_codes(findings)) == sorted(FIXTURES)
    by_code = {f.code: f for f in findings}
    for code, (relpath, _, line) in FIXTURES.items():
        finding = by_code[code]
        assert finding.path.replace("\\", "/").endswith(relpath)
        assert finding.line == line, (code, finding)


def test_rule_registry_is_complete():
    assert len(ALL_RULES) == 5
    assert sorted(rules_by_code()) == ["R101", "R102", "R103", "R104", "R105"]
    for rule in default_rules():
        assert rule.code and rule.description


# ----------------------------------------------------------------------
# Module identity / config
# ----------------------------------------------------------------------
def test_module_key_suffix_from_repro_root():
    assert module_key("src/repro/utils/rng.py") == "repro/utils/rng.py"
    assert module_key("/a/b/repro/rrset/pool.py") == "repro/rrset/pool.py"
    assert module_key("/tmp/fixture/bad.py") == "bad.py"
    # The *last* repro component wins for nested checkouts.
    assert module_key("repro/vendor/repro/x.py") == "repro/x.py"


def test_default_config_matches_contract_seams():
    cfg = DEFAULT_CONFIG
    assert cfg.is_rng_seam("repro/utils/rng.py")
    assert cfg.is_rng_seam("repro/rrset/sampler.py")
    assert cfg.is_rng_seam("repro/rrset/backends/base.py")
    assert not cfg.is_rng_seam("repro/diffusion/spread.py")
    assert cfg.is_seed_source_seam("repro/utils/rng.py")
    assert cfg.is_seed_source_seam("repro/store/catalog.py")
    assert cfg.is_seed_source_seam("repro/service/jobs.py")
    assert not cfg.is_seed_source_seam("repro/rrset/sampler.py")
    assert cfg.is_service("repro/service/server.py")
    assert cfg.is_service("repro/service/pool.py")
    assert not cfg.is_service("repro/store/catalog.py")
    assert cfg.is_hot_path("repro/rrset/pool.py")
    assert cfg.is_hot_path("repro/rrset/backends/numba_backend.py")
    assert cfg.is_hot_path("repro/algorithms/tirm.py")
    assert not cfg.is_hot_path("repro/algorithms/greedy.py")
    assert cfg.is_pool_module("repro/rrset/pool.py")


def test_extra_allowed_widens_a_seam(tmp_path):
    path = _write(tmp_path, "repro/widgets/w.py", FIXTURES["R101"][1])
    assert _codes(lint_file(path)) == ["R101"]
    widened = AnalysisConfig(extra_allowed={"R101": {"repro/widgets/w.py"}})
    assert lint_file(path, config=widened) == []


# ----------------------------------------------------------------------
# R101 — RNG discipline
# ----------------------------------------------------------------------
def test_r101_allows_the_seams(tmp_path):
    for seam in (
        "repro/utils/rng.py",
        "repro/rrset/sampler.py",
        "repro/rrset/backends/base.py",
    ):
        path = _write(tmp_path, seam, FIXTURES["R101"][1])
        assert "R101" not in _codes(lint_file(path))


def test_r101_catches_from_import_and_stdlib_random(tmp_path):
    path = _write(
        tmp_path,
        "repro/topics/t.py",
        "from numpy.random import default_rng\n"
        "import random\n"
        "g = default_rng()\n"
        "x = random.random()\n",
    )
    findings = [f for f in lint_file(path) if f.code == "R101"]
    assert [f.line for f in findings] == [3, 4]


def test_r101_ignores_deterministic_stream_classes(tmp_path):
    # Constructing counter-based machinery from explicit seeds is what
    # the seams themselves do — not a discipline violation elsewhere.
    path = _write(
        tmp_path,
        "repro/topics/det.py",
        "import numpy as np\n"
        "seq = np.random.SeedSequence(123)\n"
        "bits = np.random.Philox(seq)\n",
    )
    assert "R101" not in _codes(lint_file(path))


# ----------------------------------------------------------------------
# R102 — nondeterministic seed sources
# ----------------------------------------------------------------------
def test_r102_entropyless_seed_sequence(tmp_path):
    path = _write(
        tmp_path,
        "repro/topics/seeds.py",
        "import numpy as np\n"
        "fresh = np.random.SeedSequence()\n"
        "explicit_none = np.random.SeedSequence(entropy=None)\n"
        "seeded = np.random.SeedSequence(42)\n"
        "keyword = np.random.SeedSequence(entropy=42)\n",
    )
    findings = [f for f in lint_file(path) if f.code == "R102"]
    assert [f.line for f in findings] == [2, 3]


def test_r102_entropy_sources_and_seam(tmp_path):
    source = (
        "import os\n"
        "import time\n"
        "a = os.urandom(16)\n"
        "b = time.time_ns()\n"
    )
    path = _write(tmp_path, "repro/graph/g.py", source)
    findings = [f for f in lint_file(path) if f.code == "R102"]
    assert [f.line for f in findings] == [3, 4]
    seam = _write(tmp_path, "repro/utils/rng.py", source)
    assert "R102" not in _codes(lint_file(seam))


# ----------------------------------------------------------------------
# R103 — unordered iteration in hot paths
# ----------------------------------------------------------------------
def test_r103_only_fires_in_hot_paths(tmp_path):
    source = FIXTURES["R103"][1]
    cold = _write(tmp_path, "repro/advertising/c.py", source)
    assert "R103" not in _codes(lint_file(cold))
    hot = _write(tmp_path, "repro/algorithms/tirm.py", source)
    assert "R103" in _codes(lint_file(hot))


def test_r103_order_insensitive_consumers_are_fine(tmp_path):
    path = _write(
        tmp_path,
        "repro/rrset/ok.py",
        "def stats(ids, other):\n"
        "    pool = set(ids)\n"
        "    a = sorted(pool.union(other))\n"
        "    b = len({1, 2})\n"
        "    c = max(frozenset(ids))\n"
        "    return a, b, c\n",
    )
    assert "R103" not in _codes(lint_file(path))


def test_r103_flags_order_sensitive_sinks(tmp_path):
    path = _write(
        tmp_path,
        "repro/rrset/sinks.py",
        "def bad(ids, other):\n"
        "    a = list(set(ids))\n"
        "    b = [x for x in frozenset(ids)]\n"
        "    c = ','.join({'x', 'y'})\n"
        "    d = f(*set(ids))\n"
        "    e = list(set(ids).union(other))\n"
        "    return a, b, c, d, e\n",
    )
    findings = [f for f in lint_file(path) if f.code == "R103"]
    assert [f.line for f in findings] == [2, 3, 4, 5, 6]


def test_r103_dict_iteration_not_flagged(tmp_path):
    # Dicts iterate in insertion order; TIRM's marginal-coverage walk
    # depends on it — flagging .values() would outlaw correct code.
    path = _write(
        tmp_path,
        "repro/rrset/dictok.py",
        "def walk(coverage):\n"
        "    total = [v for v in coverage.values()]\n"
        "    for node in coverage:\n"
        "        total.append(node)\n"
        "    return total\n",
    )
    assert "R103" not in _codes(lint_file(path))


# ----------------------------------------------------------------------
# R104 — shared-memory unlink hygiene
# ----------------------------------------------------------------------
def test_r104_try_finally_unlink_is_clean(tmp_path):
    path = _write(
        tmp_path,
        "repro/rrset/tidy.py",
        "from multiprocessing import shared_memory\n"
        "\n"
        "def use(data):\n"
        "    segment = shared_memory.SharedMemory(create=True, size=8)\n"
        "    try:\n"
        "        segment.buf[:8] = data\n"
        "    finally:\n"
        "        segment.close()\n"
        "        segment.unlink()\n",
    )
    assert "R104" not in _codes(lint_file(path))


def test_r104_success_only_unlink_flags_missing_error_path(tmp_path):
    path = _write(
        tmp_path,
        "repro/rrset/halfway.py",
        "from multiprocessing import shared_memory\n"
        "\n"
        "def use(data):\n"
        "    segment = shared_memory.SharedMemory(create=True, size=8)\n"
        "    segment.buf[:8] = data\n"
        "    segment.unlink()\n",
    )
    findings = [f for f in lint_file(path) if f.code == "R104"]
    assert len(findings) == 1
    assert "error path" in findings[0].message


def test_r104_attach_without_create_not_flagged(tmp_path):
    path = _write(
        tmp_path,
        "repro/rrset/attach.py",
        "from multiprocessing import shared_memory\n"
        "\n"
        "def read(name):\n"
        "    segment = shared_memory.SharedMemory(name=name)\n"
        "    return bytes(segment.buf)\n",
    )
    assert "R104" not in _codes(lint_file(path))


def test_r104_ownership_handoff_suppression(tmp_path):
    path = _write(
        tmp_path,
        "repro/rrset/handoff.py",
        "from multiprocessing import shared_memory\n"
        "\n"
        "def publish(data):\n"
        "    segment = shared_memory.SharedMemory(create=True, size=8)"
        "  # reprolint: disable=R104 -- parent owns the unlink\n"
        "    return segment.name\n",
    )
    assert lint_file(path) == []


def test_r104_bare_open_in_storage_tier_flagged(tmp_path):
    path = _write(
        tmp_path,
        "repro/store/bad_open.py",
        "def read_header(path):\n"
        "    handle = open(path, 'rb')\n"
        "    return handle.read(64)\n",
    )
    findings = [f for f in lint_file(path) if f.code == "R104"]
    assert len(findings) == 1
    assert "with" in findings[0].message


def test_r104_with_open_in_storage_tier_is_clean(tmp_path):
    path = _write(
        tmp_path,
        "repro/store/good_open.py",
        "def read_header(path):\n"
        "    with open(path, 'rb') as handle:\n"
        "        return handle.read(64)\n",
    )
    assert "R104" not in _codes(lint_file(path))


def test_r104_bare_open_outside_storage_tier_not_flagged(tmp_path):
    path = _write(
        tmp_path,
        "repro/evaluation/loader.py",
        "def read_header(path):\n"
        "    handle = open(path, 'rb')\n"
        "    return handle.read(64)\n",
    )
    assert "R104" not in _codes(lint_file(path))


# ----------------------------------------------------------------------
# R104 — service-tier network-resource hygiene
# ----------------------------------------------------------------------
LEAKY_SOCKET = (
    "import socket\n"
    "\n"
    "def ask(port, message):\n"
    "    sock = socket.create_connection(('127.0.0.1', port))\n"
    "    sock.sendall(message)\n"
    "    return sock.recv(64)\n"
)


def test_r104_leaky_socket_in_service_tier_flagged(tmp_path):
    path = _write(tmp_path, "repro/service/leaky_client.py", LEAKY_SOCKET)
    findings = [f for f in lint_file(path) if f.code == "R104"]
    assert len(findings) == 1
    assert "socket" in findings[0].message
    assert "close" in findings[0].message


def test_r104_leaky_socket_outside_service_tier_not_flagged(tmp_path):
    path = _write(tmp_path, "repro/evaluation/probe.py", LEAKY_SOCKET)
    assert "R104" not in _codes(lint_file(path))


def test_r104_with_managed_socket_is_clean(tmp_path):
    path = _write(
        tmp_path,
        "repro/service/tidy_client.py",
        "import socket\n"
        "\n"
        "def ask(port, message):\n"
        "    with socket.create_connection(('127.0.0.1', port)) as sock:\n"
        "        sock.sendall(message)\n"
        "        return sock.recv(64)\n",
    )
    assert "R104" not in _codes(lint_file(path))


def test_r104_finally_closed_socket_is_clean(tmp_path):
    path = _write(
        tmp_path,
        "repro/service/finally_client.py",
        "import socket\n"
        "\n"
        "def ask(port, message):\n"
        "    sock = socket.create_connection(('127.0.0.1', port))\n"
        "    try:\n"
        "        sock.sendall(message)\n"
        "        return sock.recv(64)\n"
        "    finally:\n"
        "        sock.close()\n",
    )
    assert "R104" not in _codes(lint_file(path))


def test_r104_success_only_close_flags_missing_error_path(tmp_path):
    path = _write(
        tmp_path,
        "repro/service/halfway_client.py",
        "import socket\n"
        "\n"
        "def ask(port, message):\n"
        "    sock = socket.create_connection(('127.0.0.1', port))\n"
        "    sock.sendall(message)\n"
        "    reply = sock.recv(64)\n"
        "    sock.close()\n"
        "    return reply\n",
    )
    findings = [f for f in lint_file(path) if f.code == "R104"]
    assert len(findings) == 1
    assert "error path" in findings[0].message


def test_r104_unclosed_asyncio_server_flagged(tmp_path):
    path = _write(
        tmp_path,
        "repro/service/leaky_server.py",
        "import asyncio\n"
        "\n"
        "async def run(handler):\n"
        "    server = await asyncio.start_server(handler, 'localhost', 0)\n"
        "    await asyncio.sleep(3600)\n",
    )
    findings = [f for f in lint_file(path) if f.code == "R104"]
    assert len(findings) == 1
    assert "asyncio server" in findings[0].message


def test_r104_wait_closed_counts_as_close(tmp_path):
    path = _write(
        tmp_path,
        "repro/service/tidy_server.py",
        "import asyncio\n"
        "\n"
        "async def run(handler):\n"
        "    server = await asyncio.start_server(handler, 'localhost', 0)\n"
        "    try:\n"
        "        await asyncio.sleep(3600)\n"
        "    finally:\n"
        "        server.close()\n"
        "        await server.wait_closed()\n",
    )
    assert "R104" not in _codes(lint_file(path))


def test_r102_service_jobs_is_a_sanctioned_timestamp_seam(tmp_path):
    source = (
        "import time\n"
        "\n"
        "def stamp():\n"
        "    return time.time()\n"
    )
    seam = _write(tmp_path, "repro/service/jobs.py", source)
    assert "R102" not in _codes(lint_file(seam))
    elsewhere = _write(tmp_path, "repro/service/pool_clock.py", source)
    assert "R102" in _codes(lint_file(elsewhere))


# ----------------------------------------------------------------------
# R105 — pool buffer encapsulation
# ----------------------------------------------------------------------
def test_r105_pool_module_exempt(tmp_path):
    source = FIXTURES["R105"][1]
    path = _write(tmp_path, "repro/rrset/pool.py", source)
    assert "R105" not in _codes(lint_file(path))


def test_r105_flags_both_private_buffers(tmp_path):
    path = _write(
        tmp_path,
        "repro/rrset/est.py",
        "def bounds(pool):\n"
        "    return pool._indptr[0], pool._members[-1]\n",
    )
    findings = [f for f in lint_file(path) if f.code == "R105"]
    assert len(findings) == 2


def test_r105_public_api_not_flagged(tmp_path):
    path = _write(
        tmp_path,
        "repro/rrset/apiok.py",
        "def view(pool):\n"
        "    return pool.prefix_view(10).members\n",
    )
    assert "R105" not in _codes(lint_file(path))
