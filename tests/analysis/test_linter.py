"""Driver-level tests: file discovery, suppressions, report format,
exit codes, the ``python -m repro.analysis`` / ``repro lint`` entry
points — and the linter's self-application to this repo's ``src/``.
"""

from __future__ import annotations

import io
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.analysis import lint_file, lint_paths
from repro.analysis.findings import Finding, format_report
from repro.analysis.linter import (
    PARSE_ERROR_CODE,
    build_parser,
    iter_python_files,
    main,
    run,
)
from repro.analysis.suppressions import is_suppressed, line_suppressions
from repro.errors import ConfigurationError

SRC_PACKAGE = Path(repro.__file__).resolve().parent

VIOLATION = (
    "import numpy as np\n"
    "rng = np.random.default_rng(3)\n"
)


def _write(tmp_path, relpath: str, source: str):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# Self-application: the shipped tree satisfies its own contract
# ----------------------------------------------------------------------
def test_repro_src_is_clean():
    out = io.StringIO()
    assert run([str(SRC_PACKAGE)], out=out) == 0
    assert "repro lint: clean" in out.getvalue()


# ----------------------------------------------------------------------
# Discovery
# ----------------------------------------------------------------------
def test_iter_python_files_skips_caches_and_dedups(tmp_path):
    keep = _write(tmp_path, "pkg/a.py", "x = 1\n")
    _write(tmp_path, "pkg/__pycache__/a.cpython-311.py", "x = 1\n")
    _write(tmp_path, "pkg/.pytest_cache/b.py", "x = 1\n")
    _write(tmp_path, "pkg/note.txt", "not python\n")
    files = iter_python_files([tmp_path, keep, tmp_path / "pkg"])
    assert files == [keep]


def test_missing_path_is_a_configuration_error(tmp_path):
    with pytest.raises(ConfigurationError, match="no such file"):
        lint_paths([tmp_path / "nope"])
    assert main([str(tmp_path / "nope")]) == 2


# ----------------------------------------------------------------------
# Parse errors
# ----------------------------------------------------------------------
def test_unparsable_file_reports_r100(tmp_path):
    path = _write(tmp_path, "broken.py", "def f(:\n")
    findings = lint_file(path)
    assert [f.code for f in findings] == [PARSE_ERROR_CODE]
    assert "does not parse" in findings[0].message
    assert run([str(path)], out=io.StringIO()) == 1


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def test_inline_suppression_silences_named_code(tmp_path):
    path = _write(
        tmp_path,
        "repro/x.py",
        "import numpy as np\n"
        "rng = np.random.default_rng(3)  # reprolint: disable=R101 -- test seam\n",
    )
    assert lint_file(path) == []


def test_suppression_of_other_code_does_not_apply(tmp_path):
    path = _write(
        tmp_path,
        "repro/x.py",
        "import numpy as np\n"
        "rng = np.random.default_rng(3)  # reprolint: disable=R105\n",
    )
    assert [f.code for f in lint_file(path)] == ["R101"]


def test_suppression_wildcard_and_parsing():
    table = line_suppressions(
        "a = 1\n"
        "b = 2  # reprolint: disable=R101, r104\n"
        "c = 3  # reprolint: disable=all\n"
    )
    assert table == {2: frozenset({"R101", "R104"}), 3: frozenset({"all"})}
    assert is_suppressed(Finding("f.py", 3, 0, "R105", "m"), table)
    assert is_suppressed(Finding("f.py", 2, 0, "R104", "m"), table)
    assert not is_suppressed(Finding("f.py", 2, 0, "R105", "m"), table)
    assert not is_suppressed(Finding("f.py", 1, 0, "R105", "m"), table)


def test_suppression_is_line_scoped(tmp_path):
    path = _write(
        tmp_path,
        "repro/x.py",
        "import numpy as np\n"
        "# reprolint: disable=R101\n"
        "rng = np.random.default_rng(3)\n",
    )
    # The comment sits on its own line, not the finding's line: no effect.
    assert [f.code for f in lint_file(path)] == ["R101"]


# ----------------------------------------------------------------------
# Report format and exit codes
# ----------------------------------------------------------------------
def test_report_format_compiler_shape(tmp_path):
    path = _write(tmp_path, "repro/x.py", VIOLATION)
    out = io.StringIO()
    assert run([str(path)], out=out) == 1
    lines = out.getvalue().splitlines()
    assert lines[0].startswith(f"{path}:2:7: R101 ")
    assert lines[-1] == "repro lint: 1 finding"


def test_format_report_clean_and_plural():
    assert format_report([]) == "repro lint: clean"
    two = [
        Finding("a.py", 1, 0, "R101", "m"),
        Finding("a.py", 2, 0, "R102", "m"),
    ]
    assert format_report(two).splitlines()[-1] == "repro lint: 2 findings"


def test_select_restricts_rules(tmp_path):
    path = _write(
        tmp_path,
        "repro/x.py",
        "import numpy as np\n"
        "rng = np.random.default_rng(3)\n"
        "raw = pool._members\n",
    )
    out = io.StringIO()
    assert run([str(path), "--select", "R105"], out=out) == 1
    assert "R101" not in out.getvalue()
    assert "R105" in out.getvalue()


def test_select_unknown_code_exits_2(capsys):
    assert main(["--select", "R999"]) == 2
    assert "unknown rule code" in capsys.readouterr().err


def test_list_rules_prints_catalog():
    out = io.StringIO()
    assert run(["--list-rules"], out=out) == 0
    text = out.getvalue()
    for code in ("R101", "R102", "R103", "R104", "R105"):
        assert code in text


def test_parser_defaults_to_src():
    args = build_parser().parse_args([])
    assert args.paths == ["src"]


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def test_python_dash_m_entry_point(tmp_path):
    path = _write(tmp_path, "repro/x.py", VIOLATION)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(path)],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(SRC_PACKAGE.parent), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1
    assert "R101" in proc.stdout
    clean = _write(tmp_path, "repro/clean.py", "x = 1\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(clean)],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(SRC_PACKAGE.parent), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0
    assert "repro lint: clean" in proc.stdout
