"""Cross-module integration tests: the paper's pipeline end to end."""

import numpy as np
import pytest

from repro.advertising.advertiser import Advertiser
from repro.advertising.attention import AttentionBounds
from repro.advertising.catalog import AdCatalog
from repro.advertising.problem import AdAllocationProblem
from repro.algorithms.greedy import GreedyAllocator
from repro.algorithms.irie import GreedyIRIEAllocator
from repro.algorithms.myopic import MyopicAllocator, MyopicPlusAllocator
from repro.algorithms.tirm import TIRMAllocator
from repro.datasets.synthetic import flixster_like
from repro.diffusion.spread import ExactSpreadOracle
from repro.evaluation.evaluator import RegretEvaluator
from repro.graph.generators import bipartite_gadget
from repro.graph.probabilities import constant_probabilities


@pytest.fixture(scope="module")
def small_flixster():
    return flixster_like(scale=0.01, num_ads=4, seed=3)


class TestQualityHierarchy:
    """The §6.1 headline: TIRM and Greedy-IRIE beat Myopic/Myopic+."""

    @pytest.fixture(scope="class")
    def reports(self, request):
        problem = flixster_like(scale=0.01, num_ads=4, seed=3)
        evaluator = RegretEvaluator(problem, num_runs=400, seed=11)
        allocators = {
            "Myopic": MyopicAllocator(),
            "Myopic+": MyopicPlusAllocator(),
            "TIRM": TIRMAllocator(seed=0, max_rr_sets_per_ad=10_000),
            "Greedy-IRIE": GreedyIRIEAllocator(),
        }
        out = {}
        for name, allocator in allocators.items():
            result = allocator.allocate(problem)
            assert result.allocation.is_valid(problem.attention)
            out[name] = evaluator.evaluate(result.allocation, algorithm=name)
        return out

    def test_tirm_beats_both_myopics(self, reports):
        assert reports["TIRM"].total_regret < reports["Myopic"].total_regret
        assert reports["TIRM"].total_regret < reports["Myopic+"].total_regret

    def test_irie_beats_myopic(self, reports):
        assert reports["Greedy-IRIE"].total_regret < reports["Myopic"].total_regret

    def test_tirm_targets_fewest_users(self, reports):
        """Table-3 shape: TIRM needs far fewer distinct nodes than the
        Myopics (which target nearly everyone)."""
        assert reports["TIRM"].num_targeted_users < reports["Myopic"].num_targeted_users
        assert reports["TIRM"].num_targeted_users < reports["Myopic+"].num_targeted_users

    def test_myopic_overshoots(self, reports):
        """Myopic ignores virality, so its measured revenue exceeds
        budgets (the paper's motivating observation)."""
        gaps = reports["Myopic"].regret.signed_budget_gaps()
        assert (gaps > 0).sum() >= gaps.size // 2


class TestHardnessGadget:
    """The Theorem-1 reduction: a 3-PARTITION YES-instance maps to a
    REGRET-MINIMIZATION instance with a zero-regret allocation, and
    greedy with an exact oracle finds it on small inputs."""

    def test_zero_regret_allocation_exists_and_is_found(self):
        # X = {3,3,4, 4,3,3} split as {3,3,4} {4,3,3}: C/m = 10, m = 2
        sizes = [3, 3, 4, 4, 3, 3]
        graph, u_nodes = bipartite_gadget(sizes)
        catalog = AdCatalog(
            [Advertiser(name=f"adv{i}", budget=10.0, cpe=1.0) for i in range(2)]
        )
        problem = AdAllocationProblem(
            graph,
            catalog,
            constant_probabilities(graph, 1.0),
            1.0,
            AttentionBounds.uniform(graph.num_nodes, 1),
        )
        result = GreedyAllocator(oracle_factory=ExactSpreadOracle).allocate(problem)
        # Greedy is not the optimal solver of the reduction, but on this
        # YES-instance it reaches the zero-regret optimum: each ad's seed
        # set has spread exactly C/m = 10 (possibly mixing U nodes and
        # leaves, since leaves also have unit spread).
        assert result.estimated_regret().total == pytest.approx(0.0, abs=1e-9)
        oracle = ExactSpreadOracle(problem)
        for ad in range(2):
            assert oracle.revenue(ad, result.allocation.seeds(ad)) == pytest.approx(10.0)


class TestEvaluatorAgreesWithInternalEstimates:
    def test_tirm_internal_vs_measured_direction(self, small_flixster):
        """TIRM's marginal-coverage estimate treats chosen seeds as
        deterministic (Theorem 5's simplification), so at 1–3% CTPs the
        measured revenue is at least the internal estimate."""
        result = TIRMAllocator(seed=1, max_rr_sets_per_ad=8_000).allocate(small_flixster)
        evaluator = RegretEvaluator(small_flixster, num_runs=400, seed=12)
        revenues, errors = evaluator.measure_revenues(result.allocation)
        slack = 4 * errors + 0.5
        assert np.all(revenues >= result.estimated_revenues - slack)


class TestPenaltySweepMonotonicity:
    def test_fixed_allocation_regret_monotone_in_lambda(self, small_flixster):
        result = MyopicPlusAllocator().allocate(small_flixster)
        totals = []
        for lam in (0.0, 0.1, 0.5):
            evaluator = RegretEvaluator(
                small_flixster.with_penalty(lam), num_runs=200, seed=13
            )
            totals.append(evaluator.evaluate(result.allocation).total_regret)
        assert totals[0] <= totals[1] <= totals[2]
