"""Induced subgraphs and BFS balls."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.digraph import DirectedGraph
from repro.graph.generators import erdos_renyi
from repro.graph.subgraph import bfs_ball, induced_subgraph


class TestInducedSubgraph:
    def test_basic(self, diamond_graph):
        sub, node_map, edge_map = induced_subgraph(diamond_graph, [0, 1, 3])
        assert sub.num_nodes == 3
        # edges kept: (0,1) and (1,3) -> relabelled (0,1), (1,2)
        assert sub.edges().tolist() == [[0, 1], [1, 2]]
        assert node_map.tolist() == [0, 1, 3]

    def test_edge_map_aligns_per_edge_data(self, diamond_graph):
        probs = np.asarray([0.1, 0.2, 0.3, 0.4])
        sub, _, edge_map = induced_subgraph(diamond_graph, [0, 1, 3])
        sub_probs = probs[edge_map]
        # original edges of the diamond in canonical order:
        # (0,1)=0.1, (0,2)=0.2, (1,3)=0.3, (2,3)=0.4
        assert sub_probs.tolist() == [0.1, 0.3]

    def test_canonical_order_preserved(self):
        g = erdos_renyi(30, 0.15, seed=5)
        nodes = np.arange(0, 30, 2)
        sub, node_map, edge_map = induced_subgraph(g, nodes)
        # rebuild edges through the maps and compare with sub's own view
        rebuilt = np.column_stack(
            (g.edge_sources[edge_map], g.edge_targets[edge_map])
        )
        relabel = {int(orig): i for i, orig in enumerate(node_map)}
        rebuilt = np.asarray([[relabel[int(u)], relabel[int(v)]] for u, v in rebuilt])
        assert np.array_equal(rebuilt, sub.edges())

    def test_empty_selection(self, diamond_graph):
        sub, node_map, edge_map = induced_subgraph(diamond_graph, [])
        assert sub.num_nodes == 0
        assert edge_map.size == 0

    def test_out_of_range_rejected(self, diamond_graph):
        with pytest.raises(GraphError):
            induced_subgraph(diamond_graph, [0, 9])

    def test_duplicates_collapsed(self, diamond_graph):
        sub, node_map, _ = induced_subgraph(diamond_graph, [1, 1, 2])
        assert node_map.tolist() == [1, 2]


class TestBfsBall:
    def test_radius_zero(self, line_graph):
        assert bfs_ball(line_graph, 1, 0).tolist() == [1]

    def test_radius_one_ignores_direction(self, line_graph):
        assert bfs_ball(line_graph, 1, 1).tolist() == [0, 1, 2]

    def test_radius_covers_all(self, line_graph):
        assert bfs_ball(line_graph, 0, 10).tolist() == [0, 1, 2, 3]

    def test_validation(self, line_graph):
        with pytest.raises(GraphError):
            bfs_ball(line_graph, 0, -1)
        with pytest.raises(GraphError):
            bfs_ball(line_graph, 99, 1)

    def test_ball_then_subgraph_pipeline(self):
        g = erdos_renyi(50, 0.08, seed=6)
        ball = bfs_ball(g, 0, 2)
        sub, node_map, _ = induced_subgraph(g, ball)
        assert sub.num_nodes == ball.size
        assert np.array_equal(node_map, ball)
