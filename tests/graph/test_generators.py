"""Random-graph generators: determinism, shape, structural properties."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.generators import (
    bipartite_gadget,
    community_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    power_law_graph,
    star_graph,
)


class TestErdosRenyi:
    def test_deterministic_under_seed(self):
        a = erdos_renyi(50, 0.1, seed=1)
        b = erdos_renyi(50, 0.1, seed=1)
        assert a == b

    def test_zero_probability_empty(self):
        assert erdos_renyi(10, 0.0, seed=1).num_edges == 0

    def test_full_probability_complete(self):
        g = erdos_renyi(6, 1.0, seed=1)
        assert g.num_edges == 30

    def test_edge_count_near_expectation(self):
        g = erdos_renyi(100, 0.05, seed=3)
        expected = 100 * 99 * 0.05
        assert 0.7 * expected < g.num_edges < 1.3 * expected

    def test_invalid_probability_raises(self):
        with pytest.raises(GraphError):
            erdos_renyi(10, 1.5)


class TestPowerLaw:
    def test_deterministic(self):
        assert power_law_graph(100, 5, seed=2) == power_law_graph(100, 5, seed=2)

    def test_avg_degree_roughly_matches(self):
        g = power_law_graph(500, 8.0, reciprocity=0.0, seed=4)
        avg = g.num_edges / g.num_nodes
        assert 5.0 < avg < 9.0  # dedup removes a few

    def test_heavy_tail(self):
        g = power_law_graph(2000, 6.0, seed=5)
        in_deg = g.in_degrees()
        # Some node should collect far more than the average in-degree.
        assert in_deg.max() > 8 * in_deg.mean()

    def test_reciprocity_adds_edges(self):
        none = power_law_graph(300, 5.0, reciprocity=0.0, seed=6)
        lots = power_law_graph(300, 5.0, reciprocity=0.9, seed=6)
        assert lots.num_edges > none.num_edges

    def test_rejects_bad_exponent(self):
        with pytest.raises(GraphError):
            power_law_graph(10, 2.0, exponent=1.0)

    def test_rejects_tiny(self):
        with pytest.raises(GraphError):
            power_law_graph(1, 2.0)


class TestCommunityGraph:
    def test_symmetric(self):
        g = community_graph(200, 4, seed=7)
        for eid in range(g.num_edges):
            u, v = int(g.edge_sources[eid]), int(g.edge_targets[eid])
            assert g.has_edge(v, u)

    def test_deterministic(self):
        assert community_graph(100, 3, seed=8) == community_graph(100, 3, seed=8)

    def test_rejects_bad_community_count(self):
        with pytest.raises(GraphError):
            community_graph(10, 0)
        with pytest.raises(GraphError):
            community_graph(10, 11)


class TestDeterministicShapes:
    def test_complete(self):
        g = complete_graph(5)
        assert g.num_edges == 20

    def test_cycle(self):
        g = cycle_graph(4)
        assert g.num_edges == 4
        assert g.has_edge(3, 0)

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            cycle_graph(1)

    def test_star(self):
        g = star_graph(6)
        assert g.num_nodes == 7
        assert list(g.out_degrees())[0] == 6
        assert g.in_degrees()[0] == 0


class TestBipartiteGadget:
    """The Theorem-1 reduction gadget: spread of U-node i equals x_i."""

    def test_spreads_equal_inputs(self):
        from repro.diffusion.exact import exact_spread
        from repro.graph.probabilities import constant_probabilities

        sizes = [3, 4, 2]
        graph, u_nodes = bipartite_gadget(sizes)
        probs = constant_probabilities(graph, 1.0)
        for x, u in zip(sizes, u_nodes):
            assert exact_spread(graph, probs, [int(u)]) == pytest.approx(x)

    def test_total_nodes(self):
        graph, u_nodes = bipartite_gadget([3, 3, 3])
        assert graph.num_nodes == 9
        assert len(u_nodes) == 3

    def test_rejects_zero_size(self):
        with pytest.raises(GraphError):
            bipartite_gadget([0])

    def test_empty(self):
        graph, u_nodes = bipartite_gadget([])
        assert graph.num_nodes == 0
        assert u_nodes.size == 0
