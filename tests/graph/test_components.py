"""Connectivity algorithms."""

import numpy as np
import pytest

from repro.graph.components import (
    bfs_distances,
    largest_component_fraction,
    strongly_connected_components,
    weakly_connected_components,
)
from repro.graph.digraph import DirectedGraph
from repro.graph.generators import cycle_graph, erdos_renyi


class TestBFSDistances:
    def test_line(self, line_graph):
        assert bfs_distances(line_graph, 0).tolist() == [0, 1, 2, 3]

    def test_unreachable(self, line_graph):
        assert bfs_distances(line_graph, 3).tolist() == [-1, -1, -1, 0]

    def test_diamond_shortest(self, diamond_graph):
        distances = bfs_distances(diamond_graph, 0)
        assert distances[3] == 2

    def test_out_of_range(self, line_graph):
        with pytest.raises(ValueError):
            bfs_distances(line_graph, 9)

    def test_matches_networkx(self, small_random_graph):
        networkx = pytest.importorskip("networkx")
        nxg = networkx.DiGraph(
            [(int(u), int(v)) for u, v in small_random_graph.edges()]
        )
        nxg.add_nodes_from(range(small_random_graph.num_nodes))
        expected = networkx.single_source_shortest_path_length(nxg, 0)
        got = bfs_distances(small_random_graph, 0)
        for node in range(small_random_graph.num_nodes):
            assert got[node] == expected.get(node, -1)


class TestWeaklyConnected:
    def test_two_islands(self):
        g = DirectedGraph.from_edges([(0, 1), (2, 3)], num_nodes=4)
        labels = weakly_connected_components(g)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_direction_ignored(self):
        g = DirectedGraph.from_edges([(1, 0), (1, 2)], num_nodes=3)
        labels = weakly_connected_components(g)
        assert len(set(labels.tolist())) == 1

    def test_isolated_nodes(self):
        g = DirectedGraph(3, [], [])
        labels = weakly_connected_components(g)
        assert sorted(labels.tolist()) == [0, 1, 2]

    def test_matches_networkx(self, small_random_graph):
        networkx = pytest.importorskip("networkx")
        nxg = networkx.Graph(
            [(int(u), int(v)) for u, v in small_random_graph.edges()]
        )
        nxg.add_nodes_from(range(small_random_graph.num_nodes))
        expected = list(networkx.connected_components(nxg))
        labels = weakly_connected_components(small_random_graph)
        got = {}
        for node in range(small_random_graph.num_nodes):
            got.setdefault(int(labels[node]), set()).add(node)
        assert sorted(map(sorted, got.values())) == sorted(map(sorted, expected))


class TestStronglyConnected:
    def test_cycle_is_one_scc(self):
        labels = strongly_connected_components(cycle_graph(5))
        assert len(set(labels.tolist())) == 1

    def test_dag_all_singletons(self, diamond_graph):
        labels = strongly_connected_components(diamond_graph)
        assert len(set(labels.tolist())) == 4

    def test_mixed(self):
        # 0 <-> 1 cycle, 2 downstream
        g = DirectedGraph.from_edges([(0, 1), (1, 0), (1, 2)])
        labels = strongly_connected_components(g)
        assert labels[0] == labels[1]
        assert labels[2] != labels[0]

    def test_matches_networkx(self):
        networkx = pytest.importorskip("networkx")
        g = erdos_renyi(40, 0.08, seed=21)
        nxg = networkx.DiGraph([(int(u), int(v)) for u, v in g.edges()])
        nxg.add_nodes_from(range(40))
        expected = sorted(
            sorted(component) for component in networkx.strongly_connected_components(nxg)
        )
        labels = strongly_connected_components(g)
        got = {}
        for node in range(40):
            got.setdefault(int(labels[node]), []).append(node)
        assert sorted(sorted(c) for c in got.values()) == expected


def test_largest_component_fraction():
    g = DirectedGraph.from_edges([(0, 1), (1, 2)], num_nodes=5)
    assert largest_component_fraction(g) == pytest.approx(3 / 5)
    assert largest_component_fraction(DirectedGraph(0, [], [])) == 0.0
