"""Edge-list read/write round trips."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.digraph import DirectedGraph
from repro.graph.io import read_edge_list, write_edge_list


def test_roundtrip_plain(tmp_path, diamond_graph):
    path = tmp_path / "g.txt"
    write_edge_list(path, diamond_graph)
    loaded, probs = read_edge_list(path)
    assert loaded == diamond_graph
    assert probs is None


def test_roundtrip_with_probabilities(tmp_path, diamond_graph):
    path = tmp_path / "g.txt"
    probs = np.asarray([0.1, 0.2, 0.3, 0.4])
    write_edge_list(path, diamond_graph, probs)
    loaded, loaded_probs = read_edge_list(path)
    assert loaded == diamond_graph
    assert np.allclose(loaded_probs, probs)


def test_roundtrip_gzip(tmp_path, line_graph):
    path = tmp_path / "g.txt.gz"
    write_edge_list(path, line_graph, header="test graph")
    loaded, _ = read_edge_list(path)
    assert loaded == line_graph


def test_comments_and_blank_lines_skipped(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("# SNAP-style header\n\n0 1\n# more comments\n1 2\n")
    g, _ = read_edge_list(path)
    assert g.num_edges == 2


def test_undirected_read_doubles_edges(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("0 1\n1 2\n")
    g, _ = read_edge_list(path, directed=False)
    assert g.num_edges == 4
    assert g.has_edge(1, 0)


def test_undirected_probabilities_shared(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("0 1 0.25\n")
    g, probs = read_edge_list(path, directed=False)
    assert g.num_edges == 2
    assert np.allclose(probs, [0.25, 0.25])


def test_self_loops_skipped_by_default(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("0 0\n0 1\n")
    g, _ = read_edge_list(path)
    assert g.num_edges == 1


def test_duplicates_skipped_by_default(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("0 1\n0 1\n")
    g, _ = read_edge_list(path)
    assert g.num_edges == 1


def test_bad_column_count_raises(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("0 1 2 3\n")
    with pytest.raises(GraphError, match="columns"):
        read_edge_list(path)


def test_write_probability_shape_checked(tmp_path, line_graph):
    with pytest.raises(GraphError, match="shape"):
        write_edge_list(tmp_path / "g.txt", line_graph, [0.5])


def test_header_written_as_comments(tmp_path):
    g = DirectedGraph.from_edges([(0, 1)])
    path = tmp_path / "g.txt"
    write_edge_list(path, g, header="line one\nline two")
    text = path.read_text()
    assert text.startswith("# line one\n# line two\n")
