"""Forest-fire generator."""

import pytest

from repro.errors import GraphError
from repro.graph.components import largest_component_fraction
from repro.graph.generators import forest_fire_graph


def test_deterministic():
    assert forest_fire_graph(60, seed=1) == forest_fire_graph(60, seed=1)


def test_connected_by_construction():
    """Every new node links to an ambassador, so the graph is one
    weakly connected component."""
    g = forest_fire_graph(120, seed=2)
    assert largest_component_fraction(g) == pytest.approx(1.0)


def test_densification_with_forward_probability():
    sparse = forest_fire_graph(150, forward_probability=0.1, seed=3)
    dense = forest_fire_graph(150, forward_probability=0.5, seed=3)
    assert dense.num_edges > sparse.num_edges


def test_heavy_tail():
    g = forest_fire_graph(400, forward_probability=0.4, seed=4)
    in_deg = g.in_degrees()
    assert in_deg.max() > 5 * max(in_deg.mean(), 1e-9)


def test_no_self_loops_or_duplicates():
    # DirectedGraph construction would reject both; building succeeds.
    g = forest_fire_graph(80, seed=5)
    assert g.num_edges >= 79  # at least the ambassador links


@pytest.mark.parametrize(
    "kwargs",
    [
        {"num_nodes": 1},
        {"num_nodes": 10, "forward_probability": 1.0},
        {"num_nodes": 10, "backward_probability": -0.1},
    ],
)
def test_validation(kwargs):
    n = kwargs.pop("num_nodes")
    with pytest.raises(GraphError):
        forest_fire_graph(n, **kwargs)
