"""Graph summary statistics."""

import pytest

from repro.graph.digraph import DirectedGraph
from repro.graph.generators import complete_graph
from repro.graph.stats import graph_stats


def test_line_graph_stats(line_graph):
    stats = graph_stats(line_graph)
    assert stats.num_nodes == 4
    assert stats.num_edges == 3
    assert stats.avg_out_degree == pytest.approx(0.75)
    assert stats.max_out_degree == 1
    assert stats.max_in_degree == 1
    assert stats.num_reciprocal_edges == 0


def test_reciprocal_count():
    g = DirectedGraph.from_edges([(0, 1), (1, 0), (1, 2)])
    stats = graph_stats(g)
    assert stats.num_reciprocal_edges == 2


def test_complete_graph_density():
    stats = graph_stats(complete_graph(5))
    assert stats.density == pytest.approx(1.0)


def test_empty_graph():
    stats = graph_stats(DirectedGraph(0, [], []))
    assert stats.num_nodes == 0
    assert stats.avg_out_degree == 0.0
    assert stats.density == 0.0


def test_summary_mentions_counts(diamond_graph):
    text = graph_stats(diamond_graph).summary()
    assert "|V|=4" in text
    assert "|E|=4" in text
