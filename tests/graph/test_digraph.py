"""CSR DirectedGraph: construction, queries, invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph.digraph import DirectedGraph


class TestConstruction:
    def test_empty_graph(self):
        g = DirectedGraph(3, [], [])
        assert g.num_nodes == 3
        assert g.num_edges == 0
        assert g.out_neighbors(0).size == 0
        assert g.in_neighbors(2).size == 0

    def test_basic_edges(self, line_graph):
        assert line_graph.num_edges == 3
        assert list(line_graph.out_neighbors(0)) == [1]
        assert list(line_graph.in_neighbors(2)) == [1]

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError, match="self-loop"):
            DirectedGraph(2, [0], [0])

    def test_rejects_duplicate_edge(self):
        with pytest.raises(GraphError, match="duplicate"):
            DirectedGraph(3, [0, 0], [1, 1])

    def test_rejects_out_of_range_node(self):
        with pytest.raises(GraphError, match="endpoints"):
            DirectedGraph(2, [0], [5])

    def test_rejects_negative_node(self):
        with pytest.raises(GraphError):
            DirectedGraph(2, [-1], [1])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(GraphError, match="equal length"):
            DirectedGraph(3, [0, 1], [1])

    def test_rejects_negative_num_nodes(self):
        with pytest.raises(GraphError):
            DirectedGraph(-1, [], [])

    def test_from_edges_infers_num_nodes(self):
        g = DirectedGraph.from_edges([(0, 4)])
        assert g.num_nodes == 5

    def test_from_undirected_edges_doubles(self):
        g = DirectedGraph.from_undirected_edges([(0, 1), (1, 2)])
        assert g.num_edges == 4
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert g.has_edge(1, 2) and g.has_edge(2, 1)

    def test_from_undirected_deduplicates_both_orientations(self):
        g = DirectedGraph.from_undirected_edges([(0, 1), (1, 0)])
        assert g.num_edges == 2


class TestQueries:
    def test_degrees(self, diamond_graph):
        assert list(diamond_graph.out_degrees()) == [2, 1, 1, 0]
        assert list(diamond_graph.in_degrees()) == [0, 1, 1, 2]

    def test_has_edge(self, diamond_graph):
        assert diamond_graph.has_edge(0, 1)
        assert not diamond_graph.has_edge(1, 0)
        assert not diamond_graph.has_edge(0, 3)

    def test_edge_id_roundtrip(self, diamond_graph):
        for eid in range(diamond_graph.num_edges):
            u = int(diamond_graph.edge_sources[eid])
            v = int(diamond_graph.edge_targets[eid])
            assert diamond_graph.edge_id(u, v) == eid

    def test_edge_id_missing_raises(self, diamond_graph):
        with pytest.raises(GraphError):
            diamond_graph.edge_id(3, 0)

    def test_edges_matrix(self, line_graph):
        edges = line_graph.edges()
        assert edges.shape == (3, 2)
        assert edges.tolist() == [[0, 1], [1, 2], [2, 3]]

    def test_reverse(self, line_graph):
        rev = line_graph.reverse()
        assert rev.has_edge(1, 0)
        assert rev.reverse() == line_graph

    def test_memory_bytes_positive(self, line_graph):
        assert line_graph.memory_bytes() > 0

    def test_equality_and_hash(self, line_graph):
        clone = DirectedGraph.from_edges([(0, 1), (1, 2), (2, 3)], num_nodes=4)
        assert clone == line_graph
        assert hash(clone) == hash(line_graph)
        assert line_graph != DirectedGraph(4, [0], [1])


class TestCSRInvariants:
    """The in-CSR and out-CSR views must describe the same edge set and
    agree on canonical edge ids — the property the probability arrays
    rely on."""

    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 14), st.integers(0, 14)).filter(lambda e: e[0] != e[1]),
            max_size=60,
            unique=True,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_views_agree(self, edges):
        g = DirectedGraph.from_edges(edges, num_nodes=15)
        # Rebuild the edge set from each view.
        out_view = set()
        for u in range(15):
            for v, eid in zip(g.out_neighbors(u), g.out_edges_of(u)):
                out_view.add((u, int(v), int(eid)))
        in_view = set()
        for v in range(15):
            for u, eid in zip(g.in_neighbors(v), g.in_edges_of(v)):
                in_view.add((int(u), v, int(eid)))
        assert out_view == in_view
        assert len(out_view) == g.num_edges
        # Canonical ids label (source, target) consistently.
        for u, v, eid in out_view:
            assert g.edge_sources[eid] == u
            assert g.edge_targets[eid] == v

    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 9)).filter(lambda e: e[0] != e[1]),
            max_size=40,
            unique=True,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_degree_sums_match_edge_count(self, edges):
        g = DirectedGraph.from_edges(edges, num_nodes=10)
        assert int(g.out_degrees().sum()) == g.num_edges
        assert int(g.in_degrees().sum()) == g.num_edges

    def test_matches_networkx_reachability(self):
        """Independent oracle: adjacency agrees with networkx."""
        networkx = pytest.importorskip("networkx")
        rng = np.random.default_rng(5)
        edges = set()
        while len(edges) < 40:
            u, v = rng.integers(0, 20, size=2)
            if u != v:
                edges.add((int(u), int(v)))
        g = DirectedGraph.from_edges(sorted(edges), num_nodes=20)
        nxg = networkx.DiGraph(sorted(edges))
        nxg.add_nodes_from(range(20))
        for u in range(20):
            assert set(map(int, g.out_neighbors(u))) == set(nxg.successors(u))
            assert set(map(int, g.in_neighbors(u))) == set(nxg.predecessors(u))
