"""Per-edge probability assignments."""

import numpy as np
import pytest

from repro.graph.probabilities import (
    constant_probabilities,
    exponential_probabilities,
    trivalency_probabilities,
    weighted_cascade_probabilities,
)


def test_constant(diamond_graph):
    probs = constant_probabilities(diamond_graph, 0.3)
    assert probs.shape == (4,)
    assert np.all(probs == 0.3)


def test_constant_validates(diamond_graph):
    with pytest.raises(ValueError):
        constant_probabilities(diamond_graph, 1.5)


def test_weighted_cascade_sums_to_one_per_target(diamond_graph):
    """Incoming probabilities of every node with in-degree > 0 sum to 1."""
    probs = weighted_cascade_probabilities(diamond_graph)
    for v in range(diamond_graph.num_nodes):
        eids = diamond_graph.in_edges_of(v)
        if eids.size:
            assert probs[eids].sum() == pytest.approx(1.0)


def test_weighted_cascade_value(diamond_graph):
    # node 3 has in-degree 2 -> each incoming edge gets 1/2
    probs = weighted_cascade_probabilities(diamond_graph)
    eid = diamond_graph.edge_id(1, 3)
    assert probs[eid] == pytest.approx(0.5)


def test_trivalency_values_only(small_random_graph):
    probs = trivalency_probabilities(small_random_graph, seed=1)
    assert set(np.unique(probs)) <= {0.1, 0.01, 0.001}


def test_trivalency_deterministic(small_random_graph):
    a = trivalency_probabilities(small_random_graph, seed=2)
    b = trivalency_probabilities(small_random_graph, seed=2)
    assert np.array_equal(a, b)


def test_trivalency_rejects_empty_values(small_random_graph):
    with pytest.raises(ValueError):
        trivalency_probabilities(small_random_graph, values=())


def test_exponential_mean_matches_rate(small_random_graph):
    probs = exponential_probabilities(small_random_graph, rate=30.0, seed=3)
    assert probs.min() >= 0.0 and probs.max() <= 1.0
    # mean ~ 1/30 with clipping; loose statistical check
    assert 0.5 / 30 < probs.mean() < 2.0 / 30


def test_exponential_rejects_bad_rate(small_random_graph):
    with pytest.raises(ValueError):
        exponential_probabilities(small_random_graph, rate=0.0)


def test_exponential_deterministic(small_random_graph):
    a = exponential_probabilities(small_random_graph, seed=9)
    b = exponential_probabilities(small_random_graph, seed=9)
    assert np.array_equal(a, b)
