"""GraphBuilder staging behaviour."""

import pytest

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder


def test_chained_adds():
    g = GraphBuilder().add_edge(0, 1).add_edge(1, 2).build()
    assert g.num_edges == 2
    assert g.num_nodes == 3


def test_add_edges_bulk():
    g = GraphBuilder(num_nodes=5).add_edges([(0, 1), (3, 4)]).build()
    assert g.num_nodes == 5
    assert g.has_edge(3, 4)


def test_add_undirected_edge():
    g = GraphBuilder().add_undirected_edge(0, 1).build()
    assert g.has_edge(0, 1) and g.has_edge(1, 0)


def test_skip_self_loops():
    builder = GraphBuilder(skip_self_loops=True)
    builder.add_edge(0, 0).add_edge(0, 1)
    assert len(builder) == 1
    assert builder.build().num_edges == 1


def test_self_loop_fails_at_build_without_skip():
    with pytest.raises(GraphError):
        GraphBuilder().add_edge(0, 0).build()


def test_skip_duplicates():
    g = GraphBuilder(skip_duplicates=True).add_edges([(0, 1), (0, 1), (1, 0)]).build()
    assert g.num_edges == 2


def test_duplicates_fail_without_skip():
    with pytest.raises(GraphError):
        GraphBuilder().add_edges([(0, 1), (0, 1)]).build()


def test_empty_builder_builds_empty_graph():
    g = GraphBuilder().build()
    assert g.num_nodes == 0
    assert g.num_edges == 0


def test_fixed_num_nodes_respected():
    g = GraphBuilder(num_nodes=10).add_edge(0, 1).build()
    assert g.num_nodes == 10
