"""TopicDistribution construction and algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopicModelError
from repro.topics.distribution import TopicDistribution


class TestConstruction:
    def test_valid(self):
        d = TopicDistribution([0.2, 0.8])
        assert d.num_topics == 2
        assert d.gamma.sum() == pytest.approx(1.0)

    def test_rejects_negative(self):
        with pytest.raises(TopicModelError):
            TopicDistribution([-0.1, 1.1])

    def test_rejects_bad_sum(self):
        with pytest.raises(TopicModelError):
            TopicDistribution([0.4, 0.4])

    def test_rejects_empty(self):
        with pytest.raises(TopicModelError):
            TopicDistribution([])

    def test_immutability(self):
        d = TopicDistribution([0.5, 0.5])
        with pytest.raises(ValueError):
            d.gamma[0] = 0.9


class TestFactories:
    def test_uniform(self):
        d = TopicDistribution.uniform(4)
        assert np.allclose(d.gamma, 0.25)

    def test_uniform_rejects_zero_topics(self):
        with pytest.raises(TopicModelError):
            TopicDistribution.uniform(0)

    def test_skewed_matches_paper_recipe(self):
        """K=10, mass 0.91 -> 0.01 on each of the other nine (§6)."""
        d = TopicDistribution.skewed(10, 3)
        assert d.gamma[3] == pytest.approx(0.91)
        others = np.delete(d.gamma, 3)
        assert np.allclose(others, 0.01)

    def test_skewed_single_topic(self):
        d = TopicDistribution.skewed(1, 0)
        assert d.gamma[0] == pytest.approx(1.0)

    def test_skewed_rejects_bad_dominant(self):
        with pytest.raises(TopicModelError):
            TopicDistribution.skewed(3, 5)

    def test_point(self):
        d = TopicDistribution.point(3, 1)
        assert d.gamma.tolist() == [0.0, 1.0, 0.0]

    def test_dirichlet_deterministic(self):
        a = TopicDistribution.dirichlet(5, seed=1)
        b = TopicDistribution.dirichlet(5, seed=1)
        assert a == b


class TestAlgebra:
    def test_entropy_point_zero(self):
        assert TopicDistribution.point(4, 0).entropy() == pytest.approx(0.0)

    def test_entropy_uniform_max(self):
        assert TopicDistribution.uniform(4).entropy() == pytest.approx(np.log(4))

    def test_overlap_self_is_one(self):
        d = TopicDistribution.skewed(10, 2)
        assert d.overlap(d) == pytest.approx(1.0)

    def test_overlap_disjoint_is_zero(self):
        a = TopicDistribution.point(3, 0)
        b = TopicDistribution.point(3, 2)
        assert a.overlap(b) == pytest.approx(0.0)

    def test_overlap_mismatched_spaces_raises(self):
        with pytest.raises(TopicModelError):
            TopicDistribution.uniform(2).overlap(TopicDistribution.uniform(3))

    def test_hash_consistent_with_eq(self):
        a = TopicDistribution([0.3, 0.7])
        b = TopicDistribution([0.3, 0.7])
        assert a == b
        assert hash(a) == hash(b)

    @given(st.integers(2, 8), st.integers(0, 7))
    @settings(max_examples=30, deadline=None)
    def test_skewed_always_normalised(self, k, dominant):
        if dominant >= k:
            dominant %= k
        d = TopicDistribution.skewed(k, dominant)
        assert d.gamma.sum() == pytest.approx(1.0)
        assert int(np.argmax(d.gamma)) == dominant
