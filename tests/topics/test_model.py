"""TopicModel: shape validation and Eq. (1) collapse."""

import numpy as np
import pytest

from repro.errors import TopicModelError
from repro.topics.distribution import TopicDistribution
from repro.topics.model import TopicModel


@pytest.fixture
def model(diamond_graph):
    edge_probs = np.asarray(
        [[0.1, 0.2, 0.3, 0.4], [0.5, 0.5, 0.5, 0.5]]
    )
    seed_probs = np.asarray([[0.01, 0.02, 0.03, 0.04], [0.05, 0.05, 0.05, 0.05]])
    return TopicModel(diamond_graph, edge_probs, seed_probs)


def test_num_topics(model):
    assert model.num_topics == 2


def test_ad_edge_probabilities(model):
    gamma = TopicDistribution([0.5, 0.5])
    assert np.allclose(model.ad_edge_probabilities(gamma), [0.3, 0.35, 0.4, 0.45])


def test_ad_ctps(model):
    gamma = TopicDistribution.point(2, 0)
    assert np.allclose(model.ad_ctps(gamma), [0.01, 0.02, 0.03, 0.04])


def test_collapse_returns_both(model):
    gamma = TopicDistribution.point(2, 1)
    edge_probs, ctps = model.collapse(gamma)
    assert np.allclose(edge_probs, 0.5)
    assert np.allclose(ctps, 0.05)


def test_memory_bytes(model):
    assert model.memory_bytes() == model.edge_probs.nbytes + model.seed_probs.nbytes


def test_shape_validation(diamond_graph):
    with pytest.raises(TopicModelError):
        TopicModel(diamond_graph, np.zeros((2, 3)), np.zeros((2, 4)))
    with pytest.raises(TopicModelError):
        TopicModel(diamond_graph, np.zeros((2, 4)), np.zeros((2, 5)))
    with pytest.raises(TopicModelError):
        TopicModel(diamond_graph, np.zeros((2, 4)), np.zeros((3, 4)))


def test_probability_validation(diamond_graph):
    with pytest.raises(ValueError):
        TopicModel(diamond_graph, np.full((1, 4), 1.2), np.zeros((1, 4)))
