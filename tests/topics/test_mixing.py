"""Eq. (1) mixing."""

import numpy as np
import pytest

from repro.errors import TopicModelError
from repro.topics.distribution import TopicDistribution
from repro.topics.mixing import mix_edge_probabilities, mix_node_probabilities


def test_point_distribution_selects_row():
    per_topic = np.asarray([[0.1, 0.2], [0.5, 0.6]])
    mixed = mix_edge_probabilities(per_topic, TopicDistribution.point(2, 1))
    assert np.allclose(mixed, [0.5, 0.6])


def test_uniform_distribution_averages():
    per_topic = np.asarray([[0.0, 0.2], [1.0, 0.4]])
    mixed = mix_edge_probabilities(per_topic, TopicDistribution.uniform(2))
    assert np.allclose(mixed, [0.5, 0.3])


def test_eq1_weighted_average():
    """p^i_{u,v} = Σ_z γ^z_i p^z_{u,v} for an arbitrary γ."""
    per_topic = np.asarray([[0.1], [0.3], [0.9]])
    gamma = TopicDistribution([0.2, 0.3, 0.5])
    mixed = mix_edge_probabilities(per_topic, gamma)
    assert mixed[0] == pytest.approx(0.2 * 0.1 + 0.3 * 0.3 + 0.5 * 0.9)


def test_node_mixing_same_formula():
    per_topic = np.asarray([[0.2, 0.4], [0.6, 0.8]])
    gamma = TopicDistribution([0.25, 0.75])
    mixed = mix_node_probabilities(per_topic, gamma)
    assert np.allclose(mixed, 0.25 * per_topic[0] + 0.75 * per_topic[1])


def test_mixing_preserves_probability_range():
    rng = np.random.default_rng(0)
    per_topic = rng.random((5, 40))
    gamma = TopicDistribution.dirichlet(5, seed=1)
    mixed = mix_edge_probabilities(per_topic, gamma)
    assert mixed.min() >= 0.0 and mixed.max() <= 1.0


def test_topic_count_mismatch_raises():
    with pytest.raises(TopicModelError):
        mix_edge_probabilities(np.zeros((3, 4)), TopicDistribution.uniform(2))


def test_non_matrix_raises():
    with pytest.raises(TopicModelError):
        mix_edge_probabilities(np.zeros(4), TopicDistribution.uniform(2))
