"""CTP matrices."""

import numpy as np
import pytest

from repro.topics.ctp import constant_ctps, ctps_from_topic_model, uniform_ctps
from repro.topics.distribution import TopicDistribution
from repro.topics.model import TopicModel


def test_uniform_ctps_range_and_shape():
    ctps = uniform_ctps(3, 100, seed=1)
    assert ctps.shape == (3, 100)
    assert ctps.min() >= 0.01
    assert ctps.max() <= 0.03


def test_uniform_ctps_deterministic():
    assert np.array_equal(uniform_ctps(2, 10, seed=5), uniform_ctps(2, 10, seed=5))


def test_uniform_ctps_validates_bounds():
    with pytest.raises(ValueError):
        uniform_ctps(1, 10, low=0.5, high=0.1)
    with pytest.raises(ValueError):
        uniform_ctps(1, 10, low=-0.1, high=0.5)


def test_constant_ctps():
    ctps = constant_ctps(2, 5, 1.0)
    assert ctps.shape == (2, 5)
    assert np.all(ctps == 1.0)


def test_ctps_from_topic_model(diamond_graph):
    seed_probs = np.asarray([[0.01, 0.02, 0.03, 0.04], [0.1, 0.1, 0.1, 0.1]])
    model = TopicModel(diamond_graph, np.zeros((2, 4)), seed_probs)
    dists = [TopicDistribution.point(2, 0), TopicDistribution.point(2, 1)]
    ctps = ctps_from_topic_model(model, dists)
    assert ctps.shape == (2, 4)
    assert np.allclose(ctps[0], seed_probs[0])
    assert np.allclose(ctps[1], seed_probs[1])
