"""EM learning of TIC probabilities from cascades."""

import numpy as np
import pytest

from repro.diffusion.ic import simulate_rounds
from repro.graph.digraph import DirectedGraph
from repro.graph.generators import erdos_renyi
from repro.topics.learning import (
    Cascade,
    em_estimate_edge_probabilities,
    generate_cascades,
    learn_topic_model,
)


class TestSimulateRounds:
    def test_rounds_on_line(self, line_graph):
        rounds = simulate_rounds(line_graph, np.ones(3), [0], rng=0)
        assert rounds.tolist() == [0, 1, 2, 3]

    def test_unreached_marked(self, line_graph):
        rounds = simulate_rounds(line_graph, np.zeros(3), [1], rng=0)
        assert rounds.tolist() == [-1, 0, -1, -1]

    def test_failed_seed_round(self):
        g = DirectedGraph.from_edges([(0, 1)])
        rounds = simulate_rounds(g, np.ones(1), [0, 1], ctps=np.asarray([1.0, 0.0]), rng=0)
        # node 1's coin fails but the edge activates it at round 1
        assert rounds.tolist() == [0, 1]

    def test_no_seeds(self, line_graph):
        assert simulate_rounds(line_graph, np.ones(3), [], rng=0).tolist() == [-1] * 4


class TestGenerateCascades:
    def test_count_and_shape(self, small_random_graph):
        probs = np.full(small_random_graph.num_edges, 0.2)
        cascades = generate_cascades(small_random_graph, probs, 7, seed=1)
        assert len(cascades) == 7
        for cascade in cascades:
            assert cascade.rounds.shape == (small_random_graph.num_nodes,)
            assert cascade.activated().size >= 1  # the seed always clicks

    def test_validation(self, small_random_graph):
        probs = np.full(small_random_graph.num_edges, 0.2)
        with pytest.raises(ValueError):
            generate_cascades(small_random_graph, probs, -1)
        with pytest.raises(ValueError):
            generate_cascades(small_random_graph, probs, 1, seeds_per_cascade=0)


class TestEMEstimation:
    def test_recovers_line_probability(self, line_graph):
        """On a line graph the MLE is a simple success frequency, which
        EM must converge to."""
        true = np.asarray([0.7, 0.4, 0.9])
        cascades = generate_cascades(line_graph, true, 600, seed=2)
        learned = em_estimate_edge_probabilities(line_graph, cascades)
        # edge (0,1) is witnessed in every cascade seeded at 0
        assert learned[0] == pytest.approx(0.7, abs=0.1)

    def test_unwitnessed_edges_zero(self, line_graph):
        # cascade that only ever activates node 3 (a sink): no trials
        cascades = [Cascade(rounds=np.asarray([-1, -1, -1, 0]))]
        learned = em_estimate_edge_probabilities(line_graph, cascades)
        assert np.all(learned == 0.0)

    def test_probabilities_valid(self):
        g = erdos_renyi(25, 0.15, seed=3)
        true = np.full(g.num_edges, 0.3)
        cascades = generate_cascades(g, true, 150, seeds_per_cascade=2, seed=4)
        learned = em_estimate_edge_probabilities(g, cascades)
        assert learned.min() >= 0.0 and learned.max() <= 1.0

    def test_learned_model_reproduces_spread(self):
        """The end-to-end check: spreads under learned probabilities are
        close to spreads under the true ones."""
        from repro.diffusion.exact import exact_spread

        g = DirectedGraph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
        true = np.asarray([0.6, 0.3, 0.5, 0.8])
        cascades = generate_cascades(g, true, 2_500, seed=5)
        learned = em_estimate_edge_probabilities(g, cascades)
        true_spread = exact_spread(g, true, [0])
        learned_spread = exact_spread(g, learned, [0])
        assert learned_spread == pytest.approx(true_spread, rel=0.12)

    def test_validates_initial(self, line_graph):
        with pytest.raises(ValueError):
            em_estimate_edge_probabilities(line_graph, [], initial=0.0)


class TestLearnTopicModel:
    def test_per_topic_estimation(self, line_graph):
        topic0 = np.asarray([0.9, 0.9, 0.9])
        topic1 = np.asarray([0.1, 0.1, 0.1])
        cascades = [
            generate_cascades(line_graph, topic0, 400, seed=6),
            generate_cascades(line_graph, topic1, 400, seed=7),
        ]
        model = learn_topic_model(line_graph, cascades)
        assert model.num_topics == 2
        # topic 0's edges are much stronger than topic 1's
        assert model.edge_probs[0].mean() > model.edge_probs[1].mean() + 0.3

    def test_requires_topics(self, line_graph):
        with pytest.raises(ValueError):
            learn_topic_model(line_graph, [])
