"""Synthetic topic model generator."""

import numpy as np
import pytest

from repro.topics.synthetic import synthetic_topic_model


def test_shapes(small_random_graph):
    model = synthetic_topic_model(small_random_graph, 5, seed=1)
    assert model.edge_probs.shape == (5, small_random_graph.num_edges)
    assert model.seed_probs.shape == (5, small_random_graph.num_nodes)


def test_deterministic(small_random_graph):
    a = synthetic_topic_model(small_random_graph, 4, seed=2)
    b = synthetic_topic_model(small_random_graph, 4, seed=2)
    assert np.array_equal(a.edge_probs, b.edge_probs)
    assert np.array_equal(a.seed_probs, b.seed_probs)


def test_home_topic_sparsity(small_random_graph):
    """Most per-topic probabilities sit at the background level; only the
    home topics carry real strength."""
    model = synthetic_topic_model(
        small_random_graph, 10, home_topics_per_edge=1, background_strength=0.001, seed=3
    )
    at_background = np.isclose(model.edge_probs, 0.001).mean()
    assert at_background > 0.8


def test_zero_home_topics_all_background(small_random_graph):
    model = synthetic_topic_model(
        small_random_graph, 3, home_topics_per_edge=0, background_strength=0.01, seed=4
    )
    assert np.allclose(model.edge_probs, 0.01)


def test_probabilities_in_range(small_random_graph):
    model = synthetic_topic_model(
        small_random_graph, 4, edge_strength_mean=5.0, seed=5
    )
    assert model.edge_probs.max() <= 1.0
    assert model.edge_probs.min() >= 0.0


def test_validates_args(small_random_graph):
    with pytest.raises(ValueError):
        synthetic_topic_model(small_random_graph, 0)
    with pytest.raises(ValueError):
        synthetic_topic_model(small_random_graph, 3, home_topics_per_edge=5)
