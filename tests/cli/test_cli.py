"""CLI commands (exercised in-process via main(argv))."""

import pytest

from repro.cli.main import build_parser, main


def test_requires_command(capsys):
    with pytest.raises(SystemExit):
        main([])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_datasets_lists_all(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    for name in ("figure1", "flixster", "epinions", "dblp", "livejournal"):
        assert name in out


def test_figure1_prints_paper_numbers(capsys):
    assert main(["figure1"]) == 0
    out = capsys.readouterr().out
    assert "5.54" in out  # exact E[clicks] of allocation A
    assert "6.30" in out
    assert "2.70" in out  # regret B at lambda=0


def test_allocate_tirm_on_figure1(capsys):
    code = main([
        "allocate", "figure1", "--algorithm", "tirm",
        "--eval-runs", "200", "--max-rr-sets", "2000",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "TIRM on figure1" in out
    assert "total regret" in out
    assert "targeted users" in out


def test_allocate_myopic_on_flixster(capsys):
    code = main([
        "allocate", "flixster", "--algorithm", "myopic",
        "--scale", "0.005", "--eval-runs", "50",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Myopic on flixster" in out


def test_allocate_rejects_unknown_algorithm():
    with pytest.raises(SystemExit):
        main(["allocate", "figure1", "--algorithm", "quantum"])


def test_allocate_rng_and_chunk_size_flags(capsys):
    code = main([
        "allocate", "figure1", "--algorithm", "tirm",
        "--eval-runs", "50", "--max-rr-sets", "1000",
        "--rng", "legacy", "--chunk-size", "64",
    ])
    assert code == 0
    assert "TIRM on figure1" in capsys.readouterr().out


def test_allocate_rejects_unknown_rng():
    with pytest.raises(SystemExit):
        main(["allocate", "figure1", "--rng", "mersenne"])


def test_parser_defaults_to_philox_streams():
    args = build_parser().parse_args(["allocate", "figure1"])
    assert args.rng == "philox"
    assert args.chunk_size >= 1
    args = build_parser().parse_args(
        ["allocate", "figure1", "--rng", "philox", "--chunk-size", "128"]
    )
    assert args.chunk_size == 128


def test_allocate_backend_flag(capsys):
    code = main([
        "allocate", "figure1", "--algorithm", "tirm",
        "--eval-runs", "50", "--max-rr-sets", "1000",
        "--backend", "numpy",
    ])
    assert code == 0
    assert "TIRM on figure1" in capsys.readouterr().out


def test_parser_defaults_to_numpy_backend():
    args = build_parser().parse_args(["allocate", "figure1"])
    assert args.backend == "numpy"
    args = build_parser().parse_args(
        ["allocate", "figure1", "--backend", "auto"]
    )
    assert args.backend == "auto"


def test_allocate_rejects_unknown_backend():
    with pytest.raises(SystemExit):
        main(["allocate", "figure1", "--backend", "cuda"])


def test_allocate_transport_and_prefetch_flags(capsys):
    code = main([
        "allocate", "figure1", "--algorithm", "tirm",
        "--eval-runs", "50", "--max-rr-sets", "1000",
        "--engine", "process", "--workers", "2",
        "--transport", "shm", "--no-prefetch",
    ])
    assert code == 0
    assert "TIRM on figure1" in capsys.readouterr().out


def test_parser_defaults_transport_to_auto():
    args = build_parser().parse_args(["allocate", "figure1"])
    assert args.transport == "auto"
    assert args.start_method == "auto"
    assert args.no_prefetch is False
    args = build_parser().parse_args(
        ["allocate", "figure1", "--transport", "pickle",
         "--start-method", "spawn", "--no-prefetch"]
    )
    assert args.transport == "pickle"
    assert args.start_method == "spawn"
    assert args.no_prefetch is True


def test_allocate_rejects_unknown_transport():
    with pytest.raises(SystemExit):
        main(["allocate", "figure1", "--transport", "carrier-pigeon"])
    with pytest.raises(SystemExit):
        main(["allocate", "figure1", "--start-method", "forkserver"])


def test_backend_numba_unavailable_fails_cleanly(capsys, monkeypatch):
    """Explicit --backend numba without the optional extra: a one-line
    ``error:`` on stderr and exit code 2, never a traceback."""
    from repro.rrset import backends as backends_pkg
    from repro.rrset.backends import numba_backend as numba_module

    monkeypatch.setattr(numba_module, "_COMPILED", None)
    monkeypatch.setattr(numba_module, "numba_available", lambda: False)
    monkeypatch.setattr(backends_pkg, "numba_available", lambda: False)
    code = main([
        "allocate", "figure1", "--algorithm", "tirm",
        "--eval-runs", "50", "--max-rr-sets", "1000",
        "--backend", "numba",
    ])
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "numba" in err
    assert len(err.strip().splitlines()) == 1


def test_backend_auto_degrades_gracefully(capsys, monkeypatch):
    """--backend auto without numba warns once and still allocates."""
    import warnings

    from repro.rrset import backends as backends_pkg
    from repro.rrset.backends import numba_backend as numba_module

    monkeypatch.setattr(numba_module, "_COMPILED", None)
    monkeypatch.setattr(numba_module, "numba_available", lambda: False)
    monkeypatch.setattr(backends_pkg, "numba_available", lambda: False)
    monkeypatch.setattr(backends_pkg, "_WARNED_AUTO_FALLBACK", False)
    with pytest.warns(RuntimeWarning, match="falling back"):
        code = main([
            "allocate", "figure1", "--algorithm", "tirm",
            "--eval-runs", "50", "--max-rr-sets", "1000",
            "--backend", "auto",
        ])
    assert code == 0
    assert "TIRM on figure1" in capsys.readouterr().out
    with warnings.catch_warnings():  # the fallback warning fired once
        warnings.simplefilter("error", RuntimeWarning)
        assert main([
            "allocate", "figure1", "--algorithm", "tirm",
            "--eval-runs", "50", "--max-rr-sets", "1000",
            "--backend", "auto",
        ]) == 0


def test_bounds_on_figure1(capsys):
    assert main(["bounds", "figure1", "--rr-sets", "1500"]) == 0
    out = capsys.readouterr().out
    assert "p_max" in out
    assert "theorem 3" in out
    # the gadget violates p_i < 1, so theorem 4 must be n/a
    assert "n/a" in out


def test_im_runs(capsys):
    assert main(["im", "--nodes", "150", "--k", "3", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "TIM selected 3 seeds" in out
    assert "estimated spread" in out


def test_parser_help_mentions_commands():
    parser = build_parser()
    help_text = parser.format_help()
    for command in ("datasets", "allocate", "figure1", "bounds", "im"):
        assert command in help_text


def test_allocate_rejects_zero_chunk_size_cleanly(capsys):
    """Knob validation at the CLI boundary: a clean one-line error and
    exit code 2, not a deep numpy traceback."""
    code = main(["allocate", "figure1", "--chunk-size", "0"])
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "chunk_size" in err


def test_allocate_rejects_negative_workers_cleanly(capsys):
    code = main(["allocate", "figure1", "--workers", "-3"])
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "max_workers" in err


def test_resume_without_checkpoint_rejected_cleanly(capsys):
    code = main(["allocate", "figure1", "--resume"])
    assert code == 2
    assert "--resume requires --checkpoint" in capsys.readouterr().err


def test_checkpoint_flag_writes_artifact_and_resume_reuses_it(tmp_path, capsys):
    path = tmp_path / "figure1.ckpt.npz"
    code = main([
        "allocate", "figure1", "--algorithm", "tirm",
        "--eval-runs", "50", "--max-rr-sets", "1000",
        "--checkpoint", str(path),
    ])
    assert code == 0
    assert path.exists()
    first = capsys.readouterr().out
    assert "checkpoint:" in first and "fresh run" in first
    code = main([
        "allocate", "figure1", "--algorithm", "tirm",
        "--eval-runs", "50", "--max-rr-sets", "1000",
        "--checkpoint", str(path), "--resume",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "resumed from iteration" in out


def test_resume_with_absent_artifact_starts_fresh(tmp_path, capsys):
    """First launch of an always-on job: --resume with no artifact yet
    must start from scratch, not error out."""
    path = tmp_path / "never-written.npz"
    code = main([
        "allocate", "figure1", "--algorithm", "tirm",
        "--eval-runs", "50", "--max-rr-sets", "1000",
        "--checkpoint", str(path), "--resume",
    ])
    assert code == 0
    assert "fresh run" in capsys.readouterr().out


def test_incompatible_resume_surfaces_clean_error(tmp_path, capsys):
    path = tmp_path / "ck.npz"
    assert main([
        "allocate", "figure1", "--eval-runs", "50", "--max-rr-sets", "1000",
        "--checkpoint", str(path),
    ]) == 0
    capsys.readouterr()
    code = main([
        "allocate", "figure1", "--eval-runs", "50", "--max-rr-sets", "1000",
        "--seed", "9", "--checkpoint", str(path), "--resume",
    ])
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error:") and "incompatible" in err


# ----------------------------------------------------------------------
# repro lint
# ----------------------------------------------------------------------
def test_lint_subcommand_clean_on_shipped_src(capsys):
    import repro
    from pathlib import Path

    src = str(Path(repro.__file__).resolve().parent)
    assert main(["lint", src]) == 0
    assert "repro lint: clean" in capsys.readouterr().out


def test_lint_subcommand_reports_violations(tmp_path, capsys):
    bad = tmp_path / "stray.py"
    bad.write_text(
        "import numpy as np\nrng = np.random.default_rng(1)\n",
        encoding="utf-8",
    )
    assert main(["lint", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "R101" in out and "repro lint: 1 finding" in out


def test_lint_select_and_list_rules(tmp_path, capsys):
    bad = tmp_path / "stray.py"
    bad.write_text(
        "import numpy as np\nrng = np.random.default_rng(1)\n",
        encoding="utf-8",
    )
    assert main(["lint", str(tmp_path), "--select", "R105"]) == 0
    capsys.readouterr()
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("R101", "R102", "R103", "R104", "R105"):
        assert code in out


def test_lint_bad_select_exits_2(capsys):
    assert main(["lint", "--select", "R999"]) == 2
    assert "unknown rule code" in capsys.readouterr().err


def test_allocate_dsan_flag(capsys):
    code = main([
        "allocate", "figure1", "--algorithm", "tirm", "--dsan",
        "--eval-runs", "50", "--max-rr-sets", "1000",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "dsan:" in out and "root" in out


# ----------------------------------------------------------------------
# Shard cache + experiment catalog commands (--cache / ls / show / diff / gc)
# ----------------------------------------------------------------------
def _allocate_cached(cache_dir, *extra):
    return main([
        "allocate", "figure1", "--algorithm", "tirm",
        "--eval-runs", "50", "--max-rr-sets", "1000",
        "--cache", str(cache_dir), *extra,
    ])


def test_allocate_cache_warm_start(tmp_path, capsys):
    assert _allocate_cached(tmp_path) == 0
    cold = capsys.readouterr().out
    assert "cache:" in cold and "blocks stored" in cold

    assert _allocate_cached(tmp_path) == 0
    warm = capsys.readouterr().out
    assert "0 backend invocations" in warm
    # Warm-start is a substrate optimisation: the report is unchanged.
    def regret_line(out):
        line = next(line for line in out.splitlines() if "total regret" in line)
        return " ".join(line.split())  # column widths vary with the table

    assert regret_line(warm) == regret_line(cold)


def test_catalog_ls_show_diff_roundtrip(tmp_path, capsys):
    assert _allocate_cached(tmp_path) == 0
    assert _allocate_cached(tmp_path) == 0
    capsys.readouterr()

    assert main(["ls", "--cache", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "Recorded allocations" in out and "figure1" in out

    assert main(["ls", "--cache", str(tmp_path), "--shards"]) == 0
    out = capsys.readouterr().out
    assert "Cached shards" in out and "philox" in out

    assert main(["show", "1", "--cache", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "Allocation #1" in out and "provenance:" in out

    # Cold vs warm differ only in substrate fields — contract holds.
    assert main(["diff", "1", "2", "--cache", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "contract fields identical" in out


def test_catalog_gc_smoke(tmp_path, capsys):
    checkpoint = tmp_path / "figure1.ckpt.npz"
    assert _allocate_cached(tmp_path, "--checkpoint", str(checkpoint)) == 0
    capsys.readouterr()
    assert main([
        "gc", "--cache", str(tmp_path), "--max-bytes", "0", "--dry-run",
    ]) == 0
    out = capsys.readouterr().out
    # The checkpoint pins every shard it references; budget 0 cannot
    # evict them, and gc says so instead of breaking the warm resume.
    assert "checkpoint-protected entries kept" in out
    assert "still over budget" in out

    assert main(["ls", "--cache", str(tmp_path), "--checkpoints"]) == 0
    assert "figure1.ckpt.npz" in capsys.readouterr().out


def test_catalog_commands_require_cache_dir(tmp_path, capsys, monkeypatch):
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    assert main(["ls"]) == 2
    assert "no cache directory" in capsys.readouterr().err

    missing = tmp_path / "absent"
    assert main(["ls", "--cache", str(missing)]) == 2
    assert "no cache directory" in capsys.readouterr().err


def test_allocate_cache_env_var(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
    code = main([
        "allocate", "figure1", "--algorithm", "tirm",
        "--eval-runs", "50", "--max-rr-sets", "1000",
    ])
    assert code == 0
    assert "cache:" in capsys.readouterr().out
    assert main(["ls"]) == 0
    assert "Recorded allocations" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Service commands (parser-level; the live protocol is covered by
# tests/service/test_server_smoke.py)
# ----------------------------------------------------------------------
def test_parser_serve_defaults():
    args = build_parser().parse_args(["serve"])
    assert args.command == "serve"
    assert args.host == "127.0.0.1"
    assert args.port == 0
    assert args.port_file is None
    assert args.cache is None


def test_parser_serve_flags(tmp_path):
    args = build_parser().parse_args([
        "serve", "--host", "0.0.0.0", "--port", "4242",
        "--port-file", str(tmp_path / "port"), "--cache", str(tmp_path),
    ])
    assert args.port == 4242
    assert args.host == "0.0.0.0"


def test_parser_submit_flags():
    args = build_parser().parse_args([
        "submit", "flixster", "--port", "4242", "--scale", "0.002",
        "--seed", "7", "--max-rr-sets", "1000", "--dsan", "--wait",
    ])
    assert args.command == "submit"
    assert args.dataset == "flixster"
    assert args.seed == 7
    assert args.dsan is True
    assert args.wait is True


def test_parser_submit_rejects_unknown_dataset():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["submit", "nonsense", "--port", "1"])


def test_parser_progress_cancel_jobs():
    args = build_parser().parse_args(["progress", "job-0001", "--port", "9"])
    assert args.command == "progress"
    assert args.job_id == "job-0001"
    args = build_parser().parse_args(
        ["cancel", "job-0002", "--port", "9", "--wait"]
    )
    assert args.command == "cancel"
    assert args.wait is True
    args = build_parser().parse_args(["jobs", "--port", "9"])
    assert args.command == "jobs"


def test_submit_without_server_fails_cleanly(tmp_path, capsys):
    code = main([
        "submit", "figure1", "--port-file", str(tmp_path / "absent"),
    ])
    assert code == 2
    assert "cannot read service port" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Distributed tier: `repro worker`, --engine dist, and the bind guards
# ---------------------------------------------------------------------------
def test_parser_worker_flags():
    args = build_parser().parse_args([
        "worker", "--connect", "127.0.0.1:9410", "--backend", "numpy",
        "--name", "w1",
    ])
    assert args.command == "worker"
    assert args.connect == "127.0.0.1:9410"
    assert args.backend == "numpy"
    assert args.name == "w1"
    assert args.cache is None


def test_worker_requires_connect():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["worker"])


def test_worker_rejects_malformed_connect(capsys):
    code = main(["worker", "--connect", "nonsense"])
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "HOST:PORT" in err


def test_worker_connection_refused_fails_cleanly(capsys):
    # Port 1 is privileged and unbound: the dial fails immediately and
    # must surface as a one-line error, not a traceback.
    code = main(["worker", "--connect", "127.0.0.1:1"])
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "cannot connect" in err


def test_parser_allocate_dist_flags_default_to_loopback():
    args = build_parser().parse_args(
        ["allocate", "figure1", "--engine", "dist"]
    )
    assert args.engine == "dist"
    assert args.dist_host == "127.0.0.1"
    assert args.dist_port == 0
    assert args.wait_workers == 0
    assert args.allow_remote is False


def test_parser_serve_dist_flags_default_off():
    args = build_parser().parse_args(["serve"])
    assert args.dist_port is None  # no coordinator unless asked
    assert args.dist_host == "127.0.0.1"
    assert args.allow_remote is False


def test_allocate_dist_coordinator_rejects_non_loopback(capsys):
    code = main([
        "allocate", "figure1", "--engine", "dist",
        "--dist-host", "0.0.0.0",
    ])
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "non-loopback" in err
    assert "--allow-remote" in err


def test_serve_rejects_non_loopback_without_allow_remote(capsys):
    # Must fail eagerly (before ever serving) with a clean exit 2.
    code = main(["serve", "--host", "0.0.0.0"])
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "non-loopback" in err


def test_allocate_dist_end_to_end_matches_serial(capsys):
    """`repro allocate --engine dist` against one in-process worker is
    byte-identical to the plain serial CLI run and prints the dist
    summary line."""
    import socket
    import threading
    import time

    from repro.dist import WorkerHost
    from repro.errors import ConfigurationError

    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]

    def dial():
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            try:
                WorkerHost("127.0.0.1", port).run()
                return
            except ConfigurationError:
                time.sleep(0.05)

    thread = threading.Thread(target=dial, daemon=True)
    thread.start()
    argv = ["allocate", "figure1", "--max-rr-sets", "2000", "--dsan"]
    assert main(argv) == 0
    serial_out = capsys.readouterr().out
    code = main(argv + [
        "--engine", "dist", "--dist-port", str(port), "--wait-workers", "1",
    ])
    thread.join(timeout=10.0)
    assert code == 0
    dist_out = capsys.readouterr().out
    assert "coordinator listening on 127.0.0.1:%d" % port in dist_out
    assert "dist:" in dist_out
    serial_root = [l for l in serial_out.splitlines() if "dsan" in l]
    dist_root = [l for l in dist_out.splitlines() if "dsan" in l]
    assert serial_root and serial_root == dist_root
