"""Hypothesis property tests on the core mathematical invariants.

These cover the submodularity/monotonicity structure that every
approximation argument in the paper leans on, plus estimator coherence
between the independent evaluation paths (exact enumeration, Monte
Carlo, RR-set coverage).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffusion.exact import exact_click_probabilities, exact_spread
from repro.graph.digraph import DirectedGraph
from repro.rrset.pool import RRSetPool
from repro.rrset.sampler import sample_rr_set


def tiny_graphs():
    """Graphs with ≤ 12 edges over ≤ 7 nodes (exact-enumerable)."""
    return st.lists(
        st.tuples(st.integers(0, 6), st.integers(0, 6)).filter(lambda e: e[0] != e[1]),
        max_size=12,
        unique=True,
    ).map(lambda edges: DirectedGraph.from_edges(edges, num_nodes=7))


@st.composite
def graph_probs_seeds(draw):
    graph = draw(tiny_graphs())
    probs = draw(
        st.lists(
            st.floats(0.0, 1.0), min_size=graph.num_edges, max_size=graph.num_edges
        )
    )
    seeds = draw(st.lists(st.integers(0, 6), max_size=4, unique=True))
    extra = draw(st.integers(0, 6))
    return graph, np.asarray(probs), seeds, extra


class TestSpreadStructure:
    @given(graph_probs_seeds())
    @settings(max_examples=40, deadline=None)
    def test_monotone(self, case):
        """σ(S) ≤ σ(S ∪ {x}) — the monotonicity behind footnote 3."""
        graph, probs, seeds, extra = case
        base = exact_spread(graph, probs, seeds)
        grown = exact_spread(graph, probs, sorted(set(seeds) | {extra}))
        assert grown >= base - 1e-9

    @given(graph_probs_seeds(), st.integers(0, 6))
    @settings(max_examples=40, deadline=None)
    def test_submodular(self, case, w):
        """σ(S∪{w}) − σ(S) ≥ σ(T∪{w}) − σ(T) for S ⊆ T (footnote 4)."""
        graph, probs, seeds, extra = case
        small = sorted(set(seeds[:2]))
        large = sorted(set(seeds) | {extra})
        if w in large:
            return
        gain_small = exact_spread(graph, probs, sorted(set(small) | {w})) - exact_spread(
            graph, probs, small
        )
        gain_large = exact_spread(graph, probs, sorted(set(large) | {w})) - exact_spread(
            graph, probs, large
        )
        assert gain_small >= gain_large - 1e-9

    @given(graph_probs_seeds())
    @settings(max_examples=40, deadline=None)
    def test_spread_bounds(self, case):
        """0 ≤ σ(S) ≤ n, and σ(S) ≥ |S| when CTPs are 1."""
        graph, probs, seeds, _ = case
        spread = exact_spread(graph, probs, seeds)
        assert -1e-9 <= spread <= graph.num_nodes + 1e-9
        assert spread >= len(set(seeds)) - 1e-9

    @given(graph_probs_seeds(), st.lists(st.floats(0.0, 1.0), min_size=7, max_size=7))
    @settings(max_examples=40, deadline=None)
    def test_ctps_only_reduce_spread(self, case, ctps):
        graph, probs, seeds, _ = case
        full = exact_spread(graph, probs, seeds)
        gated = exact_spread(graph, probs, seeds, ctps=np.asarray(ctps))
        assert gated <= full + 1e-9

    @given(graph_probs_seeds())
    @settings(max_examples=30, deadline=None)
    def test_click_probabilities_valid(self, case):
        graph, probs, seeds, _ = case
        clicks = exact_click_probabilities(graph, probs, seeds)
        assert np.all(clicks >= -1e-12)
        assert np.all(clicks <= 1.0 + 1e-12)
        for s in set(seeds):
            assert clicks[s] == pytest.approx(1.0)


class TestRRSetStructure:
    @given(
        tiny_graphs(),
        st.floats(0.1, 1.0),
        st.integers(0, 6),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_rr_set_no_duplicates_and_contains_root(self, graph, p, root, _pyrandom):
        probs = np.full(graph.num_edges, p)
        rr = sample_rr_set(graph, probs, rng=int(p * 1e6) + root, root=root)
        assert root in rr
        assert len(set(rr.tolist())) == len(rr)

    @given(
        sets=st.lists(
            st.lists(st.integers(0, 5), min_size=1, max_size=3, unique=True),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_greedy_cover_never_worse_than_single_best(self, sets):
        """Greedy max-cover with k≥1 covers at least as much as the best
        single node (a weak but universal sanity bound)."""
        from repro.rrset.tim import greedy_max_coverage

        arrays = [np.asarray(s, dtype=np.int64) for s in sets]
        collection = RRSetPool(6)
        collection.add_sets(arrays)
        best_single = int(collection.coverage().max())
        _, covered = greedy_max_coverage(arrays, 6, 2)
        assert covered >= best_single
