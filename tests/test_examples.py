"""Smoke tests: every example script runs end to end.

Each example is executed in-process with ``runpy`` (scripts guard their
entry point with ``__name__ == "__main__"``), with argv pinned to fast,
tiny configurations where the script accepts arguments.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, argv: list[str], monkeypatch, capsys) -> str:
    monkeypatch.setattr(sys, "argv", [script, *argv])
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    return capsys.readouterr().out


def test_toy_figure1(monkeypatch, capsys):
    out = _run("toy_figure1.py", [], monkeypatch, capsys)
    assert "5.54" in out
    assert "6.30" in out
    assert "Examples 1-2" in out


def test_quickstart(monkeypatch, capsys):
    out = _run("quickstart.py", [], monkeypatch, capsys)
    assert "TIRM finished" in out
    assert "total regret" in out


def test_campaign_flixster(monkeypatch, capsys):
    out = _run(
        "campaign_flixster.py",
        ["--scale", "0.005", "--eval-runs", "60"],
        monkeypatch,
        capsys,
    )
    assert "Quality comparison" in out
    assert "TIRM" in out and "Myopic+" in out


def test_scalability_study(monkeypatch, capsys):
    out = _run(
        "scalability_study.py",
        ["--scale", "0.001", "--ads", "1", "2", "--max-rr-sets", "2000"],
        monkeypatch,
        capsys,
    )
    assert "TIRM scalability" in out


def test_influence_maximization(monkeypatch, capsys):
    out = _run(
        "influence_maximization.py",
        ["--nodes", "200", "--k", "3"],
        monkeypatch,
        capsys,
    )
    assert "TIM:" in out
    assert "IRIE top-k" in out


def test_competing_advertisers(monkeypatch, capsys):
    out = _run("competing_advertisers.py", [], monkeypatch, capsys)
    assert "competition violations" in out
    assert "regret after repair" in out


def test_learn_and_allocate(monkeypatch, capsys):
    out = _run("learn_and_allocate.py", [], monkeypatch, capsys)
    assert "learning per-topic probabilities" in out
    assert "oracle model" in out
