"""Sampling-backend layer: resolution, fallback, and byte-identity.

The contract under test (``repro.rrset.backends``): every backend is a
plug-in level op under one shared RNG-owning driver, so for the same
generator state all backends produce **byte-identical** packed blocks —
through the raw backend API, the chunk-addressed sampler, the sharded
engine at any worker count, TIRM allocations, and checkpoint resume.

The numba *kernel logic* is pinned even where numba is not installed:
``NumbaBackend(jit=False)`` runs the identical kernel function
uncompiled, so these tests exercise the real dedup/merge code on every
machine.  When numba is importable the same assertions additionally run
against the JIT-compiled kernel.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.advertising.advertiser import Advertiser
from repro.advertising.attention import AttentionBounds
from repro.advertising.catalog import AdCatalog
from repro.advertising.problem import AdAllocationProblem
from repro.algorithms.tirm import TIRMAllocator
from repro.errors import ConfigurationError
from repro.graph.generators import erdos_renyi
from repro.graph.probabilities import constant_probabilities
from repro.rrset import backends as backends_pkg
from repro.rrset.backends import (
    NumbaBackend,
    NumpyBackend,
    SamplingBackend,
    available_backends,
    numba_available,
    resolve_backend,
)
from repro.rrset.backends import numba_backend as numba_module
from repro.rrset.sampler import RRSetSampler, StreamPlan
from repro.rrset.sharded import ShardedSamplingEngine


def _graph_and_probs(seed=5, n=80, p=0.05, prob=0.12):
    graph = erdos_renyi(n, p, seed=seed)
    probs = np.asarray(constant_probabilities(graph, prob), dtype=np.float64)
    return graph, probs


def _problem(seed: int, num_ads: int = 2, budget: float = 6.0):
    graph = erdos_renyi(60, 0.05, seed=seed)
    catalog = AdCatalog(
        [Advertiser(name=f"a{i}", budget=budget, cpe=1.0) for i in range(num_ads)]
    )
    return AdAllocationProblem(
        graph,
        catalog,
        constant_probabilities(graph, 0.08),
        0.4,
        AttentionBounds.uniform(graph.num_nodes, num_ads),
    )


def _probs(problem):
    return [problem.ad_edge_probabilities(ad) for ad in range(problem.num_ads)]


def _fingerprint(engine):
    out = []
    for ad in range(engine.num_ads):
        view = engine.shard(ad).prefix_view()
        out.append(
            (engine.shard(ad).num_total, view.members.copy(), view.indptr.copy())
        )
    return out


def _assert_fingerprints_equal(a, b):
    assert len(a) == len(b)
    for (na, ma, pa), (nb, mb, pb) in zip(a, b):
        assert na == nb
        assert ma.tobytes() == mb.tobytes()
        assert pa.tobytes() == pb.tobytes()


def _alternative_backends() -> list:
    """Every non-reference backend testable on this machine: always the
    uncompiled numba kernel; the JIT-compiled one too when available."""
    alternatives = [NumbaBackend(jit=False)]
    if numba_available():
        alternatives.append(NumbaBackend())
    return alternatives


def _no_numba(monkeypatch):
    """Make this process look like one without the numba extra."""
    monkeypatch.setattr(numba_module, "_COMPILED", None)
    monkeypatch.setattr(numba_module, "numba_available", lambda: False)
    monkeypatch.setattr(backends_pkg, "numba_available", lambda: False)


class TestResolution:
    def test_names_resolve(self):
        assert resolve_backend("numpy").name == "numpy"
        assert isinstance(resolve_backend("numpy"), NumpyBackend)

    def test_instances_pass_through(self):
        backend = NumbaBackend(jit=False)
        assert resolve_backend(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="backend must be one of"):
            resolve_backend("cuda")

    def test_numba_unavailable_raises_cleanly(self, monkeypatch):
        _no_numba(monkeypatch)
        with pytest.raises(ConfigurationError, match="numba"):
            resolve_backend("numba")
        assert available_backends() == ("numpy",)

    def test_numba_available_survives_missing_import(self, monkeypatch):
        """The real availability probe, with the import itself failing —
        the exact situation on a machine without the optional extra."""
        import builtins

        real_import = builtins.__import__

        def failing_import(name, *args, **kwargs):
            if name == "numba" or name.startswith("numba."):
                raise ImportError("No module named 'numba'")
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(numba_module, "_COMPILED", None)
        monkeypatch.setattr(builtins, "__import__", failing_import)
        assert numba_module.numba_available() is False
        with pytest.raises(ConfigurationError, match="numba"):
            NumbaBackend()

    def test_auto_prefers_numba_when_available(self, monkeypatch):
        monkeypatch.setattr(backends_pkg, "numba_available", lambda: True)
        monkeypatch.setattr(numba_module, "numba_available", lambda: True)
        assert resolve_backend("auto").name == "numba"

    def test_auto_falls_back_with_one_time_warning(self, monkeypatch):
        _no_numba(monkeypatch)
        monkeypatch.setattr(backends_pkg, "_WARNED_AUTO_FALLBACK", False)
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert resolve_backend("auto").name == "numpy"
        with warnings.catch_warnings():  # second resolve: no new warning
            warnings.simplefilter("error")
            assert resolve_backend("auto").name == "numpy"

    def test_resolved_backends_never_report_auto(self):
        assert "auto" not in {
            resolve_backend(name).name for name in available_backends()
        }


class TestByteIdentity:
    """NumPy reference vs numba kernel, at the raw backend interface."""

    @pytest.mark.parametrize("batch_size", [None, 13, 64])
    def test_sample_flat_identical(self, batch_size):
        graph, probs = _graph_and_probs()
        in_probs = probs[graph.in_edge_ids]
        reference = NumpyBackend()
        for alternative in _alternative_backends():
            for seed in (0, 3):
                expected = reference.sample_flat(
                    graph, in_probs, np.random.default_rng(seed), 300, batch_size
                )
                actual = alternative.sample_flat(
                    graph, in_probs, np.random.default_rng(seed), 300, batch_size
                )
                assert expected[0].tobytes() == actual[0].tobytes()
                assert expected[1].tobytes() == actual[1].tobytes()

    def test_rng_stream_position_identical(self):
        """Backends must consume the generator identically — a drifted
        stream position would desync any caller interleaving draws."""
        graph, probs = _graph_and_probs()
        in_probs = probs[graph.in_edge_ids]
        for alternative in _alternative_backends():
            ra, rb = np.random.default_rng(7), np.random.default_rng(7)
            NumpyBackend().sample_flat(graph, in_probs, ra, 120)
            alternative.sample_flat(graph, in_probs, rb, 120)
            assert ra.bit_generator.state == rb.bit_generator.state

    @pytest.mark.parametrize("chunk_size", [1, 7, 64])
    def test_chunk_addressed_sampling_identical(self, chunk_size):
        graph, probs = _graph_and_probs(seed=9)
        plan = StreamPlan(21, ad=1, chunk_size=chunk_size)
        reference = RRSetSampler(graph, probs, seed=0, backend="numpy")
        for alternative_backend in _alternative_backends():
            alternative = RRSetSampler(
                graph, probs, seed=0, backend=alternative_backend
            )
            for chunk in (0, 2):
                expected = reference.sample_chunk_block(plan, chunk)
                actual = alternative.sample_chunk_block(plan, chunk)
                assert expected[0].tobytes() == actual[0].tobytes()
                assert expected[1].tobytes() == actual[1].tobytes()

    def test_legacy_blocked_stream_identical(self):
        graph, probs = _graph_and_probs(seed=4)
        for alternative_backend in _alternative_backends():
            a = RRSetSampler(graph, probs, seed=6, backend="numpy")
            b = RRSetSampler(graph, probs, seed=6, backend=alternative_backend)
            for count in (40, 25):  # across calls: stream position matters
                expected = a.sample_flat(count, mode="blocked")
                actual = b.sample_flat(count, mode="blocked")
                assert expected[0].tobytes() == actual[0].tobytes()
                assert expected[1].tobytes() == actual[1].tobytes()


class TestEngineInvariance:
    """Backend-cross worker-count invariance: numpy-serial is the
    reference; every backend × engine × worker count must match it."""

    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("chunk_size", [7, 64])
    @pytest.mark.parametrize("mode", ["scalar", "blocked"])
    def test_shards_byte_identical_across_backends(self, mode, chunk_size, workers):
        problem = _problem(4)
        with ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=8, mode=mode,
            chunk_size=chunk_size, backend="numpy",
        ) as reference:
            for requests in ({0: 70, 1: 40}, {0: 33}):
                reference.sample(requests)
            expected = _fingerprint(reference)
        for alternative_backend in _alternative_backends():
            with ShardedSamplingEngine(
                problem.graph, _probs(problem), seeds=8, mode=mode,
                chunk_size=chunk_size, engine="process", max_workers=workers,
                backend=alternative_backend,
            ) as engine:
                for requests in ({0: 70, 1: 40}, {0: 33}):
                    engine.sample(requests)
                _assert_fingerprints_equal(expected, _fingerprint(engine))

    def test_engine_records_resolved_backend(self):
        problem = _problem(4)
        with ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=1, backend="numpy"
        ) as engine:
            # symmetric with RRSetSampler: .backend is the resolved
            # instance, .backend_name the stats/provenance string
            assert isinstance(engine.backend, NumpyBackend)
            assert engine.backend_name == "numpy"
            assert "backend='numpy'" in repr(engine)
            assert engine.sampler(0).backend_name == "numpy"


class TestTIRMBackendInvariance:
    _kwargs = dict(
        seed=3, initial_pilot=300, min_rr_sets_per_ad=300,
        max_rr_sets_per_ad=2_000, epsilon=0.25,
    )

    def test_allocations_identical_across_backends(self):
        problem = _problem(9)
        reference = TIRMAllocator(backend="numpy", **self._kwargs).allocate(problem)
        for alternative_backend in _alternative_backends():
            alternative = TIRMAllocator(
                backend=alternative_backend, **self._kwargs
            ).allocate(problem)
            assert alternative.allocation == reference.allocation
            assert np.array_equal(
                alternative.estimated_revenues, reference.estimated_revenues
            )
            assert alternative.stats["theta_per_ad"] == reference.stats["theta_per_ad"]

    def test_stats_and_provenance_record_resolved_backend(self, monkeypatch):
        problem = _problem(9)
        result = TIRMAllocator(backend="numpy", **self._kwargs).allocate(problem)
        assert result.stats["backend"] == "numpy"
        assert result.allocation.provenance["backend"] == "numpy"
        # auto without numba resolves (and records) numpy, not "auto"
        _no_numba(monkeypatch)
        monkeypatch.setattr(backends_pkg, "_WARNED_AUTO_FALLBACK", True)
        result = TIRMAllocator(backend="auto", **self._kwargs).allocate(problem)
        assert result.stats["backend"] == "numpy"
        assert result.allocation.provenance["backend"] == "numpy"

    def test_rejects_unknown_backend_at_construction(self):
        with pytest.raises(ConfigurationError, match="backend"):
            TIRMAllocator(backend="cuda")

    def test_unavailable_numba_fails_at_allocate(self, monkeypatch):
        _no_numba(monkeypatch)
        problem = _problem(9)
        with pytest.raises(ConfigurationError, match="numba"):
            TIRMAllocator(backend="numba", **self._kwargs).allocate(problem)


class TestCheckpointCrossBackend:
    def test_numpy_checkpoint_resumes_under_numba_byte_identically(self, tmp_path):
        """The backend is provenance, not contract: a checkpoint written
        under the numpy backend must resume under the numba kernel and
        converge to the byte-identical allocation."""
        problem = _problem(12)
        kwargs = dict(
            seed=5, initial_pilot=300, min_rr_sets_per_ad=300,
            max_rr_sets_per_ad=2_000, epsilon=0.25, chunk_size=64,
        )
        reference = TIRMAllocator(backend="numpy", **kwargs).allocate(problem)
        path = tmp_path / "run.ckpt.npz"
        truncated = TIRMAllocator(
            backend="numpy", checkpoint_path=path, max_iterations=2, **kwargs
        ).allocate(problem)
        assert truncated.stats["truncated"]
        resumed = TIRMAllocator(
            backend=NumbaBackend(jit=False), resume_from=path, **kwargs
        ).allocate(problem)
        assert resumed.allocation == reference.allocation
        assert np.array_equal(
            resumed.estimated_revenues, reference.estimated_revenues
        )
        assert resumed.stats["theta_per_ad"] == reference.stats["theta_per_ad"]
        assert resumed.allocation.provenance["backend"] == "numba"
        assert resumed.stats["resumed_at_iteration"] == 2


class TestKernelEdgeCases:
    """Kernel paths the random graphs may not reliably hit."""

    def test_isolated_roots(self):
        graph = erdos_renyi(10, 0.0, seed=0)  # no edges at all
        probs = np.empty(0, dtype=np.float64)
        for alternative in _alternative_backends():
            members, lengths = alternative.sample_flat(
                graph, probs, np.random.default_rng(0), 5
            )
            assert lengths.tolist() == [1] * 5  # each set is just its root

    def test_zero_count(self):
        graph, probs = _graph_and_probs()
        for alternative in _alternative_backends():
            members, lengths = alternative.sample_flat(
                graph, probs[graph.in_edge_ids], np.random.default_rng(0), 0
            )
            assert members.size == 0 and lengths.size == 0

    def test_dense_probabilities_saturate_sets(self):
        """p=1 edges: every reachable node joins, dedup works hard."""
        graph, probs = _graph_and_probs(seed=2, n=30, p=0.2, prob=1.0)
        in_probs = probs[graph.in_edge_ids]
        expected = NumpyBackend().sample_flat(
            graph, in_probs, np.random.default_rng(1), 50
        )
        for alternative in _alternative_backends():
            actual = alternative.sample_flat(
                graph, in_probs, np.random.default_rng(1), 50
            )
            assert expected[0].tobytes() == actual[0].tobytes()
            assert expected[1].tobytes() == actual[1].tobytes()

    def test_warmup_is_safe_and_idempotent(self):
        graph, _ = _graph_and_probs()
        backend = NumbaBackend(jit=False)
        backend.warmup(graph)
        backend.warmup(graph)

    def test_backend_is_not_a_sampling_backend_subclass_check(self):
        assert isinstance(NumpyBackend(), SamplingBackend)
        assert isinstance(NumbaBackend(jit=False), SamplingBackend)


@pytest.mark.skipif(not numba_available(), reason="numba not installed")
class TestCompiledKernel:
    """Extra assertions that only run where the JIT is importable."""

    def test_compiled_and_python_kernels_agree(self):
        graph, probs = _graph_and_probs(seed=11)
        in_probs = probs[graph.in_edge_ids]
        jit = NumbaBackend()
        jit.warmup(graph)
        python = NumbaBackend(jit=False)
        a = jit.sample_flat(graph, in_probs, np.random.default_rng(2), 400)
        b = python.sample_flat(graph, in_probs, np.random.default_rng(2), 400)
        assert a[0].tobytes() == b[0].tobytes()
        assert a[1].tobytes() == b[1].tobytes()

    def test_backend_fixture_matrix_runs_jit(self, rrset_backend):
        """Under ``pytest --backend numba`` the fixture resolves to the
        JIT backend and a TIRM allocation matches the numpy reference."""
        problem = _problem(13)
        kwargs = dict(
            seed=1, initial_pilot=300, min_rr_sets_per_ad=300,
            max_rr_sets_per_ad=1_500, epsilon=0.3,
        )
        reference = TIRMAllocator(backend="numpy", **kwargs).allocate(problem)
        other = TIRMAllocator(backend=rrset_backend, **kwargs).allocate(problem)
        assert other.allocation == reference.allocation
