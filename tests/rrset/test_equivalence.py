"""Equivalence of the flat-CSR engine with the frozen seed implementation.

The pool must be a *drop-in* replacement: identical coverage counts,
removal results, greedy-cover picks, and — through the scalar sampler
path — bit-identical TIRM allocations for the same master seed.  The
reference implementations live in ``tests/rrset/_legacy.py`` (verbatim
copies of the pre-pool code).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.advertising.advertiser import Advertiser
from repro.advertising.attention import AttentionBounds
from repro.advertising.catalog import AdCatalog
from repro.advertising.problem import AdAllocationProblem
from repro.algorithms.tirm import TIRMAllocator
from repro.graph.generators import erdos_renyi
from repro.graph.probabilities import constant_probabilities
from repro.rrset.pool import RRSetPool
from repro.rrset.sampler import RRSetSampler
from repro.rrset.tim import greedy_max_coverage

from tests.rrset._legacy import (
    LegacyRRSetCollection,
    LegacyTIRMAllocator,
    legacy_greedy_max_coverage,
)

N_NODES = 12

set_lists = st.lists(
    st.lists(st.integers(0, N_NODES - 1), min_size=1, max_size=5, unique=True),
    max_size=40,
)


def _as_arrays(sets):
    return [np.asarray(s, dtype=np.int64) for s in sets]


@given(sets=set_lists, removals=st.lists(st.integers(0, N_NODES - 1), max_size=8))
@settings(max_examples=80, deadline=None)
def test_mutation_equivalence(sets, removals):
    """add_sets + remove_covered march in lockstep with the seed code."""
    pool = RRSetPool(N_NODES)
    legacy = LegacyRRSetCollection(N_NODES)
    assert list(pool.add_sets(_as_arrays(sets))) == list(
        legacy.add_sets(_as_arrays(sets))
    )
    assert np.array_equal(pool.coverage(), legacy.coverage())
    for node in removals:
        assert pool.remove_covered(node) == legacy.remove_covered(node)
        assert np.array_equal(pool.coverage(), legacy.coverage())
        assert pool.num_alive == legacy.num_alive
    assert pool.num_total == legacy.num_total
    for i in range(pool.num_total):
        assert pool.is_alive(i) == legacy.is_alive(i)
        assert pool.get_set(i).tolist() == legacy.get_set(i).tolist()


@given(sets=set_lists, removals=st.lists(st.integers(0, N_NODES - 1), max_size=4))
@settings(max_examples=60, deadline=None)
def test_query_equivalence(sets, removals):
    """coverage_of_set / sets_containing match the seed semantics."""
    pool = RRSetPool(N_NODES)
    legacy = LegacyRRSetCollection(N_NODES)
    pool.add_sets(_as_arrays(sets))
    legacy.add_sets(_as_arrays(sets))
    for node in removals:
        pool.remove_covered(node)
        legacy.remove_covered(node)
    for node in range(N_NODES):
        assert pool.sets_containing(node) == legacy.sets_containing(node)
        assert pool.sets_containing(node, alive_only=False) == legacy.sets_containing(
            node, alive_only=False
        )
        assert pool.coverage_of(node) == legacy.coverage_of(node)
    for query in ([0], [1, 3], list(range(N_NODES)), [5, 5, 2]):
        assert pool.coverage_of_set(query) == legacy.coverage_of_set(query)


@given(sets=set_lists, k=st.integers(0, 6))
@settings(max_examples=60, deadline=None)
def test_greedy_cover_equivalence(sets, k):
    """Same picks and the same covered count, for list and pool inputs."""
    arrays = _as_arrays(sets)
    expected = legacy_greedy_max_coverage(arrays, N_NODES, k)
    assert greedy_max_coverage(arrays, N_NODES, k) == expected
    pool = RRSetPool(N_NODES)
    pool.add_sets(arrays)
    assert greedy_max_coverage(pool, N_NODES, k) == expected
    assert greedy_max_coverage(pool.prefix_view(), N_NODES, k) == expected
    # the greedy never mutates a pool handed to it
    assert pool.num_alive == pool.num_total


def test_greedy_cover_eligible_equivalence():
    rng = np.random.default_rng(3)
    arrays = [rng.choice(N_NODES, size=3, replace=False) for _ in range(30)]
    eligible = rng.random(N_NODES) < 0.5
    # the legacy greedy consumes its mask destructively — hand it a copy
    expected = legacy_greedy_max_coverage(arrays, N_NODES, 4, eligible=eligible.copy())
    assert greedy_max_coverage(arrays, N_NODES, 4, eligible=eligible) == expected
    # ...while the pool-era greedy leaves the caller's mask untouched
    assert greedy_max_coverage(arrays, N_NODES, 4, eligible=eligible) == expected


def test_sample_into_matches_sample():
    """The pool-writing sampler path is bit-exact with ``sample``."""
    g = erdos_renyi(80, 0.06, seed=11)
    probs = constant_probabilities(g, 0.2)
    sets = RRSetSampler(g, probs, seed=21).sample(400)
    pool = RRSetPool(g.num_nodes)
    RRSetSampler(g, probs, seed=21).sample_into(pool, 400)
    assert pool.num_total == 400
    for i, members in enumerate(sets):
        assert pool.get_set(i).tolist() == members.tolist()


def _problem(seed: int, num_ads: int = 2, budget: float = 6.0):
    graph = erdos_renyi(60, 0.05, seed=seed)
    catalog = AdCatalog(
        [Advertiser(name=f"a{i}", budget=budget, cpe=1.0) for i in range(num_ads)]
    )
    return AdAllocationProblem(
        graph,
        catalog,
        constant_probabilities(graph, 0.08),
        0.4,
        AttentionBounds.uniform(graph.num_nodes, num_ads),
    )


@pytest.mark.parametrize("seed", [0, 7])
def test_tirm_allocation_bit_identical(seed):
    """Pool-backed TIRM (scalar sampler) reproduces the seed TIRM exactly:
    same allocation, same revenues, same θ and seed-size trajectories."""
    problem = _problem(seed)
    kwargs = dict(
        seed=seed, initial_pilot=400, max_rr_sets_per_ad=4_000, epsilon=0.2
    )
    # Pinned to the legacy streams: the counter-based default is a
    # different (equally valid) sample sequence by design.
    new = TIRMAllocator(sampler_mode="scalar", rng="legacy", **kwargs).allocate(problem)
    old = LegacyTIRMAllocator(**kwargs).allocate(problem)
    assert new.allocation == old.allocation
    assert np.array_equal(new.estimated_revenues, old.estimated_revenues)
    assert new.stats["theta_per_ad"] == old.stats["theta_per_ad"]
    assert new.stats["seed_size_estimates"] == old.stats["seed_size_estimates"]
    assert new.stats["iterations"] == old.stats["iterations"]


def test_tirm_blocked_mode_is_deterministic_and_valid():
    problem = _problem(3)
    kwargs = dict(seed=5, initial_pilot=400, max_rr_sets_per_ad=4_000, epsilon=0.2)
    a = TIRMAllocator(sampler_mode="blocked", **kwargs).allocate(problem)
    b = TIRMAllocator(sampler_mode="blocked", **kwargs).allocate(problem)
    assert a.allocation == b.allocation
    assert np.array_equal(a.estimated_revenues, b.estimated_revenues)
    assert a.allocation.is_valid(problem.attention)
