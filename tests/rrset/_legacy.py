"""Reference (pre-pool) RR-set engine, kept verbatim for equivalence tests.

This module preserves the original pure-Python implementations that the
flat-CSR :class:`repro.rrset.pool.RRSetPool` replaced: the
``list[np.ndarray]`` collection with its ``list[list[int]]`` inverted
index, the list-based greedy max-cover, and a TIRM variant wired to
them.  The equivalence suite asserts the production engine reproduces
these bit-for-bit (same seeds, same counts, same picks, same
allocations).  Do not "fix" or optimise this file — its value is being
frozen history.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.algorithms.tirm import TIRMAllocator, _AdState
from repro.rrset.sampler import RRSetSampler
from repro.rrset.tim import required_rr_sets


class LegacyRRSetCollection:
    """The seed implementation of the RR-set coverage index."""

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 0:
            raise ValueError("num_nodes must be >= 0")
        self.num_nodes = int(num_nodes)
        self._sets: list[np.ndarray] = []
        self._alive: list[bool] = []
        self._member_of: list[list[int]] = [[] for _ in range(num_nodes)]
        self._coverage = np.zeros(num_nodes, dtype=np.int64)
        self._num_alive = 0

    def add_sets(self, sets: Iterable[np.ndarray]) -> Sequence[int]:
        new_ids = []
        member_of = self._member_of
        coverage = self._coverage
        for members in sets:
            members = np.asarray(members, dtype=np.int64)
            set_id = len(self._sets)
            self._sets.append(members)
            self._alive.append(True)
            self._num_alive += 1
            for node in members.tolist():
                member_of[node].append(set_id)
                coverage[node] += 1
            new_ids.append(set_id)
        return new_ids

    def remove_covered(self, node: int) -> int:
        removed = 0
        coverage = self._coverage
        for set_id in self._member_of[node]:
            if self._alive[set_id]:
                self._alive[set_id] = False
                self._num_alive -= 1
                for member in self._sets[set_id].tolist():
                    coverage[member] -= 1
                removed += 1
        return removed

    @property
    def num_total(self) -> int:
        return len(self._sets)

    @property
    def num_alive(self) -> int:
        return self._num_alive

    def coverage(self) -> np.ndarray:
        view = self._coverage.view()
        view.flags.writeable = False
        return view

    def coverage_of(self, node: int) -> int:
        return int(self._coverage[node])

    def coverage_of_set(self, nodes) -> int:
        nodes = set(int(v) for v in np.asarray(nodes, dtype=np.int64).ravel())
        hit = 0
        seen: set[int] = set()
        for node in nodes:
            for set_id in self._member_of[node]:
                if self._alive[set_id] and set_id not in seen:
                    seen.add(set_id)
                    hit += 1
        return hit

    def sets_containing(self, node: int, *, alive_only: bool = True) -> list[int]:
        ids = self._member_of[node]
        if not alive_only:
            return list(ids)
        return [i for i in ids if self._alive[i]]

    def get_set(self, set_id: int) -> np.ndarray:
        return self._sets[set_id]

    def all_sets(self) -> list[np.ndarray]:
        return list(self._sets)

    def is_alive(self, set_id: int) -> bool:
        return self._alive[set_id]

    def average_set_size(self) -> float:
        if not self._sets:
            return 0.0
        return float(sum(len(s) for s in self._sets) / len(self._sets))

    def memory_bytes(self) -> int:
        sets_bytes = sum(s.nbytes for s in self._sets)
        index_entries = sum(len(lst) for lst in self._member_of)
        return int(sets_bytes + 8 * index_entries + self._coverage.nbytes)


def legacy_greedy_max_coverage(
    sets: list[np.ndarray],
    num_nodes: int,
    k: int,
    *,
    eligible=None,
) -> tuple[list[int], int]:
    """The seed list-based greedy Max k-Cover."""
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    collection = LegacyRRSetCollection(num_nodes)
    collection.add_sets(sets)
    coverage = collection.coverage()
    mask = None
    if eligible is not None:
        mask = np.asarray(eligible, dtype=bool)
        if mask.shape != (num_nodes,):
            raise ValueError(f"eligible must have shape ({num_nodes},)")
    chosen: list[int] = []
    covered = 0
    for _ in range(min(k, num_nodes)):
        if mask is None:
            best = int(np.argmax(coverage))
        else:
            if not mask.any():
                break
            scores = np.where(mask, coverage, -1)
            best = int(np.argmax(scores))
        if coverage[best] <= 0:
            break
        covered += collection.remove_covered(best)
        chosen.append(best)
        if mask is not None:
            mask[best] = False
    return chosen, covered


class LegacyTIRMAllocator(TIRMAllocator):
    """TIRM wired to the seed collection, sampler path, and greedy.

    The methods that touched the storage engine are overridden with
    their original (pre-pool) bodies, and ``_allocate`` itself is the
    frozen pre-sharding loop — per-ad serial initialisation, the
    scan-order ``drop > best + 1e-12`` argmax, and single-ad growth —
    so any engine- or loop-level divergence shows up as a different
    allocation.
    """

    name = "TIRM-legacy"

    def _allocate(self, problem):
        import math

        from repro.advertising.allocation import Allocation
        from repro.algorithms.base import AllocationResult
        from repro.utils.rng import spawn_generators

        h, n = problem.num_ads, problem.num_nodes
        budgets = problem.catalog.budgets()
        cpes = problem.catalog.cpes()
        allocation = Allocation(h, n)
        rngs = spawn_generators(self._seed, h)

        states = [self._initial_state(problem, ad, rngs[ad]) for ad in range(h)]
        for ad in range(h):
            self._rebuild_heap(problem, ad, states[ad])

        iterations = 0
        while True:
            best_ad = -1
            best_drop = 0.0
            best_node = -1
            best_cov = 0
            for ad in range(h):
                state = states[ad]
                if not state.active:
                    continue
                candidate = self._best_candidate(
                    problem, ad, state, allocation, budgets, cpes
                )
                if candidate is None:
                    continue
                node, cov, _, drop = candidate
                if drop > best_drop + 1e-12:
                    best_ad, best_drop = ad, drop
                    best_node, best_cov = node, cov
            if best_ad < 0:
                break

            state = states[best_ad]
            marginal = self._marginal_revenue(
                problem, best_ad, state, best_node, best_cov, cpes
            )
            allocation.assign(best_node, best_ad)
            state.seeds_in_order.append(best_node)
            state.marginal_coverage[best_node] = best_cov
            state.revenue += marginal
            state.collection.remove_covered(best_node)
            iterations += 1

            if len(state.seeds_in_order) == state.seed_size_estimate:
                self._grow_sample(problem, best_ad, state, budgets, cpes, marginal)

        revenues = np.asarray([s.revenue for s in states])
        return AllocationResult(
            algorithm=self.name,
            allocation=allocation,
            estimated_revenues=revenues,
            budgets=budgets,
            penalty=problem.penalty,
            stats={
                "iterations": iterations,
                "theta_per_ad": [s.theta for s in states],
                "seed_size_estimates": [s.seed_size_estimate for s in states],
                "total_rr_sets": int(sum(s.theta for s in states)),
                "rr_memory_bytes": int(
                    sum(s.collection.memory_bytes() for s in states)
                ),
                "epsilon": self.epsilon,
                "select_rule": self.select_rule,
                "sampler_mode": self.sampler_mode,
            },
        )

    def _initial_state(self, problem, ad: int, rng) -> _AdState:
        sampler = RRSetSampler(
            problem.graph, problem.ad_edge_probabilities(ad), seed=rng
        )
        collection = LegacyRRSetCollection(problem.num_nodes)
        pilot = max(
            min(self.initial_pilot, self.max_rr_sets_per_ad), self.min_rr_sets_per_ad
        )
        collection.add_sets(sampler.sample(pilot))
        state = _AdState(sampler=sampler, collection=collection)
        target = self._theta_for(problem, state, s=1)
        if target > state.theta:
            collection.add_sets(sampler.sample(target - state.theta))
        return state

    def _theta_for(self, problem, state: _AdState, s: int) -> int:
        n = problem.num_nodes
        s = min(max(s, 1), n)
        pilot = state.collection.all_sets()[: self._OPT_PILOT_SETS]
        _, covered = legacy_greedy_max_coverage(pilot, n, s)
        opt_lower = max(n * covered / len(pilot), float(min(s, n)), 1.0)
        theta = required_rr_sets(n, s, self.epsilon, opt_lower, ell=self.ell)
        return int(min(max(theta, self.min_rr_sets_per_ad), self.max_rr_sets_per_ad))

    def _grow_sample(self, problem, ad: int, state: _AdState, budgets, cpes,
                     last_marginal: float) -> None:
        import math

        from repro.advertising.regret import regret_of

        regret = regret_of(
            budgets[ad], state.revenue, problem.penalty, len(state.seeds_in_order)
        )
        if last_marginal > 0:
            growth = int(math.floor(regret / last_marginal))
        else:
            growth = 0
        state.seed_size_estimate += max(growth, 1)

        target = max(
            self._theta_for(problem, state, state.seed_size_estimate), state.theta
        )
        extra = target - state.theta
        if extra <= 0:
            return
        state.collection.add_sets(state.sampler.sample(extra))
        for node in state.seeds_in_order:
            fresh = len(state.collection.sets_containing(node, alive_only=True))
            state.marginal_coverage[node] += fresh
            state.collection.remove_covered(node)
        self._recompute_revenue(problem, ad, state, cpes)
        self._rebuild_heap(problem, ad, state)
