"""RRSetPool: flat-CSR storage, bulk index maintenance, and views."""

import numpy as np
import pytest

from repro.rrset.pool import CSRSetView, RRSetPool


def _sets(*members):
    return [np.asarray(m, dtype=np.int64) for m in members]


class TestAddFlat:
    def test_bulk_append(self):
        pool = RRSetPool(6)
        pool.add_flat(np.asarray([0, 1, 2, 3, 1]), np.asarray([2, 3]))
        assert pool.num_total == 2
        assert pool.get_set(0).tolist() == [0, 1]
        assert pool.get_set(1).tolist() == [2, 3, 1]
        assert pool.coverage().tolist() == [1, 2, 1, 1, 0, 0]

    def test_empty_sets_are_registered(self):
        pool = RRSetPool(4)
        pool.add_flat(np.asarray([2]), np.asarray([0, 1, 0]))
        assert pool.num_total == 3
        assert pool.get_set(0).size == 0
        assert pool.get_set(1).tolist() == [2]
        assert pool.get_set(2).size == 0
        assert pool.coverage_of_set([2]) == 1

    def test_length_mismatch_rejected(self):
        pool = RRSetPool(4)
        with pytest.raises(ValueError):
            pool.add_flat(np.asarray([0, 1]), np.asarray([3]))

    def test_negative_length_rejected(self):
        pool = RRSetPool(4)
        with pytest.raises(ValueError):
            pool.add_flat(np.asarray([0]), np.asarray([2, -1]))

    def test_out_of_range_members_rejected(self):
        pool = RRSetPool(4)
        with pytest.raises(ValueError):
            pool.add_flat(np.asarray([4]), np.asarray([1]))
        with pytest.raises(ValueError):
            pool.add_flat(np.asarray([-1]), np.asarray([1]))

    def test_growth_across_many_batches(self):
        """Appends far past the initial capacities keep all data intact."""
        pool = RRSetPool(50)
        rng = np.random.default_rng(0)
        reference = []
        for _ in range(40):
            batch = [rng.choice(50, size=rng.integers(1, 6), replace=False)
                     for _ in range(rng.integers(1, 60))]
            pool.add_sets(batch)
            reference.extend(batch)
        assert pool.num_total == len(reference)
        for i, members in enumerate(reference):
            assert pool.get_set(i).tolist() == list(members)
        expected = np.zeros(50, dtype=np.int64)
        for members in reference:
            expected[members] += 1
        assert np.array_equal(pool.coverage(), expected)


class TestAddFlatFromBuffer:
    """Single-copy ingest of a packed ``[int64 lengths][int32 members]``
    block — the parent-side splice path of the shm transport."""

    @staticmethod
    def _packed(members, lengths, pad_before=0):
        lengths = np.asarray(lengths, dtype=np.int64)
        members = np.asarray(members, dtype=np.int32)
        return b"\x00" * pad_before + lengths.tobytes() + members.tobytes()

    def test_matches_add_flat(self):
        a, b = RRSetPool(6), RRSetPool(6)
        members, lengths = [0, 1, 2, 3, 1], [2, 3]
        a.add_flat(np.asarray(members), np.asarray(lengths))
        b.add_flat_from_buffer(
            self._packed(members, lengths), num_sets=2, num_members=5
        )
        assert b.num_total == a.num_total
        va, vb = a.prefix_view(), b.prefix_view()
        assert va.members.tobytes() == vb.members.tobytes()
        assert va.indptr.tobytes() == vb.indptr.tobytes()
        assert a.coverage().tolist() == b.coverage().tolist()

    def test_offsets_select_a_sub_block(self):
        """The engine splices ``[lo, hi)`` of a chunk by pointing the
        offsets into the middle of a worker's block."""
        pool = RRSetPool(6)
        members, lengths = [0, 1, 2, 3, 1, 4], [2, 3, 1]
        buf = self._packed(members, lengths)
        # take sets [1, 3): lengths start at entry 1, members at element 2
        pool.add_flat_from_buffer(
            buf, num_sets=2, num_members=4,
            lengths_offset=1 * 8, members_offset=3 * 8 + 2 * 4,
        )
        assert pool.num_total == 2
        assert pool.get_set(0).tolist() == [2, 3, 1]
        assert pool.get_set(1).tolist() == [4]

    def test_leading_padding_via_lengths_offset(self):
        pool = RRSetPool(6)
        buf = self._packed([5, 0], [1, 1], pad_before=16)
        pool.add_flat_from_buffer(
            buf, num_sets=2, num_members=2, lengths_offset=16
        )
        assert pool.get_set(0).tolist() == [5]
        assert pool.get_set(1).tolist() == [0]

    def test_empty_block(self):
        pool = RRSetPool(4)
        pool.add_flat_from_buffer(b"", num_sets=0, num_members=0)
        assert pool.num_total == 0

    def test_validation_mirrors_add_flat(self):
        pool = RRSetPool(4)
        with pytest.raises(ValueError):  # lengths do not sum to members
            pool.add_flat_from_buffer(
                self._packed([0, 1], [3]), num_sets=1, num_members=2
            )
        with pytest.raises(ValueError):  # out-of-range member
            pool.add_flat_from_buffer(
                self._packed([7], [1]), num_sets=1, num_members=1
            )
        with pytest.raises(ValueError):  # negative length
            pool.add_flat_from_buffer(
                self._packed([0], [2, -1]), num_sets=2, num_members=1
            )
        with pytest.raises(ValueError):  # negative counts
            pool.add_flat_from_buffer(b"", num_sets=-1, num_members=0)
        with pytest.raises(ValueError):  # buffer too small for the counts
            pool.add_flat_from_buffer(
                self._packed([0], [1]), num_sets=1, num_members=9
            )
        assert pool.num_total == 0  # refused appends leave the pool untouched

    def test_pool_keeps_no_reference_to_the_buffer(self):
        """The caller may unlink/release the source immediately — the
        pool's arrays must own their bytes."""
        pool = RRSetPool(6)
        buf = bytearray(self._packed([0, 1, 2], [1, 2]))
        pool.add_flat_from_buffer(bytes(buf), num_sets=2, num_members=3)
        before = pool.prefix_view().members.tobytes()
        buf[:] = b"\xff" * len(buf)  # clobber the source
        assert pool.prefix_view().members.tobytes() == before
        assert pool.get_set(1).tolist() == [1, 2]

    def test_add_flat_still_accepts_int64_convenience_input(self):
        """``add_flat`` keeps the legacy wide-dtype convenience path (one
        explicit astype) while int32 input goes straight through."""
        pool = RRSetPool(6)
        pool.add_flat(
            np.asarray([0, 1], dtype=np.int64), np.asarray([2], dtype=np.int64)
        )
        pool.add_flat(
            np.asarray([2], dtype=np.int32), np.asarray([1], dtype=np.int32)
        )
        assert pool.num_total == 2
        assert pool.get_set(0).tolist() == [0, 1]
        assert pool.get_set(1).tolist() == [2]


class TestIndexMaintenance:
    def test_pending_mini_index_serves_queries(self):
        """A small batch after a large one must not trigger a full
        rebuild, yet queries must still see the new sets."""
        pool = RRSetPool(30)
        rng = np.random.default_rng(1)
        big = [rng.choice(30, size=8, replace=False) for _ in range(700)]
        pool.add_sets(big)
        assert pool._indexed_sets == 700  # full index covers the batch
        pool.add_sets(_sets([3, 4], [4, 5]))
        assert pool._indexed_sets == 700  # mini-index path engaged
        assert pool.num_total == 702
        assert set(pool.sets_containing(4)) >= {700, 701}
        assert pool.coverage_of(4) == int(
            sum(4 in set(map(int, s)) for s in big)
        ) + 2
        # removal through the mixed main+mini index stays consistent
        before = pool.num_alive
        removed = pool.remove_covered(4)
        assert pool.num_alive == before - removed
        assert pool.coverage_of(4) == 0

    def test_full_rebuild_when_pending_grows(self):
        pool = RRSetPool(10)
        pool.add_sets(_sets([0], [1]))
        pool.add_sets(_sets(*[[i % 10] for i in range(100)]))
        assert pool._indexed_sets == pool.num_total  # pending forced rebuild


class TestViews:
    def test_prefix_view_is_zero_copy(self):
        pool = RRSetPool(5)
        pool.add_sets(_sets([0, 1], [2], [3, 4]))
        view = pool.prefix_view(2)
        assert isinstance(view, CSRSetView)
        assert view.num_sets == 2
        assert view.members.base is not None  # a view, not a copy
        assert view.get_set(0).tolist() == [0, 1]
        assert view.get_set(1).tolist() == [2]

    def test_prefix_view_defaults_to_all(self):
        pool = RRSetPool(5)
        pool.add_sets(_sets([0], [1], [2]))
        assert pool.prefix_view().num_sets == 3

    def test_prefix_view_clamps(self):
        pool = RRSetPool(5)
        pool.add_sets(_sets([0]))
        assert pool.prefix_view(10).num_sets == 1
        assert pool.prefix_view(-3).num_sets == 0

    def test_first_k_sets(self):
        pool = RRSetPool(5)
        pool.add_sets(_sets([0, 1], [2], [3]))
        first = pool.first_k_sets(2)
        assert [s.tolist() for s in first] == [[0, 1], [2]]

    def test_set_ids_containing_array(self):
        pool = RRSetPool(5)
        ids = pool.add_sets(_sets([0, 1], [1, 2], [2]))
        hits = pool.set_ids_containing(1)
        assert isinstance(hits, np.ndarray)
        assert sorted(hits.tolist()) == [ids[0], ids[1]]
        pool.remove_covered(0)
        assert pool.set_ids_containing(1).tolist() == [ids[1]]
        assert sorted(pool.set_ids_containing(1, alive_only=False).tolist()) == [
            ids[0], ids[1],
        ]

    def test_alive_mask(self):
        pool = RRSetPool(5)
        pool.add_sets(_sets([0], [1], [0, 1]))
        pool.remove_covered(0)
        assert pool.alive_mask().tolist() == [False, True, False]
        with pytest.raises(ValueError):
            pool.alive_mask()[0] = True


class TestViewGenerations:
    def test_generation_bumps_on_reallocation(self):
        pool = RRSetPool(50)
        pool.add_sets(_sets([0, 1]))
        start = pool.generation
        # small append: fits in the initial capacity, no retirement
        pool.add_sets(_sets([2]))
        assert pool.generation == start
        # blow past the member-buffer capacity: generation must move
        big = [np.arange(50, dtype=np.int64) for _ in range(60)]
        pool.add_sets(big)
        assert pool.generation > start

    def test_prefix_view_survives_growth_reallocation(self):
        """Regression: a view held across a growth-triggered reallocation
        used to keep pointing at the retired buffer.  It must now
        re-materialize against the live one with identical contents."""
        pool = RRSetPool(50)
        pool.add_sets(_sets([0, 1], [2, 3, 4]))
        view = pool.prefix_view(2)
        before = [view.get_set(i).tolist() for i in range(2)]
        old_members = pool._members
        big = [np.arange(50, dtype=np.int64) for _ in range(200)]
        pool.add_sets(big)
        assert pool._members is not old_members  # reallocation happened
        # contents unchanged, but served from the live buffer
        assert [view.get_set(i).tolist() for i in range(2)] == before
        assert np.shares_memory(view.members, pool._members)
        assert view.indptr.tolist() == pool._indptr[:3].tolist()

    def test_view_grows_pool_mid_theta_pilot(self):
        """The `_theta_for` pattern: greedy-cover an OPT pilot window
        while top-up sampling grows the pool underneath it."""
        from repro.rrset.tim import greedy_max_coverage

        pool = RRSetPool(30)
        rng = np.random.default_rng(8)
        pool.add_sets(
            [rng.choice(30, size=4, replace=False) for _ in range(50)]
        )
        pilot = pool.prefix_view(50)
        expected = greedy_max_coverage(pilot, 30, 3)
        # grow well past capacity, as a θ top-up would
        pool.add_sets([rng.choice(30, size=6, replace=False) for _ in range(800)])
        # the held view still answers over exactly the first 50 sets
        assert greedy_max_coverage(pilot, 30, 3) == expected
        assert pilot.num_sets == 50

    def test_detached_view_is_frozen(self):
        pool = RRSetPool(10)
        pool.add_sets(_sets([0, 1], [2]))
        detached = pool.prefix_view().detach()
        pool.add_sets([np.arange(10, dtype=np.int64) for _ in range(300)])
        assert detached.num_sets == 2
        assert detached.get_set(0).tolist() == [0, 1]
        assert not np.shares_memory(detached.members, pool._members)


class TestBounds:
    def test_get_set_range_checked(self):
        pool = RRSetPool(3)
        pool.add_sets(_sets([0]))
        with pytest.raises(IndexError):
            pool.get_set(1)
        with pytest.raises(IndexError):
            pool.is_alive(-1)

    def test_node_range_checked(self):
        pool = RRSetPool(3)
        pool.add_sets(_sets([0]))
        with pytest.raises(IndexError):
            pool.remove_covered(3)
        with pytest.raises(IndexError):
            pool.coverage_of_set([5])


class TestMemoryAccounting:
    def test_reports_real_buffer_bytes(self):
        pool = RRSetPool(100)
        rng = np.random.default_rng(2)
        pool.add_sets(
            [rng.choice(100, size=5, replace=False) for _ in range(1_000)]
        )
        reported = pool.memory_bytes()
        # int32 members + int32 index dominate: 5 members/set × 8 bytes.
        assert reported >= 1_000 * 5 * (4 + 4)
        assert reported <= pool.allocated_bytes()

    def test_members_are_int32(self):
        pool = RRSetPool(10)
        pool.add_sets(_sets([1, 2]))
        assert pool.get_set(0).dtype == np.int32


class TestCapacityLimits:
    """int32 overflow guards: the pool must refuse — loudly, before any
    buffer mutation — appends that would wrap set ids or member offsets
    past 2^31 and silently corrupt the CSR index."""

    def _near_set_limit(self):
        from repro.rrset.pool import MAX_SETS

        pool = RRSetPool(4)
        pool.add_sets(_sets([0], [1]))
        snapshot = (pool.num_total, pool.coverage().copy())
        # White-box: fake a pool one set short of the id limit — actually
        # appending 2^31 sets is not testable hardware-wise.
        pool._num_sets = MAX_SETS - 1
        return pool, snapshot

    def test_add_flat_refuses_set_id_overflow(self):
        from repro.errors import CapacityError

        pool, _ = self._near_set_limit()
        with pytest.raises(CapacityError, match="set-id limit"):
            pool.add_flat(
                np.asarray([0, 1, 2], dtype=np.int32),
                np.asarray([1, 1, 1], dtype=np.int64),
            )

    def test_add_flat_refuses_member_offset_overflow(self):
        from repro.errors import CapacityError
        from repro.rrset.pool import MAX_MEMBERS

        pool = RRSetPool(4)
        pool.add_sets(_sets([0, 1]))
        pool._members_used = MAX_MEMBERS - 1
        with pytest.raises(CapacityError, match="member-offset limit"):
            pool.add_flat(
                np.asarray([0, 1], dtype=np.int32),
                np.asarray([2], dtype=np.int64),
            )

    def test_reserve_helpers_refuse_overflow_directly(self):
        from repro.errors import CapacityError
        from repro.rrset.pool import MAX_MEMBERS, MAX_SETS

        pool = RRSetPool(4)
        with pytest.raises(CapacityError):
            pool._reserve_members(MAX_MEMBERS + 1)
        with pytest.raises(CapacityError):
            pool._reserve_sets(MAX_SETS + 1)

    def test_refused_append_leaves_pool_untouched(self):
        """The guard must fire before any mutation: a refused append is
        not a partially applied one."""
        from repro.errors import CapacityError
        from repro.rrset.pool import MAX_SETS

        pool = RRSetPool(4)
        pool.add_sets(_sets([0], [1, 2]))
        coverage = pool.coverage().copy()
        members_used = pool._members_used
        pool._num_sets = MAX_SETS  # at the limit: any append overflows
        with pytest.raises(CapacityError):
            pool.add_flat(
                np.asarray([3], dtype=np.int32), np.asarray([1], dtype=np.int64)
            )
        pool._num_sets = 2  # restore the honest count
        assert pool._members_used == members_used
        assert np.array_equal(pool.coverage(), coverage)
        assert pool.num_total == 2


class TestKillSets:
    def test_kills_by_id_and_decrements_coverage(self):
        pool = RRSetPool(5)
        pool.add_sets(_sets([0, 1], [1, 2], [3]))
        killed = pool.kill_sets([0, 2])
        assert killed == 2
        assert pool.num_alive == 1
        assert not pool.is_alive(0) and pool.is_alive(1) and not pool.is_alive(2)
        assert pool.coverage_of(1) == 1  # only set 1 still covers node 1
        assert pool.coverage_of(0) == 0 and pool.coverage_of(3) == 0

    def test_already_dead_ids_are_ignored(self):
        pool = RRSetPool(5)
        pool.add_sets(_sets([0], [1]))
        assert pool.kill_sets([0]) == 1
        assert pool.kill_sets([0, 1]) == 1  # 0 already dead
        assert pool.kill_sets([]) == 0
        assert pool.num_alive == 0

    def test_restores_remove_covered_semantics(self):
        """Killing the snapshot's dead ids reproduces the exact state a
        sequence of ``remove_covered`` calls left behind."""
        rng = np.random.default_rng(5)
        source = RRSetPool(30)
        source.add_sets(
            [rng.choice(30, size=4, replace=False) for _ in range(200)]
        )
        twin = RRSetPool(30)
        twin.add_sets([source.get_set(i).copy() for i in range(200)])
        for node in (3, 17, 9):
            source.remove_covered(node)
        dead = np.flatnonzero(~np.asarray(source.alive_mask()))
        twin.kill_sets(dead)
        assert np.array_equal(twin.alive_mask(), source.alive_mask())
        assert np.array_equal(twin.coverage(), source.coverage())
        assert twin.num_alive == source.num_alive

    def test_rejects_out_of_range_ids(self):
        pool = RRSetPool(3)
        pool.add_sets(_sets([0]))
        with pytest.raises(IndexError):
            pool.kill_sets([5])
        with pytest.raises(IndexError):
            pool.kill_sets([-1])
