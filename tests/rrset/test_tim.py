"""TIM ingredients: Eq. (5), OPT estimation, greedy cover, full TIM."""

import math

import numpy as np
import pytest

from repro.graph.generators import erdos_renyi, star_graph
from repro.graph.probabilities import constant_probabilities
from repro.rrset.sampler import RRSetSampler
from repro.rrset.tim import (
    TIMInfluenceMaximizer,
    estimate_opt_lower_bound,
    greedy_max_coverage,
    kpt_estimation,
    log_binomial,
    required_rr_sets,
)


class TestLogBinomial:
    def test_exact_small_values(self):
        assert log_binomial(5, 2) == pytest.approx(math.log(10))
        assert log_binomial(10, 0) == pytest.approx(0.0)
        assert log_binomial(10, 10) == pytest.approx(0.0)

    def test_out_of_range(self):
        assert log_binomial(3, 5) == float("-inf")
        assert log_binomial(3, -1) == float("-inf")


class TestRequiredRRSets:
    def test_eq5_formula(self):
        n, s, eps, ell, opt = 100, 3, 0.2, 1.0, 25.0
        expected = math.ceil(
            (8 + 2 * eps) * n * (ell * math.log(n) + log_binomial(n, s) + math.log(2))
            / (opt * eps**2)
        )
        assert required_rr_sets(n, s, eps, opt, ell=ell) == expected

    def test_smaller_opt_needs_more_samples(self):
        many = required_rr_sets(100, 3, 0.2, 5.0)
        few = required_rr_sets(100, 3, 0.2, 50.0)
        assert many > few

    def test_tighter_epsilon_needs_more_samples(self):
        assert required_rr_sets(100, 3, 0.1, 10.0) > required_rr_sets(100, 3, 0.3, 10.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_nodes": 0, "s": 1, "epsilon": 0.1, "opt_lower_bound": 1.0},
            {"num_nodes": 10, "s": 1, "epsilon": 0.0, "opt_lower_bound": 1.0},
            {"num_nodes": 10, "s": 1, "epsilon": 1.0, "opt_lower_bound": 1.0},
            {"num_nodes": 10, "s": 1, "epsilon": 0.1, "opt_lower_bound": 0.0},
            {"num_nodes": 10, "s": 1, "epsilon": 0.1, "opt_lower_bound": 1.0, "ell": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            required_rr_sets(**kwargs)


class TestGreedyMaxCoverage:
    def test_picks_best_cover(self):
        sets = [np.asarray(s) for s in ([0, 1], [0, 2], [0, 3], [4])]
        chosen, covered = greedy_max_coverage(sets, 5, 2)
        assert chosen[0] == 0  # covers three sets
        assert covered == 4

    def test_respects_eligibility(self):
        sets = [np.asarray([0]), np.asarray([0]), np.asarray([1])]
        eligible = np.asarray([False, True])
        chosen, covered = greedy_max_coverage(sets, 2, 1, eligible=eligible)
        assert chosen == [1]
        assert covered == 1

    def test_stops_when_nothing_left(self):
        sets = [np.asarray([0])]
        chosen, covered = greedy_max_coverage(sets, 3, 3)
        assert chosen == [0]
        assert covered == 1

    def test_k_zero(self):
        chosen, covered = greedy_max_coverage([np.asarray([0])], 2, 0)
        assert chosen == []
        assert covered == 0

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            greedy_max_coverage([], 2, -1)


class TestOptEstimation:
    def test_star_graph_lower_bound(self):
        """On a star with p=1 the true OPT_1 is n; the estimator must
        lower-bound it (within sampling noise) and be ≥ 1."""
        g = star_graph(30)
        sampler = RRSetSampler(g, constant_probabilities(g, 1.0), seed=0)
        estimate = estimate_opt_lower_bound(sampler, 1, pilot_sets=2000)
        assert 1.0 <= estimate <= g.num_nodes * 1.05
        # hub reaches everyone: estimate should be close to n
        assert estimate > 0.8 * g.num_nodes

    def test_floor_at_s(self):
        g = erdos_renyi(30, 0.01, seed=1)
        sampler = RRSetSampler(g, constant_probabilities(g, 0.0), seed=2)
        estimate = estimate_opt_lower_bound(sampler, 5, pilot_sets=500)
        assert estimate >= 5.0


class TestKPT:
    def test_returns_positive(self, small_random_graph):
        probs = constant_probabilities(small_random_graph, 0.2)
        kpt = kpt_estimation(small_random_graph, probs, 3, seed=3)
        assert kpt >= 1.0

    def test_degenerate_graph(self):
        g = erdos_renyi(5, 0.0, seed=1)
        assert kpt_estimation(g, np.empty(0), 2, seed=1) == 1.0


class TestTIM:
    def test_star_graph_selects_hub(self):
        g = star_graph(20)
        tim = TIMInfluenceMaximizer(
            g, constant_probabilities(g, 1.0), epsilon=0.2, max_rr_sets=20_000, seed=4
        )
        result = tim.select(1)
        assert result.seeds == [0]
        assert result.estimated_spread == pytest.approx(21, rel=0.1)

    def test_seed_count_respected(self, small_random_graph):
        probs = constant_probabilities(small_random_graph, 0.1)
        tim = TIMInfluenceMaximizer(
            small_random_graph, probs, epsilon=0.3, max_rr_sets=5_000, seed=5
        )
        result = tim.select(4)
        assert len(result.seeds) <= 4
        assert result.num_rr_sets <= 5_000

    def test_k_validation(self, small_random_graph):
        probs = constant_probabilities(small_random_graph, 0.1)
        tim = TIMInfluenceMaximizer(small_random_graph, probs, seed=6)
        with pytest.raises(ValueError):
            tim.select(0)
