"""Counter-based RNG streams: purity, chunk addressing, and invariance.

The contract under test (``rng="philox"``): every RR set is a pure
function of ``(global_seed, ad, set_index)`` given a chunk size — so the
sampled pools must be byte-identical across serial execution, 1-worker
and N-worker process pools, every transport (pickle vs shared memory),
every start method (fork vs spawn), prefetch on or off, and any way of
splitting the same index ranges across requests.
"""

from __future__ import annotations

import gc
import os
import subprocess
import sys
import textwrap
import warnings

import numpy as np
import pytest

from repro.advertising.advertiser import Advertiser
from repro.advertising.attention import AttentionBounds
from repro.advertising.catalog import AdCatalog
from repro.advertising.problem import AdAllocationProblem
from repro.algorithms.tirm import TIRMAllocator
from repro.errors import ConfigurationError
from repro.graph.generators import erdos_renyi
from repro.graph.probabilities import constant_probabilities
from repro.rrset.sampler import RRSetSampler, StreamPlan
from repro.rrset.sharded import _FORK_PAYLOADS, ShardedSamplingEngine


def _problem(seed: int, num_ads: int = 3, budget: float = 6.0):
    graph = erdos_renyi(60, 0.05, seed=seed)
    catalog = AdCatalog(
        [Advertiser(name=f"a{i}", budget=budget, cpe=1.0) for i in range(num_ads)]
    )
    return AdAllocationProblem(
        graph,
        catalog,
        constant_probabilities(graph, 0.08),
        0.4,
        AttentionBounds.uniform(graph.num_nodes, num_ads),
    )


def _probs(problem):
    return [problem.ad_edge_probabilities(ad) for ad in range(problem.num_ads)]


def _fingerprint(engine: ShardedSamplingEngine):
    out = []
    for ad in range(engine.num_ads):
        view = engine.shard(ad).prefix_view()
        out.append(
            (engine.shard(ad).num_total, view.members.copy(), view.indptr.copy())
        )
    return out


def _assert_fingerprints_equal(a, b):
    assert len(a) == len(b)
    for (na, ma, pa), (nb, mb, pb) in zip(a, b):
        assert na == nb
        assert ma.tobytes() == mb.tobytes()
        assert pa.tobytes() == pb.tobytes()


class TestStreamPlan:
    def test_chunk_tasks_partition_any_range(self):
        plan = StreamPlan(42, ad=1, chunk_size=7)
        for start, stop in [(0, 0), (0, 7), (3, 25), (7, 14), (13, 14), (0, 100)]:
            tasks = plan.chunk_tasks(start, stop)
            covered = [
                chunk * 7 + off
                for chunk, lo, hi in tasks
                for off in range(lo, hi)
            ]
            assert covered == list(range(start, stop))
            # chunks appear in ascending order, each at most once
            chunks = [c for c, _, _ in tasks]
            assert chunks == sorted(set(chunks))

    def test_chunk_tasks_rejects_bad_range(self):
        plan = StreamPlan(42, ad=0)
        with pytest.raises(ValueError):
            plan.chunk_tasks(-1, 4)
        with pytest.raises(ValueError):
            plan.chunk_tasks(5, 4)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            StreamPlan(0, ad=-1)
        with pytest.raises(ValueError):
            StreamPlan(0, ad=0, chunk_size=0)

    def test_generators_are_pure_and_distinct(self):
        plan = StreamPlan(9, ad=2, chunk_size=16)
        a = plan.generator(5).random(8)
        b = plan.generator(5).random(8)
        assert np.array_equal(a, b)  # same address, same stream
        assert not np.array_equal(a, plan.generator(6).random(8))
        other_ad = StreamPlan(9, ad=3, chunk_size=16)
        assert not np.array_equal(a, other_ad.generator(5).random(8))
        other_seed = StreamPlan(10, ad=2, chunk_size=16)
        assert not np.array_equal(a, other_seed.generator(5).random(8))

    def test_scalar_random_is_pure(self):
        plan = StreamPlan(9, ad=0, chunk_size=16)
        a = [plan.scalar_random(3).random() for _ in range(2)]
        assert a[0] == a[1]
        assert plan.scalar_random(4).random() != a[0]


class TestSeedEntropy:
    def test_spawned_seed_sequences_get_distinct_roots(self):
        """A parent SeedSequence and its spawned child are the standard
        numpy idiom for independent streams — they must not collapse to
        the same entropy root (and hence identical Philox chunks)."""
        from repro.utils.rng import seed_entropy

        parent = np.random.SeedSequence(5)
        child = parent.spawn(1)[0]
        assert seed_entropy(parent) == 5
        assert seed_entropy(child) != seed_entropy(parent)
        a = StreamPlan(seed_entropy(parent), ad=0, chunk_size=8)
        b = StreamPlan(seed_entropy(child), ad=0, chunk_size=8)
        assert not np.array_equal(a.generator(0).random(8), b.generator(0).random(8))

    def test_generator_seed_draws_deterministically(self):
        from repro.utils.rng import seed_entropy

        a = seed_entropy(np.random.default_rng(3))
        b = seed_entropy(np.random.default_rng(3))
        assert a == b


class TestChunkSampling:
    """``RRSetSampler.sample_chunk_flat`` is stateless and sliceable."""

    @pytest.mark.parametrize("mode", ["scalar", "blocked"])
    def test_recomputing_a_chunk_is_identical(self, mode, small_random_graph):
        probs = constant_probabilities(small_random_graph, 0.1)
        plan = StreamPlan(5, ad=0, chunk_size=32)
        sampler = RRSetSampler(small_random_graph, probs, seed=0)
        first = sampler.sample_chunk_flat(plan, 2, mode=mode)
        again = sampler.sample_chunk_flat(plan, 2, mode=mode)
        assert first[0].tobytes() == again[0].tobytes()
        assert first[1].tolist() == again[1].tolist()

    @pytest.mark.parametrize("mode", ["scalar", "blocked"])
    def test_slices_agree_with_full_chunk(self, mode, small_random_graph):
        """Sets [lo, hi) of a chunk equal the same rows of the full chunk —
        the property that makes partial-chunk resume pure."""
        probs = constant_probabilities(small_random_graph, 0.1)
        plan = StreamPlan(5, ad=1, chunk_size=24)
        sampler = RRSetSampler(small_random_graph, probs, seed=0)
        members, lengths = sampler.sample_chunk_flat(plan, 0, mode=mode)
        bounds = np.concatenate(([0], np.cumsum(lengths)))
        for lo, hi in [(0, 24), (0, 10), (10, 24), (7, 13), (23, 24)]:
            m, ln = sampler.sample_chunk_flat(plan, 0, lo, hi, mode=mode)
            assert ln.tolist() == lengths[lo:hi].tolist()
            assert m.tobytes() == members[bounds[lo] : bounds[hi]].tobytes()

    def test_rejects_bad_slice(self, small_random_graph):
        probs = constant_probabilities(small_random_graph, 0.1)
        plan = StreamPlan(5, ad=0, chunk_size=8)
        sampler = RRSetSampler(small_random_graph, probs, seed=0)
        with pytest.raises(ValueError):
            sampler.sample_chunk_flat(plan, 0, 5, 3)
        with pytest.raises(ValueError):
            sampler.sample_chunk_flat(plan, 0, 0, 9)

    def test_modes_draw_different_streams(self, small_random_graph):
        probs = constant_probabilities(small_random_graph, 0.2)
        plan = StreamPlan(5, ad=0, chunk_size=64)
        sampler = RRSetSampler(small_random_graph, probs, seed=0)
        scalar = sampler.sample_chunk_flat(plan, 0, mode="scalar")
        blocked = sampler.sample_chunk_flat(plan, 0, mode="blocked")
        assert scalar[0].tobytes() != blocked[0].tobytes()


class TestRequestSplitInvariance:
    """The same index ranges sampled through any request schedule produce
    byte-identical shards (deterministic mid-allocation resume)."""

    @pytest.mark.parametrize("mode", ["scalar", "blocked"])
    def test_one_shot_equals_incremental(self, mode):
        problem = _problem(1)
        with ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=11, mode=mode, chunk_size=16
        ) as one_shot, ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=11, mode=mode, chunk_size=16
        ) as incremental:
            one_shot.sample({0: 150, 1: 90, 2: 40})
            incremental.sample({0: 40})
            incremental.sample({1: 90, 0: 23})
            incremental.sample({0: 87, 2: 40})
            _assert_fingerprints_equal(
                _fingerprint(one_shot), _fingerprint(incremental)
            )

    @pytest.mark.parametrize("mode", ["scalar", "blocked"])
    def test_ensure_is_an_index_range_request(self, mode):
        problem = _problem(2)
        with ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=3, mode=mode, chunk_size=8
        ) as a, ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=3, mode=mode, chunk_size=8
        ) as b:
            a.sample({0: 60})
            b.ensure({0: 25})
            b.ensure({0: 60})
            b.ensure({0: 10})  # at/below current count: no-op
            _assert_fingerprints_equal(_fingerprint(a), _fingerprint(b))
            assert b.shard(0).num_total == 60

    @pytest.mark.parametrize("mode", ["scalar", "blocked"])
    def test_partial_tail_chunks_are_computed_once(self, mode, monkeypatch):
        """Continuation requests re-entering a partially consumed chunk
        must reuse the cached block, not resample it — with the cache,
        every chunk is computed exactly once per engine lifetime."""
        problem = _problem(3, num_ads=1)
        computed = []
        original = RRSetSampler.sample_chunk_block

        def counting(self, plan, chunk_index, **kwargs):
            computed.append(chunk_index)
            return original(self, plan, chunk_index, **kwargs)

        monkeypatch.setattr(RRSetSampler, "sample_chunk_block", counting)
        with ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=6, mode=mode, chunk_size=16
        ) as eng, ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=6, mode=mode, chunk_size=16
        ) as one_shot:
            for count in (10, 10, 20):  # tails at 10, 20, 40 — chunks 0..2
                eng.sample({0: count})
            assert computed == [0, 1, 2]  # no chunk ever resampled
            computed.clear()
            one_shot.sample({0: 40})
            _assert_fingerprints_equal(_fingerprint(eng), _fingerprint(one_shot))

    def test_ensure_validates(self):
        problem = _problem(2)
        with ShardedSamplingEngine(problem.graph, _probs(problem), seeds=0) as eng:
            with pytest.raises(ConfigurationError):
                eng.ensure({9: 10})
            with pytest.raises(ConfigurationError):
                eng.ensure({0: -1})


class TestWorkerCountInvariance:
    """The acceptance matrix: byte-identical pools for workers in
    {1, 2, 4} × chunk_size in {1, 7, 64}, on both sampler modes.

    The matrix honours ``pytest --backend``: the CI numba leg re-runs it
    with both engines on the JIT backend (backends are byte-identical,
    so the pinned fingerprints are the same either way —
    ``tests/rrset/test_backends.py`` pins the cross-backend direction).
    """

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("chunk_size", [1, 7, 64])
    @pytest.mark.parametrize("mode", ["scalar", "blocked"])
    def test_pools_byte_identical(self, mode, chunk_size, workers, rrset_backend):
        problem = _problem(4, num_ads=2)
        with ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=8, mode=mode,
            engine="serial", chunk_size=chunk_size, backend=rrset_backend,
        ) as serial, ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=8, mode=mode,
            engine="process", max_workers=workers, chunk_size=chunk_size,
            backend=rrset_backend,
        ) as process:
            for requests in ({0: 70, 1: 40}, {0: 33}, {1: 5}):
                serial.sample(requests)
                process.sample(requests)
            _assert_fingerprints_equal(_fingerprint(serial), _fingerprint(process))

    def test_single_ad_topup_fans_out_chunks(self, monkeypatch):
        """A one-ad growth request must go through the worker pool as
        multiple chunk tasks — the previously-serial phase the
        counter-based streams exist to parallelize."""
        problem = _problem(5, num_ads=1)
        dispatched = []
        original = ShardedSamplingEngine._run_tasks_process

        def recording(self, tasks):
            dispatched.append(list(tasks))
            return original(self, tasks)

        monkeypatch.setattr(ShardedSamplingEngine, "_run_tasks_process", recording)
        with ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=2, engine="process",
            chunk_size=16, max_workers=2,
        ) as eng:
            eng.sample({0: 50})
        assert len(dispatched) == 1
        tasks = dispatched[0]
        assert len(tasks) == 4  # ceil(50 / 16) chunks, all for ad 0
        assert all(ad == 0 for ad, _, _, _ in tasks)


class TestTransportMatrix:
    """Transport × start-method acceptance matrix.

    Every leg must produce pools byte-identical to the serial engine —
    the shared-memory descriptor path and the spawn payload arena are
    alternative plumbings for the same pure chunk functions, so they are
    byte-identical *by construction* and asserted here.
    """

    @pytest.mark.parametrize("transport", ["pickle", "shm"])
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_pools_byte_identical(self, start_method, transport):
        problem = _problem(4, num_ads=2)
        with ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=8, engine="serial",
            chunk_size=16,
        ) as serial, ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=8, engine="process",
            max_workers=2, chunk_size=16, transport=transport,
            start_method=start_method,
        ) as process:
            assert process.transport == transport
            assert process.start_method == start_method
            for requests in ({0: 70, 1: 40}, {0: 33}, {1: 5}):
                serial.sample(requests)
                process.sample(requests)
            _assert_fingerprints_equal(_fingerprint(serial), _fingerprint(process))

    def test_spawn_arena_is_accounted_and_released(self):
        problem = _problem(4, num_ads=2)
        eng = ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=8, engine="process",
            max_workers=2, chunk_size=16, start_method="spawn",
        )
        try:
            eng.sample({0: 20})
            assert eng.shared_memory_bytes() > 0
            shard_bytes = sum(
                eng.shard(ad).memory_bytes() for ad in range(eng.num_ads)
            )
            assert eng.memory_bytes() == shard_bytes + eng.shared_memory_bytes()
        finally:
            eng.close()
        assert eng.shared_memory_bytes() == 0

    def test_resolve_transport(self):
        assert ShardedSamplingEngine.resolve_transport("pickle") == "pickle"
        resolved = ShardedSamplingEngine.resolve_transport("auto")
        assert resolved in ("pickle", "shm")
        with pytest.raises(ConfigurationError):
            ShardedSamplingEngine.resolve_transport("carrier-pigeon")

    def test_rejects_bad_start_method(self):
        problem = _problem(4, num_ads=1)
        with pytest.raises(ConfigurationError):
            ShardedSamplingEngine(
                problem.graph, _probs(problem), start_method="forkserver"
            )

    def test_repr_names_the_transport(self):
        problem = _problem(4, num_ads=1)
        with ShardedSamplingEngine(
            problem.graph, _probs(problem), transport="pickle"
        ) as eng:
            assert "transport='pickle'" in repr(eng)


class TestPrefetch:
    """Speculative chunk prefetch: same bytes, overlapped wall-clock.

    Legal because every chunk is a pure function of
    ``(entropy, ad, chunk_index)`` — *when* it is computed cannot change
    *what* is computed.
    """

    def test_prefetch_then_ensure_matches_serial(self):
        problem = _problem(4, num_ads=2)
        with ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=8, engine="serial",
            chunk_size=16,
        ) as serial, ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=8, engine="process",
            max_workers=2, chunk_size=16,
        ) as process:
            submitted = process.prefetch({0: 70, 1: 40})
            assert submitted == 5 + 3  # ceil(70/16) + ceil(40/16) chunks
            # resubmission of in-flight chunks is a no-op
            assert process.prefetch({0: 70, 1: 40}) == 0
            process.ensure({0: 70, 1: 40})  # harvests the futures
            serial.ensure({0: 70, 1: 40})
            # prefetch beyond, then only partially consume
            process.prefetch({0: 120})
            process.sample({0: 33})
            serial.sample({0: 33})
            _assert_fingerprints_equal(_fingerprint(serial), _fingerprint(process))

    def test_prefetched_chunks_are_harvested_not_resampled(self):
        problem = _problem(5, num_ads=1)
        with ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=2, engine="process",
            chunk_size=16, max_workers=2,
        ) as eng:
            eng.prefetch({0: 50})
            assert len(eng._inflight) == 4  # ceil(50/16)
            eng.ensure({0: 50})
            assert not eng._inflight  # all harvested, none dropped
            assert eng.shard(0).num_total == 50

    def test_prefetch_is_a_noop_on_serial_engines(self):
        problem = _problem(4, num_ads=1)
        with ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=8, engine="serial"
        ) as eng:
            assert eng.prefetch({0: 40}) == 0

    def test_prefetch_is_a_noop_after_close(self):
        problem = _problem(4, num_ads=1)
        eng = ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=8, engine="process"
        )
        eng.close()
        assert eng.prefetch({0: 40}) == 0
        assert not eng._inflight

    def test_prefetch_validates_targets(self):
        problem = _problem(4, num_ads=1)
        with ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=8, engine="process"
        ) as eng:
            with pytest.raises(ConfigurationError):
                eng.prefetch({9: 10})
            with pytest.raises(ConfigurationError):
                eng.prefetch({0: -1})

    def test_close_drains_unconsumed_prefetch(self):
        problem = _problem(4, num_ads=2)
        eng = ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=8, engine="process",
            chunk_size=16, max_workers=2,
        )
        assert eng.prefetch({0: 100, 1: 50}) > 0
        eng.close()
        assert not eng._inflight
        eng.close()  # idempotent with drained futures


class TestDegradedFallback:
    """Resolution ladder: fork → spawn (needs shared memory) → serial."""

    def test_no_fork_falls_back_to_spawn(self, monkeypatch):
        problem = _problem(6, num_ads=1)
        monkeypatch.setattr(
            ShardedSamplingEngine, "_fork_available", staticmethod(lambda: False)
        )
        with ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=4, engine="process",
            chunk_size=8,
        ) as eng:
            assert eng.start_method == "spawn"

    def test_warns_once_per_engine_and_matches_serial(self, monkeypatch):
        problem = _problem(6, num_ads=2)
        monkeypatch.setattr(
            ShardedSamplingEngine, "_fork_available", staticmethod(lambda: False)
        )
        monkeypatch.setattr(
            ShardedSamplingEngine, "_shm_available", staticmethod(lambda: False)
        )
        with ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=4, engine="process", chunk_size=8
        ) as eng, ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=4, engine="serial", chunk_size=8
        ) as serial:
            assert eng.start_method is None
            assert eng.transport == "pickle"  # auto falls back without shm
            with pytest.warns(RuntimeWarning, match="no usable process start"):
                eng.sample({0: 30, 1: 30})
            # the second request must not warn again on the same engine
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                eng.sample({0: 10})
            serial.sample({0: 30, 1: 30})
            serial.sample({0: 10})
            _assert_fingerprints_equal(_fingerprint(eng), _fingerprint(serial))

    def test_each_engine_instance_warns(self, monkeypatch):
        problem = _problem(6, num_ads=2)
        monkeypatch.setattr(
            ShardedSamplingEngine, "_fork_available", staticmethod(lambda: False)
        )
        monkeypatch.setattr(
            ShardedSamplingEngine, "_shm_available", staticmethod(lambda: False)
        )
        for _ in range(2):  # a fresh engine warns even after another already did
            with ShardedSamplingEngine(
                problem.graph, _probs(problem), seeds=4, engine="process",
                chunk_size=8,
            ) as eng:
                with pytest.warns(RuntimeWarning, match="will sample serially"):
                    eng.sample({0: 20, 1: 20})

    def test_explicit_fork_without_fork_degrades(self, monkeypatch):
        problem = _problem(6, num_ads=1)
        monkeypatch.setattr(
            ShardedSamplingEngine, "_fork_available", staticmethod(lambda: False)
        )
        with ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=4, engine="process",
            chunk_size=8, start_method="fork",
        ) as eng:
            assert eng.start_method is None
            with pytest.warns(RuntimeWarning, match="will sample serially"):
                eng.sample({0: 10})

    def test_explicit_shm_without_shm_raises(self, monkeypatch):
        problem = _problem(6, num_ads=1)
        monkeypatch.setattr(
            ShardedSamplingEngine, "_shm_available", staticmethod(lambda: False)
        )
        with pytest.raises(ConfigurationError):
            ShardedSamplingEngine(
                problem.graph, _probs(problem), engine="process", transport="shm"
            )


class TestTeardown:
    def test_close_releases_payload_and_is_idempotent(self):
        problem = _problem(7)
        eng = ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=0, engine="process", chunk_size=8
        )
        engine_id = eng._engine_id
        assert engine_id in _FORK_PAYLOADS
        eng.sample({0: 20, 1: 20})
        eng.close()
        assert engine_id not in _FORK_PAYLOADS
        eng.close()  # idempotent
        # a closed engine still samples, in-process
        eng.sample({0: 10})
        assert eng.shard(0).num_total == 30

    def test_gc_without_close_releases_payload(self):
        problem = _problem(7)
        eng = ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=0, engine="process", chunk_size=8
        )
        engine_id = eng._engine_id
        eng.sample({0: 10, 1: 10})
        del eng
        gc.collect()
        assert engine_id not in _FORK_PAYLOADS


class TestShmHygiene:
    """No shared-memory segment may outlive the engine, and teardown must
    be silent — no resource_tracker leaked-segment warnings."""

    def test_no_segments_left_in_dev_shm(self):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        before = set(os.listdir("/dev/shm"))
        problem = _problem(7, num_ads=2)
        with ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=3, engine="process",
            chunk_size=16, max_workers=2, transport="shm",
        ) as eng:
            eng.sample({0: 40, 1: 20})
            eng.prefetch({0: 100})  # left unconsumed on purpose
        gc.collect()
        leaked = {
            name for name in set(os.listdir("/dev/shm")) - before
            if name.startswith("psm_")
        }
        assert not leaked, f"leaked shared-memory segments: {leaked}"

    def test_teardown_emits_no_resource_tracker_warnings(self):
        """Run a full shm life cycle (fork transport + spawn arena +
        abandoned prefetch) in a subprocess and assert interpreter
        shutdown prints nothing — the resource tracker only reports
        stale registrations at exit, so the check needs a real exit."""
        code = textwrap.dedent(
            """
            from repro.graph.generators import erdos_renyi
            from repro.graph.probabilities import constant_probabilities
            from repro.rrset.sharded import ShardedSamplingEngine

            graph = erdos_renyi(40, 0.06, seed=2)
            probs = [constant_probabilities(graph, 0.08)] * 2
            with ShardedSamplingEngine(
                graph, probs, seeds=5, engine="process", chunk_size=8,
                max_workers=2, transport="shm", start_method="fork",
            ) as eng:
                eng.sample({0: 30, 1: 10})
                eng.prefetch({0: 60})  # abandoned in-flight work
            eng2 = ShardedSamplingEngine(
                graph, probs, seeds=5, engine="process", chunk_size=8,
                max_workers=1, start_method="spawn",
            )
            eng2.sample({0: 8})
            eng2.close()
            print("CYCLE-OK")
            """
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={
                **os.environ,
                "PYTHONPATH": os.path.abspath(
                    os.path.join(os.path.dirname(__file__), "..", "..", "src")
                ),
            },
            timeout=240,
        )
        assert result.returncode == 0, result.stderr
        assert "CYCLE-OK" in result.stdout
        assert "resource_tracker" not in result.stderr, result.stderr
        assert "leaked" not in result.stderr, result.stderr


class TestLegacyMode:
    def test_legacy_process_warns_and_samples_serially(self):
        problem = _problem(8)
        with pytest.warns(RuntimeWarning, match="strictly sequential"):
            eng = ShardedSamplingEngine(
                problem.graph, _probs(problem), seeds=5, rng="legacy",
                engine="process",
            )
        with eng, ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=5, rng="legacy", engine="serial"
        ) as serial:
            eng.sample({0: 40, 1: 20, 2: 10})
            serial.sample({0: 40, 1: 20, 2: 10})
            _assert_fingerprints_equal(_fingerprint(eng), _fingerprint(serial))

    def test_rejects_bad_rng(self):
        problem = _problem(8)
        with pytest.raises(ConfigurationError):
            ShardedSamplingEngine(problem.graph, _probs(problem), rng="mersenne")
        with pytest.raises(ConfigurationError):
            ShardedSamplingEngine(problem.graph, _probs(problem), chunk_size=0)


class TestTIRMContract:
    def test_chunk_size_is_part_of_the_contract(self):
        problem = _problem(9, num_ads=2)
        kwargs = dict(
            seed=3, initial_pilot=300, max_rr_sets_per_ad=2_000, epsilon=0.25
        )
        a = TIRMAllocator(chunk_size=32, **kwargs).allocate(problem)
        b = TIRMAllocator(chunk_size=32, **kwargs).allocate(problem)
        assert a.allocation == b.allocation
        assert np.array_equal(a.estimated_revenues, b.estimated_revenues)

    def test_rejects_bad_rng_params(self):
        with pytest.raises(ConfigurationError):
            TIRMAllocator(rng="mersenne")
        with pytest.raises(ConfigurationError):
            TIRMAllocator(chunk_size=0)

    def test_stats_and_provenance_record_the_contract(self):
        problem = _problem(9, num_ads=2)
        result = TIRMAllocator(
            seed=3, initial_pilot=300, max_rr_sets_per_ad=2_000, epsilon=0.25,
            chunk_size=64,
        ).allocate(problem)
        assert result.stats["rng"] == "philox"
        assert result.stats["chunk_size"] == 64
        provenance = result.allocation.provenance
        assert provenance["rng"] == "philox"
        assert provenance["chunk_size"] == 64
        assert provenance["seed"] == 3
        assert provenance["stream_entropy"] == 3
        assert result.allocation.copy().provenance == provenance

    def test_prefetch_does_not_change_the_allocation(self):
        """Speculative sampling overlaps the greedy phase but must leave
        the allocation, revenues, and per-ad θ schedule untouched."""
        problem = _problem(9, num_ads=2)
        kwargs = dict(
            seed=3, initial_pilot=300, max_rr_sets_per_ad=2_000, epsilon=0.25,
            chunk_size=32, engine="process", max_workers=2,
        )
        on = TIRMAllocator(prefetch=True, **kwargs).allocate(problem)
        off = TIRMAllocator(prefetch=False, **kwargs).allocate(problem)
        assert on.allocation == off.allocation
        assert np.array_equal(on.estimated_revenues, off.estimated_revenues)
        assert on.stats["theta_per_ad"] == off.stats["theta_per_ad"]
        assert on.stats["prefetch"] is True
        assert off.stats["prefetch"] is False

    def test_stats_and_provenance_record_the_transport(self):
        problem = _problem(9, num_ads=2)
        result = TIRMAllocator(
            seed=3, initial_pilot=300, max_rr_sets_per_ad=2_000, epsilon=0.25,
            chunk_size=64, transport="pickle",
        ).allocate(problem)
        assert result.stats["transport"] == "pickle"
        assert result.allocation.provenance["transport"] == "pickle"
        assert "start_method" in result.stats

    def test_rejects_bad_transport_params(self):
        with pytest.raises(ConfigurationError):
            TIRMAllocator(transport="carrier-pigeon")
        with pytest.raises(ConfigurationError):
            TIRMAllocator(start_method="forkserver")

    def test_legacy_provenance_records_the_master_seed(self):
        problem = _problem(9, num_ads=2)
        result = TIRMAllocator(
            seed=5, rng="legacy", initial_pilot=300, max_rr_sets_per_ad=2_000,
            epsilon=0.25,
        ).allocate(problem)
        provenance = result.allocation.provenance
        assert provenance["rng"] == "legacy"
        assert provenance["seed"] == 5  # enough to re-derive the legacy streams
        assert provenance["stream_entropy"] is None
