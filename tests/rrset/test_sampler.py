"""RR-set sampling: structure and Proposition-1 unbiasedness."""

import numpy as np
import pytest

from repro.diffusion.exact import exact_spread
from repro.graph.digraph import DirectedGraph
from repro.graph.generators import erdos_renyi
from repro.graph.probabilities import constant_probabilities
from repro.rrset.estimator import estimate_spread_from_sets
from repro.rrset.pool import RRSetPool
from repro.rrset.sampler import RRSetSampler, sample_rr_set, sample_rr_sets


class TestStructure:
    def test_contains_root(self, line_graph):
        rr = sample_rr_set(line_graph, np.zeros(3), rng=0, root=2)
        assert rr.tolist() == [2]

    def test_full_probability_collects_ancestors(self, line_graph):
        rr = sample_rr_set(line_graph, np.ones(3), rng=0, root=3)
        assert sorted(rr.tolist()) == [0, 1, 2, 3]

    def test_source_has_no_ancestors(self, line_graph):
        rr = sample_rr_set(line_graph, np.ones(3), rng=0, root=0)
        assert rr.tolist() == [0]

    def test_members_reach_root(self, small_random_graph):
        """Every member of an RR-set must have a directed path to the root
        in the full graph (a necessary structural condition)."""
        networkx = pytest.importorskip("networkx")
        probs = constant_probabilities(small_random_graph, 0.5)
        nxg = networkx.DiGraph(
            [
                (int(u), int(v))
                for u, v in zip(
                    small_random_graph.edge_sources, small_random_graph.edge_targets
                )
            ]
        )
        nxg.add_nodes_from(range(small_random_graph.num_nodes))
        rng = np.random.default_rng(3)
        for _ in range(20):
            rr = sample_rr_set(small_random_graph, probs, rng=rng)
            root = rr[0]
            ancestors = networkx.ancestors(nxg, int(root)) | {int(root)}
            assert set(rr.tolist()) <= ancestors

    def test_sample_many(self, small_random_graph):
        probs = constant_probabilities(small_random_graph, 0.2)
        sets = sample_rr_sets(small_random_graph, probs, 25, rng=1)
        assert len(sets) == 25
        assert all(isinstance(s, np.ndarray) for s in sets)

    def test_count_validation(self, small_random_graph):
        probs = constant_probabilities(small_random_graph, 0.2)
        with pytest.raises(ValueError):
            sample_rr_sets(small_random_graph, probs, -1)

    def test_shape_validation(self, small_random_graph):
        with pytest.raises(ValueError):
            sample_rr_sets(small_random_graph, np.ones(3), 1)


class TestSamplerObject:
    def test_counts_sampled(self, small_random_graph):
        probs = constant_probabilities(small_random_graph, 0.1)
        sampler = RRSetSampler(small_random_graph, probs, seed=0)
        sampler.sample(10)
        sampler.sample(5)
        assert sampler.num_sampled == 15

    def test_deterministic(self, small_random_graph):
        probs = constant_probabilities(small_random_graph, 0.1)
        a = RRSetSampler(small_random_graph, probs, seed=4).sample(5)
        b = RRSetSampler(small_random_graph, probs, seed=4).sample(5)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_sample_into_counts_sampled(self, small_random_graph):
        probs = constant_probabilities(small_random_graph, 0.1)
        sampler = RRSetSampler(small_random_graph, probs, seed=0)
        pool = RRSetPool(small_random_graph.num_nodes)
        sampler.sample_into(pool, 12)
        assert sampler.num_sampled == 12
        assert pool.num_total == 12


class TestBlockedSampler:
    """Determinism and distribution of the batched (RNG-in-blocks) path."""

    def test_deterministic_per_seed(self, small_random_graph):
        probs = constant_probabilities(small_random_graph, 0.15)
        pools = []
        for _ in range(2):
            sampler = RRSetSampler(small_random_graph, probs, seed=4)
            pool = RRSetPool(small_random_graph.num_nodes)
            sampler.sample_blocked_into(pool, 300)
            pools.append(pool)
        a, b = pools
        assert a.num_total == b.num_total == 300
        assert np.array_equal(a.coverage(), b.coverage())
        for i in range(300):
            assert np.array_equal(a.get_set(i), b.get_set(i))

    def test_deterministic_for_fixed_call_sequence(self):
        """The blocked stream is deterministic for a fixed sequence of
        calls, including when the total is split across calls."""
        g = erdos_renyi(40, 0.1, seed=2)
        probs = constant_probabilities(g, 0.2)
        s1 = RRSetSampler(g, probs, seed=9)
        p1 = RRSetPool(g.num_nodes)
        s1.sample_blocked_into(p1, 50)
        s1.sample_blocked_into(p1, 50)
        s2 = RRSetSampler(g, probs, seed=9)
        p2 = RRSetPool(g.num_nodes)
        s2.sample_blocked_into(p2, 50)
        s2.sample_blocked_into(p2, 50)
        for i in range(100):
            assert np.array_equal(p1.get_set(i), p2.get_set(i))

    def test_independent_of_scalar_stream(self, small_random_graph):
        """Interleaving scalar draws must not perturb the blocked stream
        (and vice versa): the two paths own separate generators."""
        probs = constant_probabilities(small_random_graph, 0.15)
        plain = RRSetSampler(small_random_graph, probs, seed=4)
        pool_plain = RRSetPool(small_random_graph.num_nodes)
        plain.sample_blocked_into(pool_plain, 100)
        mixed = RRSetSampler(small_random_graph, probs, seed=4)
        mixed.sample(25)  # scalar draws first
        pool_mixed = RRSetPool(small_random_graph.num_nodes)
        mixed.sample_blocked_into(pool_mixed, 100)
        for i in range(100):
            assert np.array_equal(pool_plain.get_set(i), pool_mixed.get_set(i))

    def test_structure_root_first_and_unique(self, small_random_graph):
        probs = constant_probabilities(small_random_graph, 0.3)
        sampler = RRSetSampler(small_random_graph, probs, seed=1)
        pool = RRSetPool(small_random_graph.num_nodes)
        sampler.sample_blocked_into(pool, 200)
        for i in range(200):
            members = pool.get_set(i)
            assert members.size >= 1  # root always present
            assert np.unique(members).size == members.size

    def test_matches_exact_spread(self, diamond_graph):
        """Proposition 1 holds for the blocked path too — its sets follow
        the same RR distribution as the scalar path."""
        probs = np.full(4, 0.5)
        sampler = RRSetSampler(diamond_graph, probs, seed=7)
        pool = RRSetPool(diamond_graph.num_nodes)
        sampler.sample_blocked_into(pool, 30_000)
        for seeds in ([0], [0, 1], [3]):
            exact = exact_spread(diamond_graph, probs, seeds)
            estimate = estimate_spread_from_sets(pool, diamond_graph.num_nodes, seeds)
            assert estimate == pytest.approx(exact, rel=0.07)

    def test_count_validation(self, small_random_graph):
        probs = constant_probabilities(small_random_graph, 0.1)
        sampler = RRSetSampler(small_random_graph, probs, seed=0)
        with pytest.raises(ValueError):
            sampler.sample_blocked_into(RRSetPool(small_random_graph.num_nodes), -1)


class TestProposition1:
    """``n · F_R(S)`` is an unbiased estimator of σ_ic(S)."""

    @pytest.mark.parametrize("seeds", [[0], [0, 1], [3]])
    def test_matches_exact_spread(self, diamond_graph, seeds):
        probs = np.full(4, 0.5)
        exact = exact_spread(diamond_graph, probs, seeds)
        sets = sample_rr_sets(diamond_graph, probs, 30_000, rng=7)
        estimate = estimate_spread_from_sets(sets, diamond_graph.num_nodes, seeds)
        assert estimate == pytest.approx(exact, rel=0.07)

    def test_on_random_graph(self):
        g = erdos_renyi(12, 0.15, seed=9)
        probs = constant_probabilities(g, 0.4)
        # keep the graph enumerable for the exact oracle
        if g.num_edges > 20:
            pytest.skip("random draw too dense for exact enumeration")
        seeds = [0, 5]
        exact = exact_spread(g, probs, seeds)
        sets = sample_rr_sets(g, probs, 20_000, rng=10)
        estimate = estimate_spread_from_sets(sets, g.num_nodes, seeds)
        assert estimate == pytest.approx(exact, rel=0.1, abs=0.1)
