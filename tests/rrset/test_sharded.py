"""ShardedSamplingEngine: per-ad shards, serial/process parity.

The engine's contract is that ``engine="process"`` is a pure wall-clock
optimisation: for the same seeds it must fill every shard with exactly
the same sets, in the same order, as ``engine="serial"`` — which in turn
is bit-identical to the historical per-ad sampler loop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.advertising.advertiser import Advertiser
from repro.advertising.attention import AttentionBounds
from repro.advertising.catalog import AdCatalog
from repro.advertising.problem import AdAllocationProblem
from repro.algorithms.tirm import TIRMAllocator
from repro.errors import ConfigurationError
from repro.graph.generators import erdos_renyi
from repro.graph.probabilities import constant_probabilities
from repro.rrset.pool import RRSetPool
from repro.rrset.sampler import RRSetSampler
from repro.rrset.sharded import ShardedSamplingEngine
from repro.utils.rng import spawn_generators


def _problem(seed: int, num_ads: int = 3, budget: float = 6.0):
    graph = erdos_renyi(60, 0.05, seed=seed)
    catalog = AdCatalog(
        [Advertiser(name=f"a{i}", budget=budget, cpe=1.0) for i in range(num_ads)]
    )
    return AdAllocationProblem(
        graph,
        catalog,
        constant_probabilities(graph, 0.08),
        0.4,
        AttentionBounds.uniform(graph.num_nodes, num_ads),
    )


def _probs(problem):
    return [problem.ad_edge_probabilities(ad) for ad in range(problem.num_ads)]


def _assert_shards_equal(a: ShardedSamplingEngine, b: ShardedSamplingEngine):
    assert a.num_ads == b.num_ads
    for ad in range(a.num_ads):
        pa, pb = a.shard(ad), b.shard(ad)
        assert pa.num_total == pb.num_total
        assert pa.num_alive == pb.num_alive
        assert np.array_equal(pa.coverage(), pb.coverage())
        assert np.array_equal(pa.alive_mask(), pb.alive_mask())
        for i in range(pa.num_total):
            assert np.array_equal(pa.get_set(i), pb.get_set(i))


class TestConfiguration:
    def test_rejects_bad_engine(self):
        problem = _problem(0)
        with pytest.raises(ConfigurationError):
            ShardedSamplingEngine(problem.graph, _probs(problem), engine="threads")

    def test_rejects_bad_mode(self):
        problem = _problem(0)
        with pytest.raises(ConfigurationError):
            ShardedSamplingEngine(problem.graph, _probs(problem), mode="vector")

    def test_rejects_empty_catalog(self):
        problem = _problem(0)
        with pytest.raises(ConfigurationError):
            ShardedSamplingEngine(problem.graph, [])

    def test_rejects_seed_count_mismatch(self):
        problem = _problem(0)
        with pytest.raises(ConfigurationError):
            ShardedSamplingEngine(problem.graph, _probs(problem), seeds=[1, 2])

    def test_rejects_bad_requests(self):
        problem = _problem(0)
        with ShardedSamplingEngine(problem.graph, _probs(problem), seeds=0) as eng:
            with pytest.raises(ConfigurationError):
                eng.sample({7: 10})
            with pytest.raises(ConfigurationError):
                eng.sample({0: -1})

    def test_close_is_idempotent(self):
        problem = _problem(0)
        eng = ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=0, engine="process"
        )
        eng.sample({0: 20})
        eng.close()
        eng.close()


class TestSerialCompatibility:
    @pytest.mark.parametrize("mode", ["scalar", "blocked"])
    def test_serial_engine_matches_plain_samplers(self, mode):
        """``rng="legacy"`` is the historical per-ad loop, bit-exact."""
        problem = _problem(1)
        h = problem.num_ads
        rngs = spawn_generators(5, h)
        pools = []
        for ad in range(h):
            sampler = RRSetSampler(
                problem.graph, problem.ad_edge_probabilities(ad), seed=rngs[ad]
            )
            pool = RRSetPool(problem.num_nodes)
            if mode == "blocked":
                sampler.sample_blocked_into(pool, 150)
                sampler.sample_blocked_into(pool, 70)
            else:
                sampler.sample_into(pool, 150)
                sampler.sample_into(pool, 70)
            pools.append(pool)

        with ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=5, mode=mode, engine="serial",
            rng="legacy",
        ) as eng:
            eng.sample({ad: 150 for ad in range(h)})
            eng.sample({ad: 70 for ad in range(h)})
            for ad in range(h):
                assert eng.shard(ad).num_total == pools[ad].num_total
                for i in range(pools[ad].num_total):
                    assert np.array_equal(
                        eng.shard(ad).get_set(i), pools[ad].get_set(i)
                    )


class TestProcessParity:
    @pytest.mark.parametrize("mode", ["scalar", "blocked"])
    def test_process_matches_serial_set_for_set(self, mode):
        problem = _problem(2)
        with ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=9, mode=mode, engine="serial"
        ) as serial, ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=9, mode=mode, engine="process"
        ) as process:
            for requests in ({0: 120, 1: 80, 2: 40}, {1: 30}, {0: 5, 2: 200}):
                serial.sample(requests)
                process.sample(requests)
            _assert_shards_equal(serial, process)

    @pytest.mark.parametrize("mode", ["scalar", "blocked"])
    def test_interleaved_splice_and_removal_parity(self, mode):
        """Property-style schedule: interleaved shard appends and
        ``remove_covered`` must march in lockstep with the serial engine
        set-for-set, including across pool growth reallocations."""
        problem = _problem(3)
        rng = np.random.default_rng(17)
        with ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=23, mode=mode, engine="serial"
        ) as serial, ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=23, mode=mode, engine="process"
        ) as process:
            for _ in range(6):
                ads = rng.choice(3, size=int(rng.integers(1, 4)), replace=False)
                requests = {int(ad): int(rng.integers(1, 120)) for ad in ads}
                serial.sample(requests)
                process.sample(requests)
                for _ in range(int(rng.integers(0, 3))):
                    ad = int(rng.integers(0, 3))
                    node = int(rng.integers(0, problem.num_nodes))
                    assert serial.shard(ad).remove_covered(node) == process.shard(
                        ad
                    ).remove_covered(node)
                _assert_shards_equal(serial, process)

    def test_max_workers_does_not_change_results(self):
        problem = _problem(4)
        with ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=3, engine="process", max_workers=1
        ) as one, ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=3, engine="process", max_workers=2
        ) as two:
            for requests in ({0: 90, 1: 90, 2: 90}, {0: 30, 2: 10}):
                one.sample(requests)
                two.sample(requests)
            _assert_shards_equal(one, two)


class TestTIRMIntegration:
    @pytest.mark.parametrize("mode", ["scalar", "blocked"])
    def test_tirm_process_engine_identical_to_serial(self, mode):
        """The acceptance contract: ``engine="process"`` yields the same
        allocation, revenues, and θ trajectory as ``engine="serial"``."""
        problem = _problem(6, num_ads=2)
        kwargs = dict(
            seed=6, initial_pilot=400, max_rr_sets_per_ad=3_000, epsilon=0.2,
            sampler_mode=mode,
        )
        serial = TIRMAllocator(engine="serial", **kwargs).allocate(problem)
        process = TIRMAllocator(engine="process", **kwargs).allocate(problem)
        assert serial.allocation == process.allocation
        assert np.array_equal(serial.estimated_revenues, process.estimated_revenues)
        assert serial.stats["theta_per_ad"] == process.stats["theta_per_ad"]
        assert (
            serial.stats["seed_size_estimates"]
            == process.stats["seed_size_estimates"]
        )
        assert serial.stats["engine"] == "serial"
        assert process.stats["engine"] == "process"

    def test_tirm_rejects_bad_engine(self):
        with pytest.raises(ConfigurationError):
            TIRMAllocator(engine="threads")


def _exploding_worker(engine_id, ad, mode, chunk_index, transport="pickle"):
    # module-level so the fork pool can pickle it by reference
    raise ValueError("worker exploded")


class TestLifecycle:
    """Executor/payload teardown on every exit path — explicit close,
    context manager, failed construction, and failed task batches."""

    def test_context_manager_closes_and_releases_payload(self):
        from repro.rrset.sharded import _FORK_PAYLOADS

        problem = _problem(0)
        with ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=0, engine="process"
        ) as engine:
            engine.sample({0: 20, 1: 20})
            assert engine._engine_id in _FORK_PAYLOADS
        assert engine._engine_id not in _FORK_PAYLOADS
        assert not engine._finalizer.alive

    def test_context_manager_releases_on_exception(self):
        from repro.rrset.sharded import _FORK_PAYLOADS

        problem = _problem(0)
        with pytest.raises(RuntimeError, match="boom"):
            with ShardedSamplingEngine(
                problem.graph, _probs(problem), seeds=0, engine="process"
            ) as engine:
                engine.sample({0: 10})
                raise RuntimeError("boom")
        assert engine._engine_id not in _FORK_PAYLOADS
        assert not engine._finalizer.alive

    def test_failed_construction_releases_payload(self):
        """A warning promoted to an error mid-construction must not leak
        the registered fork payload of a half-built engine."""
        import warnings

        from repro.rrset.sharded import _FORK_PAYLOADS

        problem = _problem(0)
        before = set(_FORK_PAYLOADS)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            with pytest.raises(RuntimeWarning):
                ShardedSamplingEngine(
                    problem.graph, _probs(problem), seeds=0,
                    engine="process", rng="legacy",
                )
        assert set(_FORK_PAYLOADS) == before

    def test_failed_task_batch_routes_through_close(self, monkeypatch):
        """A worker exception must surface to the caller AND shut the
        pool down (idempotent close), not leak the executor."""
        import repro.rrset.sharded as sharded_module

        monkeypatch.setattr(
            sharded_module, "_worker_sample_chunk", _exploding_worker
        )
        problem = _problem(0)
        engine = ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=0, engine="process",
            chunk_size=8, max_workers=2,
        )
        if not engine._fork_available():  # pragma: no cover - platform guard
            engine.close()
            pytest.skip("fork start method unavailable")
        with pytest.raises(ValueError, match="worker exploded"):
            engine.sample({0: 40, 1: 40})
        assert not engine._finalizer.alive
        assert engine._resources["executor"] is None
        assert engine._engine_id not in sharded_module._FORK_PAYLOADS
        engine.close()  # still idempotent after the failure path


class TestResetForReuse:
    """The warm-reuse contract: after ``reset_for_reuse`` a second run
    through the same engine is byte-identical to a fresh-engine run —
    no stale shards, tail blocks, in-flight futures, dsan state, or
    legacy stream positions may survive into the next session."""

    def test_back_to_back_sampling_matches_fresh_engine(self):
        problem = _problem(11)
        reused = ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=5, chunk_size=16, dsan=True,
        )
        with reused:
            reused.sample({0: 40, 1: 25, 2: 33})  # dirty run, odd tails
            reused.reset_for_reuse()
            assert reused.total_sets() == 0
            assert reused.backend_invocations == 0
            reused.sample({0: 50, 1: 20, 2: 10})
            with ShardedSamplingEngine(
                problem.graph, _probs(problem), seeds=5, chunk_size=16,
                dsan=True,
            ) as fresh:
                fresh.sample({0: 50, 1: 20, 2: 10})
                _assert_shards_equal(reused, fresh)
                assert reused.dsan_digests() == fresh.dsan_digests()
                assert reused.dsan_root() == fresh.dsan_root()

    def test_back_to_back_allocations_match_fresh_engine(self):
        from repro.algorithms.session import AllocationSession

        problem = _problem(7)
        allocator = TIRMAllocator(seed=3, max_rr_sets_per_ad=1_000, dsan=True)
        fresh = allocator.allocate(problem)
        engine = allocator._build_engine(problem, None, None)
        with engine:
            first = AllocationSession(problem, allocator, engine=engine).run()
            engine.reset_for_reuse()
            second = AllocationSession(problem, allocator, engine=engine).run()
        for result in (first, second):
            assert result.allocation == fresh.allocation
            assert result.stats["dsan_root"] == fresh.stats["dsan_root"]
            assert result.stats["theta_per_ad"] == fresh.stats["theta_per_ad"]

    def test_retained_blocks_serve_the_second_run(self):
        """``retain_blocks=True``: after a reset the block memo answers
        every previously sampled chunk, so a warm rerun performs zero
        sampling-backend invocations yet fills identical shards."""
        problem = _problem(13)
        with ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=2, chunk_size=16,
            retain_blocks=True,
        ) as engine:
            engine.sample({0: 64, 1: 48, 2: 32})
            cold_invocations = engine.backend_invocations
            assert cold_invocations > 0
            coverage = [engine.shard(ad).coverage().copy() for ad in range(3)]
            engine.reset_for_reuse()
            engine.sample({0: 64, 1: 48, 2: 32})
            assert engine.backend_invocations == 0
            for ad in range(3):
                assert np.array_equal(engine.shard(ad).coverage(), coverage[ad])

    def test_legacy_streams_rewind_to_initial_state(self):
        problem = _problem(17)
        seeds = spawn_generators(9, problem.num_ads)
        with ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=seeds, rng="legacy",
        ) as reused:
            reused.sample({0: 30, 1: 12, 2: 21})
            reused.reset_for_reuse()
            reused.sample({0: 25, 1: 18, 2: 7})
            with ShardedSamplingEngine(
                problem.graph, _probs(problem),
                seeds=spawn_generators(9, problem.num_ads), rng="legacy",
            ) as fresh:
                fresh.sample({0: 25, 1: 18, 2: 7})
                _assert_shards_equal(reused, fresh)

    def test_reset_keeps_process_pool_and_arena_warm(self):
        problem = _problem(19)
        engine = ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=4, engine="process",
            chunk_size=16, max_workers=2,
        )
        if not engine._fork_available():  # pragma: no cover - platform guard
            engine.close()
            pytest.skip("fork start method unavailable")
        with engine:
            engine.sample({0: 40, 1: 40, 2: 40})
            executor = engine._resources["executor"]
            assert executor is not None
            engine.reset_for_reuse()
            assert engine._resources["executor"] is executor  # still warm
            engine.sample({0: 20, 1: 20, 2: 20})
            with ShardedSamplingEngine(
                problem.graph, _probs(problem), seeds=4, chunk_size=16,
            ) as fresh:
                fresh.sample({0: 20, 1: 20, 2: 20})
                _assert_shards_equal(engine, fresh)

    def test_reset_of_closed_engine_is_refused(self):
        problem = _problem(0)
        engine = ShardedSamplingEngine(problem.graph, _probs(problem), seeds=1)
        engine.close()
        with pytest.raises(ConfigurationError, match="closed"):
            engine.reset_for_reuse()
