"""Coverage-fraction spread estimation and the RRC oracle."""

import numpy as np
import pytest

from repro.diffusion.exact import exact_spread
from repro.errors import EstimationError
from repro.rrset.estimator import (
    RRSetSpreadOracle,
    coverage_fraction,
    estimate_spread_from_sets,
)


def _sets(*members):
    return [np.asarray(m, dtype=np.int64) for m in members]


class TestCoverageFraction:
    def test_basic(self):
        sets = _sets([0, 1], [2], [1, 3])
        assert coverage_fraction(sets, [1]) == pytest.approx(2 / 3)
        assert coverage_fraction(sets, [0, 2]) == pytest.approx(2 / 3)
        assert coverage_fraction(sets, [4]) == 0.0

    def test_empty_seed_set(self):
        assert coverage_fraction(_sets([0]), []) == 0.0

    def test_no_sets_raises(self):
        with pytest.raises(EstimationError):
            coverage_fraction([], [0])

    def test_estimate_scales_by_n(self):
        sets = _sets([0], [1])
        assert estimate_spread_from_sets(sets, 10, [0]) == pytest.approx(5.0)


class TestRRSetSpreadOracle:
    def test_close_to_exact_ctp_spread(self, two_ad_problem):
        oracle = RRSetSpreadOracle(two_ad_problem, sets_per_ad=40_000, seed=1)
        for ad in range(2):
            seeds = frozenset({0, 1})
            exact = exact_spread(
                two_ad_problem.graph,
                two_ad_problem.ad_edge_probabilities(ad),
                [0, 1],
                ctps=two_ad_problem.ad_ctps(ad),
            )
            assert oracle.spread(ad, seeds) == pytest.approx(exact, rel=0.1, abs=0.05)

    def test_without_ctps_estimates_ic_spread(self, two_ad_problem):
        oracle = RRSetSpreadOracle(
            two_ad_problem, sets_per_ad=30_000, use_ctps=False, seed=2
        )
        exact = exact_spread(
            two_ad_problem.graph, two_ad_problem.ad_edge_probabilities(0), [0]
        )
        assert oracle.spread(0, frozenset({0})) == pytest.approx(exact, rel=0.1)

    def test_empty_is_zero(self, two_ad_problem):
        oracle = RRSetSpreadOracle(two_ad_problem, sets_per_ad=100, seed=3)
        assert oracle.spread(0, frozenset()) == 0.0

    def test_validates_sets_per_ad(self, two_ad_problem):
        with pytest.raises(ValueError):
            RRSetSpreadOracle(two_ad_problem, sets_per_ad=0)
