"""RRSetCollection coverage bookkeeping (deprecated alias of RRSetPool)."""

import importlib
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

with pytest.warns(DeprecationWarning, match="repro.rrset.collection is deprecated"):
    sys.modules.pop("repro.rrset.collection", None)
    from repro.rrset.collection import RRSetCollection


def test_alias_module_emits_deprecation_warning():
    sys.modules.pop("repro.rrset.collection", None)
    with pytest.warns(DeprecationWarning, match="import the pool directly"):
        importlib.import_module("repro.rrset.collection")


def test_package_resolves_alias_lazily():
    import repro.rrset

    assert repro.rrset.RRSetCollection.__name__ == "RRSetCollection"
    with pytest.raises(AttributeError):
        repro.rrset.no_such_symbol


def _sets(*members):
    return [np.asarray(m, dtype=np.int64) for m in members]


def test_add_and_coverage():
    c = RRSetCollection(5)
    c.add_sets(_sets([0, 1], [1, 2], [2]))
    assert c.num_total == 3
    assert c.num_alive == 3
    assert c.coverage().tolist() == [1, 2, 2, 0, 0]


def test_remove_covered():
    c = RRSetCollection(5)
    c.add_sets(_sets([0, 1], [1, 2], [2]))
    removed = c.remove_covered(1)
    assert removed == 2
    assert c.num_alive == 1
    assert c.coverage().tolist() == [0, 0, 1, 0, 0]
    # idempotent
    assert c.remove_covered(1) == 0


def test_coverage_of_set():
    c = RRSetCollection(5)
    c.add_sets(_sets([0, 1], [1, 2], [3]))
    assert c.coverage_of_set([0, 3]) == 2
    assert c.coverage_of_set([1]) == 2
    assert c.coverage_of_set([4]) == 0
    c.remove_covered(1)
    assert c.coverage_of_set([0, 2]) == 0


def test_sets_containing_alive_filter():
    c = RRSetCollection(4)
    ids = c.add_sets(_sets([0], [0, 1]))
    c.remove_covered(1)
    assert c.sets_containing(0) == [ids[0]]
    assert set(c.sets_containing(0, alive_only=False)) == set(ids)


def test_get_set_and_is_alive():
    c = RRSetCollection(3)
    (set_id,) = c.add_sets(_sets([1, 2]))
    assert c.get_set(set_id).tolist() == [1, 2]
    assert c.is_alive(set_id)
    c.remove_covered(2)
    assert not c.is_alive(set_id)


def test_all_sets_keeps_covered():
    c = RRSetCollection(3)
    c.add_sets(_sets([0], [1]))
    c.remove_covered(0)
    assert len(c.all_sets()) == 2


def test_average_set_size():
    c = RRSetCollection(4)
    assert c.average_set_size() == 0.0
    c.add_sets(_sets([0], [0, 1, 2]))
    assert c.average_set_size() == pytest.approx(2.0)


def test_memory_bytes_grows():
    c = RRSetCollection(10)
    before = c.memory_bytes()
    c.add_sets(_sets([0, 1, 2], [3, 4]))
    assert c.memory_bytes() > before


def test_negative_num_nodes_rejected():
    with pytest.raises(ValueError):
        RRSetCollection(-1)


@given(
    sets=st.lists(
        st.lists(st.integers(0, 7), min_size=1, max_size=4, unique=True),
        max_size=15,
    ),
    removals=st.lists(st.integers(0, 7), max_size=5),
)
@settings(max_examples=60, deadline=None)
def test_coverage_invariant(sets, removals):
    """coverage[v] always equals the count of alive sets containing v."""
    c = RRSetCollection(8)
    c.add_sets([np.asarray(s, dtype=np.int64) for s in sets])
    for node in removals:
        c.remove_covered(node)
    expected = np.zeros(8, dtype=int)
    for set_id in range(c.num_total):
        if c.is_alive(set_id):
            expected[c.get_set(set_id)] += 1
    assert np.array_equal(c.coverage(), expected)
    assert c.num_alive == sum(c.is_alive(i) for i in range(c.num_total))
