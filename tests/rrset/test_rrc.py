"""RRC-sets: Lemma 2 unbiasedness and the Theorem-5 equivalence."""

import numpy as np
import pytest

from repro.diffusion.exact import exact_spread
from repro.graph.digraph import DirectedGraph
from repro.rrset.estimator import estimate_spread_from_sets
from repro.rrset.rrc import sample_rrc_set, sample_rrc_sets
from repro.rrset.sampler import sample_rr_sets


class TestStructure:
    def test_zero_ctp_gives_empty_sets(self, line_graph):
        rrc = sample_rrc_set(line_graph, np.ones(3), np.zeros(4), rng=0, root=3)
        assert rrc.size == 0

    def test_unit_ctp_equals_rr_set(self, line_graph):
        """With all CTPs 1, RRC generation degenerates to RR generation."""
        rng_a = np.random.default_rng(5)
        rrc = sample_rrc_set(line_graph, np.ones(3), np.ones(4), rng=rng_a, root=3)
        assert sorted(rrc.tolist()) == [0, 1, 2, 3]

    def test_validation(self, line_graph):
        with pytest.raises(ValueError):
            sample_rrc_sets(line_graph, np.ones(2), np.ones(4), 1)
        with pytest.raises(ValueError):
            sample_rrc_sets(line_graph, np.ones(3), np.ones(3), 1)
        with pytest.raises(ValueError):
            sample_rrc_sets(line_graph, np.ones(3), np.ones(4), -2)


class TestLemma2:
    """``n · F_Q(S)`` is unbiased for the IC-CTP spread σ_icctp(S)."""

    def test_matches_exact_with_ctps(self, diamond_graph):
        probs = np.full(4, 0.5)
        ctps = np.asarray([0.6, 0.3, 0.8, 0.5])
        seeds = [0, 2]
        exact = exact_spread(diamond_graph, probs, seeds, ctps=ctps)
        sets = sample_rrc_sets(diamond_graph, probs, ctps, 40_000, rng=1)
        estimate = estimate_spread_from_sets(sets, diamond_graph.num_nodes, seeds)
        assert estimate == pytest.approx(exact, rel=0.08)

    def test_blocked_node_traversal_matters(self):
        """A middle node with CTP 0 can never be a seed but must still
        relay reachability: seeding its parent still activates the root."""
        g = DirectedGraph.from_edges([(0, 1), (1, 2)])
        probs = np.ones(2)
        ctps = np.asarray([1.0, 0.0, 1.0])
        sets = sample_rrc_sets(g, probs, ctps, 6_000, rng=2)
        estimate = estimate_spread_from_sets(sets, 3, [0])
        # exact: 0 clicks (1.0), 1 never clicks itself... it relays but
        # cannot click -> wait, relaying means 2 becomes active: spread =
        # node0 (1.0) + node1 (activated via edge but CTP only gates
        # seeding, influence activates it: 1.0) + node2 (1.0) = 3.
        exact = exact_spread(g, probs, [0], ctps=ctps)
        assert estimate == pytest.approx(exact, rel=0.08)


class TestTheorem5:
    """δ(u)·(E F_R(S∪u) − E F_R(S)) ≈ E F_Q(S∪u) − E F_Q(S).

    The identity is exact for S = ∅ and approximate otherwise (the
    paper's proof treats already-chosen seeds as deterministic); we test
    the exact singleton case statistically.
    """

    def test_singleton_marginal(self, diamond_graph):
        probs = np.full(4, 0.5)
        delta = np.asarray([0.4, 0.7, 0.2, 0.9])
        u = 0
        rr = sample_rr_sets(diamond_graph, probs, 30_000, rng=3)
        rrc = sample_rrc_sets(diamond_graph, probs, delta, 30_000, rng=4)
        f_rr = sum(1 for s in rr if u in s) / len(rr)
        f_rrc = sum(1 for s in rrc if u in s) / len(rrc)
        assert delta[u] * f_rr == pytest.approx(f_rrc, rel=0.1, abs=0.01)
