"""The runtime determinism sanitizer (:mod:`repro.rrset.dsan`).

The contract under test: with dsan enabled, per-``(ad, chunk)`` digests
are equal across serial/process execution, pickle/shm transport, and
numpy/numba backends; recording never perturbs the sampled bytes; and a
divergence — a tampered expected map, or a deliberately perturbed
sampler — raises :class:`~repro.errors.DeterminismError` naming the
*first* divergent chunk.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.tirm import TIRMAllocator
from repro.datasets.toy import figure1_problem
from repro.errors import DeterminismError
from repro.graph.generators import erdos_renyi
from repro.graph.probabilities import constant_probabilities
from repro.rrset import ShardedSamplingEngine, compare_digests
from repro.rrset.backends import NumbaBackend
from repro.rrset.dsan import DsanRecorder, digest_block, dsan_enabled
from repro.rrset.sampler import StreamPlan


@pytest.fixture
def graph():
    return erdos_renyi(60, 0.08, seed=3)


@pytest.fixture
def probs(graph):
    return constant_probabilities(graph, 0.1)


def _engine(graph, probs, **kwargs):
    kwargs.setdefault("seeds", 11)
    kwargs.setdefault("chunk_size", 16)
    kwargs.setdefault("dsan", True)
    return ShardedSamplingEngine(graph, [probs, probs], **kwargs)


TARGETS = {0: 40, 1: 25}


def _digests(graph, probs, **kwargs):
    with _engine(graph, probs, **kwargs) as engine:
        engine.ensure(TARGETS)
        return engine.dsan_digests(), [
            engine.shard(ad).all_sets() for ad in range(2)
        ]


# ----------------------------------------------------------------------
# Recorder / digest primitives
# ----------------------------------------------------------------------
def test_digest_block_is_dtype_normalised():
    members = np.array([1, 2, 3], dtype=np.int64)
    lengths = np.array([2, 1], dtype=np.int32)
    canonical = digest_block(
        members.astype(np.int32), lengths.astype(np.int64)
    )
    assert digest_block(members, lengths) == canonical
    assert digest_block([1, 2, 3], [2, 1]) == canonical


def test_recorder_records_and_fingerprints():
    recorder = DsanRecorder(label="unit")
    d1 = recorder.record(0, 0, [1, 2], [2])
    d2 = recorder.record(0, 1, [3], [1])
    assert len(recorder) == 2
    assert recorder.digests == {(0, 0): d1, (0, 1): d2}
    root = recorder.root_digest()
    assert root != DsanRecorder().root_digest()
    # Re-recording identical bytes is idempotent.
    assert recorder.record(0, 0, [1, 2], [2]) == d1
    assert recorder.root_digest() == root
    assert "unit" in repr(recorder)


def test_recorder_impure_recompute_raises():
    recorder = DsanRecorder()
    recorder.record(2, 5, [1, 2], [2])
    with pytest.raises(DeterminismError) as info:
        recorder.record(2, 5, [9, 9], [2])
    assert info.value.ad == 2 and info.value.chunk == 5
    assert "pure function" in str(info.value)


def test_recorder_expected_map_checks_inline():
    reference = DsanRecorder()
    reference.record(0, 0, [1, 2], [2])
    checked = DsanRecorder(expected=reference.digests, label="replay")
    checked.record(0, 0, [1, 2], [2])  # matches: no raise
    tampered = dict(reference.digests)
    tampered[(0, 0)] = "0" * 32
    with pytest.raises(DeterminismError) as info:
        DsanRecorder(expected=tampered).record(0, 0, [1, 2], [2])
    assert (info.value.ad, info.value.chunk) == (0, 0)


def test_compare_digests_names_first_divergent_chunk():
    reference = {(0, 0): "a", (0, 1): "b", (1, 0): "c"}
    compare_digests(reference, dict(reference))  # equal: no raise
    other = dict(reference)
    other[(0, 1)] = "X"
    other[(1, 0)] = "Y"
    with pytest.raises(DeterminismError) as info:
        compare_digests(reference, other)
    assert (info.value.ad, info.value.chunk) == (0, 1)  # first, in key order


def test_compare_digests_missing_chunk_is_structural():
    with pytest.raises(DeterminismError, match="never"):
        compare_digests({(0, 0): "a", (0, 1): "b"}, {(0, 0): "a"})


def test_dsan_enabled_resolution(monkeypatch):
    monkeypatch.delenv("REPRO_DSAN", raising=False)
    assert dsan_enabled(True) and not dsan_enabled(False)
    assert not dsan_enabled(None)
    monkeypatch.setenv("REPRO_DSAN", "1")
    assert dsan_enabled(None)
    assert not dsan_enabled(False)  # explicit knob beats the env
    monkeypatch.setenv("REPRO_DSAN", "off")
    assert not dsan_enabled(None)


# ----------------------------------------------------------------------
# Engine invariance: digests equal across execution substrates
# ----------------------------------------------------------------------
def test_digests_identical_serial_vs_process_vs_transports(graph, probs):
    serial, serial_sets = _digests(graph, probs)
    assert serial  # recorded something
    for kwargs in (
        {"engine": "process", "max_workers": 2, "transport": "pickle"},
        {"engine": "process", "max_workers": 2, "transport": "shm"},
    ):
        digests, sets = _digests(graph, probs, **kwargs)
        assert digests == serial, kwargs
        for ad in range(2):
            assert all(
                np.array_equal(a, b)
                for a, b in zip(serial_sets[ad], sets[ad])
            )


def test_digests_identical_across_backends(graph, probs):
    reference, _ = _digests(graph, probs)
    numba_like, _ = _digests(graph, probs, backend=NumbaBackend(jit=False))
    assert numba_like == reference


def test_digests_invariant_to_request_splitting(graph, probs):
    one_shot, _ = _digests(graph, probs)
    with _engine(graph, probs) as engine:
        engine.ensure({0: 7})
        engine.ensure({0: 40, 1: 10})
        engine.ensure(TARGETS)
        assert engine.dsan_digests() == one_shot


def test_dsan_recording_is_pure_observation(graph, probs):
    _, sanitized_sets = _digests(graph, probs)
    with _engine(graph, probs, dsan=False) as engine:
        assert not engine.dsan and engine.dsan_digests() == {}
        assert engine.dsan_root() is None
        engine.ensure(TARGETS)
        for ad in range(2):
            assert all(
                np.array_equal(a, b)
                for a, b in zip(sanitized_sets[ad], engine.shard(ad).all_sets())
            )


def test_env_var_enables_engine_dsan(graph, probs, monkeypatch):
    monkeypatch.setenv("REPRO_DSAN", "1")
    with _engine(graph, probs, dsan=None) as engine:
        engine.ensure({0: 5})
        assert engine.dsan and len(engine.dsan_digests()) == 1


def test_legacy_streams_key_by_request_ordinal(graph, probs):
    with _engine(graph, probs, rng="legacy", seeds=[5, 7], dsan=True) as one:
        one.ensure({0: 10, 1: 10})
        one.ensure({0: 25})
        digests = one.dsan_digests()
    assert sorted(digests) == [(0, 0), (0, 1), (1, 0)]
    # Same request sequence => same digests; the pool bytes also match a
    # dsan-off engine's (sample_flat is the documented bit-exact twin).
    with _engine(graph, probs, rng="legacy", seeds=[5, 7], dsan=True) as two:
        two.ensure({0: 10, 1: 10})
        two.ensure({0: 25})
        assert two.dsan_digests() == digests
    with _engine(graph, probs, rng="legacy", seeds=[5, 7], dsan=False) as ref:
        ref.ensure({0: 10, 1: 10})
        ref.ensure({0: 25})
        with _engine(
            graph, probs, rng="legacy", seeds=[5, 7], dsan=True
        ) as again:
            again.ensure({0: 10, 1: 10})
            again.ensure({0: 25})
            for ad in range(2):
                assert all(
                    np.array_equal(a, b)
                    for a, b in zip(
                        ref.shard(ad).all_sets(), again.shard(ad).all_sets()
                    )
                )


# ----------------------------------------------------------------------
# Divergence detection
# ----------------------------------------------------------------------
def test_tampered_expected_map_raises_at_splice(graph, probs):
    reference, _ = _digests(graph, probs)
    tampered = dict(reference)
    tampered[(0, 1)] = "deadbeef" * 4
    with _engine(graph, probs, dsan_expected=tampered) as engine:
        assert engine.dsan  # expected map implies dsan
        with pytest.raises(DeterminismError) as info:
            engine.ensure(TARGETS)
    assert (info.value.ad, info.value.chunk) == (0, 1)


def test_perturbed_sampler_names_the_divergent_chunk(graph, probs, monkeypatch):
    """The ISSUE's canary: an extra RNG draw inside one chunk's stream
    must surface as a DeterminismError naming exactly that (ad, chunk)."""
    reference, _ = _digests(graph, probs)
    real_generator = StreamPlan.generator

    def skewed(self, chunk_index):
        rng = real_generator(self, chunk_index)
        if self.ad == 1 and chunk_index == 1:
            rng.random()  # consume one draw: every coin after shifts
        return rng

    monkeypatch.setattr(StreamPlan, "generator", skewed)
    with _engine(graph, probs) as engine:
        engine.ensure(TARGETS)
        perturbed = engine.dsan_digests()
    # Only the perturbed chunk's digest moved...
    assert perturbed != reference
    assert {k for k in reference if perturbed[k] != reference[k]} == {(1, 1)}
    # ...and both detection paths name it.
    with pytest.raises(DeterminismError) as info:
        compare_digests(reference, perturbed)
    assert (info.value.ad, info.value.chunk) == (1, 1)
    with _engine(graph, probs, dsan_expected=reference) as engine:
        with pytest.raises(DeterminismError) as info:
            engine.ensure(TARGETS)
    assert (info.value.ad, info.value.chunk) == (1, 1)
    assert "first divergent chunk" in str(info.value)


# ----------------------------------------------------------------------
# TIRM integration
# ----------------------------------------------------------------------
def test_tirm_dsan_stats_and_provenance():
    problem = figure1_problem()
    base = TIRMAllocator(seed=0, max_rr_sets_per_ad=2_000).allocate(problem)
    sanitized = TIRMAllocator(
        seed=0, max_rr_sets_per_ad=2_000, dsan=True
    ).allocate(problem)
    # Byte-identical allocation: dsan is observation, not behavior.
    assert all(
        base.allocation.seeds(ad) == sanitized.allocation.seeds(ad)
        for ad in range(base.allocation.num_ads)
    )
    assert np.array_equal(base.estimated_revenues, sanitized.estimated_revenues)
    assert base.stats["dsan"] is False
    assert "dsan_digests" not in base.stats
    assert "dsan_root" not in base.allocation.provenance
    assert sanitized.stats["dsan"] is True
    digests = sanitized.stats["dsan_digests"]
    assert digests and all(
        isinstance(k, str) and ":" in k for k in digests
    )
    assert sanitized.stats["dsan_root"] == sanitized.allocation.provenance["dsan_root"]


def test_tirm_dsan_digests_match_across_engines():
    problem = figure1_problem()
    serial = TIRMAllocator(
        seed=0, max_rr_sets_per_ad=2_000, dsan=True
    ).allocate(problem)
    process = TIRMAllocator(
        seed=0, max_rr_sets_per_ad=2_000, dsan=True,
        engine="process", max_workers=2,
    ).allocate(problem)
    assert process.stats["dsan_digests"] == serial.stats["dsan_digests"]
    assert process.stats["dsan_root"] == serial.stats["dsan_root"]
