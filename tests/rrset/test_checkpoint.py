"""Checkpoint/resume: artifact contract, restore fidelity, and the
kill-and-resume determinism property.

The contract under test (``docs/rrset_engine.md``): a TIRM run
interrupted at *any* iteration boundary and resumed from its checkpoint
produces a byte-identical allocation (seeds, revenues, θ targets,
provenance) to the uninterrupted run for the same
``(seed, rng, chunk_size)`` — across serial/process engines and both
sampler modes — and under ``rng="philox"`` the artifact persists zero
RR-set members (the counter-based streams re-derive them on load).
"""

from __future__ import annotations

import os
import warnings

import numpy as np
import pytest

from repro.advertising.advertiser import Advertiser
from repro.advertising.attention import AttentionBounds
from repro.advertising.catalog import AdCatalog
from repro.advertising.problem import AdAllocationProblem
from repro.algorithms.tirm import TIRMAllocator
from repro.datasets.toy import figure1_problem
from repro.errors import CheckpointError, ConfigurationError
from repro.graph.generators import erdos_renyi
from repro.graph.probabilities import constant_probabilities
from repro.rrset.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    TIRMCheckpoint,
    save_checkpoint,
)
from repro.rrset.sharded import ShardedSamplingEngine


def _problem(seed: int = 7, num_ads: int = 3, budget: float = 5.0):
    graph = erdos_renyi(50, 0.06, seed=seed)
    catalog = AdCatalog(
        [Advertiser(name=f"a{i}", budget=budget, cpe=1.0) for i in range(num_ads)]
    )
    return AdAllocationProblem(
        graph,
        catalog,
        constant_probabilities(graph, 0.08),
        0.4,
        AttentionBounds.uniform(graph.num_nodes, num_ads),
    )


def _probs(problem):
    return [problem.ad_edge_probabilities(ad) for ad in range(problem.num_ads)]


def _allocator(**kwargs) -> TIRMAllocator:
    defaults = dict(seed=3, initial_pilot=300, max_rr_sets_per_ad=3_000)
    defaults.update(kwargs)
    return TIRMAllocator(**defaults)


def _engine_fingerprint(engine: ShardedSamplingEngine):
    out = []
    for ad in range(engine.num_ads):
        shard = engine.shard(ad)
        view = shard.prefix_view()
        out.append(
            (
                shard.num_total,
                view.members.tobytes(),
                view.indptr.tobytes(),
                shard.alive_mask().tobytes(),
                shard.coverage().tobytes(),
            )
        )
    return out


def _dummy_per_ad(h: int) -> list[dict]:
    return [
        {
            "seeds": [],
            "marginal_nodes": [],
            "marginal_counts": [],
            "revenue": 0.0,
            "seed_size_estimate": 1,
            "active": True,
        }
        for _ in range(h)
    ]


def _results_identical(a, b) -> bool:
    """Byte-identity of everything the resume contract covers."""
    prov_a = dict(a.allocation.provenance or {})
    prov_b = dict(b.allocation.provenance or {})
    # Not part of the determinism contract: the checkpoint lineage, the
    # engine label (serial vs process vs dist), the transport, and the
    # distributed-fleet counters describe *how* the run executed, and
    # cross-substrate resumes differ in them by design.
    for key in ("checkpoint", "engine", "transport", "dist"):
        prov_a.pop(key, None)
        prov_b.pop(key, None)
    return (
        a.allocation == b.allocation
        and np.asarray(a.estimated_revenues).tobytes()
        == np.asarray(b.estimated_revenues).tobytes()
        and a.stats["theta_per_ad"] == b.stats["theta_per_ad"]
        and a.stats["seed_size_estimates"] == b.stats["seed_size_estimates"]
        and a.stats["iterations"] == b.stats["iterations"]
        and prov_a == prov_b
    )


# ---------------------------------------------------------------------------
# Engine-level save/restore fidelity
# ---------------------------------------------------------------------------
class TestEngineRestore:
    @pytest.mark.parametrize("rng", ["philox", "legacy"])
    @pytest.mark.parametrize("mode", ["blocked", "scalar"])
    def test_restore_rebuilds_shards_and_alive_state(self, tmp_path, rng, mode):
        problem = _problem()
        path = tmp_path / "ck.npz"
        config = {"num_ads": problem.num_ads, "rng": rng, "chunk_size": 64}
        with ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=11, mode=mode, rng=rng,
            chunk_size=64,
        ) as engine:
            engine.sample({0: 120, 1: 75, 2: 40})
            # kill a few sets through the normal removal path
            engine.shard(0).remove_covered(int(engine.shard(0).get_set(0)[0]))
            engine.shard(1).remove_covered(int(engine.shard(1).get_set(3)[0]))
            reference = _engine_fingerprint(engine)
            save_checkpoint(
                path, config=config, engine=engine,
                per_ad=_dummy_per_ad(problem.num_ads), iterations=5, lineage=[],
            )

        checkpoint = TIRMCheckpoint.load(path)
        assert checkpoint.iterations == 5
        with ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=11, mode=mode, rng=rng,
            chunk_size=64,
        ) as restored:
            checkpoint.restore_engine(restored)
            assert _engine_fingerprint(restored) == reference

    def test_legacy_restore_continues_streams_bit_identically(self, tmp_path):
        """After a legacy restore, further sampling must match an engine
        that never stopped — the stream states round-trip exactly."""
        problem = _problem()
        path = tmp_path / "ck.npz"
        config = {"num_ads": problem.num_ads, "rng": "legacy", "chunk_size": None}
        with ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=11, rng="legacy"
        ) as uninterrupted:
            uninterrupted.sample({0: 80, 1: 80, 2: 80})
            save_checkpoint(
                path, config=config, engine=uninterrupted,
                per_ad=_dummy_per_ad(problem.num_ads), iterations=1, lineage=[],
            )
            uninterrupted.sample({0: 50, 1: 20, 2: 35})
            reference = _engine_fingerprint(uninterrupted)

        with ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=11, rng="legacy"
        ) as resumed:
            TIRMCheckpoint.load(path).restore_engine(resumed)
            resumed.sample({0: 50, 1: 20, 2: 35})
            assert _engine_fingerprint(resumed) == reference

    def test_restore_requires_fresh_engine(self, tmp_path):
        problem = _problem()
        path = tmp_path / "ck.npz"
        config = {"num_ads": problem.num_ads, "rng": "philox", "chunk_size": 64}
        with ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=11, chunk_size=64
        ) as engine:
            engine.sample({0: 10})
            save_checkpoint(
                path, config=config, engine=engine,
                per_ad=_dummy_per_ad(problem.num_ads), iterations=1, lineage=[],
            )
            with pytest.raises(CheckpointError, match="fresh"):
                TIRMCheckpoint.load(path).restore_engine(engine)


# ---------------------------------------------------------------------------
# Artifact contract
# ---------------------------------------------------------------------------
class TestArtifact:
    def test_philox_artifact_holds_zero_rr_members(self, tmp_path):
        """The headline size win: counter-based addressing means the
        artifact names the sample, it does not store it."""
        problem = _problem()
        path = tmp_path / "ck.npz"
        with ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=11, chunk_size=64
        ) as engine:
            engine.sample({ad: 400 for ad in range(problem.num_ads)})
            save_checkpoint(
                path,
                config={"num_ads": problem.num_ads, "rng": "philox",
                        "chunk_size": 64},
                engine=engine, per_ad=_dummy_per_ad(problem.num_ads),
                iterations=1, lineage=[],
            )
        with np.load(path, allow_pickle=False) as data:
            spill_keys = [n for n in data.files if "spill" in n or "member" in n]
        assert spill_keys == []
        assert [f for f in os.listdir(tmp_path) if "members" in f] == []
        # and it is small: metadata + masks, not O(total member bytes)
        assert os.path.getsize(path) < 20_000

    def test_legacy_artifact_spills_members_to_mmap_sidecar(self, tmp_path):
        problem = _problem()
        path = tmp_path / "ck.npz"
        with ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=11, rng="legacy"
        ) as engine:
            engine.sample({ad: 100 for ad in range(problem.num_ads)})
            expected = np.concatenate(
                [
                    np.asarray(engine.shard(ad).prefix_view().members)
                    for ad in range(problem.num_ads)
                ]
            )
            save_checkpoint(
                path,
                config={"num_ads": problem.num_ads, "rng": "legacy",
                        "chunk_size": None},
                engine=engine, per_ad=_dummy_per_ad(problem.num_ads),
                iterations=2, lineage=[],
            )
        checkpoint = TIRMCheckpoint.load(path)
        sidecar = tmp_path / checkpoint.spill_file
        assert sidecar.exists()
        spilled = np.load(sidecar, mmap_mode="r")
        assert isinstance(spilled, np.memmap)
        assert np.array_equal(np.asarray(spilled), expected)

    def test_unchanged_theta_reuses_sidecar_growth_rewrites_it(self, tmp_path):
        """Most boundaries don't grow θ, so consecutive snapshots must
        reference the existing spill instead of rewriting the full
        member file; a growth event rewrites it and cleans the stale
        one.  No temp files survive either way."""
        problem = _problem()
        path = tmp_path / "ck.npz"
        config = {"num_ads": problem.num_ads, "rng": "legacy",
                  "chunk_size": None}
        with ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=11, rng="legacy"
        ) as engine:
            engine.sample({0: 30})
            for iteration in (1, 2):  # same θ: snapshot 2 reuses the spill
                save_checkpoint(
                    path, config=config, engine=engine,
                    per_ad=_dummy_per_ad(problem.num_ads),
                    iterations=iteration, lineage=[],
                )
            sidecars = [f for f in os.listdir(tmp_path) if ".members-" in f]
            assert sidecars == ["ck.npz.members-1.npy"]
            assert TIRMCheckpoint.load(path).spill_file == "ck.npz.members-1.npy"
            engine.sample({0: 10})  # θ grew: snapshot 3 must rewrite
            save_checkpoint(
                path, config=config, engine=engine,
                per_ad=_dummy_per_ad(problem.num_ads),
                iterations=3, lineage=[],
            )
        sidecars = [f for f in os.listdir(tmp_path) if ".members-" in f]
        assert sidecars == ["ck.npz.members-3.npy"]
        assert [f for f in os.listdir(tmp_path) if f.endswith(".tmp")] == []

    def test_load_rejects_missing_corrupt_and_foreign_files(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint artifact"):
            TIRMCheckpoint.load(tmp_path / "absent.npz")
        corrupt = tmp_path / "corrupt.npz"
        corrupt.write_bytes(b"definitely not a zip archive")
        with pytest.raises(CheckpointError, match="could not read"):
            TIRMCheckpoint.load(corrupt)
        foreign = tmp_path / "foreign.npz"
        np.savez(foreign, payload=np.arange(4))
        with pytest.raises(CheckpointError, match="not a TIRM checkpoint"):
            TIRMCheckpoint.load(foreign)
        # a *truncated* zip keeps the PK magic and raises BadZipFile,
        # which is not an OSError/ValueError — it must still be wrapped
        truncated = tmp_path / "truncated.npz"
        truncated.write_bytes(foreign.read_bytes()[:40])
        with pytest.raises(CheckpointError, match="could not read"):
            TIRMCheckpoint.load(truncated)

    def test_corrupt_spill_surfaces_checkpoint_error(self, tmp_path):
        problem = _problem()
        path = tmp_path / "ck.npz"
        with ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=11, rng="legacy"
        ) as engine:
            engine.sample({0: 20})
            save_checkpoint(
                path,
                config={"num_ads": problem.num_ads, "rng": "legacy",
                        "chunk_size": None},
                engine=engine, per_ad=_dummy_per_ad(problem.num_ads),
                iterations=1, lineage=[],
            )
        checkpoint = TIRMCheckpoint.load(path)
        (tmp_path / checkpoint.spill_file).write_bytes(b"garbage")
        with ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=11, rng="legacy"
        ) as fresh:
            with pytest.raises(CheckpointError, match="member spill"):
                checkpoint.restore_engine(fresh)

    def test_load_rejects_unknown_format_version(self, tmp_path):
        problem = _problem()
        path = tmp_path / "ck.npz"
        with ShardedSamplingEngine(
            problem.graph, _probs(problem), seeds=11
        ) as engine:
            save_checkpoint(
                path,
                config={"num_ads": problem.num_ads, "rng": "philox",
                        "chunk_size": 1024},
                engine=engine, per_ad=_dummy_per_ad(problem.num_ads),
                iterations=0, lineage=[],
            )
        import json

        with np.load(path, allow_pickle=False) as data:
            arrays = {name: data[name] for name in data.files}
        meta = json.loads(str(arrays["meta_json"][()]))
        meta["format_version"] = CHECKPOINT_FORMAT_VERSION + 1
        arrays["meta_json"] = np.array(json.dumps(meta))
        np.savez(path, **arrays)
        with pytest.raises(CheckpointError, match="unsupported checkpoint format"):
            TIRMCheckpoint.load(path)


# ---------------------------------------------------------------------------
# Resume compatibility validation
# ---------------------------------------------------------------------------
class TestResumeValidation:
    def _write(self, problem, path, **overrides):
        allocator = _allocator(checkpoint_path=path, max_iterations=1, **overrides)
        allocator.allocate(problem)

    @pytest.mark.parametrize(
        "mismatch",
        [
            {"epsilon": 0.2},
            {"seed": 4},
            {"rng": "legacy"},
            {"chunk_size": 32},
            {"sampler_mode": "scalar"},
            {"max_rr_sets_per_ad": 2_000},
        ],
    )
    def test_mismatched_run_is_refused(self, tmp_path, mismatch):
        problem = figure1_problem()
        path = tmp_path / "ck.npz"
        self._write(problem, path)
        with pytest.raises(ConfigurationError, match="incompatible"):
            _allocator(resume_from=path, **mismatch).allocate(problem)

    def test_mismatched_problem_is_refused(self, tmp_path):
        path = tmp_path / "ck.npz"
        self._write(figure1_problem(), path)
        with pytest.raises(ConfigurationError, match="incompatible"):
            _allocator(resume_from=path).allocate(_problem())

    def test_matching_run_resumes(self, tmp_path):
        problem = figure1_problem()
        path = tmp_path / "ck.npz"
        self._write(problem, path)
        result = _allocator(resume_from=path).allocate(problem)
        lineage = result.allocation.provenance["checkpoint"]
        assert lineage["resumed_from"] == str(path)
        assert lineage["resumed_at_iteration"] == 1
        assert lineage["lineage"][-1]["at_iteration"] == 1


# ---------------------------------------------------------------------------
# The kill-and-resume determinism property (engine × sampler × rng)
# ---------------------------------------------------------------------------
class TestKillAndResumeDeterminism:
    """Interrupt at every iteration boundary k, resume, and demand the
    byte-identical allocation the uninterrupted run produces."""

    @pytest.mark.parametrize("rng", ["philox", "legacy"])
    @pytest.mark.parametrize("mode", ["blocked", "scalar"])
    def test_every_boundary_serial(self, tmp_path, rng, mode):
        problem = figure1_problem()
        path = tmp_path / "ck.npz"
        reference = _allocator(rng=rng, sampler_mode=mode).allocate(problem)
        total = reference.stats["iterations"]
        assert total >= 3, "fixture must run several iterations"
        for k in range(1, total):
            killed = _allocator(
                rng=rng, sampler_mode=mode, checkpoint_path=path,
                max_iterations=k,
            ).allocate(problem)
            assert killed.stats["truncated"] is True
            assert killed.stats["iterations"] == k
            resumed = _allocator(
                rng=rng, sampler_mode=mode, resume_from=path
            ).allocate(problem)
            assert resumed.stats["resumed_at_iteration"] == k
            assert _results_identical(resumed, reference), (rng, mode, k)

    @pytest.mark.parametrize("rng", ["philox", "legacy"])
    def test_process_engine_resume(self, tmp_path, rng):
        problem = figure1_problem()
        path = tmp_path / "ck.npz"
        kwargs = dict(rng=rng, chunk_size=64)
        with warnings.catch_warnings():
            if rng == "legacy":  # legacy + process warns (serial sampling)
                warnings.simplefilter("ignore", RuntimeWarning)
            reference = _allocator(**kwargs).allocate(problem)
            k = max(1, reference.stats["iterations"] // 2)
            _allocator(
                engine="process", max_workers=2, checkpoint_path=path,
                max_iterations=k, **kwargs,
            ).allocate(problem)
            resumed = _allocator(
                engine="process", max_workers=2, resume_from=path, **kwargs
            ).allocate(problem)
        assert _results_identical(resumed, reference)

    def test_cross_engine_resume(self, tmp_path):
        """A serial checkpoint resumed under the process engine (and the
        reverse) lands on the same allocation: counter-based chunks make
        the shards engine-invariant."""
        problem = figure1_problem()
        path = tmp_path / "ck.npz"
        kwargs = dict(chunk_size=64)
        reference = _allocator(**kwargs).allocate(problem)
        k = max(1, reference.stats["iterations"] // 2)
        _allocator(
            checkpoint_path=path, max_iterations=k, **kwargs
        ).allocate(problem)
        resumed = _allocator(
            engine="process", max_workers=2, resume_from=path, **kwargs
        ).allocate(problem)
        assert _results_identical(resumed, reference)
        _allocator(
            engine="process", max_workers=2, checkpoint_path=path,
            max_iterations=k, **kwargs,
        ).allocate(problem)
        back = _allocator(resume_from=path, **kwargs).allocate(problem)
        assert _results_identical(back, reference)

    def test_chained_resumes_cover_every_boundary(self, tmp_path):
        """Resume → one iteration → checkpoint, repeated to completion:
        every boundary is both written and restored in one lineage."""
        problem = figure1_problem()
        path = tmp_path / "ck.npz"
        reference = _allocator().allocate(problem)
        total = reference.stats["iterations"]
        result = _allocator(checkpoint_path=path, max_iterations=1).allocate(
            problem
        )
        hops = 1
        while result.stats["truncated"]:
            result = _allocator(
                checkpoint_path=path, resume_from=path, max_iterations=1
            ).allocate(problem)
            hops += 1
            assert hops <= total + 1, "chained resume failed to converge"
        assert _results_identical(result, reference)
        # one resume per boundary, plus the final no-op hop at `total`
        lineage = result.allocation.provenance["checkpoint"]["lineage"]
        assert [entry["at_iteration"] for entry in lineage] == list(
            range(1, total + 1)
        )

    def test_larger_problem_mid_kill(self, tmp_path):
        """One deeper run on a non-toy graph, both rng modes."""
        problem = _problem()
        for rng in ("philox", "legacy"):
            path = tmp_path / f"ck-{rng}.npz"
            reference = _allocator(rng=rng).allocate(problem)
            k = max(1, reference.stats["iterations"] // 2)
            _allocator(
                rng=rng, checkpoint_path=path, max_iterations=k
            ).allocate(problem)
            resumed = _allocator(rng=rng, resume_from=path).allocate(problem)
            assert _results_identical(resumed, reference), rng


class TestCrossSubstrateResumeMatrix:
    """A checkpoint written under one substrate resumes under any
    other: serial/numpy snapshots land byte-identically when finished
    by a distributed fleet of 1/2/4 workers (numpy and, when installed,
    numba), and a distributed snapshot finishes serially.  Counter-based
    chunks make the shards substrate-invariant; the checkpoint matches
    on the contract (seed/rng/chunk size), never the topology."""

    @staticmethod
    def _backends():
        from repro.rrset.backends import resolve_backend

        backends = ["numpy"]
        try:
            resolve_backend("numba")
        except ConfigurationError:
            pass
        else:
            backends.append("numba")
        return backends

    @staticmethod
    def _spawn_fleet(coordinator, count: int, backend: str):
        import threading

        from repro.dist import WorkerHost

        workers = [
            WorkerHost(coordinator.host, coordinator.port, backend=backend)
            for _ in range(count)
        ]
        threads = [
            threading.Thread(target=worker.run, daemon=True)
            for worker in workers
        ]
        for thread in threads:
            thread.start()
        coordinator.wait_for_workers(count, timeout=10.0)
        return threads

    @pytest.mark.parametrize("num_workers", [1, 2, 4])
    def test_serial_checkpoint_finishes_on_a_distributed_fleet(
        self, tmp_path, num_workers
    ):
        from repro.dist import Coordinator

        problem = figure1_problem()
        kwargs = dict(chunk_size=64)
        reference = _allocator(**kwargs).allocate(problem)
        k = max(1, reference.stats["iterations"] // 2)
        for backend in self._backends():
            path = tmp_path / f"ck-{num_workers}-{backend}.npz"
            _allocator(
                checkpoint_path=path, max_iterations=k, **kwargs
            ).allocate(problem)
            with Coordinator() as coordinator:
                threads = self._spawn_fleet(coordinator, num_workers, backend)
                resumed = _allocator(
                    engine="dist", coordinator=coordinator,
                    resume_from=path, **kwargs,
                ).allocate(problem)
            for thread in threads:
                thread.join(timeout=10.0)
            assert resumed.stats["resumed_at_iteration"] == k
            assert _results_identical(resumed, reference), (
                num_workers, backend,
            )

    def test_distributed_checkpoint_finishes_serially(self, tmp_path):
        from repro.dist import Coordinator

        problem = figure1_problem()
        path = tmp_path / "ck.npz"
        kwargs = dict(chunk_size=64)
        reference = _allocator(**kwargs).allocate(problem)
        k = max(1, reference.stats["iterations"] // 2)
        with Coordinator() as coordinator:
            threads = self._spawn_fleet(coordinator, 2, "numpy")
            _allocator(
                engine="dist", coordinator=coordinator,
                checkpoint_path=path, max_iterations=k, **kwargs,
            ).allocate(problem)
        for thread in threads:
            thread.join(timeout=10.0)
        resumed = _allocator(resume_from=path, **kwargs).allocate(problem)
        assert _results_identical(resumed, reference)


class TestTruncationKnob:
    def test_max_iterations_returns_partial_allocation(self, tmp_path):
        problem = figure1_problem()
        result = _allocator(max_iterations=2).allocate(problem)
        assert result.stats["truncated"] is True
        assert result.stats["iterations"] == 2
        assert result.allocation.total_seeds() == 2

    def test_untruncated_run_reports_flag_false(self):
        problem = figure1_problem()
        result = _allocator().allocate(problem)
        assert result.stats["truncated"] is False
        assert result.stats["checkpoints_written"] == 0
        assert result.stats["resumed_at_iteration"] is None

    def test_checkpoint_every_counts_boundaries(self, tmp_path):
        problem = figure1_problem()
        path = tmp_path / "ck.npz"
        result = _allocator(
            checkpoint_path=path, checkpoint_every=2
        ).allocate(problem)
        total = result.stats["iterations"]
        assert result.stats["checkpoints_written"] == total // 2
        assert path.exists()
