"""Dataset registry."""

import pytest

from repro.datasets.registry import DATASETS, load_dataset
from repro.errors import ConfigurationError


def test_all_names_registered():
    assert set(DATASETS) == {"figure1", "flixster", "epinions", "dblp", "livejournal"}


def test_load_figure1():
    problem = load_dataset("figure1")
    assert problem.num_ads == 4


def test_load_case_insensitive():
    problem = load_dataset("Figure1")
    assert problem.num_ads == 4


def test_kwargs_forwarded():
    problem = load_dataset("flixster", scale=0.01, num_ads=3, seed=5)
    assert problem.num_ads == 3


def test_unknown_name():
    with pytest.raises(ConfigurationError, match="unknown dataset"):
        load_dataset("orkut")
