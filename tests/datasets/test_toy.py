"""The Fig.-1 gadget dataset."""

import numpy as np
import pytest

from repro.datasets.toy import (
    figure1_allocation_a,
    figure1_allocation_b,
    figure1_gadget,
    figure1_problem,
)


def test_gadget_topology():
    graph, probs = figure1_gadget()
    assert graph.num_nodes == 6
    assert graph.num_edges == 6
    assert probs[graph.edge_id(0, 2)] == 0.2
    assert probs[graph.edge_id(2, 3)] == 0.5
    assert probs[graph.edge_id(4, 5)] == 0.1


def test_problem_setup():
    problem = figure1_problem()
    assert problem.num_ads == 4
    assert problem.catalog.budgets().tolist() == [4.0, 2.0, 2.0, 1.0]
    assert np.allclose(problem.catalog.cpes(), 1.0)
    assert np.all(problem.attention.kappa == 1)
    # CTPs are uniform per ad
    assert np.allclose(problem.ctps[0], 0.9)
    assert np.allclose(problem.ctps[3], 0.6)
    # all ads share edge probabilities
    assert np.allclose(problem.edge_probabilities[0], problem.edge_probabilities[2])


def test_problem_penalty_passthrough():
    assert figure1_problem(penalty=0.1).penalty == 0.1


def test_allocation_a_is_valid_and_full():
    problem = figure1_problem()
    alloc = figure1_allocation_a()
    assert alloc.is_valid(problem.attention)
    assert alloc.seeds(0) == {0, 1, 2, 3, 4, 5}


def test_allocation_b_matches_paper():
    alloc = figure1_allocation_b()
    assert alloc.seeds(0) == {0, 1}
    assert alloc.seeds(1) == {2}
    assert alloc.seeds(2) == {3, 4}
    assert alloc.seeds(3) == {5}
    assert alloc.is_valid(figure1_problem().attention)
