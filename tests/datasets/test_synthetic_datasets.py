"""The four synthetic network recipes (scaled-down Table 1–2 stand-ins)."""

import numpy as np
import pytest

from repro.datasets.synthetic import (
    dblp_like,
    epinions_like,
    flixster_like,
    livejournal_like,
)


class TestFlixsterLike:
    @pytest.fixture(scope="class")
    def problem(self):
        return flixster_like(scale=0.01, seed=1)

    def test_shape(self, problem):
        assert problem.num_nodes == 300
        assert problem.num_ads == 10

    def test_ctps_in_paper_range(self, problem):
        assert problem.ctps.min() >= 0.01
        assert problem.ctps.max() <= 0.03

    def test_budgets_scaled_from_table2(self, problem):
        budgets = problem.catalog.budgets()
        assert np.all(budgets >= 200 * 0.01)
        assert np.all(budgets <= 600 * 0.01)

    def test_cpes_in_table2_range(self, problem):
        cpes = problem.catalog.cpes()
        assert np.all((cpes >= 5.0) & (cpes <= 6.0))

    def test_skewed_topics(self, problem):
        gamma = problem.catalog[3].topics.gamma
        assert gamma[3] == pytest.approx(0.91)

    def test_deterministic(self):
        a = flixster_like(scale=0.01, seed=2)
        b = flixster_like(scale=0.01, seed=2)
        assert a.graph == b.graph
        assert np.array_equal(a.ctps, b.ctps)
        assert np.array_equal(a.edge_probabilities, b.edge_probabilities)

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            flixster_like(scale=0.0)


class TestEpinionsLike:
    @pytest.fixture(scope="class")
    def problem(self):
        return epinions_like(scale=0.005, seed=1)

    def test_shape(self, problem):
        assert problem.num_nodes == 380
        assert problem.num_ads == 10

    def test_exponential_probabilities_small(self, problem):
        # Exp(30) has mean 1/30; mixed probabilities stay small.
        assert problem.edge_probabilities.mean() < 0.1

    def test_budgets_scaled(self, problem):
        budgets = problem.catalog.budgets()
        assert np.all(budgets >= 100 * 0.005)
        assert np.all(budgets <= 350 * 0.005)

    def test_attention_bound_param(self):
        problem = epinions_like(scale=0.005, attention_bound=3, seed=1)
        assert np.all(problem.attention.kappa == 3)


class TestDblpLike:
    @pytest.fixture(scope="class")
    def problem(self):
        return dblp_like(scale=0.002, seed=1)

    def test_symmetric_edges(self, problem):
        g = problem.graph
        for eid in range(0, g.num_edges, max(g.num_edges // 50, 1)):
            u, v = int(g.edge_sources[eid]), int(g.edge_targets[eid])
            assert g.has_edge(v, u)

    def test_weighted_cascade(self, problem):
        g = problem.graph
        probs = problem.ad_edge_probabilities(0)
        in_deg = g.in_degrees()
        eid = g.num_edges // 2
        v = int(g.edge_targets[eid])
        assert probs[eid] == pytest.approx(1.0 / in_deg[v])

    def test_ctp_cpe_one(self, problem):
        assert np.all(problem.ctps == 1.0)
        assert np.all(problem.catalog.cpes() == 1.0)

    def test_budget_override(self):
        problem = dblp_like(scale=0.002, budget_per_ad=42.0, seed=1)
        assert np.all(problem.catalog.budgets() == 42.0)


class TestLivejournalLike:
    def test_small_scale_builds(self):
        problem = livejournal_like(scale=0.0001, seed=1)
        assert problem.num_nodes >= 100
        assert problem.num_ads == 5
        assert np.all(problem.ctps == 1.0)

    def test_num_ads_param(self):
        problem = livejournal_like(scale=0.0001, num_ads=3, seed=1)
        assert problem.num_ads == 3
