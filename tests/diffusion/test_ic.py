"""Monte-Carlo IC / TIC-CTP simulation."""

import numpy as np
import pytest

from repro.diffusion.exact import exact_spread
from repro.diffusion.ic import estimate_spread, simulate_clicks
from repro.graph.digraph import DirectedGraph
from repro.graph.generators import erdos_renyi
from repro.graph.probabilities import constant_probabilities


class TestSimulateClicks:
    def test_deterministic_probabilities(self, line_graph):
        active = simulate_clicks(line_graph, np.ones(3), [0], rng=0)
        assert active.all()
        active = simulate_clicks(line_graph, np.zeros(3), [0], rng=0)
        assert active.tolist() == [True, False, False, False]

    def test_no_seeds(self, line_graph):
        active = simulate_clicks(line_graph, np.ones(3), [], rng=0)
        assert not active.any()

    def test_seed_ctp_zero_never_starts(self, line_graph):
        active = simulate_clicks(
            line_graph, np.ones(3), [0], ctps=np.zeros(4), rng=0
        )
        assert not active.any()

    def test_failed_seed_activated_via_influence(self):
        """Seed 1's coin always fails but edge 0→1 always fires."""
        g = DirectedGraph.from_edges([(0, 1)])
        ctps = np.asarray([1.0, 0.0])
        active = simulate_clicks(g, np.ones(1), [0, 1], ctps=ctps, rng=0)
        assert active.tolist() == [True, True]

    def test_duplicate_seeds_collapse(self, line_graph):
        a = simulate_clicks(line_graph, np.ones(3), [0, 0], rng=5)
        b = simulate_clicks(line_graph, np.ones(3), [0], rng=5)
        assert np.array_equal(a, b)

    def test_shape_validation(self, line_graph):
        with pytest.raises(ValueError):
            simulate_clicks(line_graph, np.ones(2), [0])


class TestEstimateSpread:
    def test_agrees_with_exact_no_ctp(self, diamond_graph):
        probs = np.full(4, 0.5)
        exact = exact_spread(diamond_graph, probs, [0])
        estimate = estimate_spread(diamond_graph, probs, [0], num_runs=4000, seed=1)
        assert estimate.mean == pytest.approx(exact, abs=4 * estimate.std_error + 0.02)

    def test_agrees_with_exact_with_ctp(self, diamond_graph):
        probs = np.full(4, 0.6)
        ctps = np.asarray([0.5, 0.9, 0.2, 0.7])
        exact = exact_spread(diamond_graph, probs, [0, 2], ctps=ctps)
        estimate = estimate_spread(
            diamond_graph, probs, [0, 2], ctps=ctps, num_runs=4000, seed=2
        )
        assert estimate.mean == pytest.approx(exact, abs=4 * estimate.std_error + 0.02)

    def test_empty_seed_zero(self, diamond_graph):
        estimate = estimate_spread(diamond_graph, np.full(4, 0.5), [], num_runs=10)
        assert estimate.mean == 0.0
        assert estimate.std_error == 0.0

    def test_deterministic_under_seed(self, small_random_graph):
        probs = constant_probabilities(small_random_graph, 0.1)
        a = estimate_spread(small_random_graph, probs, [0, 1], num_runs=50, seed=3)
        b = estimate_spread(small_random_graph, probs, [0, 1], num_runs=50, seed=3)
        assert a.mean == b.mean

    def test_validates_num_runs(self, diamond_graph):
        with pytest.raises(ValueError):
            estimate_spread(diamond_graph, np.full(4, 0.5), [0], num_runs=0)

    def test_spread_at_least_expected_seed_clicks(self):
        g = erdos_renyi(40, 0.05, seed=4)
        probs = constant_probabilities(g, 0.1)
        ctps = np.full(40, 0.5)
        seeds = [0, 1, 2, 3]
        estimate = estimate_spread(g, probs, seeds, ctps=ctps, num_runs=800, seed=5)
        # At minimum the seeds themselves click in expectation 4 * 0.5.
        assert estimate.mean >= 4 * 0.5 - 4 * estimate.std_error

    def test_confidence_interval_contains_mean(self, diamond_graph):
        estimate = estimate_spread(diamond_graph, np.full(4, 0.5), [0], num_runs=100, seed=6)
        low, high = estimate.confidence_interval()
        assert low <= estimate.mean <= high
