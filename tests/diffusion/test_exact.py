"""Exact enumeration: hand-computable cases and the Fig.-1 numbers."""

import numpy as np
import pytest

from repro.datasets.toy import (
    PAPER_EXPECTED_CLICKS_A,
    PAPER_EXPECTED_CLICKS_B,
    figure1_allocation_a,
    figure1_allocation_b,
    figure1_problem,
)
from repro.diffusion.exact import exact_click_probabilities, exact_spread
from repro.graph.digraph import DirectedGraph


class TestHandComputable:
    def test_single_edge(self):
        g = DirectedGraph.from_edges([(0, 1)])
        # seed 0 always clicks; 1 clicks iff the 0.3-edge fires
        assert exact_spread(g, [0.3], [0]) == pytest.approx(1.3)

    def test_ctp_scales_everything(self):
        g = DirectedGraph.from_edges([(0, 1)])
        # 0 clicks w.p. 0.5; 1 clicks w.p. 0.5*0.3
        assert exact_spread(g, [0.3], [0], ctps=[0.5, 1.0]) == pytest.approx(0.5 + 0.15)

    def test_failed_seed_still_activatable(self):
        """A seed whose CTP coin fails can be activated by a neighbor —
        the TIC-CTP semantics behind Allocation A's v3 computation."""
        g = DirectedGraph.from_edges([(0, 1)])
        # Seeds {0, 1}, delta = (1.0, 0.5), edge 1.0:
        # node1 clicks unless its own coin fails AND ... edge always fires
        # so node 1 clicks w.p. 1 - (1-0.5)*(1-1.0*1.0) = 1.0
        assert exact_spread(g, [1.0], [0, 1], ctps=[1.0, 0.5]) == pytest.approx(2.0)

    def test_diamond_convergent_paths(self, diamond_graph):
        # p=1 everywhere: everything is reached
        assert exact_spread(diamond_graph, np.ones(4), [0]) == pytest.approx(4.0)
        # p=0.5: node3 active w.p. 1-(1-0.25)... two indep paths of prob .25
        p = exact_click_probabilities(diamond_graph, np.full(4, 0.5), [0])
        assert p[0] == pytest.approx(1.0)
        assert p[1] == pytest.approx(0.5)
        assert p[3] == pytest.approx(1 - (1 - 0.25) ** 2)

    def test_empty_seeds(self, diamond_graph):
        assert exact_spread(diamond_graph, np.full(4, 0.5), []) == 0.0

    def test_monotone_in_seeds(self, diamond_graph):
        probs = np.full(4, 0.4)
        s1 = exact_spread(diamond_graph, probs, [1])
        s2 = exact_spread(diamond_graph, probs, [1, 2])
        assert s2 >= s1

    def test_submodular_on_diamond(self, diamond_graph):
        """σ(S∪{x}) − σ(S) shrinks as S grows (Lemma 1 corollary)."""
        probs = np.full(4, 0.6)
        gain_small = exact_spread(diamond_graph, probs, [1, 0]) - exact_spread(
            diamond_graph, probs, [1]
        )
        gain_large = exact_spread(diamond_graph, probs, [1, 2, 0]) - exact_spread(
            diamond_graph, probs, [1, 2]
        )
        assert gain_large <= gain_small + 1e-12

    def test_edge_limit_guard(self):
        g = DirectedGraph.from_edges([(0, i) for i in range(1, 22)])
        with pytest.raises(ValueError, match="at most"):
            exact_spread(g, np.full(21, 0.5), [0])


class TestFigure1:
    """The paper's Fig. 1 numbers (independence-approximated, rounded to
    two decimals) against exact possible-world enumeration."""

    def test_allocation_a_expected_clicks(self):
        problem = figure1_problem()
        alloc = figure1_allocation_a()
        total = sum(
            exact_spread(
                problem.graph,
                problem.ad_edge_probabilities(i),
                alloc.seed_array(i),
                ctps=problem.ad_ctps(i),
            )
            for i in range(problem.num_ads)
        )
        assert total == pytest.approx(PAPER_EXPECTED_CLICKS_A, abs=0.05)

    def test_allocation_b_expected_clicks(self):
        problem = figure1_problem()
        alloc = figure1_allocation_b()
        total = sum(
            exact_spread(
                problem.graph,
                problem.ad_edge_probabilities(i),
                alloc.seed_array(i),
                ctps=problem.ad_ctps(i),
            )
            for i in range(problem.num_ads)
        )
        assert total == pytest.approx(PAPER_EXPECTED_CLICKS_B, abs=0.05)

    def test_allocation_a_node_probabilities(self):
        """Spot-check the per-node click probabilities of Fig. 1's
        Allocation A (paper values, rounded)."""
        problem = figure1_problem()
        clicks = exact_click_probabilities(
            problem.graph,
            problem.ad_edge_probabilities(0),
            np.arange(6),
            ctps=problem.ad_ctps(0),
        )
        assert clicks[0] == pytest.approx(0.9)
        assert clicks[1] == pytest.approx(0.9)
        assert clicks[2] == pytest.approx(0.93, abs=0.005)
        assert clicks[3] == pytest.approx(0.95, abs=0.005)
        assert clicks[5] == pytest.approx(0.92, abs=0.01)

    def test_allocation_b_ad_a_nodes(self):
        """Allocation B, ad a seeded at {v1, v2}: v3 clicks w.p. 0.33."""
        problem = figure1_problem()
        clicks = exact_click_probabilities(
            problem.graph,
            problem.ad_edge_probabilities(0),
            [0, 1],
            ctps=problem.ad_ctps(0),
        )
        assert clicks[2] == pytest.approx(1 - (1 - 0.18) ** 2, abs=1e-9)
