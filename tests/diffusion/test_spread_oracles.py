"""Spread oracles: caching, exactness, CRN stability, revenue scaling."""

import pytest

from repro.diffusion.exact import exact_spread
from repro.diffusion.spread import ExactSpreadOracle, MonteCarloSpreadOracle


class TestExactOracle:
    def test_matches_direct_computation(self, two_ad_problem):
        oracle = ExactSpreadOracle(two_ad_problem)
        for ad in range(2):
            direct = exact_spread(
                two_ad_problem.graph,
                two_ad_problem.ad_edge_probabilities(ad),
                [0, 1],
                ctps=two_ad_problem.ad_ctps(ad),
            )
            assert oracle.spread(ad, frozenset({0, 1})) == pytest.approx(direct)

    def test_empty_set_zero(self, two_ad_problem):
        assert ExactSpreadOracle(two_ad_problem).spread(0, frozenset()) == 0.0

    def test_revenue_scales_by_cpe(self, two_ad_problem):
        oracle = ExactSpreadOracle(two_ad_problem)
        spread = oracle.spread(1, frozenset({0}))
        assert oracle.revenue(1, frozenset({0})) == pytest.approx(2.0 * spread)

    def test_caching(self, two_ad_problem):
        oracle = ExactSpreadOracle(two_ad_problem)
        oracle.spread(0, frozenset({0}))
        oracle.spread(0, frozenset({0}))
        assert oracle.cache_size == 1


class TestMonteCarloOracle:
    def test_close_to_exact(self, two_ad_problem):
        oracle = MonteCarloSpreadOracle(two_ad_problem, num_runs=3000, seed=1)
        exact = ExactSpreadOracle(two_ad_problem)
        seeds = frozenset({0, 2})
        assert oracle.spread(0, seeds) == pytest.approx(exact.spread(0, seeds), abs=0.1)

    def test_common_random_numbers_monotone(self, two_ad_problem):
        """With CRN, adding a seed never decreases the per-world count, so
        the estimate is monotone even at small run counts."""
        oracle = MonteCarloSpreadOracle(two_ad_problem, num_runs=30, seed=2)
        small = oracle.spread(0, frozenset({1}))
        large = oracle.spread(0, frozenset({1, 2}))
        assert large >= small - 1e-12

    def test_deterministic(self, two_ad_problem):
        a = MonteCarloSpreadOracle(two_ad_problem, num_runs=50, seed=3)
        b = MonteCarloSpreadOracle(two_ad_problem, num_runs=50, seed=3)
        assert a.spread(0, frozenset({0})) == b.spread(0, frozenset({0}))

    def test_validates_runs(self, two_ad_problem):
        with pytest.raises(ValueError):
            MonteCarloSpreadOracle(two_ad_problem, num_runs=0)
