"""TIC-CTP wrappers: topic-model collapse feeding the IC engine."""

import numpy as np
import pytest

from repro.diffusion.exact import exact_spread
from repro.diffusion.ticctp import tic_ctp_estimate_spread
from repro.topics.distribution import TopicDistribution
from repro.topics.model import TopicModel


@pytest.fixture
def model(diamond_graph):
    edge_probs = np.asarray([[0.8] * 4, [0.2] * 4])
    seed_probs = np.asarray([[0.9] * 4, [0.3] * 4])
    return TopicModel(diamond_graph, edge_probs, seed_probs)


def test_matches_exact_after_collapse(model, diamond_graph):
    gamma = TopicDistribution([0.5, 0.5])
    edge_probs = model.ad_edge_probabilities(gamma)
    ctps = model.ad_ctps(gamma)
    exact = exact_spread(diamond_graph, edge_probs, [0], ctps=ctps)
    estimate = tic_ctp_estimate_spread(model, gamma, [0], num_runs=4000, seed=1)
    assert estimate.mean == pytest.approx(exact, abs=4 * estimate.std_error + 0.03)


def test_explicit_ctps_override(model):
    gamma = TopicDistribution.point(2, 0)
    with_ones = tic_ctp_estimate_spread(
        model, gamma, [0], ctps=np.ones(4), num_runs=500, seed=2
    )
    derived = tic_ctp_estimate_spread(model, gamma, [0], num_runs=500, seed=2)
    assert with_ones.mean >= derived.mean


def test_lemma1_marginal_identity(model, diamond_graph):
    """Lemma 1: δ(u,i)·[σ_ic(S∪u) − σ_ic(S)] = σ_i(S∪u) − σ_i(S) when the
    seeds of S click deterministically.

    The identity is exact when nodes of S have CTP 1 (the case the
    paper's possible-world argument covers); we verify that form.
    """
    gamma = TopicDistribution.point(2, 0)
    edge_probs = model.ad_edge_probabilities(gamma)
    n = diamond_graph.num_nodes
    u, seeds = 1, [0]
    delta_u = 0.35
    ctps = np.ones(n)
    ctps[u] = delta_u
    ic_gain = exact_spread(diamond_graph, edge_probs, seeds + [u]) - exact_spread(
        diamond_graph, edge_probs, seeds
    )
    ctp_gain = exact_spread(
        diamond_graph, edge_probs, seeds + [u], ctps=ctps
    ) - exact_spread(diamond_graph, edge_probs, seeds, ctps=ctps)
    assert ctp_gain == pytest.approx(delta_u * ic_gain, rel=1e-9)
