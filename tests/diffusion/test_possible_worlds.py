"""Possible worlds: live-edge sampling, world probability, reachability."""

import numpy as np
import pytest

from repro.diffusion.possible_worlds import (
    reachable_from,
    sample_live_edges,
    world_probability,
)
from repro.graph.digraph import DirectedGraph


def test_sample_extremes(diamond_graph):
    all_live = sample_live_edges(np.ones(4), seed=0)
    assert all_live.all()
    none_live = sample_live_edges(np.zeros(4), seed=0)
    assert not none_live.any()


def test_sample_deterministic(diamond_graph):
    a = sample_live_edges(np.full(4, 0.5), seed=7)
    b = sample_live_edges(np.full(4, 0.5), seed=7)
    assert np.array_equal(a, b)


def test_world_probability():
    probs = np.asarray([0.5, 0.25])
    assert world_probability(probs, [True, True]) == pytest.approx(0.125)
    assert world_probability(probs, [False, False]) == pytest.approx(0.375)


def test_world_probabilities_sum_to_one():
    probs = np.asarray([0.3, 0.6, 0.9])
    total = 0.0
    for code in range(8):
        mask = [(code >> b) & 1 == 1 for b in range(3)]
        total += world_probability(probs, mask)
    assert total == pytest.approx(1.0)


def test_world_probability_shape_checked():
    with pytest.raises(ValueError):
        world_probability(np.asarray([0.5]), [True, False])


class TestReachability:
    def test_all_live_line(self, line_graph):
        reached = reachable_from(line_graph, np.ones(3, dtype=bool), [0])
        assert reached.all()

    def test_blocked_edge_stops(self, line_graph):
        live = np.asarray([True, False, True])
        reached = reachable_from(line_graph, live, [0])
        assert reached.tolist() == [True, True, False, False]

    def test_multiple_sources(self, line_graph):
        live = np.zeros(3, dtype=bool)
        reached = reachable_from(line_graph, live, [0, 2])
        assert reached.tolist() == [True, False, True, False]

    def test_empty_sources(self, line_graph):
        reached = reachable_from(line_graph, np.ones(3, dtype=bool), [])
        assert not reached.any()

    def test_matches_networkx(self):
        networkx = pytest.importorskip("networkx")
        rng = np.random.default_rng(11)
        edges = {(int(u), int(v)) for u, v in rng.integers(0, 15, size=(60, 2)) if u != v}
        g = DirectedGraph.from_edges(sorted(edges), num_nodes=15)
        live = rng.random(g.num_edges) < 0.6
        live_edges = [
            (int(g.edge_sources[e]), int(g.edge_targets[e]))
            for e in np.flatnonzero(live)
        ]
        nxg = networkx.DiGraph(live_edges)
        nxg.add_nodes_from(range(15))
        expected = networkx.descendants(nxg, 3) | {3}
        got = set(np.flatnonzero(reachable_from(g, live, [3])).tolist())
        assert got == expected
