"""The vectorised frontier-expansion primitive."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffusion._frontier import gather_edge_slots
from repro.graph.digraph import DirectedGraph


def _reference(indptr, frontier):
    pieces = [np.arange(indptr[u], indptr[u + 1]) for u in frontier]
    if not pieces:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(pieces)


def test_empty_frontier(diamond_graph):
    out = gather_edge_slots(diamond_graph.out_indptr, np.empty(0, dtype=np.int64))
    assert out.size == 0


def test_single_node(diamond_graph):
    out = gather_edge_slots(diamond_graph.out_indptr, np.asarray([0]))
    assert out.tolist() == [0, 1]


def test_node_without_edges(diamond_graph):
    out = gather_edge_slots(diamond_graph.out_indptr, np.asarray([3]))
    assert out.size == 0


@given(
    edges=st.lists(
        st.tuples(st.integers(0, 11), st.integers(0, 11)).filter(lambda e: e[0] != e[1]),
        max_size=50,
        unique=True,
    ),
    frontier=st.lists(st.integers(0, 11), max_size=8, unique=True),
)
@settings(max_examples=60, deadline=None)
def test_matches_reference(edges, frontier):
    g = DirectedGraph.from_edges(edges, num_nodes=12)
    frontier = np.asarray(sorted(frontier), dtype=np.int64)
    got = gather_edge_slots(g.out_indptr, frontier)
    expected = _reference(g.out_indptr, frontier)
    assert np.array_equal(np.sort(got), np.sort(expected))
    # also on the in-CSR
    got_in = gather_edge_slots(g.in_indptr, frontier)
    expected_in = _reference(g.in_indptr, frontier)
    assert np.array_equal(np.sort(got_in), np.sort(expected_in))
