"""SpreadEstimate statistics."""

import math

import pytest

from repro.diffusion.montecarlo import SpreadEstimate, combine_mean_variance


def test_combine_mean_variance_basic():
    mean, stderr = combine_mean_variance([1.0, 2.0, 3.0])
    assert mean == pytest.approx(2.0)
    assert stderr == pytest.approx(math.sqrt(1.0 / 3.0))


def test_combine_empty():
    assert combine_mean_variance([]) == (0.0, 0.0)


def test_combine_single_value():
    mean, stderr = combine_mean_variance([5.0])
    assert mean == 5.0
    assert stderr == 0.0


def test_estimate_float_conversion():
    estimate = SpreadEstimate(mean=3.5, std_error=0.1, num_runs=100)
    assert float(estimate) == 3.5


def test_confidence_interval_width():
    estimate = SpreadEstimate(mean=10.0, std_error=1.0, num_runs=100)
    low, high = estimate.confidence_interval(z=2.0)
    assert low == pytest.approx(8.0)
    assert high == pytest.approx(12.0)
