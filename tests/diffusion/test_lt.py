"""Linear Threshold model: live edges, simulation, RR-sets."""

import numpy as np
import pytest

from repro.diffusion.lt import (
    check_lt_weights,
    estimate_lt_spread,
    sample_lt_live_edges,
    sample_lt_rr_set,
    sample_lt_rr_sets,
    simulate_lt_clicks,
)
from repro.graph.digraph import DirectedGraph
from repro.graph.generators import erdos_renyi
from repro.graph.probabilities import weighted_cascade_probabilities
from repro.rrset.estimator import estimate_spread_from_sets


class TestWeights:
    def test_weighted_cascade_is_valid_lt(self, small_random_graph):
        weights = weighted_cascade_probabilities(small_random_graph)
        assert check_lt_weights(small_random_graph, weights).shape == (
            small_random_graph.num_edges,
        )

    def test_rejects_negative(self, line_graph):
        with pytest.raises(ValueError):
            check_lt_weights(line_graph, [-0.1, 0.5, 0.5])

    def test_rejects_oversubscribed_node(self, diamond_graph):
        # node 3 has two in-edges; 0.7 + 0.7 > 1
        with pytest.raises(ValueError, match="sum to"):
            check_lt_weights(diamond_graph, [0.5, 0.5, 0.7, 0.7])

    def test_rejects_bad_shape(self, line_graph):
        with pytest.raises(ValueError):
            check_lt_weights(line_graph, [0.5])


class TestLiveEdges:
    def test_at_most_one_in_edge_per_node(self, small_random_graph):
        weights = weighted_cascade_probabilities(small_random_graph)
        rng = np.random.default_rng(0)
        for _ in range(10):
            live = sample_lt_live_edges(small_random_graph, weights, rng=rng)
            per_target = np.bincount(
                small_random_graph.edge_targets[live],
                minlength=small_random_graph.num_nodes,
            )
            assert per_target.max() <= 1

    def test_weight_one_always_picked(self, line_graph):
        live = sample_lt_live_edges(line_graph, np.ones(3), rng=1)
        assert live.all()

    def test_weight_zero_never_picked(self, line_graph):
        live = sample_lt_live_edges(line_graph, np.zeros(3), rng=1)
        assert not live.any()

    def test_pick_frequency_matches_weight(self):
        """Node 2 of the diamond's sink has two in-edges at 0.6/0.2:
        empirical pick rates must match."""
        g = DirectedGraph.from_edges([(0, 2), (1, 2)])
        weights = np.zeros(2)
        weights[g.edge_id(0, 2)] = 0.6
        weights[g.edge_id(1, 2)] = 0.2
        rng = np.random.default_rng(2)
        picks = np.zeros(2)
        trials = 4000
        for _ in range(trials):
            live = sample_lt_live_edges(g, weights, rng=rng)
            picks += live
        assert picks[g.edge_id(0, 2)] / trials == pytest.approx(0.6, abs=0.03)
        assert picks[g.edge_id(1, 2)] / trials == pytest.approx(0.2, abs=0.03)


class TestSimulation:
    def test_deterministic_chain(self, line_graph):
        active = simulate_lt_clicks(line_graph, np.ones(3), [0], rng=3)
        assert active.all()

    def test_no_seeds(self, line_graph):
        assert not simulate_lt_clicks(line_graph, np.ones(3), [], rng=3).any()

    def test_ctp_gates(self, line_graph):
        active = simulate_lt_clicks(
            line_graph, np.ones(3), [0], ctps=np.zeros(4), rng=3
        )
        assert not active.any()

    def test_spread_monotone_in_seeds(self, small_random_graph):
        weights = weighted_cascade_probabilities(small_random_graph)
        one = estimate_lt_spread(small_random_graph, weights, [0], num_runs=400, seed=4)
        two = estimate_lt_spread(
            small_random_graph, weights, [0, 1], num_runs=400, seed=4
        )
        assert two.mean >= one.mean - 4 * (one.std_error + two.std_error)

    def test_line_graph_closed_form(self, line_graph):
        """Chain with weight w: E[spread from node 0] = Σ w^k."""
        w = 0.5
        estimate = estimate_lt_spread(
            line_graph, np.full(3, w), [0], num_runs=6_000, seed=5
        )
        expected = 1 + w + w**2 + w**3
        assert estimate.mean == pytest.approx(expected, abs=4 * estimate.std_error + 0.02)


class TestLTRRSets:
    def test_path_structure(self, small_random_graph):
        weights = weighted_cascade_probabilities(small_random_graph)
        rng = np.random.default_rng(6)
        for _ in range(20):
            rr = sample_lt_rr_set(small_random_graph, weights, rng=rng)
            # an LT RR-set is a simple path: all members distinct
            assert len(set(rr.tolist())) == len(rr)

    def test_root_included(self, line_graph):
        rr = sample_lt_rr_set(line_graph, np.zeros(3), rng=7, root=2)
        assert rr.tolist() == [2]

    def test_unbiased_spread_estimation(self):
        """n · F_R(S) under LT RR-sets matches LT Monte Carlo."""
        g = erdos_renyi(30, 0.12, seed=8)
        weights = weighted_cascade_probabilities(g)
        seeds = [0, 1, 2]
        mc = estimate_lt_spread(g, weights, seeds, num_runs=4_000, seed=9)
        sets = sample_lt_rr_sets(g, weights, 20_000, rng=10)
        rr_estimate = estimate_spread_from_sets(sets, g.num_nodes, seeds)
        assert rr_estimate == pytest.approx(mc.mean, rel=0.08, abs=0.1)

    def test_count_validation(self, line_graph):
        with pytest.raises(ValueError):
            sample_lt_rr_sets(line_graph, np.ones(3), -1)
