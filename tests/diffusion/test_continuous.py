"""Continuous-time IC (the §7 extension)."""

import numpy as np
import pytest

from repro.diffusion.continuous import (
    estimate_continuous_spread,
    simulate_continuous,
)
from repro.diffusion.exact import exact_spread
from repro.graph.digraph import DirectedGraph


class TestSimulate:
    def test_seeds_click_at_zero(self, line_graph):
        cascade = simulate_continuous(
            line_graph, np.ones(3), [0], horizon=10.0, rng=0
        )
        assert cascade.click_times[0] == 0.0

    def test_times_monotone_along_path(self, line_graph):
        cascade = simulate_continuous(
            line_graph, np.ones(3), [0], horizon=1e9, rng=1
        )
        times = cascade.click_times
        assert times[0] < times[1] < times[2] < times[3]

    def test_zero_probability_nothing_spreads(self, line_graph):
        cascade = simulate_continuous(
            line_graph, np.zeros(3), [0], horizon=10.0, rng=2
        )
        assert cascade.num_clicks() == 1

    def test_tiny_horizon_censors(self, line_graph):
        cascade = simulate_continuous(
            line_graph, np.ones(3), [0], horizon=1e-9, rng=3
        )
        # only the seed clicks within an (almost) zero horizon
        assert cascade.num_clicks() == 1

    def test_no_seeds(self, line_graph):
        cascade = simulate_continuous(line_graph, np.ones(3), [], horizon=1.0, rng=4)
        assert cascade.num_clicks() == 0

    def test_ctp_gates_seed(self, line_graph):
        cascade = simulate_continuous(
            line_graph, np.ones(3), [0], horizon=10.0, ctps=np.zeros(4), rng=5
        )
        assert cascade.num_clicks() == 0

    def test_validation(self, line_graph):
        with pytest.raises(ValueError):
            simulate_continuous(line_graph, np.ones(3), [0], horizon=0.0)
        with pytest.raises(ValueError):
            simulate_continuous(line_graph, np.ones(2), [0], horizon=1.0)
        with pytest.raises(ValueError):
            simulate_continuous(
                line_graph, np.ones(3), [0], horizon=1.0, delay_rates=0.0
            )


class TestSpreadConvergence:
    def test_large_horizon_matches_discrete_spread(self, diamond_graph):
        """As τ → ∞ the CT spread equals the discrete TIC-CTP spread."""
        probs = np.full(4, 0.5)
        ctps = np.asarray([0.7, 1.0, 1.0, 1.0])
        discrete = exact_spread(diamond_graph, probs, [0], ctps=ctps)
        continuous = estimate_continuous_spread(
            diamond_graph,
            probs,
            [0],
            horizon=1e6,
            ctps=ctps,
            num_runs=4_000,
            seed=6,
        )
        assert continuous.mean == pytest.approx(
            discrete, abs=4 * continuous.std_error + 0.02
        )

    def test_spread_monotone_in_horizon(self, line_graph):
        probs = np.ones(3)
        short = estimate_continuous_spread(
            line_graph, probs, [0], horizon=0.5, num_runs=600, seed=7
        )
        long = estimate_continuous_spread(
            line_graph, probs, [0], horizon=5.0, num_runs=600, seed=7
        )
        assert long.mean >= short.mean

    def test_faster_delays_spread_more_within_horizon(self, line_graph):
        probs = np.ones(3)
        slow = estimate_continuous_spread(
            line_graph, probs, [0], horizon=1.0, delay_rates=0.5, num_runs=600, seed=8
        )
        fast = estimate_continuous_spread(
            line_graph, probs, [0], horizon=1.0, delay_rates=5.0, num_runs=600, seed=8
        )
        assert fast.mean > slow.mean

    def test_exponential_horizon_fraction(self):
        """One edge, p=1, rate 1: P(arrival ≤ τ) = 1 − e^{−τ}."""
        g = DirectedGraph.from_edges([(0, 1)])
        tau = 0.7
        estimate = estimate_continuous_spread(
            g, np.ones(1), [0], horizon=tau, num_runs=6_000, seed=9
        )
        expected = 1.0 + (1.0 - np.exp(-tau))
        assert estimate.mean == pytest.approx(expected, abs=4 * estimate.std_error + 0.02)
