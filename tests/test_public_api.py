"""The public API surface: top-level and ``repro.core`` exports."""

import importlib

import pytest

import repro
import repro.core


def test_version():
    assert repro.__version__ == "1.0.0"


@pytest.mark.parametrize("name", repro.__all__)
def test_top_level_exports_resolve(name):
    assert getattr(repro, name) is not None


@pytest.mark.parametrize("name", repro.core.__all__)
def test_core_exports_resolve(name):
    assert getattr(repro.core, name) is not None


def test_core_is_flat_view_of_subpackages():
    assert repro.core.TIRMAllocator is repro.algorithms.TIRMAllocator
    assert repro.core.AdAllocationProblem is repro.advertising.AdAllocationProblem
    assert repro.core.RegretEvaluator is repro.evaluation.RegretEvaluator


@pytest.mark.parametrize(
    "module",
    [
        "repro.graph",
        "repro.topics",
        "repro.advertising",
        "repro.diffusion",
        "repro.rrset",
        "repro.algorithms",
        "repro.datasets",
        "repro.evaluation",
        "repro.cli",
    ],
)
def test_subpackages_importable_standalone(module):
    assert importlib.import_module(module) is not None


def test_docstring_quickstart_runs():
    """The package docstring's doctest-style example holds."""
    from repro import RegretEvaluator, TIRMAllocator, datasets

    problem = datasets.figure1_problem()
    result = TIRMAllocator(seed=0).allocate(problem)
    report = RegretEvaluator(problem, num_runs=2000, seed=1).evaluate(
        result.allocation, algorithm="TIRM"
    )
    assert report.total_regret < 6.6
