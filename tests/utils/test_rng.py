"""RNG plumbing: determinism, sharing, and independent spawning."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn_generators


def test_as_generator_from_int_is_deterministic():
    a = as_generator(42).random(5)
    b = as_generator(42).random(5)
    assert np.array_equal(a, b)


def test_as_generator_passes_generator_through():
    rng = np.random.default_rng(0)
    assert as_generator(rng) is rng


def test_as_generator_none_gives_fresh_stream():
    # Two entropy-seeded generators virtually never agree on 10 draws.
    a = as_generator(None).random(10)
    b = as_generator(None).random(10)
    assert not np.array_equal(a, b)


def test_as_generator_accepts_seed_sequence():
    seq = np.random.SeedSequence(7)
    a = as_generator(seq).random(3)
    b = as_generator(np.random.SeedSequence(7)).random(3)
    assert np.array_equal(a, b)


def test_spawn_generators_are_reproducible_and_distinct():
    first = [g.random(4) for g in spawn_generators(99, 3)]
    second = [g.random(4) for g in spawn_generators(99, 3)]
    for a, b in zip(first, second):
        assert np.array_equal(a, b)
    # children differ from each other
    assert not np.array_equal(first[0], first[1])
    assert not np.array_equal(first[1], first[2])


def test_spawn_generators_from_generator_is_deterministic():
    a = [g.random(2) for g in spawn_generators(np.random.default_rng(5), 2)]
    b = [g.random(2) for g in spawn_generators(np.random.default_rng(5), 2)]
    for x, y in zip(a, b):
        assert np.array_equal(x, y)


def test_spawn_generators_zero_count():
    assert spawn_generators(1, 0) == []


def test_spawn_generators_negative_count_raises():
    with pytest.raises(ValueError):
        spawn_generators(1, -1)
