"""Argument validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_probability,
    check_probability_array,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 1.5) == 1.5

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0.0)

    def test_accepts_zero_when_not_strict(self):
        assert check_positive("x", 0.0, strict=False) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive("x", -1.0, strict=False)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_valid(self, value):
        assert check_probability("p", value) == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, 2.0])
    def test_rejects_invalid(self, value):
        with pytest.raises(ValueError, match="p"):
            check_probability("p", value)


class TestCheckProbabilityArray:
    def test_returns_float64(self):
        out = check_probability_array("ps", [0, 1])
        assert out.dtype == np.float64

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="ps"):
            check_probability_array("ps", [0.2, 1.5])

    def test_empty_array_ok(self):
        assert check_probability_array("ps", []).size == 0


class TestCheckInRange:
    def test_accepts_boundary(self):
        assert check_in_range("v", 1.0, 0.0, 1.0) == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ValueError, match="v"):
            check_in_range("v", 1.5, 0.0, 1.0)
