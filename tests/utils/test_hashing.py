"""Content digests behind the shard-cache keys: sensitivity to bytes,
dtype, shape, and label; graph digests pin the edge arrays."""

from __future__ import annotations

import numpy as np

from repro.graph.generators import erdos_renyi
from repro.utils.hashing import array_digest, graph_digest


def test_array_digest_deterministic():
    data = np.arange(10, dtype=np.float64)
    assert array_digest(data) == array_digest(data.copy())


def test_array_digest_sensitive_to_bytes():
    data = np.arange(10, dtype=np.float64)
    other = data.copy()
    other[3] += 1e-12
    assert array_digest(data) != array_digest(other)


def test_array_digest_sensitive_to_dtype_and_shape():
    data = np.arange(6, dtype=np.int32)
    assert array_digest(data) != array_digest(data.astype(np.int64))
    assert array_digest(data) != array_digest(data.reshape(2, 3))


def test_array_digest_label_namespaces():
    data = np.arange(6, dtype=np.int32)
    assert array_digest(data, label="probs") != array_digest(data, label="other")


def test_array_digest_handles_noncontiguous_views():
    data = np.arange(12, dtype=np.float64)
    strided = data[::2]
    assert array_digest(strided) == array_digest(np.ascontiguousarray(strided))


def test_graph_digest_distinguishes_graphs():
    a = erdos_renyi(40, 0.1, seed=1)
    b = erdos_renyi(40, 0.1, seed=2)
    same = erdos_renyi(40, 0.1, seed=1)
    assert graph_digest(a) == graph_digest(same)
    assert graph_digest(a) != graph_digest(b)
