"""Timer context manager."""

import time

from repro.utils.timing import Timer


def test_timer_measures_elapsed_time():
    with Timer() as t:
        time.sleep(0.01)
    assert t.elapsed >= 0.009


def test_timer_is_reusable():
    t = Timer()
    with t:
        pass
    first = t.elapsed
    with t:
        time.sleep(0.005)
    assert t.elapsed >= 0.004
    assert t.elapsed != first
