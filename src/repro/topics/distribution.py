"""Topic distributions ``~γ_i`` (one per ad).

``γ^z_i = Pr(Z = z | i)`` with ``Σ_z γ^z_i = 1`` (§3, "The Ingredients").
"""

from __future__ import annotations

import numpy as np

from repro.errors import TopicModelError
from repro.utils.rng import as_generator

_TOLERANCE = 1e-9


class TopicDistribution:
    """An immutable probability vector over ``K`` latent topics.

    Parameters
    ----------
    gamma:
        Non-negative weights summing to 1 (validated to ``1e-9``).
    """

    __slots__ = ("gamma",)

    def __init__(self, gamma) -> None:
        array = np.asarray(gamma, dtype=np.float64).ravel()
        if array.size == 0:
            raise TopicModelError("a topic distribution needs at least one topic")
        if array.min() < -_TOLERANCE:
            raise TopicModelError(f"topic weights must be non-negative, got min {array.min()}")
        total = array.sum()
        if abs(total - 1.0) > 1e-6:
            raise TopicModelError(f"topic weights must sum to 1, got {total}")
        array = np.clip(array, 0.0, None)
        array = array / array.sum()
        array.setflags(write=False)
        self.gamma = array

    # ------------------------------------------------------------------
    # Constructors used throughout the experiments
    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, num_topics: int) -> "TopicDistribution":
        """``1/K`` everywhere."""
        if num_topics < 1:
            raise TopicModelError("num_topics must be >= 1")
        return cls(np.full(num_topics, 1.0 / num_topics))

    @classmethod
    def skewed(cls, num_topics: int, dominant: int, mass: float = 0.91) -> "TopicDistribution":
        """The experiment distribution of §6: ``mass`` on one topic.

        For Flixster/Epinions the paper puts 0.91 on the ad's own topic and
        0.01 on each of the other nine (K = 10); this generalises that to
        any ``K`` by spreading the residual evenly.
        """
        if not 0 <= dominant < num_topics:
            raise TopicModelError(f"dominant topic {dominant} out of range for K={num_topics}")
        if not 0.0 < mass <= 1.0:
            raise TopicModelError(f"mass must be in (0, 1], got {mass}")
        gamma = np.full(num_topics, (1.0 - mass) / max(num_topics - 1, 1))
        gamma[dominant] = mass if num_topics > 1 else 1.0
        return cls(gamma)

    @classmethod
    def point(cls, num_topics: int, topic: int) -> "TopicDistribution":
        """All mass on a single topic."""
        gamma = np.zeros(num_topics)
        gamma[topic] = 1.0
        return cls(gamma)

    @classmethod
    def dirichlet(cls, num_topics: int, alpha: float = 1.0, *, seed=None) -> "TopicDistribution":
        """A random draw from a symmetric Dirichlet (synthetic ads)."""
        rng = as_generator(seed)
        return cls(rng.dirichlet(np.full(num_topics, alpha)))

    # ------------------------------------------------------------------
    @property
    def num_topics(self) -> int:
        """Number of latent topics ``K``."""
        return int(self.gamma.size)

    def entropy(self) -> float:
        """Shannon entropy in nats (0 for a point distribution)."""
        positive = self.gamma[self.gamma > 0]
        return float(-(positive * np.log(positive)).sum())

    def overlap(self, other: "TopicDistribution") -> float:
        """Bhattacharyya coefficient in [0, 1] — how much two ads compete
        for the same region of topic space (the competition effect of §1)."""
        if other.num_topics != self.num_topics:
            raise TopicModelError("cannot compare distributions over different topic spaces")
        return float(np.sqrt(self.gamma * other.gamma).sum())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TopicDistribution):
            return NotImplemented
        return bool(np.allclose(self.gamma, other.gamma))

    def __hash__(self) -> int:
        return hash(self.gamma.tobytes())

    def __repr__(self) -> str:
        head = np.array2string(self.gamma[:4], precision=3, separator=", ")
        suffix = ", ..." if self.num_topics > 4 else ""
        return f"TopicDistribution(K={self.num_topics}, gamma={head[:-1]}{suffix}])"
