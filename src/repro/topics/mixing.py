"""Eq. (1): collapsing per-topic probabilities through an ad's ``~γ_i``.

``p^i_{u,v} = Σ_z γ^z_i · p^z_{u,v}`` — the weighted average of the
per-topic arc probabilities w.r.t. the topic distribution of ad ``i``.
The same mixing applies to per-topic node quantities (the seeding
probabilities ``p^z_{H,u}`` that yield CTPs ``δ(u, i)``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import TopicModelError
from repro.topics.distribution import TopicDistribution


def _mix(per_topic: np.ndarray, distribution: TopicDistribution, what: str) -> np.ndarray:
    matrix = np.asarray(per_topic, dtype=np.float64)
    if matrix.ndim != 2:
        raise TopicModelError(f"{what} must be a (K, ·) matrix, got shape {matrix.shape}")
    if matrix.shape[0] != distribution.num_topics:
        raise TopicModelError(
            f"{what} has {matrix.shape[0]} topics but the distribution has "
            f"{distribution.num_topics}"
        )
    return distribution.gamma @ matrix


def mix_edge_probabilities(per_topic_edge_probs, distribution: TopicDistribution) -> np.ndarray:
    """Collapse a ``(K, m)`` per-topic edge matrix to per-edge ``p^i_{u,v}``."""
    return _mix(per_topic_edge_probs, distribution, "per_topic_edge_probs")


def mix_node_probabilities(per_topic_node_probs, distribution: TopicDistribution) -> np.ndarray:
    """Collapse a ``(K, n)`` per-topic node matrix to per-node values
    (e.g. seeding probabilities ``p^z_{H,u}`` to CTPs ``δ(u, i)``)."""
    return _mix(per_topic_node_probs, distribution, "per_topic_node_probs")
