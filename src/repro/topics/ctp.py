"""Click-through probabilities ``δ(u, i)``.

The paper's quality experiments (§6) sample CTPs uniformly at random from
``[0.01, 0.03]`` independently per (user, ad) pair, "in keeping with
real-life CTPs"; the scalability experiments set them to 1.  When a full
topic model is available, CTPs can instead be derived from the per-topic
seeding probabilities through Eq. (1).
"""

from __future__ import annotations

import numpy as np

from repro.topics.distribution import TopicDistribution
from repro.topics.model import TopicModel
from repro.utils.rng import as_generator
from repro.utils.validation import check_probability


def uniform_ctps(
    num_ads: int,
    num_nodes: int,
    low: float = 0.01,
    high: float = 0.03,
    *,
    seed=None,
) -> np.ndarray:
    """``(h, n)`` CTP matrix with i.i.d. ``U[low, high]`` entries (§6)."""
    check_probability("low", low)
    check_probability("high", high)
    if high < low:
        raise ValueError(f"high ({high}) must be >= low ({low})")
    rng = as_generator(seed)
    return rng.uniform(low, high, size=(num_ads, num_nodes))


def constant_ctps(num_ads: int, num_nodes: int, value: float = 1.0) -> np.ndarray:
    """``(h, n)`` CTP matrix with a single value everywhere.

    ``value=1`` reproduces the §6.2 scalability setting (CTP = CPE = 1).
    """
    check_probability("value", value)
    return np.full((num_ads, num_nodes), float(value), dtype=np.float64)


def ctps_from_topic_model(
    model: TopicModel, distributions: "list[TopicDistribution]"
) -> np.ndarray:
    """``(h, n)`` CTPs derived from a topic model: row ``i`` is the Eq.-(1)
    mix of ``p^z_{H,u}`` under ad ``i``'s topic distribution."""
    return np.stack([model.ad_ctps(dist) for dist in distributions], axis=0)
