"""Topic model of §3: ad topic distributions, per-topic influence
probabilities, and click-through probabilities (CTPs).

The host owns a precomputed probabilistic topic model over ``K`` latent
topics.  An ad ``i`` is a distribution ``~γ_i`` over topics
(:class:`TopicDistribution`); the network carries per-topic edge
probabilities ``p^z_{u,v}`` and per-topic seeding probabilities
``p^z_{H,u}`` (:class:`TopicModel`).  Collapsing a topic model with a
specific ``~γ_i`` through Eq. (1) yields an ordinary IC instance with CTPs,
which is what the diffusion and RR-set machinery consume.
"""

from repro.topics.ctp import ctps_from_topic_model, uniform_ctps
from repro.topics.distribution import TopicDistribution
from repro.topics.learning import (
    Cascade,
    em_estimate_edge_probabilities,
    generate_cascades,
    learn_topic_model,
)
from repro.topics.mixing import mix_edge_probabilities, mix_node_probabilities
from repro.topics.model import TopicModel
from repro.topics.synthetic import synthetic_topic_model

__all__ = [
    "TopicDistribution",
    "TopicModel",
    "mix_edge_probabilities",
    "mix_node_probabilities",
    "uniform_ctps",
    "ctps_from_topic_model",
    "synthetic_topic_model",
    "Cascade",
    "generate_cascades",
    "em_estimate_edge_probabilities",
    "learn_topic_model",
]
