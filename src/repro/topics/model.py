"""The topic-aware influence model (TIC with CTPs, §3).

A :class:`TopicModel` bundles, for a fixed graph and ``K`` latent topics:

* ``edge_probs`` — a ``(K, m)`` matrix of per-topic arc probabilities
  ``p^z_{u,v}`` in canonical edge order;
* ``seed_probs`` — a ``(K, n)`` matrix of per-topic seeding probabilities
  ``p^z_{H,u}`` (the likelihood that user ``u`` clicks a promoted post on
  topic ``z`` with no social proof).

Collapsing through an ad's topic distribution (Eq. 1) yields the ordinary
IC-with-CTP instance that every algorithm in this library consumes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TopicModelError
from repro.graph.digraph import DirectedGraph
from repro.topics.distribution import TopicDistribution
from repro.topics.mixing import mix_edge_probabilities, mix_node_probabilities
from repro.utils.validation import check_probability_array


class TopicModel:
    """Per-topic edge and seeding probabilities over a fixed graph.

    Parameters
    ----------
    graph:
        The social graph.
    edge_probs:
        ``(K, m)`` matrix, ``edge_probs[z, e]`` = ``p^z_{u,v}`` for
        canonical edge ``e``.
    seed_probs:
        ``(K, n)`` matrix, ``seed_probs[z, u]`` = ``p^z_{H,u}``.
    """

    __slots__ = ("graph", "edge_probs", "seed_probs")

    def __init__(self, graph: DirectedGraph, edge_probs, seed_probs) -> None:
        edge_probs = check_probability_array("edge_probs", edge_probs)
        seed_probs = check_probability_array("seed_probs", seed_probs)
        if edge_probs.ndim != 2 or edge_probs.shape[1] != graph.num_edges:
            raise TopicModelError(
                f"edge_probs must be (K, {graph.num_edges}), got {edge_probs.shape}"
            )
        if seed_probs.ndim != 2 or seed_probs.shape[1] != graph.num_nodes:
            raise TopicModelError(
                f"seed_probs must be (K, {graph.num_nodes}), got {seed_probs.shape}"
            )
        if edge_probs.shape[0] != seed_probs.shape[0]:
            raise TopicModelError(
                "edge_probs and seed_probs must agree on K: "
                f"{edge_probs.shape[0]} vs {seed_probs.shape[0]}"
            )
        self.graph = graph
        self.edge_probs = edge_probs
        self.seed_probs = seed_probs

    @property
    def num_topics(self) -> int:
        """Number of latent topics ``K``."""
        return int(self.edge_probs.shape[0])

    def ad_edge_probabilities(self, distribution: TopicDistribution) -> np.ndarray:
        """Eq. (1): per-edge probabilities ``p^i_{u,v}`` for an ad."""
        return mix_edge_probabilities(self.edge_probs, distribution)

    def ad_ctps(self, distribution: TopicDistribution) -> np.ndarray:
        """Per-node CTPs ``δ(u, i)`` for an ad (weighted average of
        ``p^z_{H,u}`` w.r.t. the ad's topic distribution, §3)."""
        return mix_node_probabilities(self.seed_probs, distribution)

    def collapse(self, distribution: TopicDistribution) -> tuple[np.ndarray, np.ndarray]:
        """Both Eq.-(1) mixes at once: ``(edge_probabilities, ctps)``."""
        return self.ad_edge_probabilities(distribution), self.ad_ctps(distribution)

    def memory_bytes(self) -> int:
        """Bytes held by the probability matrices."""
        return int(self.edge_probs.nbytes + self.seed_probs.nbytes)

    def __repr__(self) -> str:
        return (
            f"TopicModel(K={self.num_topics}, n={self.graph.num_nodes}, "
            f"m={self.graph.num_edges})"
        )
