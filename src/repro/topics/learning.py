"""Learning TIC influence probabilities from cascade traces.

The paper's Flixster experiments use "topic-aware influence probabilities
... learned ... using maximum likelihood estimation for the TIC model"
(Barbieri et al. [3]).  The learned files are not redistributable, so
this module closes the loop instead: it implements the standard EM
maximum-likelihood estimator for IC edge probabilities from observed
cascades (Saito et al., 2008), applied per topic — which is exactly the
TIC learning problem when each training ad has a point-mass topic
distribution.

EM recap for one IC instance.  A cascade assigns each activated node an
activation round.  A node ``w`` activated at round ``t+1`` was activated
by *at least one* of its in-neighbors active at round ``t``; an edge
``(u, w)`` with ``u`` active at some round and ``w`` never activated at
the following round is a witnessed failure.

* E-step: for each successful activation, the responsibility of parent
  ``u`` is ``p_{u,w} / (1 − Π_v (1 − p_{v,w}))`` over the round-``t``
  parents ``v``;
* M-step: ``p_{u,w} = Σ responsibilities / Σ trials`` where trials count
  every cascade in which ``u`` was active and ``w`` was exposed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.diffusion.ic import simulate_rounds
from repro.graph.digraph import DirectedGraph
from repro.topics.model import TopicModel
from repro.utils.rng import as_generator
from repro.utils.validation import check_probability_array


@dataclass(frozen=True)
class Cascade:
    """One observed diffusion trace: per-node activation round (−1 =
    never activated)."""

    rounds: np.ndarray

    def activated(self) -> np.ndarray:
        """Ids of nodes that activated."""
        return np.flatnonzero(self.rounds >= 0)


def generate_cascades(
    graph: DirectedGraph,
    edge_probabilities,
    num_cascades: int,
    *,
    seeds_per_cascade: int = 1,
    ctps=None,
    seed=None,
) -> list[Cascade]:
    """Synthesize training cascades from known probabilities.

    Each cascade starts from ``seeds_per_cascade`` uniformly random
    seeds and records activation rounds under the IC(-CTP) model.
    """
    if num_cascades < 0:
        raise ValueError("num_cascades must be >= 0")
    if seeds_per_cascade < 1:
        raise ValueError("seeds_per_cascade must be >= 1")
    rng = as_generator(seed)
    cascades = []
    for _ in range(num_cascades):
        seeds = rng.choice(graph.num_nodes, size=min(seeds_per_cascade, graph.num_nodes),
                           replace=False)
        rounds = simulate_rounds(graph, edge_probabilities, seeds, ctps=ctps, rng=rng)
        cascades.append(Cascade(rounds=rounds))
    return cascades


def em_estimate_edge_probabilities(
    graph: DirectedGraph,
    cascades: "list[Cascade]",
    *,
    num_iterations: int = 30,
    initial: float = 0.1,
    tolerance: float = 1e-5,
) -> np.ndarray:
    """EM maximum-likelihood IC edge probabilities from cascades.

    Returns a per-canonical-edge probability array.  Edges never
    witnessed (source inactive in every cascade) keep probability 0 —
    there is no evidence either way, and 0 is the conservative MLE
    boundary choice.
    """
    if not 0 < initial < 1:
        raise ValueError(f"initial must be in (0, 1), got {initial}")
    m = graph.num_edges
    # Pre-extract, per cascade, the (edge, success) trials.
    # trial: source active at round t; target exposed at round t+1.
    success_edges: list[np.ndarray] = []  # per activation event, parents' edge ids
    trial_counts = np.zeros(m, dtype=np.float64)
    for cascade in cascades:
        rounds = cascade.rounds
        for u in np.flatnonzero(rounds >= 0):
            t = rounds[u]
            out_slots = np.arange(graph.out_indptr[u], graph.out_indptr[u + 1])
            targets = graph.out_targets[out_slots]
            # u attempts each out-neighbor not active at or before round t.
            attempted = rounds[targets] < 0
            attempted |= rounds[targets] > t
            trial_counts[out_slots[attempted]] += 1.0
        # group successful activations by their parent sets
        for w in np.flatnonzero(rounds >= 1):
            t = rounds[w]
            in_slots = np.arange(graph.in_indptr[w], graph.in_indptr[w + 1])
            sources = graph.in_sources[in_slots]
            parents = in_slots[rounds[sources] == t - 1]
            if parents.size:
                success_edges.append(graph.in_edge_ids[parents])

    probs = np.full(m, initial, dtype=np.float64)
    witnessed = trial_counts > 0
    probs[~witnessed] = 0.0
    for _ in range(num_iterations):
        credit = np.zeros(m, dtype=np.float64)
        for parents in success_edges:
            p = probs[parents]
            activation = 1.0 - np.prod(1.0 - p)
            if activation <= 0:
                # degenerate: revive with uniform responsibility
                credit[parents] += 1.0 / parents.size
                continue
            credit[parents] += p / activation
        updated = np.zeros(m, dtype=np.float64)
        updated[witnessed] = np.clip(credit[witnessed] / trial_counts[witnessed], 0.0, 1.0)
        if np.max(np.abs(updated - probs)) < tolerance:
            probs = updated
            break
        probs = updated
    return probs


def learn_topic_model(
    graph: DirectedGraph,
    per_topic_cascades: "list[list[Cascade]]",
    *,
    seed_probs=None,
    num_iterations: int = 30,
) -> TopicModel:
    """Learn a :class:`TopicModel` from per-topic cascade collections.

    ``per_topic_cascades[z]`` holds cascades of ads with all topic mass
    on ``z`` (the Flixster training regime, where each ad's dominant
    topic is known); each topic's edge probabilities are estimated
    independently with :func:`em_estimate_edge_probabilities`.
    """
    if not per_topic_cascades:
        raise ValueError("need at least one topic's cascades")
    edge_probs = np.stack(
        [
            em_estimate_edge_probabilities(graph, cascades, num_iterations=num_iterations)
            for cascades in per_topic_cascades
        ],
        axis=0,
    )
    if seed_probs is None:
        seed_probs = np.full((len(per_topic_cascades), graph.num_nodes), 0.02)
    else:
        seed_probs = check_probability_array("seed_probs", seed_probs)
    return TopicModel(graph, edge_probs, seed_probs)
