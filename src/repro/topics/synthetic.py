"""Synthetic topic models emulating the learned TIC probabilities of §6.

The paper's Flixster probabilities were learned by maximum likelihood for
the TIC model with K = 10 latent topics (Barbieri et al. [3]); the learned
files are not redistributable, so we emulate their salient structure:

* each edge is "about" a small number of home topics where its probability
  is substantial, and near zero elsewhere (topical influence is sparse);
* per-topic seeding probabilities ``p^z_{H,u}`` are small (CTP-scale).

Because ad topic distributions in the experiments put 0.91 mass on one
topic, this home-topic structure is what creates the competition between
same-topic ads that the allocation algorithms must resolve.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DirectedGraph
from repro.topics.model import TopicModel
from repro.utils.rng import as_generator


def synthetic_topic_model(
    graph: DirectedGraph,
    num_topics: int,
    *,
    home_topics_per_edge: int = 2,
    edge_strength_mean: float = 0.15,
    background_strength: float = 0.005,
    seed_prob_low: float = 0.005,
    seed_prob_high: float = 0.05,
    seed=None,
) -> TopicModel:
    """Generate a sparse per-topic influence model.

    Parameters
    ----------
    graph:
        Social graph; probabilities align with its canonical edge ids.
    num_topics:
        ``K``; the paper uses 10.
    home_topics_per_edge:
        How many topics each edge is strong in.
    edge_strength_mean:
        Mean of the exponential distribution for home-topic strengths
        (clipped to 1).
    background_strength:
        Probability on non-home topics.
    seed_prob_low, seed_prob_high:
        Range of per-topic seeding probabilities ``p^z_{H,u}``.
    seed:
        RNG seed.
    """
    if num_topics < 1:
        raise ValueError("num_topics must be >= 1")
    if home_topics_per_edge < 0 or home_topics_per_edge > num_topics:
        raise ValueError("home_topics_per_edge must be in [0, num_topics]")
    rng = as_generator(seed)
    m, n = graph.num_edges, graph.num_nodes

    edge_probs = np.full((num_topics, m), background_strength, dtype=np.float64)
    if m and home_topics_per_edge:
        for _ in range(home_topics_per_edge):
            topics = rng.integers(0, num_topics, size=m)
            strengths = np.minimum(rng.exponential(edge_strength_mean, size=m), 1.0)
            edge_probs[topics, np.arange(m)] = np.maximum(
                edge_probs[topics, np.arange(m)], strengths
            )
    np.clip(edge_probs, 0.0, 1.0, out=edge_probs)

    seed_probs = rng.uniform(seed_prob_low, seed_prob_high, size=(num_topics, n))
    return TopicModel(graph, edge_probs, seed_probs)
