"""Resumable allocation sessions — TIRM's loop as an explicit state machine.

:class:`AllocationSession` is the engine-room of TIRM (Algorithms 2–4)
factored out of the historical monolithic ``TIRMAllocator.allocate()``
loop into discrete, externally steppable states:

.. code-block:: text

    PILOT ──> ESTIMATE_THETA ──> SELECT ──> DONE
      │                          │   ^
      │ (resume_from)            v   │
      └────────────────────────> GROW┘        (+ CANCELLED / FAILED)

* ``PILOT`` — per-ad state construction plus the batched pilot ensure
  (or, on resume, the checkpoint restore);
* ``ESTIMATE_THETA`` — the first ``θ_i = L(1, ε)`` targets for every ad;
* ``SELECT`` — one greedy pick-and-assign (Algorithm 3's lazy selector
  with the cross-ad order-independent tie-break);
* ``GROW`` — the Algorithm-4 growth event the previous pick triggered:
  ``s_i`` revision, θ top-up, coverage re-estimation, heap rebuild.

:meth:`AllocationSession.step` advances the machine and returns a
progress snapshot — the :mod:`repro.rrset.checkpoint` payload
(:func:`~repro.rrset.checkpoint.build_snapshot`: same fields as the
on-disk artifact, no file) plus the session state.  *Iteration
boundaries* — the consistent points where the batch loop snapshotted and
honored ``max_iterations`` — land at the end of every ``SELECT`` step
that triggers no growth and at the end of every ``GROW`` step; that is
exactly where checkpoints are written, ``max_iterations`` truncates, and
a :meth:`request_cancel` takes effect, so a cancelled or truncated
session returns the same valid partial allocation the batch
``max_iterations`` machinery produces.

The session *borrows* its engine and cache — both are injected and never
closed here.  That inversion is what the service tier
(:mod:`repro.service`) builds on: a warm
:class:`~repro.rrset.sharded.ShardedSamplingEngine` leased from an
:class:`~repro.service.EnginePool` runs many sessions back to back
(``reset_for_reuse`` between runs), and the batch ``TIRMAllocator``
facade is just "build an engine, run one session, close the engine" —
byte-identical to the pre-refactor loop by the equivalence suite.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field

import numpy as np

from repro.advertising.allocation import Allocation
from repro.advertising.regret import regret_of
from repro.algorithms.base import AllocationResult
from repro.errors import SessionError
from repro.rrset.checkpoint import TIRMCheckpoint, build_snapshot, save_checkpoint
from repro.rrset.pool import RRSetPool
from repro.rrset.sampler import RRSetSampler
from repro.rrset.sharded import ShardedSamplingEngine

#: Session states.  ``PILOT``/``ESTIMATE_THETA`` run once (resume skips
#: ``ESTIMATE_THETA``: the checkpoint already holds the grown θ
#: targets), ``SELECT``/``GROW`` alternate, and the three terminal
#: states carry a finished :class:`~repro.algorithms.base.AllocationResult`.
PILOT = "pilot"
ESTIMATE_THETA = "estimate-theta"
SELECT = "select"
GROW = "grow"
DONE = "done"
CANCELLED = "cancelled"
FAILED = "failed"

#: States with a result (``FAILED`` carries the error instead).
TERMINAL_STATES = frozenset({DONE, CANCELLED, FAILED})


def _select_candidate(candidates):
    """Cross-ad argmax with an order-independent tie-break.

    ``candidates`` holds one ``(drop, node, cov, ad)`` tuple per active
    ad.  The winner must not depend on catalog order — otherwise the
    same problem under a permuted catalog can yield a different
    allocation and a different regret.  Pairwise ε-comparisons cannot
    guarantee that (they are not transitive: drops can chain across the
    band boundary), so the choice is anchored at the *global* maximum
    drop, which is itself order-independent: every candidate within
    1e-12 of it is considered tied, and the tie breaks on the smaller
    node id, then the exactly larger raw drop.  Only candidates that are
    bit-identical in both remain catalog-order dependent — the
    irreducibly symmetric case.
    """
    best_drop = max(c[0] for c in candidates)
    if best_drop <= 1e-12:
        return None
    in_band = [c for c in candidates if c[0] >= best_drop - 1e-12]
    return min(in_band, key=lambda c: (c[1], -c[0]))


@dataclass
class _AdState:
    """Mutable per-advertiser bookkeeping for one TIRM run."""

    sampler: RRSetSampler
    collection: RRSetPool
    seed_size_estimate: int = 1
    revenue: float = 0.0
    seeds_in_order: list[int] = field(default_factory=list)
    marginal_coverage: dict[int, int] = field(default_factory=dict)
    heap: list[tuple[float, int]] = field(default_factory=list)
    active: bool = True

    @property
    def theta(self) -> int:
        return self.collection.num_total


class AllocationSession:
    """One resumable TIRM allocation over injected engine/cache handles.

    Parameters
    ----------
    problem:
        The :class:`~repro.advertising.problem.AdAllocationProblem`.
    config:
        A validated :class:`~repro.algorithms.tirm.TIRMAllocator` —
        used purely as the parameter record (ε, select rule, clamps,
        checkpoint knobs, ...); its knob validation already ran in its
        constructor, so the session never re-validates.
    engine:
        The :class:`~repro.rrset.sharded.ShardedSamplingEngine` to
        sample through.  **Injected, not owned**: the session never
        closes it, so a pool can lease one engine to many sessions.
        Must be empty (fresh or ``reset_for_reuse``-ed) — or, when
        resuming, constructed from the checkpoint's entropies.
    cache:
        Optional open :class:`~repro.store.ShardCache` the finished
        allocation is recorded into.  Injected and never closed, like
        the engine.
    checkpoint:
        Optional loaded-and-validated
        :class:`~repro.rrset.checkpoint.TIRMCheckpoint` to resume from
        (the caller runs ``validate_config`` first, as the facade does).
    job_id:
        Optional service job identifier recorded with the catalog row
        (:mod:`repro.service`); pure provenance, never part of the
        determinism contract or of the allocation object itself.
    """

    def __init__(
        self,
        problem,
        config,
        *,
        engine: ShardedSamplingEngine,
        cache=None,
        checkpoint: TIRMCheckpoint | None = None,
        job_id: str | None = None,
    ) -> None:
        if engine.num_ads != problem.num_ads:
            raise SessionError(
                f"engine has {engine.num_ads} shards, problem "
                f"{problem.num_ads} ads"
            )
        if checkpoint is None and engine.total_sets():
            raise SessionError(
                "a fresh session needs an empty engine (found "
                f"{engine.total_sets()} existing sets); call "
                "reset_for_reuse() on a leased engine first"
            )
        self.problem = problem
        self.config = config
        self.engine = engine
        self.cache = cache
        self.checkpoint = checkpoint
        self.job_id = job_id
        # Direct constructions (tests, the service) may not have run the
        # facade's up-front backend/transport resolution; the checkpoint
        # config records both, so resolve them here when missing.
        if getattr(config, "_backend_obj", None) is None:
            from repro.rrset.backends import resolve_backend

            config._backend_obj = resolve_backend(config.backend)
        if getattr(config, "_transport_resolved", None) is None:
            config._transport_resolved = ShardedSamplingEngine.resolve_transport(
                config.transport
            )
        self.allocation = Allocation(problem.num_ads, problem.num_nodes)
        self.budgets = problem.catalog.budgets()
        self.cpes = problem.catalog.cpes()
        self.states: list[_AdState] | None = None
        self.state = PILOT
        self.iterations = 0
        self.start_iterations = 0
        self.resumed_at: int | None = None
        self.lineage: list[dict] = []
        self.checkpoints_written = 0
        self.truncated = False
        self.error: BaseException | None = None
        self._pending_growth: tuple[int, float] | None = None
        self._result: AllocationResult | None = None
        # request_cancel is called from other threads (the service's
        # cancel op), step() from the session's own — an Event is the
        # whole synchronization story, checked only at boundaries.
        self._cancel = threading.Event()

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def step(self) -> dict:
        """Advance the machine by one transition and return a progress
        snapshot (:meth:`progress`).

        ``SELECT`` steps that trigger an Algorithm-4 growth event stop
        *before* it (state ``GROW``; the snapshot is mid-iteration) and
        the following step completes the growth plus the iteration
        boundary — so every boundary-side effect (checkpoint write,
        ``max_iterations`` truncation, cancellation) observes exactly
        the state the batch loop did.  Terminal states are absorbing:
        stepping them is a no-op returning the final snapshot.
        """
        if self.state in TERMINAL_STATES:
            return self.progress()
        try:
            if self.state == PILOT:
                self._step_pilot()
            elif self.state == ESTIMATE_THETA:
                self._step_estimate_theta()
            elif self.state == SELECT:
                self._step_select()
            elif self.state == GROW:
                self._step_grow()
        except BaseException as exc:
            self.state = FAILED
            self.error = exc
            raise
        return self.progress()

    def run(self) -> AllocationResult:
        """Drive the machine to a terminal state and return the result
        — the batch facade's whole loop."""
        while self.state not in TERMINAL_STATES:
            self.step()
        return self.result()

    def request_cancel(self) -> None:
        """Ask the session to stop at the next iteration boundary
        (thread-safe; the service's cancel op calls this while the
        session steps in a worker thread)."""
        self._cancel.set()

    def cancel(self) -> AllocationResult:
        """Stop at the next boundary and return the truncated partial
        allocation (``stats["truncated"] = True`` — the same shape the
        ``max_iterations`` machinery produces)."""
        self.request_cancel()
        return self.run()

    def result(self) -> AllocationResult:
        """The finished result (terminal states only)."""
        if self.state == FAILED:
            raise SessionError(
                f"session failed: {self.error!r}"
            ) from self.error
        if self._result is None:
            raise SessionError(
                f"session has no result yet (state={self.state!r})"
            )
        return self._result

    def progress(self) -> dict:
        """Live progress: the checkpoint snapshot payload
        (:func:`~repro.rrset.checkpoint.build_snapshot` — same fields
        as the on-disk artifact, no file) plus the session state."""
        snapshot = {
            "state": self.state,
            "iterations": self.iterations,
            "truncated": self.truncated,
            "total_seeds": self.allocation.total_seeds(),
        }
        if self.states is not None:
            snapshot.update(
                build_snapshot(
                    config=self.config._checkpoint_config(self.problem),
                    engine=self.engine,
                    per_ad=self._per_ad_records(),
                    iterations=self.iterations,
                    lineage=self.lineage,
                )
            )
            # build_snapshot reports the loop counter; "state" above is
            # the machine position, which subsumes at-boundary-ness
            # (GROW = mid-iteration, SELECT = at a boundary).
            snapshot["iterations"] = self.iterations
        return snapshot

    # ------------------------------------------------------------------
    # State handlers
    # ------------------------------------------------------------------
    def _step_pilot(self) -> None:
        if self.checkpoint is not None:
            self.checkpoint.restore_engine(self.engine)
            self.states = self._restored_states(self.checkpoint)
            self.iterations = self.checkpoint.iterations
            self.resumed_at = self.checkpoint.iterations
            self.lineage = self.checkpoint.lineage + [
                {
                    "resumed_from": self.config.resume_from,
                    "at_iteration": self.checkpoint.iterations,
                }
            ]
            # Heaps are derived state: the lazy selector's answers are
            # pure functions of the coverage counters, so rebuilding
            # keeps fresh and resumed runs on identical trajectories.
            for ad in range(self.problem.num_ads):
                self._rebuild_heap(ad, self.states[ad])
            self.start_iterations = self.iterations
            self.state = SELECT
            self._check_cancel()
            return
        h = self.problem.num_ads
        config = self.config
        self.states = [
            _AdState(
                sampler=self.engine.sampler(ad),
                collection=self.engine.shard(ad),
            )
            for ad in range(h)
        ]
        pilot = max(
            min(config.initial_pilot, config.max_rr_sets_per_ad),
            config.min_rr_sets_per_ad,
        )
        self.engine.ensure({ad: pilot for ad in range(h)})
        self.state = ESTIMATE_THETA
        self._check_cancel()

    def _step_estimate_theta(self) -> None:
        h = self.problem.num_ads
        self.engine.ensure(
            {ad: self._theta_for(self.states[ad], s=1) for ad in range(h)}
        )
        for ad in range(h):
            self._rebuild_heap(ad, self.states[ad])
        self.start_iterations = self.iterations
        self.state = SELECT
        self._check_cancel()

    def _step_select(self) -> None:
        candidates = []
        for ad in range(self.problem.num_ads):
            state = self.states[ad]
            if not state.active:
                continue
            candidate = self._best_candidate(ad, state)
            if candidate is None:
                continue
            node, cov, _, drop = candidate
            candidates.append((drop, node, cov, ad))
        chosen = _select_candidate(candidates) if candidates else None
        if chosen is None:
            self._finalize(DONE)
            return
        _, best_node, best_cov, best_ad = chosen
        state = self.states[best_ad]
        marginal = self._marginal_revenue(best_ad, state, best_node, best_cov)
        self.allocation.assign(best_node, best_ad)
        state.seeds_in_order.append(best_node)
        state.marginal_coverage[best_node] = best_cov
        state.revenue += marginal
        state.collection.remove_covered(best_node)
        self.iterations += 1
        if len(state.seeds_in_order) == state.seed_size_estimate:
            # Mid-iteration: the pick landed but its growth event has
            # not run, so this is NOT a boundary — the next step is.
            self._pending_growth = (best_ad, marginal)
            self.state = GROW
            return
        self._boundary()

    def _step_grow(self) -> None:
        ad, marginal = self._pending_growth
        self._pending_growth = None
        self._grow_samples([ad], {ad: marginal})
        self.state = SELECT
        self._boundary()

    def _boundary(self) -> None:
        """The iteration boundary: the run state is consistent here
        (seed assigned, samples grown, revenue re-estimated), so this is
        where snapshots, time-bounded stops and cancellations land."""
        config = self.config
        stop = (
            config.max_iterations is not None
            and self.iterations - self.start_iterations >= config.max_iterations
        )
        cancelled = self._cancel.is_set()
        if config.checkpoint_path is not None and (
            stop
            or cancelled
            or self.iterations % config.checkpoint_every == 0
        ):
            self._write_checkpoint()
        if stop or cancelled:
            self.truncated = True
            self._finalize(CANCELLED if cancelled else DONE)

    def _check_cancel(self) -> None:
        """Pre-loop consistent points (post-PILOT / post-ESTIMATE_THETA
        / post-restore) honor cancellation too — with zero or the
        restored iterations, like a ``max_iterations=0`` run would."""
        if self._cancel.is_set() and self.state not in TERMINAL_STATES:
            self.truncated = True
            self._finalize(CANCELLED)

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def _per_ad_records(self) -> list[dict]:
        return [
            {
                "seeds": state.seeds_in_order,
                "marginal_nodes": list(state.marginal_coverage.keys()),
                "marginal_counts": list(state.marginal_coverage.values()),
                "revenue": state.revenue,
                "seed_size_estimate": state.seed_size_estimate,
                "active": state.active,
            }
            for state in self.states
        ]

    def _write_checkpoint(self) -> None:
        config = self.config
        save_checkpoint(
            config.checkpoint_path,
            config=config._checkpoint_config(self.problem),
            engine=self.engine,
            per_ad=self._per_ad_records(),
            iterations=self.iterations,
            lineage=self.lineage,
        )
        self.checkpoints_written += 1
        if self.engine.cache is not None:
            # Register the artifact and the shard prefixes a resume
            # would re-read, so `repro gc` refuses to evict them while
            # the checkpoint is live.  Re-registration (the artifact is
            # atomically overwritten each boundary) replaces the row.
            self.engine.cache.catalog.record_checkpoint(
                config.checkpoint_path,
                iterations=self.iterations,
                config=config._checkpoint_config(self.problem),
                shard_refs=self.engine.shard_cache_refs(),
            )

    def _finalize(self, terminal_state: str) -> None:
        config, engine, problem = self.config, self.engine, self.problem
        allocation = self.allocation
        revenues = np.asarray([s.revenue for s in self.states])
        # The RNG contract travels with the allocation: the master seed
        # plus (for counter-based streams) the derived entropy root is
        # what re-derives the exact RR samples behind these seed sets.
        # A generator-valued seed was consumed while sampling and cannot
        # be recorded — ``seed`` is None then, and under legacy streams
        # such a run is not re-derivable (under philox the entropy root
        # alone still is).
        seed = (
            int(config._seed)
            if isinstance(config._seed, (int, np.integer))
            else None
        )
        allocation.set_provenance(
            algorithm=config.name,
            rng=config.rng,
            chunk_size=config.chunk_size if config.rng == "philox" else None,
            sampler_mode=config.sampler_mode,
            engine=config.engine,
            backend=engine.backend_name,
            transport=engine.transport,
            seed=seed,
            stream_entropy=engine.stream_entropy(0),
        )
        # Checkpoint lineage travels with the allocation, but only for
        # runs that actually touched the checkpoint machinery — an
        # uninterrupted run's provenance stays identical to a plain one.
        if config.checkpoint_path is not None or config.resume_from is not None:
            allocation.set_provenance(
                checkpoint={
                    "path": config.checkpoint_path,
                    "every": config.checkpoint_every,
                    "written": self.checkpoints_written,
                    "resumed_from": config.resume_from,
                    "resumed_at_iteration": self.resumed_at,
                    "lineage": self.lineage,
                }
            )
        stats = {
            "iterations": self.iterations,
            "theta_per_ad": [s.theta for s in self.states],
            "seed_size_estimates": [s.seed_size_estimate for s in self.states],
            "total_rr_sets": int(sum(s.theta for s in self.states)),
            "rr_memory_bytes": int(
                sum(s.collection.memory_bytes() for s in self.states)
            ),
            "epsilon": config.epsilon,
            "select_rule": config.select_rule,
            "sampler_mode": config.sampler_mode,
            "engine": config.engine,
            "rng": config.rng,
            "chunk_size": config.chunk_size if config.rng == "philox" else None,
            "backend": engine.backend_name,
            "transport": engine.transport,
            "start_method": engine.start_method,
            "prefetch": config.prefetch,
            "dsan": engine.dsan,
            "checkpoints_written": self.checkpoints_written,
            "resumed_at_iteration": self.resumed_at,
            "truncated": self.truncated,
            # Actual compute performed — the warm-start headline: a run
            # served entirely from the shard cache reports zero here.
            "backend_invocations": engine.backend_invocations,
        }
        cache_stats = engine.cache_stats()
        if cache_stats is not None:
            stats["cache"] = cache_stats
        # Distributed runs record their topology — worker fleet, retry/
        # timeout/corrupt counters, local fallbacks — as provenance.
        # Topology is provenance, not contract: nothing in this record
        # can change a byte of the allocation, which is exactly why it
        # is recorded instead of matched.
        if hasattr(engine, "dist_stats"):
            dist = engine.dist_stats()
            stats["dist"] = dist
            allocation.set_provenance(dist={
                key: dist.get(key)
                for key in (
                    "tasks_completed", "retries", "timeouts", "disconnects",
                    "corrupt_blocks", "workers_connected", "local_fallbacks",
                )
            })
        if engine.dsan:
            # Digest maps key on (ad, chunk) tuples; stats serialize to
            # JSON in the CLI, so the keys flatten to "ad:chunk" strings.
            stats["dsan_digests"] = {
                f"{ad}:{chunk}": digest
                for (ad, chunk), digest in sorted(engine.dsan_digests().items())
            }
            stats["dsan_root"] = engine.dsan_root()
            # A sanitized run's provenance carries the whole-run RR-byte
            # fingerprint; an unsanitized run's provenance is unchanged.
            allocation.set_provenance(dsan_root=stats["dsan_root"])
        if self.cache is not None:
            self._record_allocation(stats)
        self._result = AllocationResult(
            algorithm=config.name,
            allocation=allocation,
            estimated_revenues=revenues,
            budgets=self.budgets,
            penalty=problem.penalty,
            stats=stats,
        )
        self.state = terminal_state

    def _record_allocation(self, stats: dict) -> None:
        """One experiment-catalog row per completed cached allocation:
        the determinism contract (seed/rng/chunk_size/dsan_root), the
        substrate provenance (engine/backend/transport), the cache
        counters, the service job id when the session ran under one, and
        the full provenance/stats blobs — what ``repro ls / show /
        diff`` read back."""
        config, engine = self.config, self.engine
        seed = (
            int(config._seed)
            if isinstance(config._seed, (int, np.integer))
            else None
        )
        self.cache.flush()
        self.cache.catalog.record_allocation({
            "algorithm": config.name,
            "dataset": config.dataset,
            "seed": seed,
            "rng": config.rng,
            "chunk_size": config.chunk_size if config.rng == "philox" else None,
            "engine": config.engine,
            "backend": engine.backend_name,
            "transport": engine.transport,
            "dsan_root": stats.get("dsan_root"),
            "iterations": stats["iterations"],
            "total_rr_sets": stats["total_rr_sets"],
            "cache_hits": stats["cache"]["hits"],
            "cache_misses": stats["cache"]["misses"],
            "backend_invocations": stats["backend_invocations"],
            "job_id": self.job_id,
            "provenance": self.allocation.provenance or {},
            "stats": {
                key: value for key, value in stats.items()
                if key != "dsan_digests"  # the root fingerprint suffices
            },
        })

    def _restored_states(self, checkpoint: TIRMCheckpoint) -> list[_AdState]:
        """Rebuild the per-ad allocator state (and the allocation's seed
        assignments) from a restored snapshot.  The marginal-coverage
        dicts keep their checkpointed insertion order — revenue
        re-estimation sums floats in it."""
        states = []
        for ad in range(self.engine.num_ads):
            state = _AdState(
                sampler=self.engine.sampler(ad),
                collection=self.engine.shard(ad),
            )
            state.seed_size_estimate = int(checkpoint.seed_size_estimate[ad])
            state.revenue = float(checkpoint.revenue[ad])
            state.seeds_in_order = checkpoint.seeds_in_order(ad)
            state.marginal_coverage = checkpoint.marginal_coverage(ad)
            state.active = bool(checkpoint.active[ad])
            for user in state.seeds_in_order:
                self.allocation.assign(user, ad)
            states.append(state)
        return states

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _theta_for(self, state: _AdState, s: int) -> int:
        """``θ_i = L(s, ε)`` — the config's policy method (subclassable,
        and shared with the frozen legacy harness)."""
        return self.config._theta_for(self.problem, state, s)

    def _grow_samples(self, ads, last_marginals) -> None:
        """Algorithm 2 lines 14–19: revise each listed ad's ``s_i``, top
        up the grown ``θ_i`` through the engine in one request, then
        re-estimate existing seeds' coverage (Algorithm 4) per ad.

        The entry point is batch-shaped (a list of ads) but Algorithm
        2's trigger fires for one ad per iteration — the ad whose seed
        count just reached its estimate.  Under counter-based streams
        the engine splits even that single-ad request into ``(ad,
        chunk)`` tasks fanned across the process pool, so the growth
        phase — previously the serial bottleneck — scales with workers.
        The request names the absolute target ``θ_i`` (set indices
        ``[0, θ_i)``), so the sampled sets are independent of how growth
        events interleave."""
        problem, states = self.problem, self.states
        targets: dict[int, int] = {}
        for ad in ads:
            state = states[ad]
            regret = regret_of(
                self.budgets[ad], state.revenue, problem.penalty,
                len(state.seeds_in_order),
            )
            last_marginal = last_marginals[ad]
            if last_marginal > 0:
                growth = int(math.floor(regret / last_marginal))
            else:
                growth = 0
            state.seed_size_estimate += max(growth, 1)

            target = self._theta_for(state, state.seed_size_estimate)
            if target > state.theta:
                targets[ad] = target
        if not targets:
            return
        self.engine.ensure(targets)
        if self.config.prefetch:
            # Speculative pipeline hint: the *next* growth event for this
            # ad will raise s_i by at least 1, so θ(s_i + 1) lower-bounds
            # the next θ target.  Submitting those chunks now lets the
            # worker pool sample them while the parent runs Algorithm 4
            # and the greedy selection below — legal because chunks are
            # pure functions of their stream address, so the speculative
            # sets are byte-identical whether or not they are needed
            # (never-consumed chunks are discarded at engine close).
            hints: dict[int, int] = {}
            for ad in sorted(targets):
                state = states[ad]
                hint = self._theta_for(state, state.seed_size_estimate + 1)
                if hint > state.theta:
                    hints[ad] = hint
            if hints:
                self.engine.prefetch(hints)
        for ad in sorted(targets):
            state = states[ad]
            # Algorithm 4: walk existing seeds in selection order, credit
            # each with its coverage among the new (still-alive) sets, and
            # remove what it covers so later seeds are not double-credited.
            # ``remove_covered`` returns exactly the alive-set count the
            # old code recomputed via ``sets_containing`` — one index
            # walk, not two.
            for node in state.seeds_in_order:
                state.marginal_coverage[node] += state.collection.remove_covered(node)
            self._recompute_revenue(ad, state)
            self._rebuild_heap(ad, state)

    def _recompute_revenue(self, ad: int, state: _AdState) -> None:
        self.config._recompute_revenue(self.problem, ad, state, self.cpes)

    # ------------------------------------------------------------------
    # Candidate selection (Algorithm 3 — the config's policy methods)
    # ------------------------------------------------------------------
    def _rebuild_heap(self, ad: int, state: _AdState) -> None:
        self.config._rebuild_heap(self.problem, ad, state)

    def _best_candidate(self, ad: int, state: _AdState):
        return self.config._best_candidate(
            self.problem, ad, state, self.allocation, self.budgets, self.cpes
        )

    def _marginal_revenue(self, ad: int, state: _AdState, node: int,
                          cov: int) -> float:
        return self.config._marginal_revenue(
            self.problem, ad, state, node, cov, self.cpes
        )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(state={self.state!r}, "
            f"iterations={self.iterations}, h={self.problem.num_ads}, "
            f"job_id={self.job_id!r})"
        )
