"""The Myopic and Myopic+ baselines (§6 "Algorithms").

* **Myopic** assigns every user its ``κ_u`` most relevant ads by the
  no-network expected revenue ``δ(u, i) · cpe(i)`` — CTR-style matching
  that ignores both virality and budgets (Allocation A of Fig. 1).
* **Myopic+** is budget-conscious but still virality-blind: per ad, rank
  users by CTP and take them in order until the (no-network) expected
  revenue exhausts the budget, visiting ads round-robin and skipping
  users whose attention bound is already saturated.

Both report the no-network revenue estimate they used internally; their
true (virality-included) revenue is what the Monte-Carlo referee measures
— the systematic *overshoot* that comparison exposes is the paper's
motivating observation.
"""

from __future__ import annotations

import numpy as np

from repro.advertising.problem import AdAllocationProblem
from repro.algorithms.base import AllocationResult, Allocator
from repro.utils.timing import Timer


class MyopicAllocator(Allocator):
    """Assign each user its top-``κ_u`` ads by ``δ(u, i)·cpe(i)``."""

    name = "Myopic"

    def allocate(self, problem: AdAllocationProblem) -> AllocationResult:
        with Timer() as timer:
            allocation = self._empty_allocation(problem)
            # scores[i, u] = expected no-network revenue of seeding u with ad i
            scores = problem.ctps * problem.catalog.cpes()[:, None]
            order = np.argsort(-scores, axis=0, kind="stable")
            revenues = np.zeros(problem.num_ads)
            kappa = problem.attention.kappa
            for user in range(problem.num_nodes):
                take = min(int(kappa[user]), problem.num_ads)
                for rank in range(take):
                    ad = int(order[rank, user])
                    allocation.assign(user, ad)
                    revenues[ad] += scores[ad, user]
        return AllocationResult(
            algorithm=self.name,
            allocation=allocation,
            estimated_revenues=revenues,
            budgets=problem.catalog.budgets(),
            penalty=problem.penalty,
            runtime_seconds=timer.elapsed,
            stats={"model": "no-network CTP ranking"},
        )


class MyopicPlusAllocator(Allocator):
    """Budget-aware Myopic: per-ad CTP ranking, round-robin, stop at
    budget exhaustion (no-network accounting)."""

    name = "Myopic+"

    def allocate(self, problem: AdAllocationProblem) -> AllocationResult:
        with Timer() as timer:
            allocation = self._empty_allocation(problem)
            h = problem.num_ads
            budgets = problem.catalog.budgets()
            cpes = problem.catalog.cpes()
            # Per-ad user ranking by CTP (descending, stable for determinism).
            rankings = [np.argsort(-problem.ctps[ad], kind="stable") for ad in range(h)]
            pointers = [0] * h
            revenues = np.zeros(h)
            done = [False] * h
            while not all(done):
                progressed = False
                for ad in range(h):
                    if done[ad]:
                        continue
                    if revenues[ad] >= budgets[ad]:
                        done[ad] = True
                        continue
                    user = self._next_eligible(problem, allocation, rankings[ad], pointers, ad)
                    if user is None:
                        done[ad] = True
                        continue
                    allocation.assign(user, ad)
                    revenues[ad] += problem.ctps[ad, user] * cpes[ad]
                    progressed = True
                if not progressed:
                    break
        return AllocationResult(
            algorithm=self.name,
            allocation=allocation,
            estimated_revenues=revenues,
            budgets=budgets,
            penalty=problem.penalty,
            runtime_seconds=timer.elapsed,
            stats={"model": "no-network CTP ranking, budget-stopped"},
        )

    @staticmethod
    def _next_eligible(problem, allocation, ranking, pointers, ad):
        """Advance the ad's pointer to its next attention-eligible user."""
        pointer = pointers[ad]
        while pointer < ranking.size:
            user = int(ranking[pointer])
            pointer += 1
            if allocation.can_assign(user, ad, problem.attention):
                pointers[ad] = pointer
                return user
        pointers[ad] = pointer
        return None
