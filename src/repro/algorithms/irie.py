"""IRIE (Jung et al. [18]) and the Greedy-IRIE baseline (§5 / §6).

IRIE estimates influence with two coupled linear systems:

* **IR (influence ranking)** — ``r(u) = (1 − AP(u)) · (1 + α · Σ_{v ∈
  out(u)} p_{u,v} · r(v))``: node ``u``'s spread is itself plus a damped
  (α) share of its neighbors' spreads, discounted by the probability
  ``AP(u)`` that ``u`` is already activated by the current seeds;
* **IE (influence estimation)** — ``AP(v)`` is propagated from the seed
  set through the independence approximation ``AP(v) = 1 − (1 −
  base(v)) · Π_{u ∈ in(v)} (1 − AP(u)·p_{u,v})``.

Greedy-IRIE is Algorithm 1 with marginal revenue approximated by
``cpe(i) · δ(u, i) · r_i(u)``; the paper uses α = 0.8 on the quality
datasets and α = 0.7 for scalability, and observes it is a heuristic with
no guarantees and inconsistent over/under-estimation — behaviour this
implementation reproduces.
"""

from __future__ import annotations

import numpy as np

from repro.advertising.allocation import Allocation
from repro.advertising.problem import AdAllocationProblem
from repro.advertising.regret import regret_of
from repro.algorithms.base import AllocationResult, Allocator
from repro.errors import ConfigurationError
from repro.graph.digraph import DirectedGraph
from repro.utils.timing import Timer
from repro.utils.validation import check_probability_array


def influence_rank(
    graph: DirectedGraph,
    edge_probabilities,
    *,
    alpha: float = 0.7,
    activation_probs=None,
    max_iterations: int = 20,
    tolerance: float = 1e-6,
) -> np.ndarray:
    """IR iteration: per-node influence estimates ``r``.

    ``activation_probs`` (``AP``) discounts nodes the current seed set
    already reaches; ``None`` means no seeds yet (``AP ≡ 0``).
    """
    if not 0 <= alpha <= 1:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    probs = check_probability_array("edge_probabilities", edge_probabilities)
    if probs.shape != (graph.num_edges,):
        raise ValueError(f"edge_probabilities must have shape ({graph.num_edges},)")
    n = graph.num_nodes
    if activation_probs is None:
        not_active = np.ones(n)
    else:
        ap = np.asarray(activation_probs, dtype=np.float64)
        if ap.shape != (n,):
            raise ValueError(f"activation_probs must have shape ({n},)")
        not_active = 1.0 - ap
    rank = np.ones(n)
    src, dst = graph.edge_sources, graph.edge_targets
    for _ in range(max_iterations):
        neighbor_mass = np.bincount(src, weights=probs * rank[dst], minlength=n)
        updated = not_active * (1.0 + alpha * neighbor_mass)
        if np.max(np.abs(updated - rank)) < tolerance:
            rank = updated
            break
        rank = updated
    return rank


def estimate_activation_probabilities(
    graph: DirectedGraph,
    edge_probabilities,
    seeds,
    *,
    ctps=None,
    max_iterations: int = 10,
    tolerance: float = 1e-6,
) -> np.ndarray:
    """IE iteration: ``AP(v)`` ≈ probability the seed set activates ``v``.

    Seeds start at their CTP (they must click to become active); each
    round propagates one more hop under the usual independence
    approximation.
    """
    probs = check_probability_array("edge_probabilities", edge_probabilities)
    n = graph.num_nodes
    seeds = np.unique(np.asarray(seeds, dtype=np.int64))
    base = np.zeros(n)
    if seeds.size:
        if ctps is None:
            base[seeds] = 1.0
        else:
            delta = np.asarray(ctps, dtype=np.float64)
            base[seeds] = delta[seeds]
    ap = base.copy()
    if seeds.size == 0:
        return ap
    src, dst = graph.edge_sources, graph.edge_targets
    for _ in range(max_iterations):
        incoming = np.clip(ap[src] * probs, 0.0, 1.0 - 1e-12)
        log_miss = np.bincount(dst, weights=np.log1p(-incoming), minlength=n)
        updated = 1.0 - (1.0 - base) * np.exp(log_miss)
        if np.max(np.abs(updated - ap)) < tolerance:
            ap = updated
            break
        ap = updated
    return ap


class GreedyIRIEAllocator(Allocator):
    """Algorithm 1 with IRIE spread estimation (the §6 strong baseline).

    Parameters
    ----------
    alpha:
        IR damping factor; the paper found 0.8 best on its quality
        datasets and used 0.7 for scalability runs.
    ir_iterations / ie_iterations:
        Iteration caps for the two linear systems.
    """

    name = "Greedy-IRIE"

    def __init__(
        self,
        *,
        alpha: float = 0.8,
        ir_iterations: int = 20,
        ie_iterations: int = 10,
    ) -> None:
        if not 0 <= alpha <= 1:
            raise ConfigurationError(f"alpha must be in [0, 1], got {alpha}")
        self.alpha = float(alpha)
        self.ir_iterations = int(ir_iterations)
        self.ie_iterations = int(ie_iterations)

    def allocate(self, problem: AdAllocationProblem) -> AllocationResult:
        with Timer() as timer:
            result = self._allocate(problem)
        result.runtime_seconds = timer.elapsed
        return result

    def _allocate(self, problem: AdAllocationProblem) -> AllocationResult:
        h, n = problem.num_ads, problem.num_nodes
        budgets = problem.catalog.budgets()
        cpes = problem.catalog.cpes()
        allocation = Allocation(h, n)
        revenues = np.zeros(h)
        ranks = [
            influence_rank(
                problem.graph,
                problem.ad_edge_probabilities(ad),
                alpha=self.alpha,
                max_iterations=self.ir_iterations,
            )
            for ad in range(h)
        ]
        # eligible[i, u]: u not yet in S_i and attention not exhausted.
        eligible = np.ones((h, n), dtype=bool)
        iterations = 0
        ir_solves = h

        while True:
            best_ad, best_node, best_drop, best_marginal = -1, -1, 0.0, 0.0
            for ad in range(h):
                scores = problem.ctps[ad] * ranks[ad]
                masked = np.where(eligible[ad], scores, -1.0)
                node = int(np.argmax(masked))
                if masked[node] <= 0.0:
                    continue
                marginal = cpes[ad] * problem.ctps[ad, node] * ranks[ad][node]
                drop = regret_of(
                    budgets[ad], revenues[ad], problem.penalty, len(allocation.seeds(ad))
                ) - regret_of(
                    budgets[ad],
                    revenues[ad] + marginal,
                    problem.penalty,
                    len(allocation.seeds(ad)) + 1,
                )
                if drop > best_drop + 1e-12:
                    best_ad, best_node = ad, node
                    best_drop, best_marginal = drop, marginal
            if best_ad < 0:
                break
            allocation.assign(best_node, best_ad)
            revenues[best_ad] += best_marginal
            eligible[best_ad, best_node] = False
            if allocation.user_assignment_counts()[best_node] >= problem.attention[best_node]:
                eligible[:, best_node] = False
            # Refresh AP and IR for the ad whose seed set changed.
            probs = problem.ad_edge_probabilities(best_ad)
            ap = estimate_activation_probabilities(
                problem.graph,
                probs,
                allocation.seed_array(best_ad),
                ctps=problem.ad_ctps(best_ad),
                max_iterations=self.ie_iterations,
            )
            ranks[best_ad] = influence_rank(
                problem.graph,
                probs,
                alpha=self.alpha,
                activation_probs=ap,
                max_iterations=self.ir_iterations,
            )
            ir_solves += 1
            iterations += 1

        return AllocationResult(
            algorithm=self.name,
            allocation=allocation,
            estimated_revenues=revenues,
            budgets=budgets,
            penalty=problem.penalty,
            stats={
                "iterations": iterations,
                "ir_solves": ir_solves,
                "alpha": self.alpha,
            },
        )
