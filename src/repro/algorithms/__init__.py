"""Allocation algorithms: the paper's contribution and its baselines.

* :class:`GreedyAllocator` — Algorithm 1 (§4.1), generic over spread
  oracles (exact / Monte-Carlo / RRC-sets);
* :class:`TIRMAllocator` — Two-phase Iterative Regret Minimization
  (Algorithms 2–4, §5.2), the paper's scalable contribution;
* :class:`MyopicAllocator` / :class:`MyopicPlusAllocator` — the
  CTP-ranking baselines of §6;
* :class:`GreedyIRIEAllocator` — Algorithm 1 instantiated with the IRIE
  heuristic of Jung et al. [18];
* :mod:`repro.algorithms.bounds` — the Theorem 2/3/4 regret bounds.
"""

from repro.algorithms.base import AllocationResult, Allocator
from repro.algorithms.bounds import (
    RegretBounds,
    compute_bounds,
    theorem2_bound,
    theorem4_bound,
)
from repro.algorithms.greedy import GreedyAllocator
from repro.algorithms.irie import (
    GreedyIRIEAllocator,
    estimate_activation_probabilities,
    influence_rank,
)
from repro.algorithms.myopic import MyopicAllocator, MyopicPlusAllocator
from repro.algorithms.tirm import TIRMAllocator

__all__ = [
    "Allocator",
    "AllocationResult",
    "GreedyAllocator",
    "TIRMAllocator",
    "MyopicAllocator",
    "MyopicPlusAllocator",
    "GreedyIRIEAllocator",
    "influence_rank",
    "estimate_activation_probabilities",
    "RegretBounds",
    "compute_bounds",
    "theorem2_bound",
    "theorem4_bound",
]
