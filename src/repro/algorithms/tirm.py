"""TIRM — Two-phase Iterative Regret Minimization (Algorithms 2–4, §5.2).

TIRM follows Algorithm 1's greedy logic but replaces Monte-Carlo spread
estimation with RR-set coverage (§5.1), resolving the two obstacles a
direct TIM application faces:

* **CTPs** — sampling RRC-sets directly would need ~100× more samples at
  realistic 1–3% CTPs, so plain RR-sets are sampled and marginal
  coverages are multiplied by ``δ(v, i)`` (Theorem 5 guarantees the same
  expectation);
* **unknown seed counts** — the budget, not a seed count, drives how many
  seeds each ad needs, so the per-ad seed-size estimate ``s_i`` (hence
  the sample size ``θ_i = L(s_i, ε)``) is revised iteratively: whenever
  ``|S_i|`` reaches ``s_i``, grow it by ``⌊R_i(S_i) / marginal-revenue⌋``
  (a submodularity-justified lower bound on the seeds still needed),
  sample the extra RR-sets, and re-estimate existing seeds' coverage
  against them (Algorithm 4) so future marginals stay accurate.

Differences from the pseudocode, both documented in DESIGN.md:

* ``s_i`` grows by at least 1 when triggered (the literal ``⌊·⌋`` can
  return 0, freezing ``θ_i`` forever);
* ``select_rule="weighted"`` (default) ranks candidates by
  ``δ(v, i) · coverage`` — the true marginal-revenue order Algorithm 1
  maximises; ``"coverage"`` gives the literal Algorithm-3 ranking.
"""

from __future__ import annotations

import heapq
import math
import os
from dataclasses import dataclass, field

import numpy as np

from repro.advertising.allocation import Allocation
from repro.advertising.problem import AdAllocationProblem
from repro.advertising.regret import regret_of
from repro.algorithms.base import AllocationResult, Allocator
from repro.algorithms.greedy import _beats
from repro.errors import ConfigurationError
from repro.rrset.backends import BACKEND_MODES, SamplingBackend, resolve_backend
from repro.rrset.checkpoint import TIRMCheckpoint, save_checkpoint
from repro.rrset.pool import RRSetPool
from repro.rrset.sampler import DEFAULT_CHUNK_SIZE, RRSetSampler
from repro.rrset.sharded import (
    ENGINE_MODES,
    RNG_MODES,
    START_METHODS,
    TRANSPORT_MODES,
    ShardedSamplingEngine,
)
from repro.rrset.tim import greedy_max_coverage, required_rr_sets
from repro.utils.rng import spawn_generators
from repro.utils.timing import Timer


def _select_candidate(candidates):
    """Cross-ad argmax with an order-independent tie-break.

    ``candidates`` holds one ``(drop, node, cov, ad)`` tuple per active
    ad.  The winner must not depend on catalog order — otherwise the
    same problem under a permuted catalog can yield a different
    allocation and a different regret.  Pairwise ε-comparisons cannot
    guarantee that (they are not transitive: drops can chain across the
    band boundary), so the choice is anchored at the *global* maximum
    drop, which is itself order-independent: every candidate within
    1e-12 of it is considered tied, and the tie breaks on the smaller
    node id, then the exactly larger raw drop.  Only candidates that are
    bit-identical in both remain catalog-order dependent — the
    irreducibly symmetric case.
    """
    best_drop = max(c[0] for c in candidates)
    if best_drop <= 1e-12:
        return None
    in_band = [c for c in candidates if c[0] >= best_drop - 1e-12]
    return min(in_band, key=lambda c: (c[1], -c[0]))


@dataclass
class _AdState:
    """Mutable per-advertiser bookkeeping for one TIRM run."""

    sampler: RRSetSampler
    collection: RRSetPool
    seed_size_estimate: int = 1
    revenue: float = 0.0
    seeds_in_order: list[int] = field(default_factory=list)
    marginal_coverage: dict[int, int] = field(default_factory=dict)
    heap: list[tuple[float, int]] = field(default_factory=list)
    active: bool = True

    @property
    def theta(self) -> int:
        return self.collection.num_total


class TIRMAllocator(Allocator):
    """Algorithm 2 with the Algorithm-3 selector and Algorithm-4 updates.

    Parameters
    ----------
    epsilon:
        RR-set accuracy parameter ε (paper: 0.1 quality / 0.2 scalability).
    ell:
        Confidence parameter ℓ of Eq. (5).
    select_rule:
        ``"weighted"`` (CTP-weighted coverage; default) or ``"coverage"``
        (the literal Algorithm 3).
    sampler_mode:
        ``"blocked"`` (default) draws RR-sets through the vectorized
        batched sampler — RNG in blocks, members written straight into
        the pool; ``"scalar"`` uses the original per-set Mersenne stream,
        which stays bit-compatible with the pre-pool implementation.
        Both are deterministic per ``seed``.
    engine:
        ``"serial"`` (default) samples every ad's RR-sets in-process;
        ``"process"`` fans the sharded engine's chunk tasks — the
        batched pilot phase *and* every single-ad growth top-up — across
        a fork-based process pool.  The two produce identical
        allocations for the same ``(seed, chunk_size)``: every chunk of
        RR sets is a pure function of its ``(seed, ad, set_index)``
        address (``rng="philox"``).
    rng:
        ``"philox"`` (default): counter-based streams — every RR set is
        addressed by ``(seed, ad, set_index)``, sampling parallelizes
        within an ad, and a mid-allocation resume is deterministic.
        ``"legacy"``: the historical stateful per-ad streams, bit-exact
        with the pre-pool implementation (and strictly sequential).
    chunk_size:
        Set-index chunk width of the counter-based streams (ignored for
        ``rng="legacy"``).  Part of the determinism contract: the same
        ``(seed, chunk_size)`` reproduces the same allocation.
    backend:
        Blocked-BFS sampling backend (:mod:`repro.rrset.backends`):
        ``"numpy"`` (reference, default), ``"numba"`` (JIT kernel,
        optional extra — raises
        :class:`~repro.errors.ConfigurationError` when not installed),
        ``"auto"`` (numba if importable, else numpy with a one-time
        warning), or a ready backend instance.  Backends produce
        byte-identical samples, so the backend is **not** part of the
        determinism contract — the same seed yields the same allocation
        on every backend, and a checkpoint written under one backend
        resumes under another.  Stats and provenance record the
        *resolved* name.
    transport:
        Worker-result transport for ``engine="process"``: ``"shm"``
        (workers publish packed chunk blocks into shared-memory
        segments; the parent splices zero-copy), ``"pickle"`` (blocks
        travel over the result pipe), or ``"auto"`` (default: shm where
        available).  Like ``backend``, **not** part of the determinism
        contract — both transports produce byte-identical pools and
        allocations, and checkpoints resume across transports.  Stats,
        provenance and checkpoints record the *resolved* name.
    start_method:
        Worker start method for ``engine="process"``: ``"fork"``,
        ``"spawn"``, or ``"auto"`` (default: fork where available, else
        spawn via a shared-memory payload arena).  Not part of the
        determinism contract.
    prefetch:
        When true (default), issue speculative next-θ prefetch hints to
        the engine after each growth event, so RR-set sampling overlaps
        greedy selection under ``engine="process"``.  Purely a pipeline
        knob: chunks are pure functions of their stream address, so the
        allocation is byte-identical with prefetch on or off (no-op for
        ``engine="serial"`` and ``rng="legacy"``).
    initial_pilot:
        RR-sets sampled per ad before the first ``θ_i`` is computed.
    min_rr_sets_per_ad / max_rr_sets_per_ad:
        Clamp on each ``θ_i`` — the max keeps laptop-scale runs bounded
        (the paper ran on a 65 GB server).
    max_workers:
        Process-pool width for ``engine="process"`` (default: cpu count).
    checkpoint_path / checkpoint_every:
        Snapshot the in-flight allocation to ``checkpoint_path`` every
        ``checkpoint_every`` iteration boundaries (default 1 when a path
        is given; atomic overwrite, see :mod:`repro.rrset.checkpoint`).
        Under ``rng="philox"`` the artifact holds no RR members — the
        counter-based streams re-derive them on resume; ``rng="legacy"``
        spills members to an mmap-backed sidecar.
    resume_from:
        Restore a mid-allocation snapshot and continue.  The resumed run
        produces a byte-identical allocation to the uninterrupted one
        for the same ``(seed, rng, chunk_size)``; mismatched parameters
        raise :class:`~repro.errors.ConfigurationError`.
    max_iterations:
        Stop after this many iterations *of this run* (writing a final
        checkpoint when ``checkpoint_path`` is set) and return the
        partial allocation with ``stats["truncated"] = True`` — the
        incremental building block for time-bounded allocation slices.
    dsan:
        Runtime determinism sanitizer (:mod:`repro.rrset.dsan`): when
        enabled the engine records a blake2 digest per ``(ad, chunk)``
        block it splices, and the result carries them in
        ``stats["dsan_digests"]`` plus a whole-run ``dsan_root``
        fingerprint (also in provenance).  ``None`` (default) defers to
        the ``REPRO_DSAN`` environment variable.  Pure observation: the
        allocation is byte-identical with dsan on or off.
    cache:
        Shard cache knob (:mod:`repro.store`): a directory path (or
        open :class:`~repro.store.ShardCache`) makes sampling
        read-through over the content-addressed block store, records
        the finished allocation (with provenance and cache counters) in
        the store's experiment catalog, and registers every checkpoint's
        shard references so ``repro gc`` keeps what a resume would
        re-read.  ``None`` (default) defers to the ``REPRO_CACHE``
        environment variable.  **Not** part of the determinism
        contract: a warm run performs zero sampling-backend invocations
        (``stats["backend_invocations"]``) yet stays byte-identical to
        a cold one.
    dataset:
        Optional label recorded in the experiment catalog's allocation
        row (shown by ``repro ls``).  The problem object carries no
        name, so the caller supplies one; purely informational.
    seed:
        Master RNG seed; per-ad samplers get independent child streams.

    Examples
    --------
    Allocate the paper's Figure-1 gadget; stats record the resolved
    RNG/backend contract that makes the run reproducible::

        >>> from repro.algorithms.tirm import TIRMAllocator
        >>> from repro.datasets.toy import figure1_problem
        >>> allocator = TIRMAllocator(seed=0, max_rr_sets_per_ad=1_000)
        >>> result = allocator.allocate(figure1_problem())
        >>> result.algorithm, result.allocation.total_seeds() > 0
        ('TIRM', True)
        >>> result.stats["rng"], result.stats["backend"]
        ('philox', 'numpy')
    """

    name = "TIRM"

    def __init__(
        self,
        *,
        epsilon: float = 0.1,
        ell: float = 1.0,
        select_rule: str = "weighted",
        sampler_mode: str = "blocked",
        engine: str = "serial",
        rng: str = "philox",
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        backend="numpy",
        transport: str = "auto",
        start_method: str = "auto",
        prefetch: bool = True,
        initial_pilot: int = 1_000,
        min_rr_sets_per_ad: int = 500,
        max_rr_sets_per_ad: int = 200_000,
        max_workers: int | None = None,
        checkpoint_path=None,
        checkpoint_every: int | None = None,
        resume_from=None,
        max_iterations: int | None = None,
        dsan: bool | None = None,
        cache=None,
        dataset: str | None = None,
        seed=None,
    ) -> None:
        if not 0 < epsilon < 1:
            raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
        if ell <= 0:
            raise ConfigurationError(f"ell must be > 0, got {ell}")
        if select_rule not in ("weighted", "coverage"):
            raise ConfigurationError(
                f"select_rule must be 'weighted' or 'coverage', got {select_rule!r}"
            )
        if sampler_mode not in ("blocked", "scalar"):
            raise ConfigurationError(
                f"sampler_mode must be 'blocked' or 'scalar', got {sampler_mode!r}"
            )
        if engine not in ENGINE_MODES:
            raise ConfigurationError(
                f"engine must be one of {ENGINE_MODES}, got {engine!r}"
            )
        if rng not in RNG_MODES:
            raise ConfigurationError(f"rng must be one of {RNG_MODES}, got {rng!r}")
        if chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        if not isinstance(backend, SamplingBackend) and backend not in BACKEND_MODES:
            raise ConfigurationError(
                f"backend must be one of {BACKEND_MODES} or a SamplingBackend "
                f"instance, got {backend!r}"
            )
        if transport not in TRANSPORT_MODES:
            raise ConfigurationError(
                f"transport must be one of {TRANSPORT_MODES}, got {transport!r}"
            )
        if start_method not in START_METHODS:
            raise ConfigurationError(
                f"start_method must be one of {START_METHODS}, got {start_method!r}"
            )
        if min_rr_sets_per_ad < 1 or max_rr_sets_per_ad < min_rr_sets_per_ad:
            raise ConfigurationError(
                "need 1 <= min_rr_sets_per_ad <= max_rr_sets_per_ad, got "
                f"{min_rr_sets_per_ad} / {max_rr_sets_per_ad}"
            )
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if checkpoint_every is not None and checkpoint_path is None:
            raise ConfigurationError(
                "checkpoint_every requires a checkpoint_path to write to"
            )
        if max_iterations is not None and max_iterations < 1:
            raise ConfigurationError(
                f"max_iterations must be >= 1, got {max_iterations}"
            )
        self.epsilon = float(epsilon)
        self.ell = float(ell)
        self.select_rule = select_rule
        self.sampler_mode = sampler_mode
        self.engine = engine
        self.rng = rng
        self.chunk_size = int(chunk_size)
        self.backend = backend
        self.transport = transport
        self.start_method = start_method
        self.prefetch = bool(prefetch)
        self.initial_pilot = int(initial_pilot)
        self.min_rr_sets_per_ad = int(min_rr_sets_per_ad)
        self.max_rr_sets_per_ad = int(max_rr_sets_per_ad)
        self.max_workers = max_workers
        self.checkpoint_path = (
            os.fspath(checkpoint_path) if checkpoint_path is not None else None
        )
        self.checkpoint_every = (
            int(checkpoint_every)
            if checkpoint_every is not None
            else (1 if self.checkpoint_path is not None else None)
        )
        self.resume_from = os.fspath(resume_from) if resume_from is not None else None
        self.max_iterations = (
            int(max_iterations) if max_iterations is not None else None
        )
        # Tri-state: None defers to REPRO_DSAN at engine construction.
        self.dsan = dsan
        # Tri-state likewise: None defers to REPRO_CACHE at allocate().
        self.cache = cache
        # Pure catalog label (the problem object carries no name): shown
        # in `repro ls`, never part of any contract.
        self.dataset = dataset
        self._seed = seed

    # ------------------------------------------------------------------
    def allocate(self, problem: AdAllocationProblem) -> AllocationResult:
        with Timer() as timer:
            result = self._allocate(problem)
        result.runtime_seconds = timer.elapsed
        return result

    # ------------------------------------------------------------------
    def _allocate(self, problem: AdAllocationProblem) -> AllocationResult:
        # Resolve the shard cache here, above the engine: the catalog
        # records (allocation row, checkpoint references) land after
        # sampling finishes, so TIRM owns what it opens and the engine
        # only shares (and flushes) the instance.  Imported lazily so a
        # cache-less allocation never touches repro.store.
        from repro.store.cache import resolve_cache

        cache, cache_owned = resolve_cache(self.cache)
        try:
            return self._allocate_with_cache(problem, cache)
        finally:
            if cache_owned and cache is not None:
                cache.close()

    def _allocate_with_cache(
        self, problem: AdAllocationProblem, cache
    ) -> AllocationResult:
        h, n = problem.num_ads, problem.num_nodes
        budgets = problem.catalog.budgets()
        cpes = problem.catalog.cpes()
        allocation = Allocation(h, n)
        # Resolve the sampling backend up front: "auto" commits to a
        # substrate (and warns if it degrades) before any sampling, an
        # unavailable explicit "numba" fails here with a clean
        # ConfigurationError, and stats/provenance/checkpoints all
        # record the *resolved* name.  Backends are byte-identical, so
        # resolution never affects the allocation — only throughput.
        self._backend_obj = resolve_backend(self.backend)
        # Same story for the transport: resolve "auto" up front so
        # stats/provenance/checkpoints record the substrate actually
        # used (and an unavailable explicit 'shm' fails cleanly here).
        # Like the backend, it is recorded but never matched on resume.
        self._transport_resolved = ShardedSamplingEngine.resolve_transport(
            self.transport
        )
        checkpoint = None
        if self.resume_from is not None:
            checkpoint = TIRMCheckpoint.load(self.resume_from)
            checkpoint.validate_config(self._checkpoint_config(problem))
        # Counter-based streams take the master seed directly (per-ad
        # separation happens in the spawn key); the legacy streams keep
        # the historical per-ad child generators for bit-exactness.  On
        # resume the checkpoint's entropy roots are authoritative: they
        # rebuild the exact streams the snapshot was sampled from.
        if self.rng == "legacy":
            seeds = spawn_generators(self._seed, h)
        elif checkpoint is not None:
            seeds = list(checkpoint.entropies)
        else:
            seeds = self._seed

        engine = ShardedSamplingEngine(
            problem.graph,
            [problem.ad_edge_probabilities(ad) for ad in range(h)],
            seeds=seeds,
            mode=self.sampler_mode,
            engine=self.engine,
            max_workers=self.max_workers,
            rng=self.rng,
            chunk_size=self.chunk_size,
            backend=self._backend_obj,
            transport=self.transport,
            start_method=self.start_method,
            dsan=self.dsan,
            cache=cache,
        )
        checkpoints_written = 0
        resumed_at = None
        truncated = False
        with engine:
            if checkpoint is not None:
                checkpoint.restore_engine(engine)
                states = self._restored_states(checkpoint, engine, allocation)
                iterations = checkpoint.iterations
                resumed_at = checkpoint.iterations
                lineage = checkpoint.lineage + [
                    {
                        "resumed_from": self.resume_from,
                        "at_iteration": checkpoint.iterations,
                    }
                ]
            else:
                states = self._initial_states(problem, engine)
                iterations = 0
                lineage = []
            # Heaps are derived state: the lazy selector's answers are
            # pure functions of the coverage counters, so rebuilding them
            # here keeps fresh and resumed runs on identical trajectories.
            for ad in range(h):
                self._rebuild_heap(problem, ad, states[ad])
            start_iterations = iterations

            while True:
                candidates = []
                for ad in range(h):
                    state = states[ad]
                    if not state.active:
                        continue
                    candidate = self._best_candidate(
                        problem, ad, state, allocation, budgets, cpes
                    )
                    if candidate is None:
                        continue
                    node, cov, _, drop = candidate
                    candidates.append((drop, node, cov, ad))
                chosen = _select_candidate(candidates) if candidates else None
                if chosen is None:
                    break
                best_drop, best_node, best_cov, best_ad = chosen

                state = states[best_ad]
                marginal = self._marginal_revenue(
                    problem, best_ad, state, best_node, best_cov, cpes
                )
                allocation.assign(best_node, best_ad)
                state.seeds_in_order.append(best_node)
                state.marginal_coverage[best_node] = best_cov
                state.revenue += marginal
                state.collection.remove_covered(best_node)
                iterations += 1

                if len(state.seeds_in_order) == state.seed_size_estimate:
                    self._grow_samples(
                        problem, [best_ad], states, budgets, cpes,
                        {best_ad: marginal}, engine,
                    )

                # Iteration boundary: the run state is consistent here
                # (seed assigned, samples grown, revenue re-estimated),
                # so this is where snapshots and time-bounded stops land.
                stop = (
                    self.max_iterations is not None
                    and iterations - start_iterations >= self.max_iterations
                )
                if self.checkpoint_path is not None and (
                    stop or iterations % self.checkpoint_every == 0
                ):
                    self._write_checkpoint(
                        problem, engine, states, iterations, lineage
                    )
                    checkpoints_written += 1
                if stop:
                    truncated = True
                    break

        revenues = np.asarray([s.revenue for s in states])
        # The RNG contract travels with the allocation: the master seed
        # plus (for counter-based streams) the derived entropy root is
        # what re-derives the exact RR samples behind these seed sets.
        # A generator-valued seed was consumed while sampling and cannot
        # be recorded — ``seed`` is None then, and under legacy streams
        # such a run is not re-derivable (under philox the entropy root
        # alone still is).
        seed = int(self._seed) if isinstance(self._seed, (int, np.integer)) else None
        allocation.set_provenance(
            algorithm=self.name,
            rng=self.rng,
            chunk_size=self.chunk_size if self.rng == "philox" else None,
            sampler_mode=self.sampler_mode,
            engine=self.engine,
            backend=engine.backend_name,
            transport=engine.transport,
            seed=seed,
            stream_entropy=engine.stream_entropy(0),
        )
        # Checkpoint lineage travels with the allocation, but only for
        # runs that actually touched the checkpoint machinery — an
        # uninterrupted run's provenance stays identical to a plain one.
        if self.checkpoint_path is not None or self.resume_from is not None:
            allocation.set_provenance(
                checkpoint={
                    "path": self.checkpoint_path,
                    "every": self.checkpoint_every,
                    "written": checkpoints_written,
                    "resumed_from": self.resume_from,
                    "resumed_at_iteration": resumed_at,
                    "lineage": lineage,
                }
            )
        stats = {
            "iterations": iterations,
            "theta_per_ad": [s.theta for s in states],
            "seed_size_estimates": [s.seed_size_estimate for s in states],
            "total_rr_sets": int(sum(s.theta for s in states)),
            "rr_memory_bytes": int(sum(s.collection.memory_bytes() for s in states)),
            "epsilon": self.epsilon,
            "select_rule": self.select_rule,
            "sampler_mode": self.sampler_mode,
            "engine": self.engine,
            "rng": self.rng,
            "chunk_size": self.chunk_size if self.rng == "philox" else None,
            "backend": engine.backend_name,
            "transport": engine.transport,
            "start_method": engine.start_method,
            "prefetch": self.prefetch,
            "dsan": engine.dsan,
            "checkpoints_written": checkpoints_written,
            "resumed_at_iteration": resumed_at,
            "truncated": truncated,
            # Actual compute performed — the warm-start headline: a run
            # served entirely from the shard cache reports zero here.
            "backend_invocations": engine.backend_invocations,
        }
        cache_stats = engine.cache_stats()
        if cache_stats is not None:
            stats["cache"] = cache_stats
        if engine.dsan:
            # Digest maps key on (ad, chunk) tuples; stats serialize to
            # JSON in the CLI, so the keys flatten to "ad:chunk" strings.
            stats["dsan_digests"] = {
                f"{ad}:{chunk}": digest
                for (ad, chunk), digest in sorted(engine.dsan_digests().items())
            }
            stats["dsan_root"] = engine.dsan_root()
            # A sanitized run's provenance carries the whole-run RR-byte
            # fingerprint; an unsanitized run's provenance is unchanged.
            allocation.set_provenance(dsan_root=stats["dsan_root"])
        if cache is not None:
            self._record_allocation(cache, engine, stats, allocation)
        return AllocationResult(
            algorithm=self.name,
            allocation=allocation,
            estimated_revenues=revenues,
            budgets=budgets,
            penalty=problem.penalty,
            stats=stats,
        )

    # ------------------------------------------------------------------
    # Checkpoint / resume plumbing
    # ------------------------------------------------------------------
    def _checkpoint_config(self, problem) -> dict:
        """The compatibility record stored in (and validated against)
        every checkpoint artifact: resuming under different allocator
        parameters or a different problem would silently converge to a
        different allocation, so mismatches are refused up front.

        ``backend`` and ``transport`` are recorded as provenance but
        deliberately *not* matched on resume — both are byte-identical
        substrates, so a numpy/pickle checkpoint resumes under
        numba/shm (and vice versa) unchanged.
        """
        seed = int(self._seed) if isinstance(self._seed, (int, np.integer)) else None
        return {
            "algorithm": self.name,
            "rng": self.rng,
            "chunk_size": self.chunk_size if self.rng == "philox" else None,
            "backend": self._backend_obj.name,
            "transport": self._transport_resolved,
            "sampler_mode": self.sampler_mode,
            "select_rule": self.select_rule,
            "epsilon": self.epsilon,
            "ell": self.ell,
            "initial_pilot": self.initial_pilot,
            "min_rr_sets_per_ad": self.min_rr_sets_per_ad,
            "max_rr_sets_per_ad": self.max_rr_sets_per_ad,
            "num_ads": problem.num_ads,
            "num_nodes": problem.num_nodes,
            "num_edges": problem.graph.num_edges,
            "seed": seed,
        }

    def _write_checkpoint(
        self, problem, engine, states, iterations: int, lineage: list
    ) -> None:
        per_ad = [
            {
                "seeds": state.seeds_in_order,
                "marginal_nodes": list(state.marginal_coverage.keys()),
                "marginal_counts": list(state.marginal_coverage.values()),
                "revenue": state.revenue,
                "seed_size_estimate": state.seed_size_estimate,
                "active": state.active,
            }
            for state in states
        ]
        save_checkpoint(
            self.checkpoint_path,
            config=self._checkpoint_config(problem),
            engine=engine,
            per_ad=per_ad,
            iterations=iterations,
            lineage=lineage,
        )
        if engine.cache is not None:
            # Register the artifact and the shard prefixes a resume
            # would re-read, so `repro gc` refuses to evict them while
            # the checkpoint is live.  Re-registration (the artifact is
            # atomically overwritten each boundary) replaces the row.
            engine.cache.catalog.record_checkpoint(
                self.checkpoint_path,
                iterations=iterations,
                config=self._checkpoint_config(problem),
                shard_refs=engine.shard_cache_refs(),
            )

    def _record_allocation(self, cache, engine, stats: dict, allocation) -> None:
        """One experiment-catalog row per completed cached allocation:
        the determinism contract (seed/rng/chunk_size/dsan_root), the
        substrate provenance (engine/backend/transport), the cache
        counters, and the full provenance/stats blobs — what
        ``repro ls / show / diff`` read back."""
        seed = int(self._seed) if isinstance(self._seed, (int, np.integer)) else None
        cache.flush()
        cache.catalog.record_allocation({
            "algorithm": self.name,
            "dataset": self.dataset,
            "seed": seed,
            "rng": self.rng,
            "chunk_size": self.chunk_size if self.rng == "philox" else None,
            "engine": self.engine,
            "backend": engine.backend_name,
            "transport": engine.transport,
            "dsan_root": stats.get("dsan_root"),
            "iterations": stats["iterations"],
            "total_rr_sets": stats["total_rr_sets"],
            "cache_hits": stats["cache"]["hits"],
            "cache_misses": stats["cache"]["misses"],
            "backend_invocations": stats["backend_invocations"],
            "provenance": allocation.provenance or {},
            "stats": {
                key: value for key, value in stats.items()
                if key != "dsan_digests"  # the root fingerprint suffices
            },
        })

    def _restored_states(
        self, checkpoint: TIRMCheckpoint, engine, allocation: Allocation
    ) -> list[_AdState]:
        """Rebuild the per-ad allocator state (and the allocation's seed
        assignments) from a restored snapshot.  The marginal-coverage
        dicts keep their checkpointed insertion order — revenue
        re-estimation sums floats in it."""
        states = []
        for ad in range(engine.num_ads):
            state = _AdState(
                sampler=engine.sampler(ad), collection=engine.shard(ad)
            )
            state.seed_size_estimate = int(checkpoint.seed_size_estimate[ad])
            state.revenue = float(checkpoint.revenue[ad])
            state.seeds_in_order = checkpoint.seeds_in_order(ad)
            state.marginal_coverage = checkpoint.marginal_coverage(ad)
            state.active = bool(checkpoint.active[ad])
            for user in state.seeds_in_order:
                allocation.assign(user, ad)
            states.append(state)
        return states

    # ------------------------------------------------------------------
    # Initialisation and sampling
    # ------------------------------------------------------------------
    def _initial_states(
        self, problem, engine: ShardedSamplingEngine
    ) -> list[_AdState]:
        """Batched pilot phase over the sharded engine.

        Both rounds — the fixed-size pilots and the first ``θ_i = L(1, ε)``
        top-ups — are issued for *all* ads at once, so the process engine
        samples every ad (and, under counter-based streams, every chunk)
        concurrently.  Requests address absolute sample-count targets via
        ``engine.ensure``: each ad's shard is grown to hold set indices
        ``[0, target)``, never "``k`` more sets from wherever the stream
        happens to be".
        """
        h = problem.num_ads
        states = [
            _AdState(sampler=engine.sampler(ad), collection=engine.shard(ad))
            for ad in range(h)
        ]
        pilot = max(
            min(self.initial_pilot, self.max_rr_sets_per_ad), self.min_rr_sets_per_ad
        )
        engine.ensure({ad: pilot for ad in range(h)})
        engine.ensure(
            {ad: self._theta_for(problem, states[ad], s=1) for ad in range(h)}
        )
        return states

    #: Greedy-cover pilot size for OPT_s estimation: the cover runs on an
    #: i.i.d. prefix of the sample, so a fixed-size pilot estimates the
    #: same coverage fraction at O(1) cost per growth event.
    _OPT_PILOT_SETS = 2_000

    def _theta_for(self, problem, state: _AdState, s: int) -> int:
        """``θ_i = L(s, ε)`` with a greedy-pilot OPT_s lower bound.

        The pilot is a zero-copy CSR window over the first sets of the
        pool, so each growth event costs O(pilot), not O(θ).
        """
        n = problem.num_nodes
        s = min(max(s, 1), n)
        pilot = state.collection.prefix_view(self._OPT_PILOT_SETS)
        _, covered = greedy_max_coverage(pilot, n, s)
        opt_lower = max(n * covered / pilot.num_sets, float(min(s, n)), 1.0)
        theta = required_rr_sets(n, s, self.epsilon, opt_lower, ell=self.ell)
        return int(min(max(theta, self.min_rr_sets_per_ad), self.max_rr_sets_per_ad))

    def _grow_samples(self, problem, ads, states, budgets, cpes,
                      last_marginals, engine: ShardedSamplingEngine) -> None:
        """Algorithm 2 lines 14–19: revise each listed ad's ``s_i``, top
        up the grown ``θ_i`` through the engine in one request, then
        re-estimate existing seeds' coverage (Algorithm 4) per ad.

        The entry point is batch-shaped (a list of ads) but Algorithm
        2's trigger fires for one ad per iteration — the ad whose seed
        count just reached its estimate.  Under counter-based streams
        the engine splits even that single-ad request into ``(ad,
        chunk)`` tasks fanned across the process pool, so the growth
        phase — previously the serial bottleneck — scales with workers.
        The request names the absolute target ``θ_i`` (set indices
        ``[0, θ_i)``), so the sampled sets are independent of how growth
        events interleave."""
        targets: dict[int, int] = {}
        for ad in ads:
            state = states[ad]
            regret = regret_of(
                budgets[ad], state.revenue, problem.penalty, len(state.seeds_in_order)
            )
            last_marginal = last_marginals[ad]
            if last_marginal > 0:
                growth = int(math.floor(regret / last_marginal))
            else:
                growth = 0
            state.seed_size_estimate += max(growth, 1)

            target = self._theta_for(problem, state, state.seed_size_estimate)
            if target > state.theta:
                targets[ad] = target
        if not targets:
            return
        engine.ensure(targets)
        if self.prefetch:
            # Speculative pipeline hint: the *next* growth event for this
            # ad will raise s_i by at least 1, so θ(s_i + 1) lower-bounds
            # the next θ target.  Submitting those chunks now lets the
            # worker pool sample them while the parent runs Algorithm 4
            # and the greedy selection below — legal because chunks are
            # pure functions of their stream address, so the speculative
            # sets are byte-identical whether or not they are needed
            # (never-consumed chunks are discarded at engine close).
            hints: dict[int, int] = {}
            for ad in sorted(targets):
                state = states[ad]
                hint = self._theta_for(problem, state, state.seed_size_estimate + 1)
                if hint > state.theta:
                    hints[ad] = hint
            if hints:
                engine.prefetch(hints)
        for ad in sorted(targets):
            state = states[ad]
            # Algorithm 4: walk existing seeds in selection order, credit
            # each with its coverage among the new (still-alive) sets, and
            # remove what it covers so later seeds are not double-credited.
            # ``remove_covered`` returns exactly the alive-set count the
            # old code recomputed via ``sets_containing`` — one index
            # walk, not two.
            for node in state.seeds_in_order:
                state.marginal_coverage[node] += state.collection.remove_covered(node)
            self._recompute_revenue(problem, ad, state, cpes)
            self._rebuild_heap(problem, ad, state)

    def _recompute_revenue(self, problem, ad: int, state: _AdState, cpes) -> None:
        """``Π_i(S_i) = Σ_v cpe·n·δ(v,i)·cov(v)/θ_i`` over chosen seeds."""
        n = problem.num_nodes
        delta = problem.ad_ctps(ad)
        theta = state.theta
        state.revenue = float(
            sum(
                cpes[ad] * n * delta[node] * count / theta
                for node, count in state.marginal_coverage.items()
            )
        )

    # ------------------------------------------------------------------
    # Candidate selection (Algorithm 3, lazily)
    # ------------------------------------------------------------------
    def _score(self, problem, ad: int, node: int, cov: int) -> float:
        if self.select_rule == "weighted":
            return float(problem.ctps[ad, node]) * cov
        return float(cov)

    def _rebuild_heap(self, problem, ad: int, state: _AdState) -> None:
        coverage = state.collection.coverage()
        nodes = np.flatnonzero(coverage > 0)
        if self.select_rule == "weighted":
            scores = problem.ctps[ad, nodes] * coverage[nodes]
        else:
            scores = coverage[nodes].astype(np.float64)
        state.heap = [(-float(s), int(v)) for s, v in zip(scores, nodes)]
        heapq.heapify(state.heap)

    def _pop_fresh(self, problem, ad: int, state: _AdState, allocation):
        """Pop the eligible node with the largest *fresh* score.

        Scores only decrease between heap rebuilds (covered sets are
        removed), so re-pushing stale entries with their current score is
        sound.  Returns ``(node, coverage, score)`` or ``None`` when no
        eligible node with positive score remains.
        """
        heap = state.heap
        while heap:
            neg_score, node = heap[0]
            if not allocation.can_assign(node, ad, problem.attention):
                heapq.heappop(heap)
                continue
            cov = state.collection.coverage_of(node)
            current = self._score(problem, ad, node, cov)
            if current <= 0.0:
                heapq.heappop(heap)
                continue
            if math.isclose(current, -neg_score, rel_tol=1e-12, abs_tol=1e-12):
                heapq.heappop(heap)
                return node, cov, current
            heapq.heapreplace(heap, (-current, node))
        return None

    def _best_candidate(self, problem, ad: int, state: _AdState, allocation, budgets, cpes):
        """Argmax-drop candidate for one ad: ``(node, cov, marginal, drop)``.

        With the default ``weighted`` rule, candidates come off the heap
        in decreasing marginal-revenue order, so drops first rise toward
        the remaining budget and then only shrink — the scan stops at
        the first candidate whose marginal fits within the remaining
        budget (exact argmax, same argument as Algorithm 1's greedy).
        The ``coverage`` rule reproduces the literal Algorithm 3: only
        the single top-coverage node is considered.
        """
        remaining = budgets[ad] - state.revenue
        if remaining <= 0:
            return None
        num_seeds = len(state.seeds_in_order)
        scanned: list[tuple[float, int]] = []
        best = None
        best_drop = 0.0
        best_fits = False
        while True:
            top = self._pop_fresh(problem, ad, state, allocation)
            if top is None:
                if not scanned and best is None:
                    state.active = False
                break
            node, cov, score = top
            scanned.append((-score, node))
            marginal = self._marginal_revenue(problem, ad, state, node, cov, cpes)
            drop = regret_of(
                budgets[ad], state.revenue, problem.penalty, num_seeds
            ) - regret_of(
                budgets[ad], state.revenue + marginal, problem.penalty, num_seeds + 1
            )
            fits = marginal <= remaining
            if drop > 1e-12 and _beats(drop, fits, best_drop, best_fits):
                best = (node, cov, marginal, drop)
                best_drop, best_fits = drop, fits
            if self.select_rule == "coverage" or fits:
                break
        for entry in scanned:
            heapq.heappush(state.heap, entry)
        return best

    def _marginal_revenue(self, problem, ad: int, state: _AdState, node: int,
                          cov: int, cpes) -> float:
        """Theorem 5: ``cpe(i) · n · δ(v, i) · cov(v)/θ_i``."""
        return float(
            cpes[ad] * problem.num_nodes * problem.ctps[ad, node] * cov / state.theta
        )
