"""TIRM — Two-phase Iterative Regret Minimization (Algorithms 2–4, §5.2).

TIRM follows Algorithm 1's greedy logic but replaces Monte-Carlo spread
estimation with RR-set coverage (§5.1), resolving the two obstacles a
direct TIM application faces:

* **CTPs** — sampling RRC-sets directly would need ~100× more samples at
  realistic 1–3% CTPs, so plain RR-sets are sampled and marginal
  coverages are multiplied by ``δ(v, i)`` (Theorem 5 guarantees the same
  expectation);
* **unknown seed counts** — the budget, not a seed count, drives how many
  seeds each ad needs, so the per-ad seed-size estimate ``s_i`` (hence
  the sample size ``θ_i = L(s_i, ε)``) is revised iteratively: whenever
  ``|S_i|`` reaches ``s_i``, grow it by ``⌊R_i(S_i) / marginal-revenue⌋``
  (a submodularity-justified lower bound on the seeds still needed),
  sample the extra RR-sets, and re-estimate existing seeds' coverage
  against them (Algorithm 4) so future marginals stay accurate.

Differences from the pseudocode, both documented in DESIGN.md:

* ``s_i`` grows by at least 1 when triggered (the literal ``⌊·⌋`` can
  return 0, freezing ``θ_i`` forever);
* ``select_rule="weighted"`` (default) ranks candidates by
  ``δ(v, i) · coverage`` — the true marginal-revenue order Algorithm 1
  maximises; ``"coverage"`` gives the literal Algorithm-3 ranking.

This module is the **batch facade**: parameter validation, the
checkpoint compatibility record, and engine/cache lifecycle.  The loop
itself lives in :mod:`repro.algorithms.session` as the resumable
:class:`~repro.algorithms.session.AllocationSession` state machine —
``allocate()`` builds one engine, runs one session to completion, and
closes the engine, byte-identical to the historical monolithic loop by
the equivalence suite.  Long-lived callers (the :mod:`repro.service`
tier) drive sessions directly over pooled engines instead.
"""

from __future__ import annotations

import heapq
import math
import os

import numpy as np

from repro.advertising.problem import AdAllocationProblem
from repro.advertising.regret import regret_of
from repro.algorithms.base import AllocationResult, Allocator
from repro.algorithms.greedy import _beats

# Re-exported for compatibility: the per-ad state record and the
# cross-ad tie-break moved to the session module with the loop.
from repro.algorithms.session import (  # noqa: F401
    AllocationSession,
    _AdState,
    _select_candidate,
)
from repro.errors import ConfigurationError
from repro.rrset.backends import BACKEND_MODES, SamplingBackend, resolve_backend
from repro.rrset.checkpoint import TIRMCheckpoint
from repro.rrset.sampler import DEFAULT_CHUNK_SIZE
from repro.rrset.sharded import (
    ENGINE_MODES,
    RNG_MODES,
    START_METHODS,
    TRANSPORT_MODES,
    ShardedSamplingEngine,
)
from repro.rrset.tim import greedy_max_coverage, required_rr_sets
from repro.utils.rng import spawn_generators
from repro.utils.timing import Timer

#: Engine substrates the allocator accepts: the sharded engine's
#: in-process modes plus the distributed coordinator/worker tier
#: (:mod:`repro.dist`).  All byte-identical for the same
#: ``(seed, chunk_size)``.
ALLOCATOR_ENGINE_MODES = ENGINE_MODES + ("dist",)


class TIRMAllocator(Allocator):
    """Algorithm 2 with the Algorithm-3 selector and Algorithm-4 updates.

    Parameters
    ----------
    epsilon:
        RR-set accuracy parameter ε (paper: 0.1 quality / 0.2 scalability).
    ell:
        Confidence parameter ℓ of Eq. (5).
    select_rule:
        ``"weighted"`` (CTP-weighted coverage; default) or ``"coverage"``
        (the literal Algorithm 3).
    sampler_mode:
        ``"blocked"`` (default) draws RR-sets through the vectorized
        batched sampler — RNG in blocks, members written straight into
        the pool; ``"scalar"`` uses the original per-set Mersenne stream,
        which stays bit-compatible with the pre-pool implementation.
        Both are deterministic per ``seed``.
    engine:
        ``"serial"`` (default) samples every ad's RR-sets in-process;
        ``"process"`` fans the sharded engine's chunk tasks — the
        batched pilot phase *and* every single-ad growth top-up — across
        a fork-based process pool.  The two produce identical
        allocations for the same ``(seed, chunk_size)``: every chunk of
        RR sets is a pure function of its ``(seed, ad, set_index)``
        address (``rng="philox"``).  ``"dist"`` scatters the same chunk
        tasks to remote socket workers through a
        :class:`~repro.dist.Coordinator` (pass ``coordinator=``) —
        byte-identical again: topology is provenance, not contract.
    coordinator:
        Required with ``engine="dist"``: a started
        :class:`~repro.dist.Coordinator` (borrowed — the caller owns
        its lifetime) or a spec dict (``{"host": ..., "port": ...}``)
        from which each engine builds a coordinator it owns.  Rejected
        for in-process engines.
    rng:
        ``"philox"`` (default): counter-based streams — every RR set is
        addressed by ``(seed, ad, set_index)``, sampling parallelizes
        within an ad, and a mid-allocation resume is deterministic.
        ``"legacy"``: the historical stateful per-ad streams, bit-exact
        with the pre-pool implementation (and strictly sequential).
    chunk_size:
        Set-index chunk width of the counter-based streams (ignored for
        ``rng="legacy"``).  Part of the determinism contract: the same
        ``(seed, chunk_size)`` reproduces the same allocation.
    backend:
        Blocked-BFS sampling backend (:mod:`repro.rrset.backends`):
        ``"numpy"`` (reference, default), ``"numba"`` (JIT kernel,
        optional extra — raises
        :class:`~repro.errors.ConfigurationError` when not installed),
        ``"auto"`` (numba if importable, else numpy with a one-time
        warning), or a ready backend instance.  Backends produce
        byte-identical samples, so the backend is **not** part of the
        determinism contract — the same seed yields the same allocation
        on every backend, and a checkpoint written under one backend
        resumes under another.  Stats and provenance record the
        *resolved* name.
    transport:
        Worker-result transport for ``engine="process"``: ``"shm"``
        (workers publish packed chunk blocks into shared-memory
        segments; the parent splices zero-copy), ``"pickle"`` (blocks
        travel over the result pipe), or ``"auto"`` (default: shm where
        available).  Like ``backend``, **not** part of the determinism
        contract — both transports produce byte-identical pools and
        allocations, and checkpoints resume across transports.  Stats,
        provenance and checkpoints record the *resolved* name.
    start_method:
        Worker start method for ``engine="process"``: ``"fork"``,
        ``"spawn"``, or ``"auto"`` (default: fork where available, else
        spawn via a shared-memory payload arena).  Not part of the
        determinism contract.
    prefetch:
        When true (default), issue speculative next-θ prefetch hints to
        the engine after each growth event, so RR-set sampling overlaps
        greedy selection under ``engine="process"``.  Purely a pipeline
        knob: chunks are pure functions of their stream address, so the
        allocation is byte-identical with prefetch on or off (no-op for
        ``engine="serial"`` and ``rng="legacy"``).
    initial_pilot:
        RR-sets sampled per ad before the first ``θ_i`` is computed.
    min_rr_sets_per_ad / max_rr_sets_per_ad:
        Clamp on each ``θ_i`` — the max keeps laptop-scale runs bounded
        (the paper ran on a 65 GB server).
    max_workers:
        Process-pool width for ``engine="process"`` (default: cpu count).
    checkpoint_path / checkpoint_every:
        Snapshot the in-flight allocation to ``checkpoint_path`` every
        ``checkpoint_every`` iteration boundaries (default 1 when a path
        is given; atomic overwrite, see :mod:`repro.rrset.checkpoint`).
        Under ``rng="philox"`` the artifact holds no RR members — the
        counter-based streams re-derive them on resume; ``rng="legacy"``
        spills members to an mmap-backed sidecar.
    resume_from:
        Restore a mid-allocation snapshot and continue.  The resumed run
        produces a byte-identical allocation to the uninterrupted one
        for the same ``(seed, rng, chunk_size)``; mismatched parameters
        raise :class:`~repro.errors.ConfigurationError`.
    max_iterations:
        Stop after this many iterations *of this run* (writing a final
        checkpoint when ``checkpoint_path`` is set) and return the
        partial allocation with ``stats["truncated"] = True`` — the
        incremental building block for time-bounded allocation slices.
    dsan:
        Runtime determinism sanitizer (:mod:`repro.rrset.dsan`): when
        enabled the engine records a blake2 digest per ``(ad, chunk)``
        block it splices, and the result carries them in
        ``stats["dsan_digests"]`` plus a whole-run ``dsan_root``
        fingerprint (also in provenance).  ``None`` (default) defers to
        the ``REPRO_DSAN`` environment variable.  Pure observation: the
        allocation is byte-identical with dsan on or off.
    cache:
        Shard cache knob (:mod:`repro.store`): a directory path (or
        open :class:`~repro.store.ShardCache`) makes sampling
        read-through over the content-addressed block store, records
        the finished allocation (with provenance and cache counters) in
        the store's experiment catalog, and registers every checkpoint's
        shard references so ``repro gc`` keeps what a resume would
        re-read.  ``None`` (default) defers to the ``REPRO_CACHE``
        environment variable.  **Not** part of the determinism
        contract: a warm run performs zero sampling-backend invocations
        (``stats["backend_invocations"]``) yet stays byte-identical to
        a cold one.
    dataset:
        Optional label recorded in the experiment catalog's allocation
        row (shown by ``repro ls``).  The problem object carries no
        name, so the caller supplies one; purely informational.
    seed:
        Master RNG seed; per-ad samplers get independent child streams.

    Examples
    --------
    Allocate the paper's Figure-1 gadget; stats record the resolved
    RNG/backend contract that makes the run reproducible::

        >>> from repro.algorithms.tirm import TIRMAllocator
        >>> from repro.datasets.toy import figure1_problem
        >>> allocator = TIRMAllocator(seed=0, max_rr_sets_per_ad=1_000)
        >>> result = allocator.allocate(figure1_problem())
        >>> result.algorithm, result.allocation.total_seeds() > 0
        ('TIRM', True)
        >>> result.stats["rng"], result.stats["backend"]
        ('philox', 'numpy')
    """

    name = "TIRM"

    def __init__(
        self,
        *,
        epsilon: float = 0.1,
        ell: float = 1.0,
        select_rule: str = "weighted",
        sampler_mode: str = "blocked",
        engine: str = "serial",
        coordinator=None,
        rng: str = "philox",
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        backend="numpy",
        transport: str = "auto",
        start_method: str = "auto",
        prefetch: bool = True,
        initial_pilot: int = 1_000,
        min_rr_sets_per_ad: int = 500,
        max_rr_sets_per_ad: int = 200_000,
        max_workers: int | None = None,
        checkpoint_path=None,
        checkpoint_every: int | None = None,
        resume_from=None,
        max_iterations: int | None = None,
        dsan: bool | None = None,
        cache=None,
        dataset: str | None = None,
        seed=None,
    ) -> None:
        if not 0 < epsilon < 1:
            raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
        if ell <= 0:
            raise ConfigurationError(f"ell must be > 0, got {ell}")
        if select_rule not in ("weighted", "coverage"):
            raise ConfigurationError(
                f"select_rule must be 'weighted' or 'coverage', got {select_rule!r}"
            )
        if sampler_mode not in ("blocked", "scalar"):
            raise ConfigurationError(
                f"sampler_mode must be 'blocked' or 'scalar', got {sampler_mode!r}"
            )
        if engine not in ALLOCATOR_ENGINE_MODES:
            raise ConfigurationError(
                f"engine must be one of {ALLOCATOR_ENGINE_MODES}, got {engine!r}"
            )
        if rng not in RNG_MODES:
            raise ConfigurationError(f"rng must be one of {RNG_MODES}, got {rng!r}")
        if engine == "dist":
            if coordinator is None:
                raise ConfigurationError(
                    "engine='dist' needs a coordinator: pass a started "
                    "repro.dist.Coordinator or a spec dict"
                )
            if rng != "philox":
                raise ConfigurationError(
                    "engine='dist' requires rng='philox': legacy streams "
                    "cannot be re-derived on remote workers"
                )
        elif coordinator is not None:
            raise ConfigurationError(
                f"coordinator is only meaningful with engine='dist', "
                f"got engine={engine!r}"
            )
        if chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        if not isinstance(backend, SamplingBackend) and backend not in BACKEND_MODES:
            raise ConfigurationError(
                f"backend must be one of {BACKEND_MODES} or a SamplingBackend "
                f"instance, got {backend!r}"
            )
        if transport not in TRANSPORT_MODES:
            raise ConfigurationError(
                f"transport must be one of {TRANSPORT_MODES}, got {transport!r}"
            )
        if start_method not in START_METHODS:
            raise ConfigurationError(
                f"start_method must be one of {START_METHODS}, got {start_method!r}"
            )
        if min_rr_sets_per_ad < 1 or max_rr_sets_per_ad < min_rr_sets_per_ad:
            raise ConfigurationError(
                "need 1 <= min_rr_sets_per_ad <= max_rr_sets_per_ad, got "
                f"{min_rr_sets_per_ad} / {max_rr_sets_per_ad}"
            )
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if checkpoint_every is not None and checkpoint_path is None:
            raise ConfigurationError(
                "checkpoint_every requires a checkpoint_path to write to"
            )
        if max_iterations is not None and max_iterations < 1:
            raise ConfigurationError(
                f"max_iterations must be >= 1, got {max_iterations}"
            )
        self.epsilon = float(epsilon)
        self.ell = float(ell)
        self.select_rule = select_rule
        self.sampler_mode = sampler_mode
        self.engine = engine
        self.coordinator = coordinator
        self.rng = rng
        self.chunk_size = int(chunk_size)
        self.backend = backend
        self.transport = transport
        self.start_method = start_method
        self.prefetch = bool(prefetch)
        self.initial_pilot = int(initial_pilot)
        self.min_rr_sets_per_ad = int(min_rr_sets_per_ad)
        self.max_rr_sets_per_ad = int(max_rr_sets_per_ad)
        self.max_workers = max_workers
        self.checkpoint_path = (
            os.fspath(checkpoint_path) if checkpoint_path is not None else None
        )
        self.checkpoint_every = (
            int(checkpoint_every)
            if checkpoint_every is not None
            else (1 if self.checkpoint_path is not None else None)
        )
        self.resume_from = os.fspath(resume_from) if resume_from is not None else None
        self.max_iterations = (
            int(max_iterations) if max_iterations is not None else None
        )
        # Tri-state: None defers to REPRO_DSAN at engine construction.
        self.dsan = dsan
        # Tri-state likewise: None defers to REPRO_CACHE at allocate().
        self.cache = cache
        # Pure catalog label (the problem object carries no name): shown
        # in `repro ls`, never part of any contract.
        self.dataset = dataset
        self._seed = seed
        # Resolved at allocate() (or by the session guard): "auto"
        # commits to a substrate before any sampling so stats/
        # provenance/checkpoints record the resolved names.
        self._backend_obj = None
        self._transport_resolved = None

    # ------------------------------------------------------------------
    def allocate(self, problem: AdAllocationProblem) -> AllocationResult:
        with Timer() as timer:
            result = self._allocate(problem)
        result.runtime_seconds = timer.elapsed
        return result

    # ------------------------------------------------------------------
    def _allocate(self, problem: AdAllocationProblem) -> AllocationResult:
        # Resolve the shard cache here, above the engine: the catalog
        # records (allocation row, checkpoint references) land after
        # sampling finishes, so TIRM owns what it opens and the engine
        # only shares (and flushes) the instance.  Imported lazily so a
        # cache-less allocation never touches repro.store.
        from repro.store.cache import resolve_cache

        cache, cache_owned = resolve_cache(self.cache)
        try:
            return self._allocate_with_cache(problem, cache)
        finally:
            if cache_owned and cache is not None:
                cache.close()

    def _allocate_with_cache(
        self, problem: AdAllocationProblem, cache
    ) -> AllocationResult:
        # Resolve the sampling backend up front: "auto" commits to a
        # substrate (and warns if it degrades) before any sampling, an
        # unavailable explicit "numba" fails here with a clean
        # ConfigurationError, and stats/provenance/checkpoints all
        # record the *resolved* name.  Backends are byte-identical, so
        # resolution never affects the allocation — only throughput.
        self._backend_obj = resolve_backend(self.backend)
        # Same story for the transport: resolve "auto" up front so
        # stats/provenance/checkpoints record the substrate actually
        # used (and an unavailable explicit 'shm' fails cleanly here).
        # Like the backend, it is recorded but never matched on resume.
        # The distributed engine's transport is always the socket wire.
        self._transport_resolved = (
            "socket" if self.engine == "dist"
            else ShardedSamplingEngine.resolve_transport(self.transport)
        )
        checkpoint = self._load_checkpoint(problem)
        engine = self._build_engine(problem, cache, checkpoint)
        with engine:
            session = AllocationSession(
                problem, self, engine=engine, cache=cache, checkpoint=checkpoint
            )
            return session.run()

    # ------------------------------------------------------------------
    # Engine / checkpoint plumbing (shared with the service tier)
    # ------------------------------------------------------------------
    def _load_checkpoint(self, problem) -> TIRMCheckpoint | None:
        """Load and validate ``resume_from``, or ``None`` for a fresh run."""
        if self.resume_from is None:
            return None
        checkpoint = TIRMCheckpoint.load(self.resume_from)
        checkpoint.validate_config(self._checkpoint_config(problem))
        return checkpoint

    def _build_engine(
        self, problem, cache, checkpoint=None, **engine_kwargs
    ) -> ShardedSamplingEngine:
        """Construct the sharded engine for one run of ``problem``.

        ``engine_kwargs`` pass through to the engine constructor — the
        service tier uses this to enable ``retain_blocks`` on pooled
        engines; the batch facade passes nothing extra.
        """
        h = problem.num_ads
        # Counter-based streams take the master seed directly (per-ad
        # separation happens in the spawn key); the legacy streams keep
        # the historical per-ad child generators for bit-exactness.  On
        # resume the checkpoint's entropy roots are authoritative: they
        # rebuild the exact streams the snapshot was sampled from.
        if self.rng == "legacy":
            seeds = spawn_generators(self._seed, h)
        elif checkpoint is not None:
            seeds = list(checkpoint.entropies)
        else:
            seeds = self._seed
        if self.engine == "dist":
            # Imported lazily: the distributed tier is an optional layer
            # over the engine seam, and an in-process allocation never
            # touches repro.dist.
            from repro.dist.engine import DistributedEngine

            return DistributedEngine(
                problem.graph,
                [problem.ad_edge_probabilities(ad) for ad in range(h)],
                coordinator=self.coordinator,
                seeds=seeds,
                mode=self.sampler_mode,
                rng=self.rng,
                chunk_size=self.chunk_size,
                backend=self._backend_obj if self._backend_obj is not None
                else self.backend,
                dsan=self.dsan,
                cache=cache,
                max_workers=self.max_workers,
                **engine_kwargs,
            )
        return ShardedSamplingEngine(
            problem.graph,
            [problem.ad_edge_probabilities(ad) for ad in range(h)],
            seeds=seeds,
            mode=self.sampler_mode,
            engine=self.engine,
            max_workers=self.max_workers,
            rng=self.rng,
            chunk_size=self.chunk_size,
            backend=self._backend_obj if self._backend_obj is not None
            else self.backend,
            transport=self.transport,
            start_method=self.start_method,
            dsan=self.dsan,
            cache=cache,
            **engine_kwargs,
        )

    def _checkpoint_config(self, problem) -> dict:
        """The compatibility record stored in (and validated against)
        every checkpoint artifact: resuming under different allocator
        parameters or a different problem would silently converge to a
        different allocation, so mismatches are refused up front.

        ``backend`` and ``transport`` are recorded as provenance but
        deliberately *not* matched on resume — both are byte-identical
        substrates, so a numpy/pickle checkpoint resumes under
        numba/shm (and vice versa) unchanged.
        """
        seed = int(self._seed) if isinstance(self._seed, (int, np.integer)) else None
        if self._backend_obj is None:
            self._backend_obj = resolve_backend(self.backend)
        if self._transport_resolved is None:
            self._transport_resolved = (
                "socket" if self.engine == "dist"
                else ShardedSamplingEngine.resolve_transport(self.transport)
            )
        return {
            "algorithm": self.name,
            "rng": self.rng,
            "chunk_size": self.chunk_size if self.rng == "philox" else None,
            "backend": self._backend_obj.name,
            "transport": self._transport_resolved,
            "sampler_mode": self.sampler_mode,
            "select_rule": self.select_rule,
            "epsilon": self.epsilon,
            "ell": self.ell,
            "initial_pilot": self.initial_pilot,
            "min_rr_sets_per_ad": self.min_rr_sets_per_ad,
            "max_rr_sets_per_ad": self.max_rr_sets_per_ad,
            "num_ads": problem.num_ads,
            "num_nodes": problem.num_nodes,
            "num_edges": problem.graph.num_edges,
            "seed": seed,
        }

    # ------------------------------------------------------------------
    # Selection / θ policy (Algorithm 3, lazily)
    # ------------------------------------------------------------------
    # These are the *policy* half of the refactor: pure functions of the
    # run state with no engine or lifecycle coupling, kept on the config
    # object (old signatures, ``problem`` passed in) so the session
    # delegates to them and subclasses — including the frozen legacy
    # harness in the equivalence suite — can override them.

    #: Greedy-cover pilot size for OPT_s estimation: the cover runs on an
    #: i.i.d. prefix of the sample, so a fixed-size pilot estimates the
    #: same coverage fraction at O(1) cost per growth event.
    _OPT_PILOT_SETS = 2_000

    def _theta_for(self, problem, state: _AdState, s: int) -> int:
        """``θ_i = L(s, ε)`` with a greedy-pilot OPT_s lower bound.

        The pilot is a zero-copy CSR window over the first sets of the
        pool, so each growth event costs O(pilot), not O(θ).
        """
        n = problem.num_nodes
        s = min(max(s, 1), n)
        pilot = state.collection.prefix_view(self._OPT_PILOT_SETS)
        _, covered = greedy_max_coverage(pilot, n, s)
        opt_lower = max(n * covered / pilot.num_sets, float(min(s, n)), 1.0)
        theta = required_rr_sets(n, s, self.epsilon, opt_lower, ell=self.ell)
        return int(min(max(theta, self.min_rr_sets_per_ad), self.max_rr_sets_per_ad))

    def _recompute_revenue(self, problem, ad: int, state: _AdState, cpes) -> None:
        """``Π_i(S_i) = Σ_v cpe·n·δ(v,i)·cov(v)/θ_i`` over chosen seeds."""
        n = problem.num_nodes
        delta = problem.ad_ctps(ad)
        theta = state.theta
        state.revenue = float(
            sum(
                cpes[ad] * n * delta[node] * count / theta
                for node, count in state.marginal_coverage.items()
            )
        )

    def _score(self, problem, ad: int, node: int, cov: int) -> float:
        if self.select_rule == "weighted":
            return float(problem.ctps[ad, node]) * cov
        return float(cov)

    def _rebuild_heap(self, problem, ad: int, state: _AdState) -> None:
        coverage = state.collection.coverage()
        nodes = np.flatnonzero(coverage > 0)
        if self.select_rule == "weighted":
            scores = problem.ctps[ad, nodes] * coverage[nodes]
        else:
            scores = coverage[nodes].astype(np.float64)
        state.heap = [(-float(s), int(v)) for s, v in zip(scores, nodes)]
        heapq.heapify(state.heap)

    def _pop_fresh(self, problem, ad: int, state: _AdState, allocation):
        """Pop the eligible node with the largest *fresh* score.

        Scores only decrease between heap rebuilds (covered sets are
        removed), so re-pushing stale entries with their current score is
        sound.  Returns ``(node, coverage, score)`` or ``None`` when no
        eligible node with positive score remains.
        """
        heap = state.heap
        while heap:
            neg_score, node = heap[0]
            if not allocation.can_assign(node, ad, problem.attention):
                heapq.heappop(heap)
                continue
            cov = state.collection.coverage_of(node)
            current = self._score(problem, ad, node, cov)
            if current <= 0.0:
                heapq.heappop(heap)
                continue
            if math.isclose(current, -neg_score, rel_tol=1e-12, abs_tol=1e-12):
                heapq.heappop(heap)
                return node, cov, current
            heapq.heapreplace(heap, (-current, node))
        return None

    def _best_candidate(self, problem, ad: int, state: _AdState, allocation, budgets, cpes):
        """Argmax-drop candidate for one ad: ``(node, cov, marginal, drop)``.

        With the default ``weighted`` rule, candidates come off the heap
        in decreasing marginal-revenue order, so drops first rise toward
        the remaining budget and then only shrink — the scan stops at
        the first candidate whose marginal fits within the remaining
        budget (exact argmax, same argument as Algorithm 1's greedy).
        The ``coverage`` rule reproduces the literal Algorithm 3: only
        the single top-coverage node is considered.
        """
        remaining = budgets[ad] - state.revenue
        if remaining <= 0:
            return None
        num_seeds = len(state.seeds_in_order)
        scanned: list[tuple[float, int]] = []
        best = None
        best_drop = 0.0
        best_fits = False
        while True:
            top = self._pop_fresh(problem, ad, state, allocation)
            if top is None:
                if not scanned and best is None:
                    state.active = False
                break
            node, cov, score = top
            scanned.append((-score, node))
            marginal = self._marginal_revenue(problem, ad, state, node, cov, cpes)
            drop = regret_of(
                budgets[ad], state.revenue, problem.penalty, num_seeds
            ) - regret_of(
                budgets[ad], state.revenue + marginal, problem.penalty, num_seeds + 1
            )
            fits = marginal <= remaining
            if drop > 1e-12 and _beats(drop, fits, best_drop, best_fits):
                best = (node, cov, marginal, drop)
                best_drop, best_fits = drop, fits
            if self.select_rule == "coverage" or fits:
                break
        for entry in scanned:
            heapq.heappush(state.heap, entry)
        return best

    def _marginal_revenue(self, problem, ad: int, state: _AdState, node: int,
                          cov: int, cpes) -> float:
        """Theorem 5: ``cpe(i) · n · δ(v, i) · cov(v)/θ_i``."""
        return float(
            cpes[ad] * problem.num_nodes * problem.ctps[ad, node] * cov / state.theta
        )
