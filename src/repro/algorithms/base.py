"""Common allocator interface and result type.

Every algorithm consumes an :class:`~repro.advertising.AdAllocationProblem`
and produces an :class:`AllocationResult`: the seed-set allocation, the
algorithm's *internal* revenue estimates (what it believed while running),
and run statistics.  Ground-truth regret is always re-measured afterwards
by the neutral Monte-Carlo referee in :mod:`repro.evaluation` — exactly as
the paper evaluates all algorithms with 10K MC runs regardless of how they
estimated spread internally (§6).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.advertising.allocation import Allocation
from repro.advertising.problem import AdAllocationProblem
from repro.advertising.regret import RegretBreakdown, allocation_regret


@dataclass
class AllocationResult:
    """Outcome of one allocator run.

    Attributes
    ----------
    algorithm:
        Human-readable algorithm name ("TIRM", "Myopic", ...).
    allocation:
        The seed sets ``S = (S_1, ..., S_h)``.
    estimated_revenues:
        The allocator's own ``Π_i(S_i)`` estimates at termination (not
        ground truth).
    budgets:
        Effective budgets ``B'_i``, copied from the problem for
        self-contained reporting.
    penalty:
        λ used.
    runtime_seconds:
        Wall-clock allocation time.
    stats:
        Free-form counters (RR-sets sampled, memory bytes, iterations...).
    """

    algorithm: str
    allocation: Allocation
    estimated_revenues: np.ndarray
    budgets: np.ndarray
    penalty: float
    runtime_seconds: float = 0.0
    stats: dict[str, Any] = field(default_factory=dict)

    def estimated_regret(self) -> RegretBreakdown:
        """Regret according to the allocator's internal estimates."""
        return allocation_regret(
            self.estimated_revenues,
            self.budgets,
            self.allocation.seed_counts(),
            self.penalty,
        )

    def num_targeted_users(self) -> int:
        """Distinct users targeted at least once (the Table-3 metric)."""
        return len(self.allocation.targeted_users())

    def __repr__(self) -> str:
        return (
            f"AllocationResult({self.algorithm}, seeds={self.allocation.total_seeds()}, "
            f"est_regret={self.estimated_regret().total:.4g}, "
            f"time={self.runtime_seconds:.2f}s)"
        )


class Allocator(ABC):
    """Base class for all allocation algorithms."""

    #: Display name used in reports and figures.
    name: str = "allocator"

    @abstractmethod
    def allocate(self, problem: AdAllocationProblem) -> AllocationResult:
        """Compute a valid allocation for ``problem``."""

    def _empty_allocation(self, problem: AdAllocationProblem) -> Allocation:
        return Allocation(problem.num_ads, problem.num_nodes)
