"""Algorithm 1: the greedy regret-minimizing allocator (§4.1).

Repeatedly pick the (user, advertiser) pair whose assignment yields the
largest *strict* decrease in regret, subject to the user's attention
bound, until no pair decreases regret.

Spread evaluation is delegated to a pluggable
:class:`~repro.diffusion.spread.SpreadOracle`; marginal revenues are
submodular (Lemma 1 corollary), which justifies the CELF-style lazy
priority queues used to avoid re-evaluating every candidate each round.
Near the budget crossover the max-marginal-gain node is the one Claim 1's
analysis reasons about, so the default keeps the paper's behaviour; pass
``exhaustive=True`` to score *every* eligible pair per iteration exactly
as the pseudocode's argmax is written (only viable on small instances).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.advertising.problem import AdAllocationProblem
from repro.advertising.regret import regret_of
from repro.algorithms.base import AllocationResult, Allocator
from repro.diffusion.spread import MonteCarloSpreadOracle, SpreadOracle
from repro.errors import ConfigurationError
from repro.utils.timing import Timer


class GreedyAllocator(Allocator):
    """Algorithm 1 with a pluggable spread oracle.

    Parameters
    ----------
    oracle_factory:
        Callable ``problem -> SpreadOracle``; defaults to a Monte-Carlo
        oracle with common random numbers (``num_runs`` below).
    num_runs:
        MC runs for the default oracle.
    exhaustive:
        If true, evaluate every eligible (user, ad) pair per iteration
        (the literal pseudocode); otherwise use CELF lazy evaluation.
    seed:
        RNG seed for the default oracle.
    """

    name = "Greedy"

    def __init__(
        self,
        *,
        oracle_factory=None,
        num_runs: int = 200,
        exhaustive: bool = False,
        seed=None,
    ) -> None:
        if num_runs < 1:
            raise ConfigurationError("num_runs must be >= 1")
        self._oracle_factory = oracle_factory
        self._num_runs = num_runs
        self._exhaustive = bool(exhaustive)
        self._seed = seed

    # ------------------------------------------------------------------
    def _make_oracle(self, problem: AdAllocationProblem) -> SpreadOracle:
        if self._oracle_factory is not None:
            return self._oracle_factory(problem)
        return MonteCarloSpreadOracle(problem, num_runs=self._num_runs, seed=self._seed)

    def allocate(self, problem: AdAllocationProblem) -> AllocationResult:
        with Timer() as timer:
            result = self._allocate(problem)
        result.runtime_seconds = timer.elapsed
        return result

    # ------------------------------------------------------------------
    def _allocate(self, problem: AdAllocationProblem) -> AllocationResult:
        oracle = self._make_oracle(problem)
        allocation = self._empty_allocation(problem)
        h, n = problem.num_ads, problem.num_nodes
        budgets = problem.catalog.budgets()
        revenues = np.zeros(h)
        iterations = 0

        if self._exhaustive:
            picker = _ExhaustivePicker(problem, oracle)
        else:
            picker = _LazyPicker(problem, oracle)

        while True:
            pick = picker.best_pair(allocation, revenues)
            if pick is None:
                break
            user, ad, new_revenue = pick
            allocation.assign(user, ad)
            revenues[ad] = new_revenue
            picker.notify_assigned(user, ad)
            iterations += 1

        return AllocationResult(
            algorithm=self.name,
            allocation=allocation,
            estimated_revenues=revenues,
            budgets=budgets,
            penalty=problem.penalty,
            stats={
                "iterations": iterations,
                "oracle_evaluations": getattr(oracle, "cache_size", None),
                "mode": "exhaustive" if self._exhaustive else "celf",
            },
        )


def _regret_drop(budget: float, revenue: float, new_revenue: float, penalty: float,
                 num_seeds: int) -> float:
    """Regret decrease from growing a seed set by one node."""
    current = regret_of(budget, revenue, penalty, num_seeds)
    proposed = regret_of(budget, new_revenue, penalty, num_seeds + 1)
    return current - proposed


def _beats(drop: float, fits: bool, best_drop: float, best_fits: bool) -> bool:
    """Candidate comparison: larger drop wins; on (numerical) ties a
    candidate that stays within budget beats one that overshoots.

    The paper breaks ties arbitrarily; preferring the non-overshooting
    side keeps room for further regret reduction (e.g. it recovers the
    zero-regret allocation on the Theorem-1 gadget).
    """
    if drop > best_drop + 1e-12:
        return True
    return abs(drop - best_drop) <= 1e-12 and fits and not best_fits


class _ExhaustivePicker:
    """Literal Algorithm-1 argmax over all eligible (user, ad) pairs."""

    def __init__(self, problem: AdAllocationProblem, oracle: SpreadOracle) -> None:
        self.problem = problem
        self.oracle = oracle

    def best_pair(self, allocation, revenues):
        problem = self.problem
        budgets = problem.catalog.budgets()
        best = None
        best_drop = 0.0
        best_fits = False
        for ad in range(problem.num_ads):
            seeds = allocation.seeds(ad)
            num_seeds = len(seeds)
            for user in range(problem.num_nodes):
                if not allocation.can_assign(user, ad, problem.attention):
                    continue
                new_revenue = self.oracle.revenue(ad, seeds | {user})
                drop = _regret_drop(
                    budgets[ad], revenues[ad], new_revenue, problem.penalty, num_seeds
                )
                fits = new_revenue <= budgets[ad]
                if drop > 1e-12 and _beats(drop, fits, best_drop, best_fits):
                    best = (user, ad, new_revenue)
                    best_drop, best_fits = drop, fits
        return best

    def notify_assigned(self, user: int, ad: int) -> None:  # stateless
        return None


class _LazyPicker:
    """CELF lazy evaluation: per-ad max-heaps keyed by marginal revenue.

    Marginal revenues only shrink as seed sets grow (submodularity), so a
    popped entry whose stamp is stale is re-scored and pushed back; a
    fresh top entry is the true max-marginal node for its ad.
    """

    def __init__(self, problem: AdAllocationProblem, oracle: SpreadOracle) -> None:
        self.problem = problem
        self.oracle = oracle
        self.budgets = problem.catalog.budgets()
        # heap entries: (-marginal_revenue, stamp, user)
        self.heaps: list[list[tuple[float, int, int]]] = []
        self.stamps = [0] * problem.num_ads
        for ad in range(problem.num_ads):
            heap = []
            empty = frozenset()
            base = 0.0
            for user in range(problem.num_nodes):
                marginal = self.oracle.revenue(ad, frozenset({user})) - base
                heap.append((-marginal, 0, user))
            heapq.heapify(heap)
            self.heaps.append(heap)

    def _pop_fresh(self, ad: int, allocation) -> tuple[int, float] | None:
        """Pop the eligible node with the largest *fresh* marginal revenue."""
        heap = self.heaps[ad]
        seeds = None
        while heap:
            neg_marginal, stamp, user = heap[0]
            if not allocation.can_assign(user, ad, self.problem.attention):
                heapq.heappop(heap)  # permanently ineligible for this ad
                continue
            if stamp == self.stamps[ad]:
                heapq.heappop(heap)
                return user, -neg_marginal
            heapq.heappop(heap)
            if seeds is None:
                seeds = allocation.seeds(ad)
            base = self.oracle.revenue(ad, seeds)
            marginal = self.oracle.revenue(ad, seeds | {user}) - base
            heapq.heappush(heap, (-marginal, self.stamps[ad], user))
        return None

    def _best_for_ad(self, ad: int, allocation, revenue: float):
        """Exact argmax-drop node for one ad.

        Scanning candidates in decreasing marginal-revenue order, the
        drop is ``2·remaining − mg − λ`` while ``mg > remaining`` and
        ``mg − λ`` once ``mg ≤ remaining``; past that point drops only
        shrink, so the scan stops at the first such candidate.
        """
        remaining = self.budgets[ad] - revenue
        if remaining <= 0:
            # Already at/over budget: any positive marginal adds regret.
            return None
        num_seeds = len(allocation.seeds(ad))
        scanned: list[tuple[float, int, int]] = []
        best = None
        best_drop = 0.0
        best_fits = False
        while True:
            top = self._pop_fresh(ad, allocation)
            if top is None:
                break
            user, marginal = top
            scanned.append((-marginal, self.stamps[ad], user))
            drop = _regret_drop(
                self.budgets[ad],
                revenue,
                revenue + marginal,
                self.problem.penalty,
                num_seeds,
            )
            fits = marginal <= remaining
            if drop > 1e-12 and _beats(drop, fits, best_drop, best_fits):
                best = (user, revenue + marginal, drop)
                best_drop, best_fits = drop, fits
            if fits:
                break  # every later candidate has a smaller drop
        for entry in scanned:
            heapq.heappush(self.heaps[ad], entry)
        return best

    def best_pair(self, allocation, revenues):
        best = None
        best_drop = 0.0
        for ad in range(self.problem.num_ads):
            candidate = self._best_for_ad(ad, allocation, revenues[ad])
            if candidate is None:
                continue
            user, new_revenue, drop = candidate
            if drop > best_drop + 1e-12:
                best = (user, ad, new_revenue)
                best_drop = drop
        return best

    def notify_assigned(self, user: int, ad: int) -> None:
        """Invalidate the assigned ad's stamps (its marginals changed)."""
        self.stamps[ad] += 1
