"""The regret bounds of Theorems 2, 3 and 4 (§4.2–4.3).

With ``p_i = max_x Π_i({x}) / B_i`` (the largest single-node marginal as
a budget fraction) and ``p_max = max_i p_i``:

* **Theorem 2** (κ_u ≥ h, λ ≤ δ·cpe): Greedy's regret is at most
  ``Σ_i (p_i B_i + λ)/2  +  λ Σ_i (1 + s_opt^i ⌈ln 1/(p_i/2 − λ/2B_i)⌉)``;
* **Theorem 3** (λ = 0): total regret ≤ ``B/3``;
* **Theorem 4** (λ = 0): total regret ≤ ``min(p_max/2, 1 − p_max) · B``
  (generalises Theorem 3 — the two meet at ``p_max = 2/3``).

``p_i`` and ``s_opt^i`` are not observable exactly; :func:`compute_bounds`
estimates them from RR-set samples (single-node revenue = CTP-weighted
coverage; ``s_opt`` = greedy seeds until the budget is reached).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.advertising.problem import AdAllocationProblem
from repro.rrset.pool import RRSetPool
from repro.rrset.sampler import RRSetSampler
from repro.utils.rng import spawn_generators


def theorem2_bound(budgets, p_values, penalty, s_opt_values) -> float:
    """The Theorem-2 upper bound on Greedy's total regret.

    Returns ``inf`` when the Theorem-2 assumptions fail for some ad
    (``p_i/2 − λ/(2B_i) ≤ 0`` makes the logarithmic term undefined).
    """
    budgets = np.asarray(budgets, dtype=np.float64)
    p_values = np.asarray(p_values, dtype=np.float64)
    s_opts = np.asarray(s_opt_values, dtype=np.float64)
    if not budgets.shape == p_values.shape == s_opts.shape:
        raise ValueError("budgets, p_values and s_opt_values must be aligned")
    if penalty < 0:
        raise ValueError(f"penalty must be >= 0, got {penalty}")
    total = 0.0
    for b, p, s_opt in zip(budgets, p_values, s_opts):
        total += (p * b + penalty) / 2.0
        if penalty > 0:
            margin = p / 2.0 - penalty / (2.0 * b)
            if margin <= 0:
                return float("inf")
            total += penalty * (1.0 + s_opt * math.ceil(math.log(1.0 / margin)))
        else:
            total += 0.0  # the seed-regret term vanishes at λ = 0
    return float(total)


def theorem3_bound(total_budget: float) -> float:
    """Theorem 3: ``B/3`` (λ = 0, premise: such an allocation exists)."""
    return float(total_budget) / 3.0


def theorem4_bound(p_max: float, total_budget: float) -> float:
    """Theorem 4: ``min(p_max/2, 1 − p_max) · B`` (λ = 0)."""
    if not 0 < p_max < 1:
        raise ValueError(f"Theorem 4 assumes p_max in (0, 1), got {p_max}")
    return min(p_max / 2.0, 1.0 - p_max) * float(total_budget)


@dataclass(frozen=True)
class RegretBounds:
    """Estimated theorem bounds for one problem instance."""

    p_values: np.ndarray
    s_opt_values: np.ndarray
    total_budget: float
    penalty: float
    budgets: np.ndarray

    @property
    def p_max(self) -> float:
        """``max_i p_i``."""
        return float(np.max(self.p_values))

    @property
    def theorem4_applicable(self) -> bool:
        """Theorems 2–4 assume every ``p_i ∈ (0, 1)`` (§4.1 "Practical
        considerations"); instances where one seed can overshoot a whole
        budget fall outside them."""
        return bool(0.0 < self.p_max < 1.0)

    @property
    def theorem2(self) -> float:
        """Theorem-2 bound (``inf`` if its assumptions fail)."""
        return theorem2_bound(self.budgets, self.p_values, self.penalty, self.s_opt_values)

    @property
    def theorem3(self) -> float:
        """Theorem-3 bound ``B/3``."""
        return theorem3_bound(self.total_budget)

    @property
    def theorem4(self) -> float:
        """Theorem-4 bound."""
        return theorem4_bound(self.p_max, self.total_budget)

    def __repr__(self) -> str:
        return (
            f"RegretBounds(p_max={self.p_max:.4f}, theorem3={self.theorem3:.4g}, "
            f"theorem4={self.theorem4:.4g})"
        )


def compute_bounds(
    problem: AdAllocationProblem,
    *,
    rr_sets_per_ad: int = 5_000,
    seed=None,
) -> RegretBounds:
    """Estimate ``p_i`` and ``s_opt^i`` from RR-set samples.

    * ``p_i``: the largest single-node revenue ``cpe·n·δ(v)·cov(v)/θ``
      divided by ``B_i``;
    * ``s_opt^i``: seeds chosen greedily (by CTP-weighted marginal
      coverage, attention ignored — it is the *optimal* algorithm's
      count) until the estimated revenue reaches ``B_i``.
    """
    if rr_sets_per_ad < 1:
        raise ValueError("rr_sets_per_ad must be >= 1")
    h, n = problem.num_ads, problem.num_nodes
    budgets = problem.catalog.budgets()
    cpes = problem.catalog.cpes()
    rngs = spawn_generators(seed, h)
    p_values = np.zeros(h)
    s_opts = np.zeros(h)
    for ad in range(h):
        sampler = RRSetSampler(problem.graph, problem.ad_edge_probabilities(ad), seed=rngs[ad])
        collection = RRSetPool(n)
        sampler.sample_into(collection, rr_sets_per_ad)
        theta = collection.num_total
        delta = problem.ad_ctps(ad)
        weight = cpes[ad] * n / theta
        single_revenues = weight * delta * collection.coverage()
        p_values[ad] = float(single_revenues.max()) / budgets[ad]
        # Greedy until budget: marginal revenue of the best remaining node.
        revenue = 0.0
        count = 0
        while revenue < budgets[ad] and count < n:
            scores = delta * collection.coverage()
            best = int(np.argmax(scores))
            if scores[best] <= 0:
                break
            gain = weight * scores[best]
            collection.remove_covered(best)
            revenue += gain
            count += 1
        s_opts[ad] = count
    return RegretBounds(
        p_values=p_values,
        s_opt_values=s_opts,
        total_budget=problem.catalog.total_budget(),
        penalty=problem.penalty,
        budgets=budgets,
    )
