"""Content digests for graphs and arrays (the shard-cache key footing).

The shard cache (:mod:`repro.store`) addresses cached RR-set blocks by
the inputs that determine their bytes.  ``DirectedGraph.__hash__`` is
shape-only (it exists for container identity, not content), so the
cache needs a real content digest: :func:`graph_digest` hashes the
canonical edge arrays, and :func:`array_digest` hashes any numeric
array (the per-ad edge-probability rows) including dtype and shape, so
two arrays with equal bytes but different widths never collide.

Digests are blake2b hexdigests at the same 16-byte width as the dsan
chunk digests (:data:`repro.rrset.dsan.DIGEST_SIZE`) — collision
resistance far beyond what a content-addressed cache needs, at a cost
of one linear pass over the bytes.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: blake2b digest width (bytes), matching the dsan chunk digests.
DIGEST_SIZE = 16


def array_digest(array, *, label: str = "") -> str:
    """Content digest of one numeric array: dtype, shape, then bytes.

    ``label`` namespaces the digest (e.g. ``"probs"``), so digests of
    different fields never collide even for equal bytes.
    """
    array = np.ascontiguousarray(array)
    digest = hashlib.blake2b(digest_size=DIGEST_SIZE)
    digest.update(label.encode())
    digest.update(str(array.dtype.str).encode())
    digest.update(str(array.shape).encode())
    digest.update(array.tobytes())
    return digest.hexdigest()


def graph_digest(graph) -> str:
    """Content digest of a :class:`~repro.graph.digraph.DirectedGraph`.

    Hashes the dimensions plus the canonical edge arrays
    (``edge_sources``/``edge_targets``, in edge-id order) — exactly the
    identity per-ad probability rows index into, so together with
    :func:`array_digest` of a probability row it pins every input of an
    RR-set chunk besides the stream address.  Falls back to the in-CSR
    arrays for graphs built without the canonical edge list (e.g. the
    spawn-arena reconstruction, which ships only the in-CSR).
    """
    digest = hashlib.blake2b(digest_size=DIGEST_SIZE)
    digest.update(f"graph:{graph.num_nodes}:{graph.num_edges};".encode())
    sources = getattr(graph, "edge_sources", None)
    targets = getattr(graph, "edge_targets", None)
    if sources is not None and targets is not None:
        digest.update(np.ascontiguousarray(sources).tobytes())
        digest.update(np.ascontiguousarray(targets).tobytes())
    else:  # pragma: no cover - arena-rebuilt graphs never reach the cache
        digest.update(np.ascontiguousarray(graph.in_indptr).tobytes())
        digest.update(np.ascontiguousarray(graph.in_sources).tobytes())
        digest.update(np.ascontiguousarray(graph.in_edge_ids).tobytes())
    return digest.hexdigest()
