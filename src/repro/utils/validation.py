"""Small argument-validation helpers used across the library.

These raise :class:`ValueError` (or :class:`repro.errors.ConfigurationError`
where a whole configuration is at fault) with messages that name the
offending argument, so failures surface at the API boundary instead of deep
inside numpy kernels.
"""

from __future__ import annotations

import numpy as np


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Validate that ``value`` is positive (``> 0``; ``>= 0`` if not strict)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Validate a scalar probability in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")
    return float(value)


def check_probability_array(name: str, values) -> np.ndarray:
    """Validate an array of probabilities; returns a float64 ndarray."""
    array = np.asarray(values, dtype=np.float64)
    if array.size and (array.min() < 0.0 or array.max() > 1.0):
        raise ValueError(
            f"{name} must contain probabilities in [0, 1]; "
            f"range was [{array.min()}, {array.max()}]"
        )
    return array


def check_in_range(name: str, value: float, low: float, high: float) -> float:
    """Validate ``low <= value <= high``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value
