"""Small argument-validation helpers used across the library.

These raise :class:`ValueError` (or :class:`repro.errors.ConfigurationError`
where a whole configuration is at fault) with messages that name the
offending argument, so failures surface at the API boundary instead of deep
inside numpy kernels.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.errors import ConfigurationError

#: Bind addresses that stay on the local machine.  Everything else —
#: including the ``0.0.0.0`` / ``::`` wildcards — exposes the service
#: to the network and needs an explicit opt-in.
LOOPBACK_HOSTS = frozenset({"127.0.0.1", "localhost", "::1"})


def check_bind_host(host: str, *, allow_remote: bool = False,
                    what: str = "server") -> str:
    """Validate a listening address against the loopback-by-default
    policy shared by ``repro serve`` and the distributed coordinator.

    A loopback ``host`` always passes.  A non-loopback host (wildcards
    like ``0.0.0.0`` included) raises
    :class:`~repro.errors.ConfigurationError` unless ``allow_remote``
    is set — and even then emits a one-line warning, because the wire
    protocols carry no authentication."""
    host = str(host)
    if host in LOOPBACK_HOSTS:
        return host
    if not allow_remote:
        raise ConfigurationError(
            f"refusing to bind {what} to non-loopback host {host!r}: the "
            f"protocol is unauthenticated; pass --allow-remote to expose "
            f"it anyway"
        )
    warnings.warn(
        f"binding {what} to non-loopback host {host!r}: the protocol is "
        f"unauthenticated — anyone who can reach this port can drive it",
        RuntimeWarning,
        stacklevel=2,
    )
    return host


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Validate that ``value`` is positive (``> 0``; ``>= 0`` if not strict)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Validate a scalar probability in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")
    return float(value)


def check_probability_array(name: str, values) -> np.ndarray:
    """Validate an array of probabilities; returns a float64 ndarray."""
    array = np.asarray(values, dtype=np.float64)
    if array.size and (array.min() < 0.0 or array.max() > 1.0):
        raise ValueError(
            f"{name} must contain probabilities in [0, 1]; "
            f"range was [{array.min()}, {array.max()}]"
        )
    return array


def check_in_range(name: str, value: float, low: float, high: float) -> float:
    """Validate ``low <= value <= high``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value
