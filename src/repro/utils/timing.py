"""Wall-clock timing helper used by the scalability benchmarks (Fig. 6)."""

from __future__ import annotations

import time


class Timer:
    """Context manager measuring wall-clock seconds.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.start: float = 0.0
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timer(elapsed={self.elapsed:.6f}s)"
