"""Random-number-generator plumbing.

Every stochastic entry point in the library accepts a ``seed`` argument that
may be ``None`` (fresh OS entropy), an ``int`` (deterministic), or an
existing :class:`numpy.random.Generator` (shared stream).  This module
centralises the conversion so that all modules behave identically.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | np.random.SeedSequence | None"


def as_generator(seed=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a deterministic stream, a
        :class:`numpy.random.SeedSequence`, or an existing ``Generator``
        (returned unchanged, so the caller shares its stream).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def seed_entropy(seed=None) -> int:
    """A stable integer entropy root for counter-based streams.

    Counter-based samplers (``np.random.Philox`` keyed by a
    :class:`~numpy.random.SeedSequence` with a structured ``spawn_key``)
    need one plain integer at the root so that every derived stream is a
    pure function of ``(entropy, spawn_key)``.  This converts any
    seed-like into that integer:

    * ``None`` — fresh OS entropy (random, but fixed for the caller's
      lifetime once drawn);
    * ``int`` — used as-is;
    * :class:`~numpy.random.SeedSequence` — its entropy when it is a
      root sequence with a plain-int entropy, else a 128-bit digest of
      its full state.  The digest covers the ``spawn_key``, so spawned
      children map to *different* roots than their parent — two engines
      seeded with a parent and one of its children must not end up with
      correlated streams;
    * :class:`~numpy.random.Generator` — one integer drawn from the
      stream (deterministic given the generator's state).
    """
    if isinstance(seed, np.random.Generator):
        return int(seed.integers(0, 2**63 - 1))
    if isinstance(seed, np.random.SeedSequence):
        if isinstance(seed.entropy, int) and not seed.spawn_key:
            return seed.entropy
        words = seed.generate_state(2, np.uint64)
        return (int(words[0]) << 64) | int(words[1])
    if seed is None:
        entropy = np.random.SeedSequence().entropy
        assert isinstance(entropy, int)
        return entropy
    return int(seed)


def keyed_generator(*key: int) -> np.random.Generator:
    """A generator addressed by a structured integer key.

    ``keyed_generator(a, b, ...)`` is a *pure* mapping from the key
    tuple to a PCG64 stream — the common-random-numbers pattern: e.g.
    the Monte-Carlo spread oracle keys every simulation by
    ``(run_seed, ad)`` so re-evaluating a seed set replays the exact
    same possible worlds.  Equivalent to (and stream-compatible with)
    ``np.random.default_rng([a, b, ...])``, kept here so generator
    construction stays inside the sanctioned RNG seam (lint rule R101).
    """
    if not key:
        raise ValueError("keyed_generator needs at least one key component")
    return np.random.default_rng([int(part) for part in key])


def spawn_generators(seed, count: int) -> list[np.random.Generator]:
    """Split ``seed`` into ``count`` statistically independent generators.

    Used when an algorithm runs several samplers (one per advertiser, one
    per worker) that must not share a stream yet must stay reproducible
    from a single seed.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children from the parent stream deterministically.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    sequence = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]
