"""Shared utilities: random-number handling, hashing, validation, timing."""

from repro.utils.hashing import array_digest, graph_digest
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_probability,
    check_probability_array,
)

__all__ = [
    "array_digest",
    "graph_digest",
    "as_generator",
    "spawn_generators",
    "Timer",
    "check_in_range",
    "check_positive",
    "check_probability",
    "check_probability_array",
]
