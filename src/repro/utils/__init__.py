"""Shared utilities: random-number handling, validation, timing."""

from repro.utils.rng import as_generator, spawn_generators
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_probability,
    check_probability_array,
)

__all__ = [
    "as_generator",
    "spawn_generators",
    "Timer",
    "check_in_range",
    "check_positive",
    "check_probability",
    "check_probability_array",
]
