"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``   list the built-in datasets and their statistics
``allocate``   run an allocator on a dataset and referee it with MC
``figure1``    reproduce the paper's Fig.-1 / Example-1 numbers exactly
``bounds``     estimate the Theorem 2/3/4 regret bounds for a dataset
``im``         classic influence maximization with the TIM substrate
"""

from repro.cli.main import build_parser, main

__all__ = ["main", "build_parser"]
