"""Argument parsing and command dispatch for the ``repro`` CLI.

Each command is a small function taking parsed args and returning an
exit code; all output goes through ``print`` so commands are trivially
testable with ``capsys``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable

from repro.algorithms.bounds import compute_bounds
from repro.algorithms.greedy import GreedyAllocator
from repro.algorithms.irie import GreedyIRIEAllocator
from repro.algorithms.myopic import MyopicAllocator, MyopicPlusAllocator
from repro.algorithms.tirm import TIRMAllocator
from repro.datasets.registry import DATASETS, load_dataset
from repro.errors import ConfigurationError, ReproError
from repro.evaluation.evaluator import RegretEvaluator
from repro.evaluation.reporting import format_table
from repro.graph.stats import graph_stats
from repro.rrset.backends import BACKEND_MODES
from repro.rrset.sampler import DEFAULT_CHUNK_SIZE
from repro.rrset.sharded import RNG_MODES, START_METHODS, TRANSPORT_MODES

_ALLOCATORS: dict[str, Callable[..., object]] = {
    "tirm": lambda args: TIRMAllocator(
        seed=args.seed, epsilon=args.epsilon, max_rr_sets_per_ad=args.max_rr_sets,
        engine=getattr(args, "engine", "serial"),
        coordinator=getattr(args, "_coordinator", None),
        rng=getattr(args, "rng", "philox"),
        chunk_size=getattr(args, "chunk_size", DEFAULT_CHUNK_SIZE),
        backend=getattr(args, "backend", "numpy"),
        transport=getattr(args, "transport", "auto"),
        start_method=getattr(args, "start_method", "auto"),
        prefetch=not getattr(args, "no_prefetch", False),
        max_workers=getattr(args, "workers", None),
        checkpoint_path=getattr(args, "checkpoint", None),
        checkpoint_every=getattr(args, "checkpoint_every", None),
        resume_from=_resume_path(args),
        dsan=True if getattr(args, "dsan", False) else None,
        cache=getattr(args, "cache", None),
        dataset=getattr(args, "dataset", None),
    ),
    "greedy": lambda args: GreedyAllocator(num_runs=args.mc_runs, seed=args.seed),
    "myopic": lambda args: MyopicAllocator(),
    "myopic+": lambda args: MyopicPlusAllocator(),
    "irie": lambda args: GreedyIRIEAllocator(alpha=args.alpha),
}

_DATASET_KWARG_NAMES = ("scale", "num_ads", "attention_bound", "penalty")


def _resume_path(args) -> str | None:
    """``--resume`` resolves to the ``--checkpoint`` path when an
    artifact already exists there — a fresh launch of an always-on job
    (no artifact yet) starts from scratch instead of erroring."""
    if not getattr(args, "resume", False):
        return None
    checkpoint = getattr(args, "checkpoint", None)
    if checkpoint is None:
        raise ConfigurationError("--resume requires --checkpoint PATH")
    return checkpoint if os.path.exists(checkpoint) else None


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Ad Allocation with Minimum Regret' (VLDB 2015)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("datasets", help="list built-in datasets")

    allocate = commands.add_parser("allocate", help="run an allocator on a dataset")
    allocate.add_argument("dataset", choices=sorted(DATASETS))
    allocate.add_argument("--algorithm", choices=sorted(_ALLOCATORS), default="tirm")
    allocate.add_argument("--scale", type=float, default=None,
                          help="dataset scale (synthetic datasets only)")
    allocate.add_argument("--num-ads", type=int, default=None, dest="num_ads")
    allocate.add_argument("--attention-bound", type=int, default=None,
                          dest="attention_bound")
    allocate.add_argument("--penalty", type=float, default=None,
                          help="seed penalty lambda")
    allocate.add_argument("--eval-runs", type=int, default=500)
    allocate.add_argument("--seed", type=int, default=0)
    allocate.add_argument("--epsilon", type=float, default=0.1)
    allocate.add_argument("--max-rr-sets", type=int, default=20_000, dest="max_rr_sets")
    allocate.add_argument("--engine", choices=("serial", "process", "dist"),
                          default="serial",
                          help="RR-set sampling engine: in-process serial, the "
                               "per-advertiser sharded process pool, or the "
                               "distributed coordinator over socket workers "
                               "(TIRM only; all give identical allocations "
                               "for a seed)")
    allocate.add_argument("--rng", choices=RNG_MODES, default="philox",
                          help="RR-set RNG streams (TIRM only): 'philox' = "
                               "counter-based, every set addressed by (seed, ad, "
                               "set index), chunk-parallel under --engine process; "
                               "'legacy' = the historical sequential streams")
    allocate.add_argument("--chunk-size", type=int, default=DEFAULT_CHUNK_SIZE,
                          dest="chunk_size",
                          help="set-index chunk width of the philox streams; part "
                               "of the determinism contract (same seed + same "
                               "chunk size = same allocation)")
    allocate.add_argument("--backend", choices=BACKEND_MODES, default="numpy",
                          help="blocked-BFS sampling backend (TIRM only): "
                               "'numpy' = the pure-numpy reference, 'numba' = "
                               "the JIT kernel (optional extra; errors if not "
                               "installed), 'auto' = numba when importable "
                               "with a one-time-warned numpy fallback.  All "
                               "backends give byte-identical allocations for "
                               "a seed — only throughput differs")
    allocate.add_argument("--workers", type=int, default=None,
                          help="process-pool width for --engine process "
                               "(default: cpu count)")
    allocate.add_argument("--transport", choices=TRANSPORT_MODES, default="auto",
                          help="worker→parent result transport for --engine "
                               "process: 'shm' = zero-copy shared-memory "
                               "blocks, 'pickle' = classic pickled arrays, "
                               "'auto' = shm when the platform supports it.  "
                               "Byte-identical allocations either way — only "
                               "throughput differs")
    allocate.add_argument("--start-method", choices=START_METHODS,
                          dest="start_method", default="auto",
                          help="worker start method for --engine process: "
                               "'auto' prefers fork and falls back to spawn "
                               "(full parallelism via a shared-memory payload "
                               "arena) where fork is unavailable")
    allocate.add_argument("--no-prefetch", action="store_true",
                          dest="no_prefetch",
                          help="disable speculative next-iteration chunk "
                               "prefetch (TIRM only; prefetch never changes "
                               "the allocation, only overlaps sampling with "
                               "greedy selection)")
    allocate.add_argument("--dsan", action="store_true",
                          help="enable the runtime determinism sanitizer "
                               "(TIRM only): record a blake2 digest per "
                               "(ad, chunk) RR block and a whole-run "
                               "dsan_root fingerprint in the stats; "
                               "REPRO_DSAN=1 does the same without the flag")
    allocate.add_argument("--checkpoint", default=None, metavar="PATH",
                          help="snapshot the TIRM allocation to PATH at "
                               "iteration boundaries (atomic overwrite; with "
                               "--rng philox the artifact holds no RR members "
                               "— they are re-derived on resume)")
    allocate.add_argument("--checkpoint-every", type=int, default=None,
                          dest="checkpoint_every", metavar="N",
                          help="snapshot every N iteration boundaries "
                               "(default 1 when --checkpoint is given)")
    allocate.add_argument("--resume", action="store_true",
                          help="resume from the --checkpoint artifact if it "
                               "exists; the resumed run is byte-identical to "
                               "an uninterrupted one for the same seed/rng/"
                               "chunk size")
    allocate.add_argument("--cache", default=None, metavar="DIR",
                          help="content-addressed RR-set shard cache (TIRM "
                               "only): sampled chunk blocks are stored under "
                               "DIR and a warm rerun of the same allocation "
                               "performs zero sampling-backend invocations "
                               "while staying byte-identical; also records "
                               "the run in DIR's experiment catalog (see "
                               "`repro ls`).  REPRO_CACHE=DIR does the same "
                               "without the flag")
    allocate.add_argument("--dist-port", type=int, default=0, dest="dist_port",
                          metavar="PORT",
                          help="coordinator TCP port for --engine dist "
                               "(default 0: ephemeral; the bound port is "
                               "printed so workers can dial in)")
    allocate.add_argument("--dist-host", default="127.0.0.1", dest="dist_host",
                          help="coordinator bind host for --engine dist "
                               "(non-loopback hosts need --allow-remote)")
    allocate.add_argument("--wait-workers", type=int, default=0,
                          dest="wait_workers", metavar="N",
                          help="block until N workers have dialed in before "
                               "allocating (--engine dist; without it the "
                               "coordinator's grace period applies and "
                               "chunks fall back to local compute)")
    allocate.add_argument("--allow-remote", action="store_true",
                          dest="allow_remote",
                          help="allow binding the --engine dist coordinator "
                               "to a non-loopback --dist-host (the protocol "
                               "is unauthenticated; loopback is the default)")
    allocate.add_argument("--mc-runs", type=int, default=200, dest="mc_runs")
    allocate.add_argument("--alpha", type=float, default=0.8)

    commands.add_parser("figure1", help="reproduce the Fig.-1 numbers exactly")

    bounds = commands.add_parser("bounds", help="Theorem 2/3/4 bound estimates")
    bounds.add_argument("dataset", choices=sorted(DATASETS))
    bounds.add_argument("--scale", type=float, default=None)
    bounds.add_argument("--rr-sets", type=int, default=4_000, dest="rr_sets")
    bounds.add_argument("--seed", type=int, default=0)

    im = commands.add_parser("im", help="influence maximization with TIM")
    im.add_argument("--nodes", type=int, default=1_000)
    im.add_argument("--k", type=int, default=10)
    im.add_argument("--epsilon", type=float, default=0.2)
    im.add_argument("--seed", type=int, default=0)

    lint = commands.add_parser(
        "lint",
        help="determinism-contract linter (REPRO1xx rules; exit 1 on findings)",
    )
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to lint (default: src)")
    lint.add_argument("--select", default=None, metavar="CODES",
                      help="comma-separated rule codes to run, e.g. R101,R105")
    lint.add_argument("--list-rules", action="store_true", dest="list_rules",
                      help="print the rule catalog and exit")

    cache_help = ("shard cache / experiment catalog directory "
                  "(default: the REPRO_CACHE environment variable)")
    ls = commands.add_parser(
        "ls", help="list the experiment catalog (allocations by default)"
    )
    ls.add_argument("--cache", default=None, metavar="DIR", help=cache_help)
    ls_what = ls.add_mutually_exclusive_group()
    ls_what.add_argument("--shards", action="store_true",
                         help="list cached shard blocks (LRU-oldest first)")
    ls_what.add_argument("--checkpoints", action="store_true",
                         help="list registered checkpoint artifacts")
    ls_what.add_argument("--benchmarks", action="store_true",
                         help="list recorded benchmark history")

    show = commands.add_parser("show", help="one catalog allocation in full")
    show.add_argument("id", type=int, help="allocation id (see `repro ls`)")
    show.add_argument("--cache", default=None, metavar="DIR", help=cache_help)

    diff = commands.add_parser(
        "diff",
        help="compare two catalog allocations; exit 1 when a "
             "determinism-contract field differs (substrate fields — "
             "engine/backend/transport — are shown but never compared)",
    )
    diff.add_argument("left", type=int, help="allocation id")
    diff.add_argument("right", type=int, help="allocation id")
    diff.add_argument("--cache", default=None, metavar="DIR", help=cache_help)

    gc = commands.add_parser(
        "gc", help="evict LRU cache entries down to a byte budget "
                   "(checkpoint-referenced shards are never dropped)"
    )
    gc.add_argument("--cache", default=None, metavar="DIR", help=cache_help)
    gc.add_argument("--max-bytes", type=int, required=True, dest="max_bytes",
                    metavar="N", help="target total size of cached block files")
    gc.add_argument("--dry-run", action="store_true", dest="dry_run",
                    help="report what would be evicted without deleting")

    serve = commands.add_parser(
        "serve",
        help="run the resident allocation service (warm engine pools; "
             "line-delimited JSON over TCP)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (default 0: pick an ephemeral port "
                            "and publish it via --port-file)")
    serve.add_argument("--port-file", default=None, dest="port_file",
                       metavar="PATH",
                       help="write the bound port to PATH (atomic; removed "
                            "on shutdown) so clients find an ephemeral port")
    serve.add_argument("--cache", default=None, metavar="DIR", help=cache_help)
    serve.add_argument("--allow-remote", action="store_true",
                       dest="allow_remote",
                       help="allow binding to a non-loopback --host (the "
                            "protocol is unauthenticated; loopback is the "
                            "default and never needs this)")
    serve.add_argument("--dist-port", type=int, default=None, dest="dist_port",
                       metavar="PORT",
                       help="also run a distributed-sampling coordinator on "
                            "PORT (0: ephemeral) so engine='dist' jobs "
                            "scatter chunks to `repro worker` fleets")
    serve.add_argument("--dist-host", default="127.0.0.1", dest="dist_host",
                       help="coordinator bind host (non-loopback needs "
                            "--allow-remote)")

    worker = commands.add_parser(
        "worker",
        help="run one stateless sampling worker against a coordinator "
             "(re-derives chunks from (seed, ad, chunk); any number may "
             "dial in and the allocation bytes never change)",
    )
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="the coordinator's address, e.g. 127.0.0.1:7070")
    worker.add_argument("--cache", default=None, metavar="DIR",
                        help="local content-addressed shard store consulted "
                             "before sampling and fed after (default: the "
                             "REPRO_CACHE environment variable)")
    worker.add_argument("--backend", choices=BACKEND_MODES, default="numpy",
                        help="this worker's blocked-BFS backend; byte-"
                             "identical across backends, so a fleet may mix "
                             "them freely")
    worker.add_argument("--name", default=None,
                        help="name reported to the coordinator's worker "
                             "table (default: pid-<pid>)")

    def _add_conn_args(command) -> None:
        command.add_argument("--host", default="127.0.0.1")
        command.add_argument("--port", type=int, default=None,
                             help="service port (or use --port-file)")
        command.add_argument("--port-file", default=None, dest="port_file",
                             metavar="PATH",
                             help="read the service port from PATH "
                                  "(written by `repro serve --port-file`)")

    submit = commands.add_parser(
        "submit", help="submit an allocation job to a running service"
    )
    submit.add_argument("dataset", choices=sorted(DATASETS))
    _add_conn_args(submit)
    submit.add_argument("--scale", type=float, default=None)
    submit.add_argument("--num-ads", type=int, default=None, dest="num_ads")
    submit.add_argument("--attention-bound", type=int, default=None,
                        dest="attention_bound")
    submit.add_argument("--penalty", type=float, default=None)
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--epsilon", type=float, default=0.1)
    submit.add_argument("--max-rr-sets", type=int, default=20_000,
                        dest="max_rr_sets")
    submit.add_argument("--engine", choices=("serial", "process", "dist"),
                        default="serial",
                        help="'dist' needs the service started with "
                             "--dist-port (the job runs on the server's "
                             "worker fleet)")
    submit.add_argument("--rng", choices=RNG_MODES, default="philox")
    submit.add_argument("--chunk-size", type=int, default=DEFAULT_CHUNK_SIZE,
                        dest="chunk_size")
    submit.add_argument("--dsan", action="store_true")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job finishes and print its "
                             "result summary")

    progress = commands.add_parser(
        "progress", help="query one service job's progress snapshot"
    )
    progress.add_argument("job_id")
    _add_conn_args(progress)

    cancel = commands.add_parser(
        "cancel", help="stop a service job at its next iteration boundary"
    )
    cancel.add_argument("job_id")
    _add_conn_args(cancel)
    cancel.add_argument("--wait", action="store_true",
                        help="block until the truncated result lands")

    jobs = commands.add_parser("jobs", help="list a running service's jobs")
    _add_conn_args(jobs)
    return parser


def _dataset_kwargs(args) -> dict:
    kwargs = {}
    for name in _DATASET_KWARG_NAMES:
        value = getattr(args, name, None)
        if value is not None:
            kwargs[name] = value
    if args.dataset == "figure1":
        # the gadget only takes a penalty
        kwargs = {k: v for k, v in kwargs.items() if k == "penalty"}
    return kwargs


def _cmd_datasets(args) -> int:
    rows = []
    for name in sorted(DATASETS):
        if name == "figure1":
            problem = load_dataset(name)
        else:
            problem = load_dataset(name, scale=0.002 if name != "livejournal" else 0.0002)
        stats = graph_stats(problem.graph)
        rows.append([name, stats.num_nodes, stats.num_edges, problem.num_ads,
                     problem.catalog.total_budget()])
    print(format_table(
        ["dataset", "nodes*", "edges*", "ads", "total budget*"],
        rows,
        title="Built-in datasets (*at a small preview scale; use --scale)",
    ))
    return 0


def _cmd_allocate(args) -> int:
    problem = load_dataset(args.dataset, **_dataset_kwargs(args))
    coordinator = None
    if getattr(args, "engine", "serial") == "dist" and args.algorithm == "tirm":
        # The CLI owns the coordinator's lifetime (the allocator only
        # borrows it), so workers can keep dialing the printed port
        # across the whole run and teardown is one close() below.
        from repro.dist import Coordinator

        coordinator = Coordinator(
            host=args.dist_host, port=args.dist_port,
            allow_remote=args.allow_remote,
        ).start()
        print(f"coordinator listening on {coordinator.host}:"
              f"{coordinator.port} — connect workers with "
              f"`repro worker --connect {coordinator.host}:{coordinator.port}`",
              flush=True)
        if args.wait_workers > 0:
            coordinator.wait_for_workers(args.wait_workers)
        args._coordinator = coordinator
    try:
        allocator = _ALLOCATORS[args.algorithm](args)
        result = allocator.allocate(problem)
    finally:
        if coordinator is not None:
            coordinator.close()
    report = RegretEvaluator(problem, num_runs=args.eval_runs, seed=args.seed + 1).evaluate(
        result.allocation, algorithm=allocator.name
    )
    print(f"{allocator.name} on {args.dataset}: "
          f"{problem.num_nodes} users, {problem.num_ads} ads, "
          f"B = {problem.catalog.total_budget():.2f}")
    lineage = (result.allocation.provenance or {}).get("checkpoint")
    if lineage is not None:
        origin = (
            f"resumed from iteration {lineage['resumed_at_iteration']}"
            if lineage["resumed_from"] is not None
            else "fresh run"
        )
        print(f"checkpoint: {lineage['path']} "
              f"({lineage['written']} written, {origin})")
    dsan_root = (result.allocation.provenance or {}).get("dsan_root")
    if dsan_root is not None:
        print(f"dsan: {len(result.stats.get('dsan_digests', {}))} chunk "
              f"digests recorded, root {dsan_root}")
    cache_stats = result.stats.get("cache")
    if cache_stats is not None:
        print(f"cache: {cache_stats['path']} — {cache_stats['hits']} hits, "
              f"{cache_stats['misses']} misses, {cache_stats['stores']} blocks "
              f"stored, {result.stats['backend_invocations']} backend "
              f"invocations")
    dist_stats = result.stats.get("dist")
    if dist_stats is not None:
        print(f"dist: {dist_stats['tasks_completed']} chunks over "
              f"{dist_stats['workers_connected']} workers — "
              f"{dist_stats['retries']} retries, "
              f"{dist_stats['timeouts']} timeouts, "
              f"{dist_stats['disconnects']} disconnects, "
              f"{dist_stats['corrupt_blocks']} corrupt blocks, "
              f"{dist_stats['local_fallbacks']} local fallbacks")
    rows = [
        ["total regret (MC)", report.total_regret],
        ["relative to budget", report.regret.relative_to_budget()],
        ["seeds", report.total_seeds],
        ["targeted users", report.num_targeted_users],
        ["allocation time (s)", result.runtime_seconds],
    ]
    print(format_table(["metric", "value"], rows))
    gap_rows = [
        [problem.catalog[ad].name, report.regret.revenues[ad],
         report.regret.budgets[ad], report.regret.signed_budget_gaps()[ad]]
        for ad in range(problem.num_ads)
    ]
    print(format_table(["ad", "revenue", "budget", "gap"], gap_rows))
    return 0


def _cmd_figure1(args) -> int:
    from repro.advertising.regret import allocation_regret
    from repro.datasets.toy import (
        figure1_allocation_a,
        figure1_allocation_b,
        figure1_problem,
    )
    from repro.diffusion.exact import exact_spread

    problem = figure1_problem()
    rows = []
    for name, allocation in (("A", figure1_allocation_a()), ("B", figure1_allocation_b())):
        revenues = [
            exact_spread(
                problem.graph,
                problem.ad_edge_probabilities(ad),
                allocation.seed_array(ad),
                ctps=problem.ad_ctps(ad),
            )
            for ad in range(4)
        ]
        for lam in (0.0, 0.1):
            regret = allocation_regret(
                revenues, problem.catalog.budgets(), allocation.seed_counts(), lam
            ).total
            rows.append([name, lam, sum(revenues), regret])
    print(format_table(
        ["allocation", "lambda", "E[clicks]", "regret"],
        rows,
        title="Figure 1 / Examples 1-2 (exact enumeration)",
    ))
    return 0


def _cmd_bounds(args) -> int:
    kwargs = {"scale": args.scale} if args.scale is not None else {}
    if args.dataset == "figure1":
        kwargs = {}
    problem = load_dataset(args.dataset, **kwargs)
    bounds = compute_bounds(problem, rr_sets_per_ad=args.rr_sets, seed=args.seed)
    rows = [
        ["p_max", bounds.p_max],
        ["theorem 2 (lambda=0)", bounds.theorem2],
        ["theorem 3 (B/3)", bounds.theorem3],
        ["theorem 4", bounds.theorem4 if bounds.theorem4_applicable else "n/a (p_max >= 1)"],
        ["total budget", bounds.total_budget],
    ]
    print(format_table(["bound", "value"], rows, title=f"Regret bounds: {args.dataset}"))
    return 0


def _cmd_im(args) -> int:
    from repro.graph.generators import power_law_graph
    from repro.graph.probabilities import weighted_cascade_probabilities
    from repro.rrset.tim import TIMInfluenceMaximizer

    graph = power_law_graph(args.nodes, avg_out_degree=8.0, seed=args.seed)
    probs = weighted_cascade_probabilities(graph)
    tim = TIMInfluenceMaximizer(
        graph, probs, epsilon=args.epsilon, max_rr_sets=200_000, seed=args.seed
    )
    result = tim.select(args.k)
    print(f"TIM selected {len(result.seeds)} seeds from {args.nodes} nodes "
          f"({result.num_rr_sets} RR-sets)")
    print(f"estimated spread: {result.estimated_spread:.2f}")
    print(f"seeds: {result.seeds}")
    return 0


def _cmd_lint(args) -> int:
    # Lazy import: the analysis package is stdlib-ast machinery the
    # allocation paths never need.
    from repro.analysis import linter

    argv = list(args.paths)
    if args.select is not None:
        argv += ["--select", args.select]
    if args.list_rules:
        argv += ["--list-rules"]
    return linter.run(argv)


def _cmd_ls(args) -> int:
    # Lazy import, like lint: the store package (sqlite + block format)
    # is machinery the allocation paths only need when caching.
    from repro.store import commands as store_commands

    return store_commands.cmd_ls(args)


def _cmd_show(args) -> int:
    from repro.store import commands as store_commands

    return store_commands.cmd_show(args)


def _cmd_diff(args) -> int:
    from repro.store import commands as store_commands

    return store_commands.cmd_diff(args)


def _cmd_gc(args) -> int:
    from repro.store import commands as store_commands

    return store_commands.cmd_gc(args)


def _cmd_serve(args) -> int:
    # Lazy import: the service tier (asyncio server, engine pool) is
    # machinery the batch commands never need.
    from repro.service import AllocationServer, JobManager

    coordinator_spec = None
    if args.dist_port is not None:
        # A spec dict makes the manager build *and own* the coordinator,
        # so one close() tears down jobs, pool, coordinator and cache.
        coordinator_spec = {
            "host": args.dist_host,
            "port": args.dist_port,
            "allow_remote": args.allow_remote,
        }
    manager = JobManager(cache=args.cache, coordinator=coordinator_spec)
    if manager.coordinator is not None:
        print(f"coordinator listening on {manager.coordinator.host}:"
              f"{manager.coordinator.port} — connect workers with "
              f"`repro worker --connect "
              f"{manager.coordinator.host}:{manager.coordinator.port}`",
              flush=True)
    try:
        server = AllocationServer(
            manager, host=args.host, port=args.port,
            allow_remote=args.allow_remote,
        )
    except BaseException:
        # Bind rejection (non-loopback host without --allow-remote) must
        # not leak the manager's pool/coordinator/cache.
        manager.close()
        raise
    server.serve(port_file=args.port_file)
    return 0


def _cmd_worker(args) -> int:
    # Lazy import: the distributed tier never loads for batch commands.
    from repro.dist import WorkerHost

    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        raise ConfigurationError(
            f"--connect wants HOST:PORT, got {args.connect!r}"
        )
    worker = WorkerHost(
        host, int(port), cache=args.cache, backend=args.backend,
        name=args.name,
    )
    print(f"worker {worker.name} ({worker.backend.name}) connecting to "
          f"{host}:{port}", flush=True)
    try:
        worker.run()
    except KeyboardInterrupt:
        pass
    print(f"worker {worker.name} served {worker.chunks_served} chunks "
          f"({worker.cache_hits} from the local cache)")
    return 0


def _service_client(args):
    from repro.service import ServiceClient

    return ServiceClient(args.port, host=args.host, port_file=args.port_file)


def _cmd_submit(args) -> int:
    import json

    client = _service_client(args)
    params = {
        "seed": args.seed,
        "epsilon": args.epsilon,
        "max_rr_sets_per_ad": args.max_rr_sets,
        "engine": args.engine,
        "rng": args.rng,
        "chunk_size": args.chunk_size,
    }
    if args.dsan:
        params["dsan"] = True
    job_id = client.submit(
        args.dataset, params=params, dataset_kwargs=_dataset_kwargs(args)
    )
    print(job_id)
    if args.wait:
        result = client.wait(job_id)
        print(json.dumps(
            {key: result[key] for key in
             ("state", "iterations", "total_seeds", "engine_warm")}
            | {"backend_invocations": result["stats"]["backend_invocations"],
               "dsan_root": result["stats"].get("dsan_root")},
            indent=2,
        ))
    return 0


def _cmd_progress(args) -> int:
    import json

    record = _service_client(args).progress(args.job_id)
    # The per-ad snapshot payload is bulky; the summary is the headline.
    record.pop("snapshot", None)
    print(json.dumps(record, indent=2))
    return 0


def _cmd_cancel(args) -> int:
    record = _service_client(args).cancel(args.job_id, wait=args.wait)
    print(f"{record['job_id']}: {record['state']}")
    return 0


def _cmd_jobs(args) -> int:
    rows = [
        [job["job_id"], job["dataset"], job["state"], job["iterations"],
         job["total_seeds"],
         {True: "warm", False: "cold", None: "-"}[job["engine_warm"]],
         job["source_job_id"] or "-"]
        for job in _service_client(args).list_jobs()
    ]
    print(format_table(
        ["job", "dataset", "state", "iters", "seeds", "engine", "source"],
        rows,
    ))
    return 0


_COMMANDS = {
    "datasets": _cmd_datasets,
    "allocate": _cmd_allocate,
    "figure1": _cmd_figure1,
    "bounds": _cmd_bounds,
    "im": _cmd_im,
    "lint": _cmd_lint,
    "ls": _cmd_ls,
    "show": _cmd_show,
    "diff": _cmd_diff,
    "gc": _cmd_gc,
    "serve": _cmd_serve,
    "worker": _cmd_worker,
    "submit": _cmd_submit,
    "progress": _cmd_progress,
    "cancel": _cmd_cancel,
    "jobs": _cmd_jobs,
}


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code.

    Library errors (bad knob values, incompatible checkpoints, pool
    capacity, ...) surface as a one-line ``error:`` message and exit
    code 2 — never as a traceback.
    """
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream closed the pipe (``repro submit --wait | head -1``);
        # point stdout at devnull so the interpreter's shutdown flush
        # does not traceback, and exit like a well-behaved filter.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
