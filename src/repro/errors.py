"""Exception hierarchy for the :mod:`repro` package.

All errors raised by this library derive from :class:`ReproError`, so a
caller can guard an entire experiment with a single ``except ReproError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class GraphError(ReproError):
    """Raised for malformed graphs: bad node ids, ragged CSR arrays, etc."""


class TopicModelError(ReproError):
    """Raised for invalid topic distributions or mismatched topic spaces."""

class AllocationError(ReproError):
    """Raised when an allocation violates attention bounds or references
    unknown advertisers."""


class ConfigurationError(ReproError):
    """Raised when an algorithm is configured with invalid parameters."""


class CapacityError(ReproError):
    """Raised when an RR-set pool would outgrow its fixed-width storage
    (int32 set ids / member offsets) — the append is refused *before*
    any buffer is corrupted."""


class CheckpointError(ReproError):
    """Raised when a checkpoint artifact is missing, corrupt, or of an
    unsupported version."""


class EstimationError(ReproError):
    """Raised when a spread/coverage estimator cannot produce an estimate
    (for example an empty RR-set collection)."""
