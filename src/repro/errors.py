"""Exception hierarchy for the :mod:`repro` package.

All errors raised by this library derive from :class:`ReproError`, so a
caller can guard an entire experiment with a single ``except ReproError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class GraphError(ReproError):
    """Raised for malformed graphs: bad node ids, ragged CSR arrays, etc."""


class TopicModelError(ReproError):
    """Raised for invalid topic distributions or mismatched topic spaces."""

class AllocationError(ReproError):
    """Raised when an allocation violates attention bounds or references
    unknown advertisers."""


class ConfigurationError(ReproError):
    """Raised when an algorithm is configured with invalid parameters."""


class CapacityError(ReproError):
    """Raised when an RR-set pool would outgrow its fixed-width storage
    (int32 set ids / member offsets) — the append is refused *before*
    any buffer is corrupted."""


class CheckpointError(ReproError):
    """Raised when a checkpoint artifact is missing, corrupt, or of an
    unsupported version."""


class DeterminismError(ReproError):
    """Raised by the runtime determinism sanitizer (``dsan``) when two
    runs that the contract requires to be byte-identical diverge — names
    the first divergent ``(ad, chunk)`` so the offending stream address
    is pinpointed instead of a whole-pool mismatch.

    Attributes
    ----------
    ad / chunk:
        The stream address of the first divergent chunk (``None`` when
        the divergence is structural, e.g. a chunk recorded by only one
        run).
    """

    def __init__(self, message: str, *, ad: int | None = None,
                 chunk: int | None = None) -> None:
        super().__init__(message)
        self.ad = ad
        self.chunk = chunk


class ProtocolError(ReproError):
    """Raised by the distributed tier (:mod:`repro.dist`) for malformed
    wire traffic: a frame with a bad magic, an oversize or negative
    length prefix, a truncated header, a connection dropped mid-frame,
    or a payload that fails its structural checks.  The coordinator
    answers every protocol violation by dropping the offending
    connection and requeuing its in-flight chunk — never by trusting
    the bytes."""


class SessionError(ReproError):
    """Raised for invalid allocation-session transitions: driving a
    failed session, reading a result before a terminal state, or handing
    a fresh session a non-empty engine (stale shards would silently skew
    every θ estimate — see ``ShardedSamplingEngine.reset_for_reuse``)."""


class ServiceError(ReproError):
    """Raised by the allocation service (:mod:`repro.service`) for
    unknown job ids, malformed requests, re-allocation against an
    unfinished job, or a client request the server answered with an
    error payload."""


class StoreError(ReproError):
    """Raised by the shard cache / experiment catalog (:mod:`repro.store`)
    for unusable store directories, malformed catalog databases, or
    invalid store operations.  Cache *corruption* is deliberately not an
    error: a poisoned entry is quarantined with a warning and the block
    is recomputed (the cache must never change results)."""


class EstimationError(ReproError):
    """Raised when a spread/coverage estimator cannot produce an estimate
    (for example an empty RR-set collection)."""
