"""repro — a full reproduction of "Viral Marketing Meets Social
Advertising: Ad Allocation with Minimum Regret" (Aslay et al., VLDB 2015).

The package implements the paper's complete system from scratch: the
TIC-CTP propagation model over a CSR social graph, the regret-minimization
problem (Problem 1), the Greedy allocator (Algorithm 1), the scalable TIRM
allocator built on reverse-reachable-set sampling (Algorithms 2–4), the
Myopic / Myopic+ / Greedy-IRIE baselines, simulated stand-ins for the four
evaluation datasets, and a Monte-Carlo evaluation harness that regenerates
every figure and table of §6.

Quickstart
----------
>>> from repro import datasets, TIRMAllocator, RegretEvaluator
>>> problem = datasets.figure1_problem()
>>> result = TIRMAllocator(seed=0).allocate(problem)
>>> report = RegretEvaluator(problem, num_runs=2000, seed=1).evaluate(
...     result.allocation, algorithm="TIRM")
>>> report.total_regret < 6.6  # below Myopic's regret on this gadget
True
"""

from repro import (
    advertising,
    algorithms,
    datasets,
    diffusion,
    evaluation,
    graph,
    rrset,
    topics,
)
from repro.advertising import (
    AdAllocationProblem,
    AdCatalog,
    Advertiser,
    Allocation,
    AttentionBounds,
)
from repro.algorithms import (
    GreedyAllocator,
    GreedyIRIEAllocator,
    MyopicAllocator,
    MyopicPlusAllocator,
    TIRMAllocator,
)
from repro.errors import ReproError
from repro.evaluation import RegretEvaluator
from repro.graph import DirectedGraph
from repro.topics import TopicDistribution, TopicModel

__version__ = "1.0.0"

__all__ = [
    "graph",
    "topics",
    "advertising",
    "diffusion",
    "rrset",
    "algorithms",
    "datasets",
    "evaluation",
    "DirectedGraph",
    "TopicDistribution",
    "TopicModel",
    "Advertiser",
    "AdCatalog",
    "Allocation",
    "AttentionBounds",
    "AdAllocationProblem",
    "GreedyAllocator",
    "TIRMAllocator",
    "MyopicAllocator",
    "MyopicPlusAllocator",
    "GreedyIRIEAllocator",
    "RegretEvaluator",
    "ReproError",
    "__version__",
]
