"""The complete REGRET-MINIMIZATION instance (Problem 1, §3).

An :class:`AdAllocationProblem` bundles everything an allocator needs:

* the social graph;
* the ad catalog (budgets, CPEs, topic distributions);
* per-ad edge probabilities ``p^i_{u,v}`` — an ``(h, m)`` matrix, either
  given directly or collapsed from a :class:`~repro.topics.TopicModel`
  through Eq. (1);
* per-ad CTPs ``δ(u, i)`` — an ``(h, n)`` matrix;
* attention bounds ``κ_u`` and the seed penalty ``λ``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.advertising.attention import AttentionBounds
from repro.advertising.catalog import AdCatalog
from repro.errors import ConfigurationError
from repro.graph.digraph import DirectedGraph
from repro.topics.model import TopicModel
from repro.utils.validation import check_probability_array


class AdAllocationProblem:
    """Immutable Problem-1 instance consumed by every allocator.

    Parameters
    ----------
    graph:
        Social graph ``G = (V, E)``.
    catalog:
        The ``h`` advertisers.
    edge_probabilities:
        ``(h, m)`` matrix of per-ad influence probabilities in canonical
        edge order.  A 1-D array of length ``m`` is broadcast to all ads
        (the §6.2 setting where all ads share one distribution).
    ctps:
        ``(h, n)`` matrix of click-through probabilities ``δ(u, i)``; a
        scalar or 1-D array of length ``n`` is broadcast likewise.
    attention:
        Per-user bounds ``κ_u``.
    penalty:
        The seed penalty ``λ ≥ 0`` of Eq. (3).
    """

    __slots__ = ("graph", "catalog", "edge_probabilities", "ctps", "attention", "penalty")

    def __init__(
        self,
        graph: DirectedGraph,
        catalog: AdCatalog,
        edge_probabilities,
        ctps,
        attention: AttentionBounds,
        penalty: float = 0.0,
    ) -> None:
        h, n, m = len(catalog), graph.num_nodes, graph.num_edges

        edge_probabilities = check_probability_array("edge_probabilities", edge_probabilities)
        if edge_probabilities.ndim == 1:
            edge_probabilities = np.broadcast_to(edge_probabilities, (h, m)).copy()
        if edge_probabilities.shape != (h, m):
            raise ConfigurationError(
                f"edge_probabilities must be ({h}, {m}), got {edge_probabilities.shape}"
            )

        ctps = np.asarray(ctps, dtype=np.float64)
        if ctps.ndim == 0:
            ctps = np.full((h, n), float(ctps))
        elif ctps.ndim == 1:
            ctps = np.broadcast_to(ctps, (h, n)).copy()
        ctps = check_probability_array("ctps", ctps)
        if ctps.shape != (h, n):
            raise ConfigurationError(f"ctps must be ({h}, {n}), got {ctps.shape}")

        if attention.num_nodes != n:
            raise ConfigurationError(
                f"attention bounds cover {attention.num_nodes} users, graph has {n}"
            )
        if penalty < 0:
            raise ConfigurationError(f"penalty (lambda) must be >= 0, got {penalty}")

        self.graph = graph
        self.catalog = catalog
        self.edge_probabilities = edge_probabilities
        self.ctps = ctps
        self.attention = attention
        self.penalty = float(penalty)

    # ------------------------------------------------------------------
    @classmethod
    def from_topic_model(
        cls,
        model: TopicModel,
        catalog: AdCatalog,
        attention: AttentionBounds,
        *,
        penalty: float = 0.0,
        ctps=None,
    ) -> "AdAllocationProblem":
        """Collapse a topic model into a Problem-1 instance.

        Per-ad edge probabilities come from Eq. (1) applied to each
        advertiser's ``~γ_i``.  CTPs come from the model's per-topic
        seeding probabilities unless an explicit ``(h, n)`` matrix is given
        (the §6 experiments sample CTPs from ``U[0.01, 0.03]`` instead).
        """
        missing = [ad.name for ad in catalog if ad.topics is None]
        if missing:
            raise ConfigurationError(
                f"advertisers {missing} lack topic distributions; either provide "
                "them or construct the problem with explicit edge probabilities"
            )
        edge_probs = np.stack(
            [model.ad_edge_probabilities(ad.topics) for ad in catalog], axis=0
        )
        if ctps is None:
            ctps = np.stack([model.ad_ctps(ad.topics) for ad in catalog], axis=0)
        return cls(model.graph, catalog, edge_probs, ctps, attention, penalty)

    # ------------------------------------------------------------------
    @property
    def num_ads(self) -> int:
        """``h``."""
        return len(self.catalog)

    @property
    def num_nodes(self) -> int:
        """``n``."""
        return self.graph.num_nodes

    def ad_edge_probabilities(self, ad: int) -> np.ndarray:
        """Per-edge probabilities ``p^i_{u,v}`` for one ad."""
        return self.edge_probabilities[ad]

    def ad_ctps(self, ad: int) -> np.ndarray:
        """Per-node CTPs ``δ(u, i)`` for one ad."""
        return self.ctps[ad]

    def expected_seed_revenue(self, ad: int) -> np.ndarray:
        """``δ(u, i) · cpe(i)`` per user — the no-network expected revenue
        of seeding each user, the quantity Myopic ranks by (§6)."""
        return self.ctps[ad] * self.catalog[ad].cpe

    def max_penalty_for_theorem2(self) -> float:
        """The largest λ satisfying the Theorem-2 assumption
        ``λ ≤ δ(u, i)·cpe(i)`` for every user and ad."""
        per_ad_min = self.ctps.min(axis=1) * self.catalog.cpes()
        return float(per_ad_min.min())

    def with_penalty(self, penalty: float) -> "AdAllocationProblem":
        """A copy of this instance with a different λ (shares arrays)."""
        return AdAllocationProblem(
            self.graph,
            self.catalog,
            self.edge_probabilities,
            self.ctps,
            self.attention,
            penalty,
        )

    def with_attention(self, attention: AttentionBounds) -> "AdAllocationProblem":
        """A copy of this instance with different attention bounds."""
        return AdAllocationProblem(
            self.graph,
            self.catalog,
            self.edge_probabilities,
            self.ctps,
            attention,
            self.penalty,
        )

    def memory_bytes(self) -> int:
        """Bytes held by the instance's dense matrices plus the graph."""
        return int(
            self.edge_probabilities.nbytes
            + self.ctps.nbytes
            + self.attention.kappa.nbytes
            + self.graph.memory_bytes()
        )

    def __repr__(self) -> str:
        return (
            f"AdAllocationProblem(h={self.num_ads}, n={self.num_nodes}, "
            f"m={self.graph.num_edges}, lambda={self.penalty:g})"
        )
