"""Seed-set allocations ``S = (S_1, ..., S_h)`` and their validity.

An allocation is *valid* (§3) when no user appears in more than ``κ_u``
seed sets.  Seed sets are stored as Python sets during construction (the
greedy algorithms mutate them seed-by-seed) with array views for the
vectorised evaluators.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.advertising.attention import AttentionBounds
from repro.errors import AllocationError


class Allocation:
    """A mutable assignment of seed sets to ``h`` ads over ``n`` users."""

    __slots__ = ("num_nodes", "_seed_sets", "_user_counts", "_provenance")

    def __init__(self, num_ads: int, num_nodes: int) -> None:
        if num_ads < 1:
            raise AllocationError("an allocation needs at least one ad")
        if num_nodes < 0:
            raise AllocationError("num_nodes must be >= 0")
        self.num_nodes = int(num_nodes)
        self._seed_sets: list[set[int]] = [set() for _ in range(num_ads)]
        self._user_counts = np.zeros(num_nodes, dtype=np.int64)
        self._provenance: dict | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_seed_sets(
        cls,
        seed_sets: Sequence[Iterable[int]],
        num_nodes: int,
        *,
        bounds: AttentionBounds | None = None,
    ) -> "Allocation":
        """Build an allocation from explicit per-ad seed iterables.

        When ``bounds`` is given, the result is validated against the §3
        attention constraint: a deserialized allocation in which some
        user exceeds ``κ_u`` raises :class:`AllocationError` instead of
        silently entering the system as an invalid assignment.
        """
        allocation = cls(len(seed_sets), num_nodes)
        for ad, seeds in enumerate(seed_sets):
            for user in seeds:
                allocation.assign(int(user), ad)
        if bounds is not None and not allocation.is_valid(bounds):
            violators = allocation.violations(bounds).tolist()
            raise AllocationError(
                f"allocation violates attention bounds for users {violators}"
            )
        return allocation

    def assign(self, user: int, ad: int) -> None:
        """Add ``user`` to ad ``ad``'s seed set.

        Raises
        ------
        AllocationError
            If the user id is out of range or already assigned to the ad.
        """
        if not 0 <= user < self.num_nodes:
            raise AllocationError(f"user {user} out of range [0, {self.num_nodes})")
        seeds = self._seed_sets[ad]
        if user in seeds:
            raise AllocationError(f"user {user} is already a seed for ad {ad}")
        seeds.add(user)
        self._user_counts[user] += 1

    def unassign(self, user: int, ad: int) -> None:
        """Remove ``user`` from ad ``ad``'s seed set."""
        seeds = self._seed_sets[ad]
        if user not in seeds:
            raise AllocationError(f"user {user} is not a seed for ad {ad}")
        seeds.remove(user)
        self._user_counts[user] -= 1

    # ------------------------------------------------------------------
    # Provenance
    # ------------------------------------------------------------------
    def set_provenance(self, **info) -> None:
        """Record how this allocation was produced.

        Allocators attach their reproducibility contract here — e.g.
        TIRM records the RNG architecture (``rng``, ``chunk_size``,
        ``stream_entropy``) so the exact RR samples behind the seed sets
        can be re-derived later.  Repeated calls merge keys.  Provenance
        is metadata: it does not participate in equality.
        """
        if self._provenance is None:
            self._provenance = {}
        self._provenance.update(info)

    @property
    def provenance(self) -> dict | None:
        """The recorded production metadata, or ``None``."""
        return self._provenance

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_ads(self) -> int:
        """Number of ads ``h``."""
        return len(self._seed_sets)

    def seeds(self, ad: int) -> frozenset[int]:
        """The seed set ``S_i`` (as an immutable snapshot)."""
        return frozenset(self._seed_sets[ad])

    def seed_array(self, ad: int) -> np.ndarray:
        """``S_i`` as a sorted int64 array (for the vectorised simulators)."""
        return np.fromiter(sorted(self._seed_sets[ad]), dtype=np.int64)

    def seed_counts(self) -> np.ndarray:
        """``|S_i|`` for every ad."""
        return np.asarray([len(s) for s in self._seed_sets], dtype=np.int64)

    def user_assignment_counts(self) -> np.ndarray:
        """How many ads each user is a seed for (length ``n``)."""
        return self._user_counts.copy()

    def ads_of_user(self, user: int) -> list[int]:
        """The ads that directly target ``user``."""
        return [ad for ad, seeds in enumerate(self._seed_sets) if user in seeds]

    def targeted_users(self) -> frozenset[int]:
        """Users targeted at least once — the Table-3 metric."""
        return frozenset(int(u) for u in np.flatnonzero(self._user_counts > 0))

    def total_seeds(self) -> int:
        """``Σ_i |S_i|`` (counts a user once per ad that targets it)."""
        return int(self.seed_counts().sum())

    def is_valid(self, bounds: AttentionBounds) -> bool:
        """True iff no user exceeds its attention bound ``κ_u``."""
        if bounds.num_nodes != self.num_nodes:
            raise AllocationError(
                f"bounds cover {bounds.num_nodes} users, allocation has {self.num_nodes}"
            )
        return bool(np.all(self._user_counts <= bounds.kappa))

    def violations(self, bounds: AttentionBounds) -> np.ndarray:
        """Ids of users whose attention bound is exceeded."""
        return np.flatnonzero(self._user_counts > bounds.kappa)

    def can_assign(self, user: int, ad: int, bounds: AttentionBounds) -> bool:
        """True iff ``user`` can still take ad ``ad`` without violating
        ``κ_u`` (and is not already a seed for it)."""
        return (
            user not in self._seed_sets[ad]
            and self._user_counts[user] < bounds.kappa[user]
        )

    # ------------------------------------------------------------------
    def copy(self) -> "Allocation":
        """Deep copy (provenance included)."""
        clone = Allocation(self.num_ads, self.num_nodes)
        for ad, seeds in enumerate(self._seed_sets):
            for user in seeds:
                clone.assign(user, ad)
        if self._provenance is not None:
            clone._provenance = dict(self._provenance)
        return clone

    def __iter__(self) -> Iterator[frozenset[int]]:
        return (frozenset(s) for s in self._seed_sets)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Allocation):
            return NotImplemented
        return (
            self.num_nodes == other.num_nodes
            and self._seed_sets == other._seed_sets
        )

    def __repr__(self) -> str:
        sizes = ", ".join(str(len(s)) for s in self._seed_sets)
        return f"Allocation(h={self.num_ads}, n={self.num_nodes}, sizes=[{sizes}])"
