"""User attention bounds ``κ_u`` (§1, §3).

The host shows at most ``κ_u`` promoted posts to user ``u``; only direct
promotions count — virally received ads do not consume attention.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AllocationError


class AttentionBounds:
    """Per-user attention bounds, stored as an int array of length ``n``."""

    __slots__ = ("kappa",)

    def __init__(self, kappa) -> None:
        array = np.asarray(kappa, dtype=np.int64).ravel()
        if array.size == 0:
            raise AllocationError("attention bounds must cover at least one user")
        if array.min() < 0:
            raise AllocationError(f"attention bounds must be >= 0, got min {array.min()}")
        array.setflags(write=False)
        self.kappa = array

    @classmethod
    def uniform(cls, num_nodes: int, bound: int) -> "AttentionBounds":
        """Every user gets the same bound (the κ sweeps of Fig. 3)."""
        if bound < 0:
            raise AllocationError(f"bound must be >= 0, got {bound}")
        return cls(np.full(num_nodes, bound, dtype=np.int64))

    @classmethod
    def unlimited(cls, num_nodes: int, num_ads: int) -> "AttentionBounds":
        """``κ_u = h`` for all users — the Theorem-2 regime where attention
        never constrains the greedy algorithm."""
        return cls.uniform(num_nodes, num_ads)

    @property
    def num_nodes(self) -> int:
        """Number of users covered."""
        return int(self.kappa.size)

    def __getitem__(self, node: int) -> int:
        return int(self.kappa[node])

    def remaining(self, assignment_counts: np.ndarray) -> np.ndarray:
        """Slots left per user given how many ads each already has."""
        counts = np.asarray(assignment_counts, dtype=np.int64)
        if counts.shape != self.kappa.shape:
            raise AllocationError(
                f"assignment_counts must have shape {self.kappa.shape}, got {counts.shape}"
            )
        return np.maximum(self.kappa - counts, 0)

    def __repr__(self) -> str:
        unique = np.unique(self.kappa)
        if unique.size == 1:
            return f"AttentionBounds(uniform={int(unique[0])}, n={self.num_nodes})"
        return f"AttentionBounds(n={self.num_nodes}, min={unique[0]}, max={unique[-1]})"
