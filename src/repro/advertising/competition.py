"""Hard competition constraints (the §7 extension).

The paper's conclusions point at allocation "in presence of hard
competition constraints": an advertiser may demand that no user who is
seeded with its ad is simultaneously seeded with a close competitor's.
This module models those constraints and provides validation plus a
repair pass, so any allocator's output can be made competition-safe.

Conflicts are either declared explicitly or derived from topic
proximity: two ads conflict when the Bhattacharyya overlap of their
topic distributions exceeds a threshold (ads close in topic space
compete for the same users — the §1 observation).
"""

from __future__ import annotations

import numpy as np

from repro.advertising.allocation import Allocation
from repro.advertising.catalog import AdCatalog
from repro.errors import AllocationError


class CompetitionRules:
    """A symmetric conflict relation over ads.

    Parameters
    ----------
    num_ads:
        Number of ads ``h``.
    conflicts:
        Iterable of ``(i, j)`` ad-index pairs that must not share seeds.
    """

    def __init__(self, num_ads: int, conflicts=()) -> None:
        if num_ads < 1:
            raise AllocationError("num_ads must be >= 1")
        self.num_ads = int(num_ads)
        self._matrix = np.zeros((num_ads, num_ads), dtype=bool)
        for i, j in conflicts:
            self.add_conflict(i, j)

    @classmethod
    def from_topic_overlap(
        cls, catalog: AdCatalog, *, threshold: float = 0.5
    ) -> "CompetitionRules":
        """Declare a conflict for every ad pair with topic overlap
        (Bhattacharyya coefficient) above ``threshold``."""
        if not 0.0 <= threshold <= 1.0:
            raise AllocationError(f"threshold must be in [0, 1], got {threshold}")
        missing = [ad.name for ad in catalog if ad.topics is None]
        if missing:
            raise AllocationError(
                f"advertisers {missing} lack topic distributions; "
                "declare conflicts explicitly instead"
            )
        rules = cls(len(catalog))
        for i in range(len(catalog)):
            for j in range(i + 1, len(catalog)):
                if catalog[i].topics.overlap(catalog[j].topics) > threshold:
                    rules.add_conflict(i, j)
        return rules

    def add_conflict(self, i: int, j: int) -> None:
        """Declare ads ``i`` and ``j`` conflicting (symmetric)."""
        if not (0 <= i < self.num_ads and 0 <= j < self.num_ads):
            raise AllocationError(f"ad index out of range: ({i}, {j})")
        if i == j:
            raise AllocationError("an ad cannot conflict with itself")
        self._matrix[i, j] = self._matrix[j, i] = True

    def in_conflict(self, i: int, j: int) -> bool:
        """Whether ads ``i`` and ``j`` conflict."""
        return bool(self._matrix[i, j])

    def conflicting_ads(self, ad: int) -> np.ndarray:
        """Indices of ads conflicting with ``ad``."""
        return np.flatnonzero(self._matrix[ad])

    def num_conflicts(self) -> int:
        """Number of conflicting (unordered) pairs."""
        return int(self._matrix.sum() // 2)

    # ------------------------------------------------------------------
    def violations(self, allocation: Allocation) -> list[tuple[int, int, int]]:
        """All ``(user, ad_i, ad_j)`` triples breaking the rules."""
        if allocation.num_ads != self.num_ads:
            raise AllocationError(
                f"allocation has {allocation.num_ads} ads, rules cover {self.num_ads}"
            )
        out = []
        for i in range(self.num_ads):
            for j in self.conflicting_ads(i):
                if j <= i:
                    continue
                shared = allocation.seeds(i) & allocation.seeds(int(j))
                out.extend((user, i, int(j)) for user in sorted(shared))
        return out

    def is_compatible(self, allocation: Allocation) -> bool:
        """True iff no conflicting ads share a seed."""
        return not self.violations(allocation)

    def repair(self, allocation: Allocation, keep_scores=None) -> Allocation:
        """Return a conflict-free copy by dropping offending assignments.

        For each violating ``(user, i, j)`` the user is removed from the
        ad where it is worth less: ``keep_scores`` is an optional
        ``(h, n)`` matrix (e.g. ``δ(u, i) · cpe(i)``); without it, the
        later-indexed ad loses.  The repair is greedy and conservative —
        it only ever removes seeds, so attention bounds stay satisfied.
        """
        repaired = allocation.copy()
        for user, i, j in self.violations(allocation):
            if user not in repaired.seeds(i) or user not in repaired.seeds(j):
                continue  # an earlier repair already fixed this triple
            if keep_scores is not None and keep_scores[i][user] < keep_scores[j][user]:
                loser = i
            else:
                loser = j
            repaired.unassign(user, loser)
        return repaired
