"""An ordered collection of advertisers (the ``h`` ads of Problem 1)."""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.advertising.advertiser import Advertiser
from repro.errors import AllocationError


class AdCatalog:
    """Immutable, ordered set of advertisers with array-valued views.

    The index of an advertiser in the catalog is the ad id ``i`` used by
    every algorithm; name-based lookup is provided for reporting.
    """

    __slots__ = ("_advertisers", "_index_by_name")

    def __init__(self, advertisers: Iterable[Advertiser]) -> None:
        ads = list(advertisers)
        if not ads:
            raise AllocationError("an ad catalog needs at least one advertiser")
        names = [ad.name for ad in ads]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise AllocationError(f"duplicate advertiser names: {dupes}")
        self._advertisers = tuple(ads)
        self._index_by_name = {ad.name: i for i, ad in enumerate(ads)}

    def __len__(self) -> int:
        return len(self._advertisers)

    def __iter__(self) -> Iterator[Advertiser]:
        return iter(self._advertisers)

    def __getitem__(self, index: int) -> Advertiser:
        return self._advertisers[index]

    def index_of(self, name: str) -> int:
        """Ad id for an advertiser name."""
        try:
            return self._index_by_name[name]
        except KeyError:
            raise AllocationError(f"unknown advertiser {name!r}") from None

    def budgets(self) -> np.ndarray:
        """Effective budgets ``B'_i`` as a float array (length ``h``)."""
        return np.asarray([ad.effective_budget for ad in self._advertisers])

    def cpes(self) -> np.ndarray:
        """CPEs as a float array (length ``h``)."""
        return np.asarray([ad.cpe for ad in self._advertisers])

    def total_budget(self) -> float:
        """``B = Σ_i B_i`` — the yardstick of Theorems 2–4."""
        return float(self.budgets().sum())

    def __repr__(self) -> str:
        return f"AdCatalog(h={len(self)}, total_budget={self.total_budget():g})"
