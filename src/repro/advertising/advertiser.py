"""The advertiser ``a_i``: an ad, a budget and a cost-per-engagement."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.topics.distribution import TopicDistribution
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class Advertiser:
    """One advertiser in a Problem-1 instance.

    Attributes
    ----------
    name:
        Stable identifier (e.g. ``"ad-3"``); unique within a catalog.
    budget:
        ``B_i`` — the maximum total amount the advertiser pays the host.
    cpe:
        ``cpe(i)`` — amount paid per click/engagement (CPE model, §1).
    topics:
        The ad's topic distribution ``~γ_i``; optional because the
        scalability experiments (§6.2) bypass the topic model and give
        per-ad edge probabilities directly.
    boost:
        The ``β`` of the §3 "Discussion": regret is measured against the
        boosted budget ``B'_i = (1 + β)·B_i``, allowing the host to treat
        modest overshoot as acceptable.  Defaults to 0 (plain Problem 1).
    """

    name: str
    budget: float
    cpe: float
    topics: TopicDistribution | None = field(default=None)
    boost: float = 0.0

    def __post_init__(self) -> None:
        check_positive("budget", self.budget)
        check_positive("cpe", self.cpe)
        if self.boost < 0:
            raise ValueError(f"boost must be >= 0, got {self.boost}")
        if not self.name:
            raise ValueError("advertiser name must be non-empty")

    @property
    def effective_budget(self) -> float:
        """``B'_i = (1 + β)·B_i`` — equals ``budget`` when ``boost`` is 0."""
        return (1.0 + self.boost) * self.budget

    def clicks_to_budget(self) -> float:
        """Expected number of clicks that exactly exhausts the budget."""
        return self.effective_budget / self.cpe
