"""Advertising-side entities of Problem 1 (§3).

Advertisers approach the host with an ad (a topic distribution ``~γ_i``), a
budget ``B_i`` and a cost-per-engagement ``cpe(i)``; the host allocates a
seed set ``S_i`` to each subject to per-user attention bounds ``κ_u`` and
is scored by the regret ``R_i(S_i) = |B_i − Π_i(S_i)| + λ·|S_i|``.
"""

from repro.advertising.advertiser import Advertiser
from repro.advertising.allocation import Allocation
from repro.advertising.attention import AttentionBounds
from repro.advertising.catalog import AdCatalog
from repro.advertising.competition import CompetitionRules
from repro.advertising.problem import AdAllocationProblem
from repro.advertising.regret import (
    RegretBreakdown,
    allocation_regret,
    budget_regret,
    regret_of,
)

__all__ = [
    "Advertiser",
    "AdCatalog",
    "AttentionBounds",
    "Allocation",
    "CompetitionRules",
    "AdAllocationProblem",
    "RegretBreakdown",
    "budget_regret",
    "regret_of",
    "allocation_regret",
]
