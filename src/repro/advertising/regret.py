"""The regret objective (Eq. 3–4).

``R_i(S_i) = |B_i − Π_i(S_i)| + λ·|S_i|`` decomposes into the
*budget-regret* (undershoot or overshoot w.r.t. the budget) and the
*seed-regret* (the λ-penalty for consuming host resources); the overall
regret of an allocation is the sum over advertisers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def budget_regret(budget: float, revenue: float) -> float:
    """``|B_i − Π_i(S_i)|`` — the first term of Eq. (3)."""
    return abs(float(budget) - float(revenue))


def regret_of(budget: float, revenue: float, penalty: float, num_seeds: int) -> float:
    """Eq. (3): budget-regret plus the λ-weighted seed penalty."""
    if penalty < 0:
        raise ValueError(f"penalty (lambda) must be >= 0, got {penalty}")
    if num_seeds < 0:
        raise ValueError(f"num_seeds must be >= 0, got {num_seeds}")
    return budget_regret(budget, revenue) + float(penalty) * int(num_seeds)


@dataclass(frozen=True)
class RegretBreakdown:
    """Eq. (4) evaluated for a whole allocation, with per-ad detail.

    Attributes
    ----------
    revenues:
        ``Π_i(S_i)`` per ad.
    budgets:
        ``B_i`` per ad (effective budgets if a boost β is in force).
    seed_counts:
        ``|S_i|`` per ad.
    penalty:
        λ.
    """

    revenues: np.ndarray
    budgets: np.ndarray
    seed_counts: np.ndarray
    penalty: float

    def __post_init__(self) -> None:
        for name in ("revenues", "budgets", "seed_counts"):
            object.__setattr__(self, name, np.asarray(getattr(self, name), dtype=np.float64))
        if not self.revenues.shape == self.budgets.shape == self.seed_counts.shape:
            raise ValueError("revenues, budgets and seed_counts must be aligned")
        if self.penalty < 0:
            raise ValueError(f"penalty (lambda) must be >= 0, got {self.penalty}")

    @property
    def num_ads(self) -> int:
        """Number of advertisers ``h``."""
        return int(self.revenues.size)

    def budget_regrets(self) -> np.ndarray:
        """``|B_i − Π_i|`` per ad."""
        return np.abs(self.budgets - self.revenues)

    def seed_regrets(self) -> np.ndarray:
        """``λ·|S_i|`` per ad."""
        return self.penalty * self.seed_counts

    def per_ad(self) -> np.ndarray:
        """``R_i(S_i)`` per ad."""
        return self.budget_regrets() + self.seed_regrets()

    def signed_budget_gaps(self) -> np.ndarray:
        """``Π_i − B_i`` per ad — positive means overshoot ("free service"),
        negative means undershoot (lost revenue).  This is what Fig. 5
        plots."""
        return self.revenues - self.budgets

    @property
    def total(self) -> float:
        """Eq. (4): ``R(S) = Σ_i R_i(S_i)``."""
        return float(self.per_ad().sum())

    @property
    def total_budget_regret(self) -> float:
        """Σ of budget-regrets only (the λ=0 objective of §4.3)."""
        return float(self.budget_regrets().sum())

    def relative_to_budget(self) -> float:
        """Total regret expressed as a fraction of the total budget — the
        headline numbers of §6.1 (e.g. TIRM 2.5% on Flixster)."""
        return self.total / float(self.budgets.sum())

    def __repr__(self) -> str:
        return (
            f"RegretBreakdown(total={self.total:.4g}, "
            f"budget_regret={self.total_budget_regret:.4g}, "
            f"penalty={self.penalty:g}, h={self.num_ads})"
        )


def allocation_regret(revenues, budgets, seed_counts, penalty: float) -> RegretBreakdown:
    """Convenience constructor for :class:`RegretBreakdown`."""
    return RegretBreakdown(
        revenues=np.asarray(revenues, dtype=np.float64),
        budgets=np.asarray(budgets, dtype=np.float64),
        seed_counts=np.asarray(seed_counts, dtype=np.float64),
        penalty=float(penalty),
    )
