"""Connectivity algorithms over the CSR graph.

Used for dataset diagnostics (the §6 networks are dominated by one giant
component) and by tests as structural sanity checks.  Implemented
iteratively — no recursion limits on large graphs.
"""

from __future__ import annotations

import numpy as np

from repro.graph._traversal import gather_edge_slots
from repro.graph.digraph import DirectedGraph


def bfs_distances(graph: DirectedGraph, source: int) -> np.ndarray:
    """Hop distances from ``source`` along out-edges (−1 if unreachable)."""
    if not 0 <= source < graph.num_nodes:
        raise ValueError(f"source {source} out of range")
    distances = np.full(graph.num_nodes, -1, dtype=np.int64)
    distances[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    hops = 0
    while frontier.size:
        hops += 1
        slots = gather_edge_slots(graph.out_indptr, frontier)
        if slots.size == 0:
            break
        targets = graph.out_targets[slots]
        fresh = np.unique(targets[distances[targets] < 0])
        if fresh.size == 0:
            break
        distances[fresh] = hops
        frontier = fresh
    return distances


def weakly_connected_components(graph: DirectedGraph) -> np.ndarray:
    """Component label per node, ignoring edge directions.

    Labels are dense integers ``0..c-1`` in order of first discovery.
    """
    labels = np.full(graph.num_nodes, -1, dtype=np.int64)
    current = 0
    for start in range(graph.num_nodes):
        if labels[start] >= 0:
            continue
        labels[start] = current
        frontier = np.asarray([start], dtype=np.int64)
        while frontier.size:
            out_slots = gather_edge_slots(graph.out_indptr, frontier)
            in_slots = gather_edge_slots(graph.in_indptr, frontier)
            neighbors = np.concatenate(
                (graph.out_targets[out_slots], graph.in_sources[in_slots])
            )
            fresh = np.unique(neighbors[labels[neighbors] < 0]) if neighbors.size else neighbors
            labels[fresh] = current
            frontier = fresh
        current += 1
    return labels


def strongly_connected_components(graph: DirectedGraph) -> np.ndarray:
    """Component label per node (iterative Tarjan).

    Labels are dense integers; nodes share a label iff they are mutually
    reachable.
    """
    n = graph.num_nodes
    index = np.full(n, -1, dtype=np.int64)
    lowlink = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    labels = np.full(n, -1, dtype=np.int64)
    stack: list[int] = []
    next_index = 0
    next_label = 0

    for root in range(n):
        if index[root] >= 0:
            continue
        # Each work frame: (node, position in its adjacency slice).
        work = [(root, graph.out_indptr[root])]
        index[root] = lowlink[root] = next_index
        next_index += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, position = work[-1]
            if position < graph.out_indptr[node + 1]:
                work[-1] = (node, position + 1)
                child = int(graph.out_targets[position])
                if index[child] < 0:
                    index[child] = lowlink[child] = next_index
                    next_index += 1
                    stack.append(child)
                    on_stack[child] = True
                    work.append((child, graph.out_indptr[child]))
                elif on_stack[child]:
                    lowlink[node] = min(lowlink[node], index[child])
            else:
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    while True:
                        member = stack.pop()
                        on_stack[member] = False
                        labels[member] = next_label
                        if member == node:
                            break
                    next_label += 1
    return labels


def largest_component_fraction(graph: DirectedGraph) -> float:
    """Fraction of nodes in the largest weakly connected component."""
    if graph.num_nodes == 0:
        return 0.0
    labels = weakly_connected_components(graph)
    return float(np.bincount(labels).max() / graph.num_nodes)
