"""Edge-list file I/O.

The four datasets of the paper (§6, Table 1) ship as whitespace-separated
edge lists (SNAP format); this module reads and writes that format, with
optional gzip transparency and an optional third column of per-edge
influence probabilities.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import IO

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DirectedGraph


def _open_text(path: Path, mode: str) -> IO[str]:
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def read_edge_list(
    path,
    *,
    directed: bool = True,
    num_nodes: int | None = None,
    skip_self_loops: bool = True,
    skip_duplicates: bool = True,
    comment: str = "#",
) -> tuple[DirectedGraph, np.ndarray | None]:
    """Read a (possibly gzipped) edge-list file.

    Each non-comment line is ``src dst`` or ``src dst probability``.  When
    ``directed`` is false every edge is added in both directions, matching
    the paper's handling of the undirected DBLP graph.

    Returns
    -------
    (graph, probabilities):
        ``probabilities`` is a per-canonical-edge float array if the file
        carried a third column, else ``None``.  For undirected reads, both
        directions of an edge receive the same probability.
    """
    path = Path(path)
    builder = GraphBuilder(
        num_nodes=num_nodes,
        skip_self_loops=skip_self_loops,
        skip_duplicates=skip_duplicates,
    )
    prob_entries: dict[tuple[int, int], float] = {}
    saw_probability = False
    with _open_text(path, "r") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphError(f"{path}:{line_no}: expected 2 or 3 columns, got {len(parts)}")
            u, v = int(parts[0]), int(parts[1])
            if u == v and skip_self_loops:
                continue
            builder.add_edge(u, v)
            if not directed:
                builder.add_edge(v, u)
            if len(parts) == 3:
                saw_probability = True
                p = float(parts[2])
                prob_entries[(u, v)] = p
                if not directed:
                    prob_entries[(v, u)] = p
    graph = builder.build()
    if not saw_probability:
        return graph, None
    probabilities = np.zeros(graph.num_edges, dtype=np.float64)
    for eid in range(graph.num_edges):
        key = (int(graph.edge_sources[eid]), int(graph.edge_targets[eid]))
        if key not in prob_entries:
            raise GraphError(f"edge {key} is missing a probability")
        probabilities[eid] = prob_entries[key]
    return graph, probabilities


def write_edge_list(path, graph: DirectedGraph, probabilities=None, *, header: str = "") -> None:
    """Write ``graph`` (and optional per-edge probabilities) as an edge list."""
    path = Path(path)
    if probabilities is not None:
        probabilities = np.asarray(probabilities, dtype=np.float64)
        if probabilities.shape != (graph.num_edges,):
            raise GraphError(
                f"probabilities must have shape ({graph.num_edges},), got {probabilities.shape}"
            )
    with _open_text(path, "w") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for eid in range(graph.num_edges):
            u = int(graph.edge_sources[eid])
            v = int(graph.edge_targets[eid])
            if probabilities is None:
                handle.write(f"{u} {v}\n")
            else:
                handle.write(f"{u} {v} {probabilities[eid]:.10g}\n")
