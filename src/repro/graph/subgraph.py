"""Induced subgraphs and per-edge data restriction.

Used to down-scale real edge-list datasets (take the densest community,
a BFS ball, or a uniform node sample) while keeping per-edge probability
arrays aligned with the new canonical edge ids.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import DirectedGraph


def induced_subgraph(
    graph: DirectedGraph, nodes
) -> tuple[DirectedGraph, np.ndarray, np.ndarray]:
    """The subgraph induced by ``nodes``.

    Returns
    -------
    (subgraph, node_map, edge_map):
        ``node_map[i]`` is the original id of the subgraph's node ``i``;
        ``edge_map[e]`` is the original canonical edge id of the
        subgraph's canonical edge ``e`` (use it to gather per-edge data:
        ``sub_probs = probs[edge_map]``).
    """
    node_map = np.unique(np.asarray(nodes, dtype=np.int64))
    if node_map.size == 0:
        return DirectedGraph(0, [], []), node_map, np.empty(0, dtype=np.int64)
    if node_map[0] < 0 or node_map[-1] >= graph.num_nodes:
        raise GraphError("subgraph nodes out of range")
    inverse = np.full(graph.num_nodes, -1, dtype=np.int64)
    inverse[node_map] = np.arange(node_map.size)

    keep = (inverse[graph.edge_sources] >= 0) & (inverse[graph.edge_targets] >= 0)
    edge_ids = np.flatnonzero(keep)
    src = inverse[graph.edge_sources[edge_ids]]
    dst = inverse[graph.edge_targets[edge_ids]]
    subgraph = DirectedGraph(node_map.size, src, dst)
    # The original edges were sorted by (source, target) and relabelling
    # preserves relative order within the kept set, so edge_ids already
    # aligns with the subgraph's canonical order.
    return subgraph, node_map, edge_ids


def bfs_ball(graph: DirectedGraph, center: int, radius: int) -> np.ndarray:
    """Node ids within ``radius`` hops of ``center`` (directions ignored).

    A convenient sampling strategy for cutting a connected, local piece
    out of a big network.
    """
    if radius < 0:
        raise GraphError("radius must be >= 0")
    if not 0 <= center < graph.num_nodes:
        raise GraphError(f"center {center} out of range")
    visited = np.zeros(graph.num_nodes, dtype=bool)
    visited[center] = True
    frontier = np.asarray([center], dtype=np.int64)
    for _ in range(radius):
        if frontier.size == 0:
            break
        neighbors = []
        for node in frontier:
            neighbors.append(graph.out_neighbors(node))
            neighbors.append(graph.in_neighbors(node))
        candidates = np.unique(np.concatenate(neighbors)) if neighbors else frontier[:0]
        fresh = candidates[~visited[candidates]]
        visited[fresh] = True
        frontier = fresh
    return np.flatnonzero(visited)
