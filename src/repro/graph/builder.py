"""Incremental construction of :class:`~repro.graph.DirectedGraph`.

The CSR graph is immutable; :class:`GraphBuilder` is the mutable staging
area used by generators and file readers.  It deduplicates edges and drops
self-loops on request so callers can stream noisy edge lists through it.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DirectedGraph


class GraphBuilder:
    """Accumulates edges, then produces an immutable :class:`DirectedGraph`.

    Parameters
    ----------
    num_nodes:
        Fixed node-count, or ``None`` to infer ``max id + 1`` at build time.
    skip_self_loops:
        Silently drop ``(u, u)`` edges instead of failing at build time.
    skip_duplicates:
        Silently keep the first occurrence of a repeated edge.
    """

    def __init__(
        self,
        num_nodes: int | None = None,
        *,
        skip_self_loops: bool = False,
        skip_duplicates: bool = False,
    ) -> None:
        self._num_nodes = num_nodes
        self._skip_self_loops = skip_self_loops
        self._skip_duplicates = skip_duplicates
        self._sources: list[int] = []
        self._targets: list[int] = []

    def __len__(self) -> int:
        return len(self._sources)

    def add_edge(self, source: int, target: int) -> "GraphBuilder":
        """Add one directed edge; returns ``self`` for chaining."""
        if source == target and self._skip_self_loops:
            return self
        self._sources.append(int(source))
        self._targets.append(int(target))
        return self

    def add_edges(self, edges) -> "GraphBuilder":
        """Add many ``(source, target)`` pairs; returns ``self``."""
        for source, target in edges:
            self.add_edge(source, target)
        return self

    def add_undirected_edge(self, u: int, v: int) -> "GraphBuilder":
        """Add both ``(u, v)`` and ``(v, u)``."""
        return self.add_edge(u, v).add_edge(v, u)

    def build(self) -> DirectedGraph:
        """Produce the immutable CSR graph.

        Raises
        ------
        GraphError
            If a self-loop or duplicate remains and the corresponding
            ``skip_*`` flag is off, or node ids exceed ``num_nodes``.
        """
        src = np.asarray(self._sources, dtype=np.int64)
        dst = np.asarray(self._targets, dtype=np.int64)
        if self._skip_duplicates and src.size:
            pairs = np.stack((src, dst), axis=1)
            pairs = np.unique(pairs, axis=0)
            src, dst = pairs[:, 0], pairs[:, 1]
        num_nodes = self._num_nodes
        if num_nodes is None:
            num_nodes = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1)
        return DirectedGraph(num_nodes, src, dst)
