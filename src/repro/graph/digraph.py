"""Compressed-sparse-row directed graph.

The representation keeps *both* adjacency directions:

* the out-CSR drives forward Monte-Carlo diffusion (§3 of the paper);
* the in-CSR drives reverse-reachable-set sampling (§5.1).

Edges have a canonical id — their position in the lexicographically sorted
``(source, target)`` order — and both CSR views carry an ``edge_ids`` array
mapping adjacency slots back to canonical ids.  Per-edge data (influence
probabilities, per-topic probabilities) is stored once, in canonical order,
and gathered through those maps; the two directions can therefore never
disagree about an edge's probability.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import GraphError


class DirectedGraph:
    """An immutable directed graph over nodes ``0..n-1``.

    Parameters
    ----------
    num_nodes:
        Number of nodes ``n``; node ids are ``0..n-1``.
    sources, targets:
        Parallel integer arrays describing the edge list.  Self-loops and
        duplicate edges are rejected: neither occurs in the paper's model
        (a duplicate edge would double-count one influence attempt).

    Notes
    -----
    The constructor sorts the edge list once; all queries afterwards are
    O(1) slicing into flat numpy arrays.
    """

    __slots__ = (
        "num_nodes",
        "num_edges",
        "edge_sources",
        "edge_targets",
        "out_indptr",
        "out_targets",
        "out_edge_ids",
        "in_indptr",
        "in_sources",
        "in_edge_ids",
    )

    def __init__(self, num_nodes: int, sources, targets) -> None:
        if num_nodes < 0:
            raise GraphError(f"num_nodes must be non-negative, got {num_nodes}")
        src = np.asarray(sources, dtype=np.int64).ravel()
        dst = np.asarray(targets, dtype=np.int64).ravel()
        if src.shape != dst.shape:
            raise GraphError(
                f"sources and targets must have equal length, got {src.size} vs {dst.size}"
            )
        if src.size:
            lo = min(src.min(), dst.min())
            hi = max(src.max(), dst.max())
            if lo < 0 or hi >= num_nodes:
                raise GraphError(
                    f"edge endpoints must lie in [0, {num_nodes - 1}], found [{lo}, {hi}]"
                )
            if np.any(src == dst):
                bad = int(src[src == dst][0])
                raise GraphError(f"self-loops are not allowed (node {bad})")

        # Canonical edge order: lexicographic by (source, target).
        order = np.lexsort((dst, src))
        src = src[order]
        dst = dst[order]
        if src.size > 1:
            dup = (src[1:] == src[:-1]) & (dst[1:] == dst[:-1])
            if np.any(dup):
                k = int(np.flatnonzero(dup)[0])
                raise GraphError(f"duplicate edge ({src[k]}, {dst[k]})")

        self.num_nodes = int(num_nodes)
        self.num_edges = int(src.size)
        self.edge_sources = src
        self.edge_targets = dst

        # Out-CSR follows the canonical order directly.
        out_degree = np.bincount(src, minlength=num_nodes)
        self.out_indptr = np.concatenate(([0], np.cumsum(out_degree))).astype(np.int64)
        self.out_targets = dst.copy()
        self.out_edge_ids = np.arange(self.num_edges, dtype=np.int64)

        # In-CSR: sort canonical ids by (target, source).
        in_order = np.lexsort((src, dst)).astype(np.int64)
        in_degree = np.bincount(dst, minlength=num_nodes)
        self.in_indptr = np.concatenate(([0], np.cumsum(in_degree))).astype(np.int64)
        self.in_sources = src[in_order]
        self.in_edge_ids = in_order

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, edges: Iterable[tuple[int, int]], num_nodes: int | None = None
    ) -> "DirectedGraph":
        """Build a graph from an iterable of ``(source, target)`` pairs.

        If ``num_nodes`` is omitted it is inferred as ``max id + 1``.
        """
        edge_list = list(edges)
        if edge_list:
            array = np.asarray(edge_list, dtype=np.int64)
            if array.ndim != 2 or array.shape[1] != 2:
                raise GraphError("edges must be (source, target) pairs")
            src, dst = array[:, 0], array[:, 1]
        else:
            src = dst = np.empty(0, dtype=np.int64)
        if num_nodes is None:
            num_nodes = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1)
        return cls(num_nodes, src, dst)

    @classmethod
    def from_undirected_edges(
        cls, edges: Iterable[tuple[int, int]], num_nodes: int | None = None
    ) -> "DirectedGraph":
        """Build a graph with every undirected edge directed both ways.

        This mirrors the paper's treatment of the DBLP co-authorship graph
        (§6: "We direct all edges in both directions").
        """
        edge_list = [tuple(e) for e in edges]
        undirected = {(min(u, v), max(u, v)) for u, v in edge_list if u != v}
        both = [(u, v) for u, v in undirected] + [(v, u) for u, v in undirected]
        return cls.from_edges(both, num_nodes=num_nodes)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def out_neighbors(self, node: int) -> np.ndarray:
        """Targets of edges leaving ``node`` (the followers who see its posts)."""
        return self.out_targets[self.out_indptr[node] : self.out_indptr[node + 1]]

    def in_neighbors(self, node: int) -> np.ndarray:
        """Sources of edges entering ``node`` (the users it follows)."""
        return self.in_sources[self.in_indptr[node] : self.in_indptr[node + 1]]

    def out_edges_of(self, node: int) -> np.ndarray:
        """Canonical edge ids of edges leaving ``node``."""
        return self.out_edge_ids[self.out_indptr[node] : self.out_indptr[node + 1]]

    def in_edges_of(self, node: int) -> np.ndarray:
        """Canonical edge ids of edges entering ``node``."""
        return self.in_edge_ids[self.in_indptr[node] : self.in_indptr[node + 1]]

    def out_degrees(self) -> np.ndarray:
        """Array of out-degrees for all nodes."""
        return np.diff(self.out_indptr)

    def in_degrees(self) -> np.ndarray:
        """Array of in-degrees for all nodes."""
        return np.diff(self.in_indptr)

    def has_edge(self, source: int, target: int) -> bool:
        """True iff the edge ``(source, target)`` exists."""
        row = self.out_neighbors(source)
        idx = np.searchsorted(row, target)
        return bool(idx < row.size and row[idx] == target)

    def edge_id(self, source: int, target: int) -> int:
        """Canonical id of edge ``(source, target)``; raises if absent."""
        start = self.out_indptr[source]
        row = self.out_targets[start : self.out_indptr[source + 1]]
        idx = np.searchsorted(row, target)
        if idx >= row.size or row[idx] != target:
            raise GraphError(f"edge ({source}, {target}) does not exist")
        return int(start + idx)

    def edges(self) -> np.ndarray:
        """``(m, 2)`` array of edges in canonical order."""
        return np.column_stack((self.edge_sources, self.edge_targets))

    def reverse(self) -> "DirectedGraph":
        """The transpose graph (every edge flipped)."""
        return DirectedGraph(self.num_nodes, self.edge_targets, self.edge_sources)

    def memory_bytes(self) -> int:
        """Bytes held by the CSR arrays (used in the Table-4 accounting)."""
        arrays: Sequence[np.ndarray] = (
            self.edge_sources,
            self.edge_targets,
            self.out_indptr,
            self.out_targets,
            self.out_edge_ids,
            self.in_indptr,
            self.in_sources,
            self.in_edge_ids,
        )
        return int(sum(a.nbytes for a in arrays))

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"DirectedGraph(num_nodes={self.num_nodes}, num_edges={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DirectedGraph):
            return NotImplemented
        return (
            self.num_nodes == other.num_nodes
            and self.num_edges == other.num_edges
            and bool(np.array_equal(self.edge_sources, other.edge_sources))
            and bool(np.array_equal(self.edge_targets, other.edge_targets))
        )

    def __hash__(self) -> int:  # graphs are immutable; hash by shape only
        return hash((self.num_nodes, self.num_edges))
