"""Graph substrate: a compact CSR directed graph plus generators and I/O.

The social graph ``G = (V, E)`` of the paper (§3) is represented by
:class:`repro.graph.DirectedGraph`: nodes are dense integers ``0..n-1`` and
edges carry a canonical id so that per-edge influence probabilities (and the
per-topic probabilities of the TIC model) can be stored as flat numpy arrays
indexed the same way from both the forward (diffusion) and reverse (RR-set
sampling) directions.
"""

from repro.graph.builder import GraphBuilder
from repro.graph.components import (
    bfs_distances,
    largest_component_fraction,
    strongly_connected_components,
    weakly_connected_components,
)
from repro.graph.digraph import DirectedGraph
from repro.graph.generators import (
    bipartite_gadget,
    community_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    forest_fire_graph,
    power_law_graph,
    star_graph,
)
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.probabilities import (
    constant_probabilities,
    exponential_probabilities,
    trivalency_probabilities,
    weighted_cascade_probabilities,
)
from repro.graph.stats import GraphStats, graph_stats
from repro.graph.subgraph import bfs_ball, induced_subgraph

__all__ = [
    "DirectedGraph",
    "GraphBuilder",
    "bfs_distances",
    "weakly_connected_components",
    "strongly_connected_components",
    "largest_component_fraction",
    "erdos_renyi",
    "power_law_graph",
    "forest_fire_graph",
    "community_graph",
    "complete_graph",
    "cycle_graph",
    "star_graph",
    "bipartite_gadget",
    "read_edge_list",
    "write_edge_list",
    "constant_probabilities",
    "weighted_cascade_probabilities",
    "trivalency_probabilities",
    "exponential_probabilities",
    "GraphStats",
    "graph_stats",
    "induced_subgraph",
    "bfs_ball",
]
