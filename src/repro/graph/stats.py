"""Graph summary statistics (the Table-1 style dataset descriptions)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.digraph import DirectedGraph


@dataclass(frozen=True)
class GraphStats:
    """Summary of a graph, mirroring the paper's Table 1 columns."""

    num_nodes: int
    num_edges: int
    avg_out_degree: float
    max_out_degree: int
    max_in_degree: int
    density: float
    num_reciprocal_edges: int

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"|V|={self.num_nodes} |E|={self.num_edges} "
            f"avg_out_deg={self.avg_out_degree:.2f} "
            f"max_out_deg={self.max_out_degree} max_in_deg={self.max_in_degree} "
            f"density={self.density:.2e} reciprocal={self.num_reciprocal_edges}"
        )


def graph_stats(graph: DirectedGraph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``."""
    n, m = graph.num_nodes, graph.num_edges
    out_deg = graph.out_degrees()
    in_deg = graph.in_degrees()
    if m:
        forward = graph.edge_sources * graph.num_nodes + graph.edge_targets
        backward = graph.edge_targets * graph.num_nodes + graph.edge_sources
        reciprocal = int(np.isin(forward, backward).sum())
    else:
        reciprocal = 0
    return GraphStats(
        num_nodes=n,
        num_edges=m,
        avg_out_degree=float(out_deg.mean()) if n else 0.0,
        max_out_degree=int(out_deg.max()) if n else 0,
        max_in_degree=int(in_deg.max()) if n else 0,
        density=float(m) / (n * (n - 1)) if n > 1 else 0.0,
        num_reciprocal_edges=reciprocal,
    )
