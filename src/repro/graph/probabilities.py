"""Per-edge influence-probability assignments.

These implement the probability regimes used across the paper's evaluation:

* **weighted cascade** (§6.2): ``p_{u,v} = 1 / |N_in(v)|`` — used for the
  DBLP and LiveJournal scalability runs;
* **exponential via inverse transform** (§6, Epinions): probabilities drawn
  from an exponential distribution (rate 30, i.e. mean 1/30 ≈ 0.033) by
  applying the inverse CDF to uniform draws, clipped to [0, 1];
* **trivalency**: the classic {0.1, 0.01, 0.001} model of Chen et al.;
* **constant**: a single value everywhere (test fixtures, toy graphs).

All functions return a float64 array aligned with canonical edge ids.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DirectedGraph
from repro.utils.rng import as_generator
from repro.utils.validation import check_probability


def constant_probabilities(graph: DirectedGraph, value: float) -> np.ndarray:
    """Every edge gets probability ``value``."""
    check_probability("value", value)
    return np.full(graph.num_edges, float(value), dtype=np.float64)


def weighted_cascade_probabilities(graph: DirectedGraph) -> np.ndarray:
    """``p_{u,v} = 1 / in_degree(v)`` (Chen et al. [7], used in §6.2)."""
    in_deg = graph.in_degrees().astype(np.float64)
    # Every edge target has in-degree >= 1 by construction.
    return 1.0 / in_deg[graph.edge_targets]


def trivalency_probabilities(graph: DirectedGraph, values=(0.1, 0.01, 0.001), *, seed=None):
    """Each edge draws uniformly from ``values`` (trivalency model)."""
    rng = as_generator(seed)
    choices = np.asarray(values, dtype=np.float64)
    if choices.size == 0:
        raise ValueError("values must be non-empty")
    for v in choices:
        check_probability("values", float(v))
    return choices[rng.integers(0, choices.size, size=graph.num_edges)]


def exponential_probabilities(graph: DirectedGraph, *, rate: float = 30.0, seed=None):
    """Exponential(rate) probabilities via the inverse-transform technique.

    Matches the Epinions setup in §6: uniform draws ``u ~ U(0, 1)`` mapped
    through the exponential inverse CDF ``-ln(1-u)/rate`` (mean ``1/rate``),
    clipped to 1.0 so results stay valid probabilities.
    """
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    rng = as_generator(seed)
    uniform = rng.random(graph.num_edges)
    return np.minimum(-np.log1p(-uniform) / rate, 1.0)
