"""Random-graph generators.

The paper evaluates on four real social networks (Table 1).  Those exact
datasets are not redistributable, so the :mod:`repro.datasets` package
simulates them on top of the structural generators below:

* :func:`power_law_graph` — directed preferential-attachment graph whose
  in-degree distribution is heavy-tailed like Flixster/Epinions/LiveJournal;
* :func:`community_graph` — overlapping dense communities, the structure of
  a co-authorship network like DBLP;
* :func:`erdos_renyi` and the small deterministic graphs — test fixtures.

Every generator is a deterministic function of its ``seed``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DirectedGraph
from repro.utils.rng import as_generator


def erdos_renyi(num_nodes: int, edge_probability: float, *, seed=None) -> DirectedGraph:
    """G(n, p) over ordered pairs (directed, no self-loops).

    Sampling is vectorised: the number of edges is drawn binomially, then
    that many distinct ordered pairs are drawn without replacement.
    """
    if not 0.0 <= edge_probability <= 1.0:
        raise GraphError(f"edge_probability must be in [0, 1], got {edge_probability}")
    rng = as_generator(seed)
    possible = num_nodes * (num_nodes - 1)
    if possible == 0 or edge_probability == 0.0:
        return DirectedGraph(num_nodes, [], [])
    count = int(rng.binomial(possible, edge_probability))
    # Sample ordered-pair codes without replacement, then decode.
    codes = rng.choice(possible, size=count, replace=False)
    src = codes // (num_nodes - 1)
    offset = codes % (num_nodes - 1)
    dst = np.where(offset >= src, offset + 1, offset)  # skip the diagonal
    return DirectedGraph(num_nodes, src, dst)


def power_law_graph(
    num_nodes: int,
    avg_out_degree: float,
    *,
    exponent: float = 2.2,
    reciprocity: float = 0.3,
    seed=None,
) -> DirectedGraph:
    """Directed graph with power-law in-degrees and tunable reciprocity.

    Construction: sample target "popularity" weights ``w_v ∝ v^{-1/(γ-1)}``
    (a Zipf-like profile giving a power-law in-degree tail with exponent
    ``γ``), draw each node's out-degree from a Poisson around
    ``avg_out_degree``, connect to targets by weighted sampling, then flip a
    ``reciprocity`` coin per edge to add the reverse edge (follower graphs
    such as Flixster and LiveJournal show substantial reciprocity).
    """
    if num_nodes < 2:
        raise GraphError("power_law_graph needs at least 2 nodes")
    if exponent <= 1.0:
        raise GraphError(f"exponent must be > 1, got {exponent}")
    rng = as_generator(seed)
    ranks = np.arange(1, num_nodes + 1, dtype=np.float64)
    weights = ranks ** (-1.0 / (exponent - 1.0))
    weights /= weights.sum()
    # Shuffle so popularity is not correlated with node id.
    popularity = rng.permutation(num_nodes)

    out_degrees = rng.poisson(avg_out_degree, size=num_nodes)
    total = int(out_degrees.sum())
    src = np.repeat(np.arange(num_nodes, dtype=np.int64), out_degrees)
    dst = popularity[rng.choice(num_nodes, size=total, p=weights)]

    keep = src != dst
    src, dst = src[keep], dst[keep]
    if reciprocity > 0.0 and src.size:
        flip = rng.random(src.size) < reciprocity
        extra_src, extra_dst = dst[flip], src[flip]
        src = np.concatenate((src, extra_src))
        dst = np.concatenate((dst, extra_dst))
    pairs = np.unique(np.stack((src, dst), axis=1), axis=0)
    keep = pairs[:, 0] != pairs[:, 1]
    pairs = pairs[keep]
    return DirectedGraph(num_nodes, pairs[:, 0], pairs[:, 1])


def community_graph(
    num_nodes: int,
    num_communities: int,
    *,
    within_probability: float = 0.08,
    between_edges_per_node: float = 0.3,
    seed=None,
) -> DirectedGraph:
    """Undirected community graph, returned with both edge directions.

    Nodes are split into ``num_communities`` groups with dense G(n, p)
    blocks inside groups and a sprinkle of random bridges between them —
    the classic structure of co-authorship networks like DBLP (§6).
    """
    if num_communities < 1 or num_communities > num_nodes:
        raise GraphError("need 1 <= num_communities <= num_nodes")
    rng = as_generator(seed)
    membership = rng.integers(0, num_communities, size=num_nodes)
    builder = GraphBuilder(num_nodes, skip_self_loops=True, skip_duplicates=True)
    for c in range(num_communities):
        members = np.flatnonzero(membership == c)
        k = members.size
        if k < 2:
            continue
        possible = k * (k - 1) // 2
        count = int(rng.binomial(possible, within_probability))
        if count == 0:
            continue
        codes = rng.choice(possible, size=count, replace=False)
        # Decode unordered-pair codes to (j, i) with j < i; correct the
        # floating-point row estimate where sqrt rounded across a boundary.
        i = (np.floor((1 + np.sqrt(1 + 8 * codes.astype(np.float64))) / 2)).astype(np.int64)
        j = codes - i * (i - 1) // 2
        too_low = j < 0
        i[too_low] -= 1
        too_high = codes - i * (i - 1) // 2 >= i
        i[too_high] += 1
        j = codes - i * (i - 1) // 2
        for a, b in zip(members[i], members[j]):
            builder.add_undirected_edge(int(a), int(b))
    num_bridges = int(between_edges_per_node * num_nodes)
    if num_bridges:
        u = rng.integers(0, num_nodes, size=num_bridges)
        v = rng.integers(0, num_nodes, size=num_bridges)
        for a, b in zip(u, v):
            if a != b:
                builder.add_undirected_edge(int(a), int(b))
    return builder.build()


def forest_fire_graph(
    num_nodes: int,
    *,
    forward_probability: float = 0.35,
    backward_probability: float = 0.2,
    seed=None,
) -> DirectedGraph:
    """Leskovec's forest-fire model: densifying, community-rich growth.

    Each new node picks a random ambassador, links to it, then "burns"
    recursively: from each burned node it links to a geometrically
    distributed number of its out-neighbors (``forward_probability``)
    and in-neighbors (``backward_probability``).  Produces the shrinking
    diameters and heavy tails of real social graphs — an alternative
    stand-in generator for the Table-1 networks.
    """
    if num_nodes < 2:
        raise GraphError("forest_fire_graph needs at least 2 nodes")
    if not 0 <= forward_probability < 1 or not 0 <= backward_probability < 1:
        raise GraphError("burning probabilities must be in [0, 1)")
    rng = as_generator(seed)
    out_adj: list[list[int]] = [[] for _ in range(num_nodes)]
    in_adj: list[list[int]] = [[] for _ in range(num_nodes)]
    edges: set[tuple[int, int]] = set()

    def link(u: int, v: int) -> None:
        if u != v and (u, v) not in edges:
            edges.add((u, v))
            out_adj[u].append(v)
            in_adj[v].append(u)

    for node in range(1, num_nodes):
        ambassador = int(rng.integers(0, node))
        link(node, ambassador)
        burned = {ambassador}
        frontier = [ambassador]
        while frontier:
            current = frontier.pop()
            # Geometric numbers of forward/backward links to burn.
            forward = int(rng.geometric(1.0 - forward_probability) - 1)
            backward = int(rng.geometric(1.0 - backward_probability) - 1)
            candidates = [w for w in out_adj[current] if w not in burned][:forward]
            candidates += [w for w in in_adj[current] if w not in burned][:backward]
            for target in candidates:
                burned.add(target)
                link(node, target)
                frontier.append(target)
    pairs = sorted(edges)
    return DirectedGraph.from_edges(pairs, num_nodes=num_nodes)


def complete_graph(num_nodes: int) -> DirectedGraph:
    """All ordered pairs — the dense extreme discussed in §4.1."""
    idx = np.arange(num_nodes)
    src = np.repeat(idx, num_nodes)
    dst = np.tile(idx, num_nodes)
    keep = src != dst
    return DirectedGraph(num_nodes, src[keep], dst[keep])


def cycle_graph(num_nodes: int) -> DirectedGraph:
    """Directed cycle ``0 → 1 → ... → n-1 → 0``."""
    if num_nodes < 2:
        raise GraphError("cycle_graph needs at least 2 nodes")
    src = np.arange(num_nodes, dtype=np.int64)
    dst = (src + 1) % num_nodes
    return DirectedGraph(num_nodes, src, dst)


def star_graph(num_leaves: int) -> DirectedGraph:
    """Node 0 pointing at ``num_leaves`` leaves — a one-hop influencer."""
    src = np.zeros(num_leaves, dtype=np.int64)
    dst = np.arange(1, num_leaves + 1, dtype=np.int64)
    return DirectedGraph(num_leaves + 1, src, dst)


def bipartite_gadget(spread_sizes) -> tuple[DirectedGraph, np.ndarray]:
    """The reduction gadget from the Theorem-1 hardness proof.

    For each integer ``x_i`` in ``spread_sizes`` the gadget has one "U"
    node with ``x_i − 1`` private out-neighbors, all edge probabilities 1,
    so the spread of U-node ``i`` is exactly ``x_i``.

    Returns
    -------
    (graph, u_nodes):
        ``u_nodes[i]`` is the node id of the U node for ``x_i``.
    """
    sizes = [int(x) for x in spread_sizes]
    if any(x < 1 for x in sizes):
        raise GraphError("spread sizes must be >= 1")
    builder = GraphBuilder(skip_self_loops=False)
    u_nodes = []
    next_id = 0
    for x in sizes:
        u = next_id
        u_nodes.append(u)
        next_id += 1
        for _ in range(x - 1):
            builder.add_edge(u, next_id)
            next_id += 1
    if next_id == 0:
        return DirectedGraph(0, [], []), np.empty(0, dtype=np.int64)
    builder._num_nodes = next_id  # all ids are allocated densely
    return builder.build(), np.asarray(u_nodes, dtype=np.int64)
