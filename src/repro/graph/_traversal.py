"""Vectorised frontier expansion — the shared BFS primitive.

Given a CSR ``indptr`` and a frontier of node ids, :func:`gather_edge_slots`
returns the flat positions (into the CSR's adjacency arrays) of every edge
incident to the frontier — without any per-node Python loop.  This is the
primitive that keeps Monte-Carlo simulation, reverse BFS and connectivity
algorithms fast in pure numpy (see DESIGN.md §6).
"""

from __future__ import annotations

import numpy as np

_EMPTY = np.empty(0, dtype=np.int64)


def gather_edge_slots(indptr: np.ndarray, frontier: np.ndarray) -> np.ndarray:
    """Flat CSR slot indices for all edges of all ``frontier`` nodes.

    Equivalent to ``np.concatenate([np.arange(indptr[u], indptr[u+1])
    for u in frontier])`` but fully vectorised.
    """
    if frontier.size == 0:
        return _EMPTY
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return _EMPTY
    # position of each output element within its node's slice
    cumulative = np.cumsum(counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(cumulative - counts, counts)
    return np.repeat(starts, counts) + within
