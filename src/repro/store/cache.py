"""The content-addressed shard cache: read-through RR-set block store.

Directory layout (one cache directory, shareable between processes)::

    CACHE_DIR/
      catalog.sqlite            the experiment catalog (WAL mode)
      objects/<shard_key>/<index>.blk   one file per cached block

``shard_key`` is the content address of one ad's stream
(:mod:`repro.store.keys`); ``index`` is the chunk index under philox
and the request ordinal under legacy streams.  Entries are written
atomically and verified against their stored dsan digest on every load
— a poisoned entry is quarantined (removed) with a warning and reported
as a miss, so the engine recomputes the block and the cache can never
change an allocation.

The cache is failure-transparent by design: a store that cannot write
(disk full, read-only directory) warns once and keeps serving, because
losing cache effectiveness must never lose a run.
"""

from __future__ import annotations

import os
import warnings

from repro.errors import StoreError
from repro.store.blocks import BlockEntry, CorruptBlockError, load_block, write_block
from repro.store.catalog import ExperimentCatalog

#: Environment variable consulted when the ``cache`` knob is ``None``
#: (mirrors ``REPRO_DSAN``): a path enables the cache at that directory.
ENV_VAR = "REPRO_CACHE"

#: Catalog writes (new rows + LRU touches) batch up to this many before
#: an automatic flush, so hit-heavy warm runs do one transaction per
#: request wave instead of one per block.
_FLUSH_THRESHOLD = 64

OBJECTS_DIRNAME = "objects"


class ShardCache:
    """One cache directory: block files plus their catalog."""

    def __init__(self, directory) -> None:
        self.directory = os.fspath(directory)
        try:
            os.makedirs(os.path.join(self.directory, OBJECTS_DIRNAME), exist_ok=True)
        except OSError as exc:
            raise StoreError(
                f"cannot create cache directory {self.directory}: {exc}"
            ) from exc
        self.catalog = ExperimentCatalog(self.directory)
        #: hits / misses / stores / corrupt / store_errors counters.
        self.stats: dict[str, int] = {
            "hits": 0, "misses": 0, "stores": 0, "corrupt": 0, "store_errors": 0,
        }
        self._pending_rows: list[dict] = []
        self._pending_touches: list[tuple[str, int]] = []
        self._warned_store_failure = False
        self._closed = False

    # ------------------------------------------------------------------
    def entry_path(self, shard_key: str, index: int) -> str:
        return os.path.join(
            self.directory, OBJECTS_DIRNAME, shard_key, f"{int(index)}.blk"
        )

    def has(self, shard_key: str, index: int) -> bool:
        """Cheap existence probe (no verification) — the submit-or-skip
        decision for process fan-out and prefetch.  A ``False`` counts
        as a miss; a ``True`` is only counted when the later
        :meth:`load` verifies the entry."""
        if os.path.exists(self.entry_path(shard_key, index)):
            return True
        self.stats["misses"] += 1
        return False

    def load(self, shard_key: str, index: int) -> BlockEntry | None:
        """Verified read: the entry at ``(shard_key, index)``, or
        ``None`` on miss *or* corruption (the poisoned file is removed,
        its catalog row dropped, and a ``RuntimeWarning`` names it —
        never a wrong splice)."""
        path = self.entry_path(shard_key, index)
        try:
            entry = load_block(path)
        except FileNotFoundError:
            self.stats["misses"] += 1
            return None
        except CorruptBlockError as exc:
            self.stats["corrupt"] += 1
            self.stats["misses"] += 1
            self._quarantine(shard_key, index, path, exc)
            return None
        self.stats["hits"] += 1
        self._pending_touches.append((shard_key, int(index)))
        self._maybe_flush()
        return entry

    def store(
        self, shard_key: str, index: int, members, lengths, *,
        state: dict | None = None, meta: dict | None = None,
    ) -> bool:
        """Write one block (idempotent: an existing entry is kept — for
        the same address it holds the same bytes).  Returns whether an
        entry file now backs the address; write failures warn once and
        report ``False``."""
        path = self.entry_path(shard_key, index)
        if os.path.exists(path):
            return True
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            nbytes, digest = write_block(path, members, lengths, state=state)
        except OSError as exc:
            self.stats["store_errors"] += 1
            if not self._warned_store_failure:
                self._warned_store_failure = True
                warnings.warn(
                    f"shard cache at {self.directory} cannot store entries "
                    f"({exc}); continuing without caching new blocks",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return False
        self.stats["stores"] += 1
        row = dict(meta or {})
        row.update(
            shard_key=shard_key,
            block_index=int(index),
            num_sets=int(len(lengths)),
            num_members=int(len(members)),
            nbytes=int(nbytes),
            digest=digest,
        )
        self._pending_rows.append(row)
        self._maybe_flush()
        return True

    # ------------------------------------------------------------------
    def _quarantine(self, shard_key: str, index: int, path: str, exc) -> None:
        warnings.warn(
            f"shard cache: corrupt entry ({shard_key}, {index}) at {path} "
            f"— {exc}; entry removed, block will be recomputed",
            RuntimeWarning,
            stacklevel=3,
        )
        try:
            os.remove(path)
        except OSError:
            pass
        try:
            self.catalog.forget_shard(shard_key, int(index))
        except StoreError:  # pragma: no cover - catalog write race
            pass

    def _maybe_flush(self) -> None:
        if len(self._pending_rows) + len(self._pending_touches) >= _FLUSH_THRESHOLD:
            self.flush()

    def flush(self) -> None:
        """Push batched catalog writes (new shard rows + LRU touches)."""
        if self._closed:
            return
        rows, self._pending_rows = self._pending_rows, []
        touches, self._pending_touches = self._pending_touches, []
        self.catalog.record_shards(rows)
        self.catalog.touch_shards(touches)

    def close(self) -> None:
        if self._closed:
            return
        self.flush()
        self._closed = True
        self.catalog.close()

    def __enter__(self) -> "ShardCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardCache({self.directory!r}, hits={self.stats['hits']}, "
            f"misses={self.stats['misses']}, stores={self.stats['stores']})"
        )


def resolve_cache(cache) -> tuple[ShardCache | None, bool]:
    """Resolve the tri-state ``cache`` knob to ``(cache, owned)``.

    ``None`` defers to the ``REPRO_CACHE`` environment variable (unset
    or empty → no cache); a path opens a cache the caller owns (and must
    close); a ready :class:`ShardCache` is shared, not owned.
    """
    if cache is None:
        env = os.environ.get(ENV_VAR, "").strip()
        if not env:
            return None, False
        return ShardCache(env), True
    if isinstance(cache, ShardCache):
        return cache, False
    return ShardCache(cache), True
