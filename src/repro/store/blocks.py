"""On-disk format of one cached RR-set block (a ``.blk`` entry file).

The payload is byte-for-byte the engine's packed chunk-block layout —
``int64`` lengths, then ``int32`` members, exactly the bytes a
shared-memory transport segment carries and exactly the bytes the dsan
digest covers — preceded by one fixed 64-byte header and (for legacy
entries) followed by a JSON post-request stream-state snapshot::

    offset 0    magic        8 bytes  b"RRSBLK01" (format version 1)
    offset 8    num_sets     int64 little-endian
    offset 16   num_members  int64 little-endian
    offset 24   state_len    int64 little-endian (0 for philox entries)
    offset 32   digest       32 ascii hex chars (blake2b-128 of payload)
    offset 64   lengths      num_sets * int64           (8-byte aligned)
    ...         members      num_members * int32        (4-byte aligned)
    ...         state        state_len bytes of UTF-8 JSON

Writes are atomic (unique tmp file in the same directory, then
``os.replace``), so concurrent writers race benignly: both write the
same bytes for the same address and the last rename wins.  Loads map
the file read-only (``np.memmap``) and hand out zero-copy views; the
stored digest is recomputed over the mapped payload *before* any view
escapes, so a corrupt entry is detected here and never spliced.
"""

from __future__ import annotations

import itertools
import json
import os
import struct

import numpy as np

from repro.errors import StoreError
from repro.rrset.dsan import digest_block
from repro.rrset.pool import MEMBER_DTYPE

MAGIC = b"RRSBLK01"
_HEADER = struct.Struct("<8sqqq32s")
HEADER_SIZE = _HEADER.size  # 64: keeps the int64 lengths 8-byte aligned
_LENGTH_DTYPE = np.int64
_LENGTH_ITEMSIZE = np.dtype(_LENGTH_DTYPE).itemsize
_MEMBER_ITEMSIZE = np.dtype(MEMBER_DTYPE).itemsize

#: Per-process tmp-name counter: together with the pid this makes tmp
#: paths unique across concurrent writers without drawing entropy
#: (``uuid``/``random`` tmp names would violate the repo's own R102).
_TMP_IDS = itertools.count()


class CorruptBlockError(StoreError):
    """An entry file failed its structural or digest check.  Callers
    (the read-through cache) quarantine the file, warn, and recompute —
    corruption must never surface as a wrong allocation."""


class BlockEntry:
    """A loaded, digest-verified cache entry: zero-copy views over a
    read-only file mapping, in the engine's packed block layout."""

    __slots__ = (
        "path", "num_sets", "num_members", "digest", "state",
        "buffer", "lengths", "members", "lengths_offset", "members_offset",
    )

    def __init__(self, path, num_sets, num_members, digest, state,
                 buffer, lengths, members) -> None:
        self.path = path
        self.num_sets = num_sets
        self.num_members = num_members
        self.digest = digest
        self.state = state
        self.buffer = buffer
        self.lengths = lengths
        self.members = members
        self.lengths_offset = HEADER_SIZE
        self.members_offset = HEADER_SIZE + num_sets * _LENGTH_ITEMSIZE

    def release(self) -> None:
        """Drop the views and the mapping reference.  The engine splices
        out of the entry with exactly one copy and then releases it, so
        the mapping never outlives the request that hit it."""
        self.lengths = None
        self.members = None
        self.buffer = None


def write_block(
    path: str, members, lengths, *, state: dict | None = None
) -> tuple[int, str]:
    """Atomically write one entry file; returns ``(nbytes, digest)``.

    ``members``/``lengths`` are coerced to the packed dtypes (the same
    coercion the shm transport applies), the digest is computed over the
    packed bytes, and the file lands via tmp + ``os.replace`` so readers
    only ever observe complete entries.
    """
    lengths = np.ascontiguousarray(lengths, dtype=_LENGTH_DTYPE)
    members = np.ascontiguousarray(members, dtype=MEMBER_DTYPE)
    digest = digest_block(members, lengths)
    state_bytes = (
        b"" if state is None
        else json.dumps(state, sort_keys=True, default=int).encode("utf-8")
    )
    header = _HEADER.pack(
        MAGIC, lengths.size, members.size, len(state_bytes),
        digest.encode("ascii"),
    )
    tmp = f"{path}.{os.getpid()}.{next(_TMP_IDS)}.tmp"
    try:
        with open(tmp, "wb") as handle:
            handle.write(header)
            handle.write(lengths.tobytes())
            handle.write(members.tobytes())
            handle.write(state_bytes)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.remove(tmp)
    return HEADER_SIZE + lengths.nbytes + members.nbytes + len(state_bytes), digest


def load_block(path: str) -> BlockEntry:
    """Map and verify one entry file.

    Raises
    ------
    CorruptBlockError
        Truncated file, bad magic, inconsistent sizes, undecodable
        state, or a payload whose recomputed digest disagrees with the
        stored one — the caller quarantines and recomputes.
    FileNotFoundError
        No entry at ``path`` (a plain miss, not corruption).
    """
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    try:
        buffer = np.memmap(path, dtype=np.uint8, mode="r")
    except (OSError, ValueError) as exc:
        raise CorruptBlockError(f"unmappable cache entry {path}: {exc}") from exc
    if buffer.size < HEADER_SIZE:
        raise CorruptBlockError(f"truncated cache entry {path} ({buffer.size} bytes)")
    magic, num_sets, num_members, state_len, digest_raw = _HEADER.unpack(
        buffer[:HEADER_SIZE].tobytes()
    )
    if magic != MAGIC:
        raise CorruptBlockError(f"bad magic in cache entry {path}: {magic!r}")
    expected_size = (
        HEADER_SIZE
        + num_sets * _LENGTH_ITEMSIZE
        + num_members * _MEMBER_ITEMSIZE
        + state_len
    )
    if num_sets < 0 or num_members < 0 or state_len < 0 or (
        buffer.size != expected_size
    ):
        raise CorruptBlockError(
            f"inconsistent sizes in cache entry {path}: header says "
            f"{expected_size} bytes, file has {buffer.size}"
        )
    lengths = np.frombuffer(
        buffer, dtype=_LENGTH_DTYPE, count=num_sets, offset=HEADER_SIZE
    )
    members_offset = HEADER_SIZE + num_sets * _LENGTH_ITEMSIZE
    members = np.frombuffer(
        buffer, dtype=MEMBER_DTYPE, count=num_members, offset=members_offset
    )
    digest = digest_raw.decode("ascii", errors="replace")
    if digest_block(members, lengths) != digest:
        raise CorruptBlockError(
            f"digest mismatch in cache entry {path}: stored {digest}, "
            f"payload hashes differently — entry is poisoned"
        )
    state = None
    if state_len:
        state_offset = members_offset + num_members * _MEMBER_ITEMSIZE
        try:
            state = json.loads(
                buffer[state_offset:state_offset + state_len].tobytes().decode("utf-8")
            )
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CorruptBlockError(
                f"undecodable stream state in cache entry {path}: {exc}"
            ) from exc
    return BlockEntry(
        path, int(num_sets), int(num_members), digest, state,
        buffer, lengths, members,
    )
