"""Shard-cache key schema: what addresses a cached RR-set block.

A cached block must be reusable by *any* run that would compute the
same bytes, and by no other.  The key therefore digests exactly the
inputs the block bytes are a pure function of — and deliberately
excludes everything the determinism contract says is byte-identical
substrate (engine, worker count, backend, transport, start method,
prefetch): those are provenance, recorded in the catalog, never part of
the address (the provenance-not-contract rule of
``docs/architecture.md``).

Philox entries (``rng="philox"``)
    ``sample_chunk_block`` is a pure function of
    ``(entropy, ad, chunk_size, chunk_index, mode)`` given the graph
    and the ad's edge probabilities.  The key digests
    ``(graph_digest, probs_digest, entropy, ad, chunk_size, mode)``;
    the chunk index addresses entries *within* the key's directory.

Legacy entries (``rng="legacy"``)
    Streams are stateful, so a block's bytes depend on the stream state
    at the start of the request.  The key digests the *initial* per-ad
    stream state (plus graph/probs/mode); entries are addressed by the
    per-ad request ordinal and each carries the request ``count`` and
    the post-request stream state, so a hit both splices the block and
    advances the restored stream exactly as sampling would have.
"""

from __future__ import annotations

import hashlib
import json

#: blake2b key width (bytes): 16 matches the dsan / content digests.
KEY_DIGEST_SIZE = 16


def philox_shard_key(
    *, graph_hash: str, probs_hash: str, entropy: int, ad: int,
    chunk_size: int, mode: str,
) -> str:
    """Content address of one ad's philox chunk stream."""
    text = (
        f"philox|graph={graph_hash}|probs={probs_hash}|entropy={int(entropy)}"
        f"|ad={int(ad)}|chunk_size={int(chunk_size)}|mode={mode}"
    )
    return hashlib.blake2b(text.encode(), digest_size=KEY_DIGEST_SIZE).hexdigest()


def legacy_shard_key(
    *, graph_hash: str, probs_hash: str, state_hash: str, ad: int, mode: str,
) -> str:
    """Content address of one ad's legacy request sequence."""
    text = (
        f"legacy|graph={graph_hash}|probs={probs_hash}|state={state_hash}"
        f"|ad={int(ad)}|mode={mode}"
    )
    return hashlib.blake2b(text.encode(), digest_size=KEY_DIGEST_SIZE).hexdigest()


def state_hash(state: dict) -> str:
    """Digest of a legacy stream-state snapshot (canonical JSON, so the
    live snapshot and its JSON round-trip hash identically)."""
    text = json.dumps(state, sort_keys=True, separators=(",", ":"), default=int)
    return hashlib.blake2b(text.encode(), digest_size=KEY_DIGEST_SIZE).hexdigest()
