"""Persistent artifact store: shard cache + experiment catalog.

The warm-start tier of the sampling stack (PR 8).  Counter-based
streams made every RR-set chunk a pure function of its
``(entropy, ad, chunk)`` address, and the dsan digests fingerprint the
resulting bytes — this package turns those two properties into a
**content-addressed, read-through shard cache**
(:class:`~repro.store.cache.ShardCache`) the
:class:`~repro.rrset.sharded.ShardedSamplingEngine` consults before
submitting any compute, plus a **WAL-mode SQLite experiment catalog**
(:class:`~repro.store.catalog.ExperimentCatalog`) indexing cached
shards, allocations with full provenance, checkpoint lineage, and
benchmark history.

A warm second run of the same allocation performs **zero**
sampling-backend invocations and is byte-identical to a cold one: every
hit is verified against its stored dsan digest before it is spliced
(corruption → warn + recompute), so the cache — like the engine, the
backend, and the transport — sits outside the determinism contract.

Modules: :mod:`~repro.store.keys` (the key schema),
:mod:`~repro.store.blocks` (the entry file format),
:mod:`~repro.store.cache` (the read-through cache),
:mod:`~repro.store.catalog` (the SQLite catalog),
:mod:`~repro.store.gc` (LRU eviction under a byte budget),
:mod:`~repro.store.commands` (``repro ls / show / diff / gc``).
"""

from repro.store.blocks import BlockEntry, CorruptBlockError, load_block, write_block
from repro.store.cache import ENV_VAR, ShardCache, resolve_cache
from repro.store.catalog import CATALOG_FILENAME, ExperimentCatalog
from repro.store.gc import GcReport, cache_usage, collect_garbage
from repro.store.keys import legacy_shard_key, philox_shard_key, state_hash

__all__ = [
    "BlockEntry",
    "CorruptBlockError",
    "load_block",
    "write_block",
    "ENV_VAR",
    "ShardCache",
    "resolve_cache",
    "CATALOG_FILENAME",
    "ExperimentCatalog",
    "GcReport",
    "cache_usage",
    "collect_garbage",
    "legacy_shard_key",
    "philox_shard_key",
    "state_hash",
]
