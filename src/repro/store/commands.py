"""``repro ls / show / diff / gc`` — the catalog's command layer.

Thin, ldb-style subcommands over one cache directory (``--cache DIR``
or the ``REPRO_CACHE`` environment variable): each function takes
parsed args, prints through :func:`~repro.evaluation.reporting.format_table`,
and returns an exit code — same shape as the rest of the CLI, so the
commands are trivially testable with ``capsys``.

* ``ls``   — catalog overview: allocations (default), or one of
  ``--shards`` / ``--checkpoints`` / ``--benchmarks``.
* ``show`` — one allocation row in full (provenance + stats JSON).
* ``diff`` — compare two allocations field-by-field; exit 1 when any
  determinism-contract field differs (substrate fields — engine,
  backend, transport, cache counters — are displayed but never
  compared, matching the provenance-not-contract rule).
* ``gc``   — LRU eviction under ``--max-bytes``, protected shards kept
  (:mod:`repro.store.gc`).
"""

from __future__ import annotations

import datetime
import json
import os

from repro.errors import ConfigurationError, StoreError
from repro.evaluation.reporting import format_table
from repro.store.cache import ENV_VAR
from repro.store.catalog import ExperimentCatalog
from repro.store.gc import cache_usage, collect_garbage

#: Allocation fields the determinism contract pins — ``diff`` compares
#: exactly these.  Substrate/provenance fields (engine, backend,
#: transport, cache counters) are shown but never drive the exit code.
CONTRACT_FIELDS = (
    "algorithm", "dataset", "seed", "rng", "chunk_size",
    "iterations", "total_rr_sets", "dsan_root",
)

SUBSTRATE_FIELDS = (
    "engine", "backend", "transport",
    "cache_hits", "cache_misses", "backend_invocations",
)


def resolve_cache_dir(args) -> str:
    """``--cache DIR`` or ``REPRO_CACHE``; error when neither names a
    directory that exists (these commands inspect, never create)."""
    directory = getattr(args, "cache", None) or os.environ.get(ENV_VAR, "").strip()
    if not directory:
        raise ConfigurationError(
            "no cache directory: pass --cache DIR or set REPRO_CACHE"
        )
    if not os.path.isdir(directory):
        raise StoreError(f"no cache directory at {directory}")
    return directory


def _when(timestamp) -> str:
    if timestamp is None:
        return "-"
    return datetime.datetime.fromtimestamp(float(timestamp)).strftime(
        "%Y-%m-%d %H:%M:%S"
    )


def cmd_ls(args) -> int:
    directory = resolve_cache_dir(args)
    with ExperimentCatalog(directory) as catalog:
        if getattr(args, "shards", False):
            rows = [
                [row["shard_key"][:12], row["block_index"], row["ad"],
                 row["rng"], row["mode"], row["num_sets"], row["nbytes"],
                 row["uses"], _when(row["last_used_at"])]
                for row in catalog.list_shards()
            ]
            print(format_table(
                ["shard key", "idx", "ad", "rng", "mode", "sets", "bytes",
                 "uses", "last used"],
                rows, title=f"Cached shards: {directory}",
            ))
            return 0
        if getattr(args, "checkpoints", False):
            rows = [
                [row["id"], row["path"], row["iterations"], _when(row["created_at"])]
                for row in catalog.list_checkpoints()
            ]
            print(format_table(
                ["id", "path", "iterations", "written"],
                rows, title=f"Registered checkpoints: {directory}",
            ))
            return 0
        if getattr(args, "benchmarks", False):
            rows = [
                [row["id"], row["phase"], row["variant"], row["wall_s"],
                 row["speedup"], _when(row["created_at"])]
                for row in catalog.list_benchmarks()
            ]
            print(format_table(
                ["id", "phase", "variant", "wall_s", "speedup", "recorded"],
                rows, title=f"Benchmark history: {directory}",
            ))
            return 0
        usage = cache_usage(directory)
        print(
            f"cache {directory}: {usage['entries']} cached blocks across "
            f"{usage['shard_keys']} shard keys, {usage['bytes']} bytes"
        )
        rows = [
            [row["id"], row["algorithm"], row["dataset"] or "-", row["seed"],
             row["rng"], row["engine"], row["backend"], row["cache_hits"],
             row["backend_invocations"], _when(row["created_at"])]
            for row in catalog.list_allocations()
        ]
        print(format_table(
            ["id", "algorithm", "dataset", "seed", "rng", "engine",
             "backend", "hits", "sampled", "when"],
            rows, title="Recorded allocations",
        ))
    return 0


def cmd_show(args) -> int:
    directory = resolve_cache_dir(args)
    with ExperimentCatalog(directory) as catalog:
        record = catalog.get_allocation(args.id)
    if record is None:
        raise StoreError(f"no allocation #{args.id} in {directory}")
    rows = [["recorded", _when(record["created_at"])]]
    for name in CONTRACT_FIELDS + SUBSTRATE_FIELDS:
        rows.append([name, record.get(name)])
    print(format_table(
        ["field", "value"], rows, title=f"Allocation #{record['id']}"
    ))
    print("provenance:", json.dumps(record["provenance"], indent=2, sort_keys=True))
    print("stats:", json.dumps(record["stats"], indent=2, sort_keys=True))
    return 0


def cmd_diff(args) -> int:
    directory = resolve_cache_dir(args)
    with ExperimentCatalog(directory) as catalog:
        left = catalog.get_allocation(args.left)
        right = catalog.get_allocation(args.right)
    for record, label in ((left, args.left), (right, args.right)):
        if record is None:
            raise StoreError(f"no allocation #{label} in {directory}")
    rows = []
    divergent = 0
    for name in CONTRACT_FIELDS:
        a, b = left.get(name), right.get(name)
        same = a == b
        divergent += 0 if same else 1
        rows.append([name, a, b, "" if same else "DIFFERS"])
    for name in SUBSTRATE_FIELDS:
        a, b = left.get(name), right.get(name)
        rows.append([name, a, b, "" if a == b else "(substrate)"])
    print(format_table(
        ["field", f"#{left['id']}", f"#{right['id']}", ""],
        rows, title=f"Allocation diff: #{left['id']} vs #{right['id']}",
    ))
    if divergent:
        print(f"{divergent} contract field(s) differ")
        return 1
    print("contract fields identical (substrate differences never "
          "change the allocation)")
    return 0


def cmd_gc(args) -> int:
    directory = resolve_cache_dir(args)
    report = collect_garbage(
        directory, max_bytes=args.max_bytes, dry_run=args.dry_run
    )
    verb = "would evict" if report.dry_run else "evicted"
    print(
        f"gc {directory}: {report.bytes_before} -> {report.bytes_after} bytes "
        f"(budget {report.budget}); {verb} {report.evicted_entries} entries "
        f"({report.evicted_bytes} bytes, {report.orphans_evicted} orphans); "
        f"{report.protected_entries} checkpoint-protected entries kept "
        f"({report.protected_bytes} bytes)"
    )
    if report.over_budget:
        print(
            "warning: still over budget — the remaining entries are "
            "protected by live checkpoints (gc refuses to drop them)"
        )
    return 0
