"""The experiment catalog: a WAL-mode SQLite index over the store.

One ``catalog.sqlite`` per cache directory, holding four tables:

``shards``
    One row per cached block file — its content address
    ``(shard_key, block_index)``, provenance fields (ad, rng, mode,
    chunk size, entropy, graph hash), sizes, the dsan digest, and the
    LRU bookkeeping (``created_at`` / ``last_used_at`` / ``uses``) that
    drives ``repro gc``.
``allocations``
    One row per completed allocation run — full provenance
    (seed/rng/chunk/backend/engine/transport/dsan_root), headline stats,
    and cache-effectiveness counters; ``repro ls/show/diff`` read it.
``checkpoints`` / ``checkpoint_shards``
    Checkpoint lineage plus the shard references that *protect* cached
    blocks from eviction: ``repro gc`` refuses to drop a shard a live
    checkpoint would re-derive its pool from.
``benchmarks``
    Bench-section history (``bench_rrset_engine.py --json`` records its
    rows here when a cache is configured), read by
    ``repro ls --benchmarks``.

Concurrency: the database opens in WAL journal mode with a generous
busy timeout, every write runs in a short implicit transaction, and
shard registration uses ``INSERT OR REPLACE`` — two processes
populating the same cache directory serialize cleanly at the SQLite
layer while their block writes race benignly at the rename layer.
Within one process the connection is shared across threads (the
allocation service records finished jobs from worker threads), so it
opens with ``check_same_thread=False`` and every statement runs under
one internal lock — cross-thread access serializes here, not in
sqlite3's error path.

This module is the store's one timestamp seam: ``created_at`` /
``last_used_at`` are wall-clock *provenance data* about the cache, not
seeds, and never feed any sampling path — the repo's R102 rule
sanctions exactly this module for them (``AnalysisConfig``).
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time

from repro.errors import StoreError

#: Catalog filename inside a cache directory.
CATALOG_FILENAME = "catalog.sqlite"

#: How long a writer waits on a locked database before erroring (ms).
BUSY_TIMEOUT_MS = 30_000

_SCHEMA = """
CREATE TABLE IF NOT EXISTS shards (
    shard_key    TEXT NOT NULL,
    block_index  INTEGER NOT NULL,
    ad           INTEGER,
    rng          TEXT,
    mode         TEXT,
    chunk_size   INTEGER,
    entropy      TEXT,
    graph_hash   TEXT,
    num_sets     INTEGER NOT NULL,
    num_members  INTEGER NOT NULL,
    nbytes       INTEGER NOT NULL,
    digest       TEXT NOT NULL,
    created_at   REAL NOT NULL,
    last_used_at REAL NOT NULL,
    uses         INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (shard_key, block_index)
);
CREATE TABLE IF NOT EXISTS allocations (
    id            INTEGER PRIMARY KEY AUTOINCREMENT,
    created_at    REAL NOT NULL,
    algorithm     TEXT,
    dataset       TEXT,
    seed          INTEGER,
    rng           TEXT,
    chunk_size    INTEGER,
    engine        TEXT,
    backend       TEXT,
    transport     TEXT,
    dsan_root     TEXT,
    iterations    INTEGER,
    total_rr_sets INTEGER,
    cache_hits    INTEGER,
    cache_misses  INTEGER,
    backend_invocations INTEGER,
    job_id        TEXT,
    provenance_json TEXT,
    stats_json    TEXT
);
CREATE TABLE IF NOT EXISTS checkpoints (
    id           INTEGER PRIMARY KEY AUTOINCREMENT,
    path         TEXT NOT NULL UNIQUE,
    created_at   REAL NOT NULL,
    iterations   INTEGER,
    config_json  TEXT
);
CREATE TABLE IF NOT EXISTS checkpoint_shards (
    checkpoint_id INTEGER NOT NULL,
    shard_key     TEXT NOT NULL,
    max_index     INTEGER NOT NULL,
    PRIMARY KEY (checkpoint_id, shard_key)
);
CREATE TABLE IF NOT EXISTS benchmarks (
    id         INTEGER PRIMARY KEY AUTOINCREMENT,
    created_at REAL NOT NULL,
    phase      TEXT,
    variant    TEXT,
    n          INTEGER,
    ads        INTEGER,
    theta      INTEGER,
    wall_s     REAL,
    speedup    TEXT,
    report     TEXT
);
"""


class ExperimentCatalog:
    """Connection wrapper over one cache directory's catalog database."""

    def __init__(self, directory: str) -> None:
        self.directory = os.fspath(directory)
        self.path = os.path.join(self.directory, CATALOG_FILENAME)
        self._conn = None
        self._lock = threading.RLock()
        try:
            self._conn = sqlite3.connect(self.path, check_same_thread=False)
            self._conn.execute(f"PRAGMA busy_timeout = {BUSY_TIMEOUT_MS}")
            self._conn.execute("PRAGMA journal_mode = WAL")
            self._conn.execute("PRAGMA synchronous = NORMAL")
            with self._lock, self._conn:
                self._conn.executescript(_SCHEMA)
            # Schema migration for catalogs created before the service
            # tier existed: CREATE TABLE IF NOT EXISTS never *adds*
            # columns, so older databases need the job_id column bolted
            # on.  A duplicate-column error means the schema is current.
            try:
                with self._lock, self._conn:
                    self._conn.execute(
                        "ALTER TABLE allocations ADD COLUMN job_id TEXT"
                    )
            except sqlite3.OperationalError:
                pass
        except sqlite3.Error as exc:
            raise StoreError(
                f"cannot open experiment catalog at {self.path}: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    def __enter__(self) -> "ExperimentCatalog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Shards
    # ------------------------------------------------------------------
    def record_shards(self, rows: list[dict]) -> None:
        """Register (or refresh) cached block files, one dict per row
        with keys matching the ``shards`` columns sans timestamps."""
        if not rows:
            return
        now = time.time()
        with self._lock, self._conn:
            self._conn.executemany(
                "INSERT OR REPLACE INTO shards (shard_key, block_index, ad, "
                "rng, mode, chunk_size, entropy, graph_hash, num_sets, "
                "num_members, nbytes, digest, created_at, last_used_at, uses) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, 0)",
                [
                    (
                        row["shard_key"], row["block_index"], row.get("ad"),
                        row.get("rng"), row.get("mode"), row.get("chunk_size"),
                        row.get("entropy"), row.get("graph_hash"),
                        row["num_sets"], row["num_members"], row["nbytes"],
                        row["digest"], now, now,
                    )
                    for row in rows
                ],
            )

    def touch_shards(self, keys: list[tuple[str, int]]) -> None:
        """LRU bookkeeping: bump ``last_used_at``/``uses`` for hit
        entries (a no-op for rows another process already evicted)."""
        if not keys:
            return
        now = time.time()
        with self._lock, self._conn:
            self._conn.executemany(
                "UPDATE shards SET last_used_at = ?, uses = uses + 1 "
                "WHERE shard_key = ? AND block_index = ?",
                [(now, key, index) for key, index in keys],
            )

    def forget_shard(self, shard_key: str, block_index: int) -> None:
        """Drop one shard row (evicted or quarantined entry)."""
        with self._lock, self._conn:
            self._conn.execute(
                "DELETE FROM shards WHERE shard_key = ? AND block_index = ?",
                (shard_key, block_index),
            )

    def list_shards(self) -> list[dict]:
        """Every shard row, LRU-oldest first."""
        with self._lock:
            cursor = self._conn.execute(
                "SELECT shard_key, block_index, ad, rng, mode, chunk_size, "
                "entropy, graph_hash, num_sets, num_members, nbytes, digest, "
                "created_at, last_used_at, uses FROM shards "
                "ORDER BY last_used_at, shard_key, block_index"
            )
            columns = [d[0] for d in cursor.description]
            return [dict(zip(columns, row)) for row in cursor.fetchall()]

    def total_shard_bytes(self) -> int:
        with self._lock:
            row = self._conn.execute(
                "SELECT COALESCE(SUM(nbytes), 0) FROM shards"
            ).fetchone()
        return int(row[0])

    # ------------------------------------------------------------------
    # Allocations
    # ------------------------------------------------------------------
    def record_allocation(self, record: dict) -> int:
        """Insert one allocation row; returns its catalog id."""
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "INSERT INTO allocations (created_at, algorithm, dataset, "
                "seed, rng, chunk_size, engine, backend, transport, "
                "dsan_root, iterations, total_rr_sets, cache_hits, "
                "cache_misses, backend_invocations, job_id, "
                "provenance_json, stats_json) VALUES (?, ?, ?, ?, ?, ?, ?, "
                "?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    time.time(), record.get("algorithm"), record.get("dataset"),
                    record.get("seed"), record.get("rng"),
                    record.get("chunk_size"), record.get("engine"),
                    record.get("backend"), record.get("transport"),
                    record.get("dsan_root"), record.get("iterations"),
                    record.get("total_rr_sets"), record.get("cache_hits"),
                    record.get("cache_misses"),
                    record.get("backend_invocations"),
                    record.get("job_id"),
                    json.dumps(record.get("provenance", {}), default=str),
                    json.dumps(record.get("stats", {}), default=str),
                ),
            )
        return int(cursor.lastrowid)

    def list_allocations(self) -> list[dict]:
        with self._lock:
            cursor = self._conn.execute(
                "SELECT id, created_at, algorithm, dataset, seed, rng, "
                "chunk_size, engine, backend, transport, dsan_root, "
                "iterations, total_rr_sets, cache_hits, cache_misses, "
                "backend_invocations, job_id FROM allocations ORDER BY id"
            )
            columns = [d[0] for d in cursor.description]
            return [dict(zip(columns, row)) for row in cursor.fetchall()]

    def get_allocation(self, allocation_id: int) -> dict | None:
        with self._lock:
            cursor = self._conn.execute(
                "SELECT * FROM allocations WHERE id = ?", (int(allocation_id),)
            )
            row = cursor.fetchone()
        if row is None:
            return None
        record = dict(zip([d[0] for d in cursor.description], row))
        record["provenance"] = json.loads(record.pop("provenance_json") or "{}")
        record["stats"] = json.loads(record.pop("stats_json") or "{}")
        return record

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    def record_checkpoint(
        self, path: str, *, iterations: int, config: dict,
        shard_refs: list[tuple[str, int]],
    ) -> int:
        """Register a checkpoint artifact and the shard prefixes it
        pins: ``shard_refs`` lists ``(shard_key, max_index)`` pairs —
        a resume re-derives its pools from blocks ``0..max_index`` of
        each key, so gc must keep them.  Re-registering the same path
        (the artifact is atomically overwritten each boundary) replaces
        the row and its references."""
        with self._lock, self._conn:
            self._conn.execute(
                "DELETE FROM checkpoint_shards WHERE checkpoint_id IN "
                "(SELECT id FROM checkpoints WHERE path = ?)", (path,)
            )
            self._conn.execute("DELETE FROM checkpoints WHERE path = ?", (path,))
            cursor = self._conn.execute(
                "INSERT INTO checkpoints (path, created_at, iterations, "
                "config_json) VALUES (?, ?, ?, ?)",
                (path, time.time(), int(iterations),
                 json.dumps(config, default=str)),
            )
            checkpoint_id = int(cursor.lastrowid)
            self._conn.executemany(
                "INSERT OR REPLACE INTO checkpoint_shards "
                "(checkpoint_id, shard_key, max_index) VALUES (?, ?, ?)",
                [(checkpoint_id, key, int(index)) for key, index in shard_refs],
            )
        return checkpoint_id

    def list_checkpoints(self) -> list[dict]:
        with self._lock:
            cursor = self._conn.execute(
                "SELECT id, path, created_at, iterations "
                "FROM checkpoints ORDER BY id"
            )
            columns = [d[0] for d in cursor.description]
            return [dict(zip(columns, row)) for row in cursor.fetchall()]

    def protected_shards(self, *, live_paths_only: bool = True) -> dict[str, int]:
        """``shard_key -> max protected block index`` over checkpoints.

        With ``live_paths_only`` (the gc default), references from
        checkpoint rows whose artifact no longer exists on disk are
        pruned first — a deleted checkpoint stops pinning blocks.
        """
        if live_paths_only:
            dead = [
                row["id"] for row in self.list_checkpoints()
                if not os.path.exists(row["path"])
            ]
            if dead:
                with self._lock, self._conn:
                    marks = ",".join("?" for _ in dead)
                    self._conn.execute(
                        f"DELETE FROM checkpoint_shards WHERE checkpoint_id IN ({marks})",
                        dead,
                    )
                    self._conn.execute(
                        f"DELETE FROM checkpoints WHERE id IN ({marks})", dead
                    )
        protected: dict[str, int] = {}
        with self._lock:
            rows = self._conn.execute(
                "SELECT shard_key, MAX(max_index) FROM checkpoint_shards "
                "GROUP BY shard_key"
            ).fetchall()
        for key, max_index in rows:
            protected[key] = int(max_index)
        return protected

    # ------------------------------------------------------------------
    # Benchmarks
    # ------------------------------------------------------------------
    def record_benchmarks(self, rows: list[dict], *, report: str | None = None) -> None:
        """Append bench-section rows (``bench_rrset_engine.py`` record
        shape: phase/n/variant/ads/theta/wall_s/speedup)."""
        if not rows:
            return
        now = time.time()
        with self._lock, self._conn:
            self._conn.executemany(
                "INSERT INTO benchmarks (created_at, phase, variant, n, ads, "
                "theta, wall_s, speedup, report) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                [
                    (
                        now, row.get("phase"), row.get("variant"), row.get("n"),
                        row.get("ads"), row.get("theta"), row.get("wall_s"),
                        str(row.get("speedup")), report,
                    )
                    for row in rows
                ],
            )

    def list_benchmarks(self) -> list[dict]:
        with self._lock:
            cursor = self._conn.execute(
                "SELECT id, created_at, phase, variant, n, ads, theta, "
                "wall_s, speedup, report FROM benchmarks ORDER BY id"
            )
            columns = [d[0] for d in cursor.description]
            return [dict(zip(columns, row)) for row in cursor.fetchall()]
