"""Cache eviction: LRU under a byte budget, checkpoint-refs protected.

``repro gc --max-bytes N`` brings a cache directory's block files under
``N`` bytes by evicting least-recently-used entries — but **refuses to
drop shards referenced by a live checkpoint**: a philox checkpoint
re-derives its pools from blocks ``0..max_index`` of each registered
shard key, so evicting one would turn the next warm resume back into a
cold recompute of exactly the blocks the checkpoint exists to avoid.
(Correctness never depends on the cache either way — eviction can only
cost recompute time.)

Eviction order:

1. **Orphan files** — block files with no catalog row (a writer that
   crashed before its catalog flush).  They have no LRU record, so they
   go first, oldest file first.
2. **Catalog rows**, oldest ``last_used_at`` first, skipping protected
   entries.  Rows whose file already vanished are reconciled (dropped)
   for free.

If the protected set alone exceeds the budget the report says so
(``over_budget``) and nothing protected is touched.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.errors import StoreError
from repro.store.cache import OBJECTS_DIRNAME
from repro.store.catalog import ExperimentCatalog


@dataclass
class GcReport:
    """What one gc pass did (or, under ``dry_run``, would do)."""

    budget: int
    bytes_before: int = 0
    bytes_after: int = 0
    evicted_entries: int = 0
    evicted_bytes: int = 0
    protected_entries: int = 0
    protected_bytes: int = 0
    orphans_evicted: int = 0
    dry_run: bool = False
    over_budget: bool = False
    evicted: list[tuple[str, int]] = field(default_factory=list)


def _scan_objects(directory: str) -> dict[tuple[str, int], tuple[str, int, float]]:
    """Every block file on disk: ``(key, index) -> (path, size, mtime)``."""
    objects_dir = os.path.join(directory, OBJECTS_DIRNAME)
    found: dict[tuple[str, int], tuple[str, int, float]] = {}
    if not os.path.isdir(objects_dir):
        return found
    for key in sorted(os.listdir(objects_dir)):
        key_dir = os.path.join(objects_dir, key)
        if not os.path.isdir(key_dir):
            continue
        for name in sorted(os.listdir(key_dir)):
            if not name.endswith(".blk"):
                continue
            try:
                index = int(name[: -len(".blk")])
            except ValueError:
                continue
            path = os.path.join(key_dir, name)
            try:
                status = os.stat(path)
            except OSError:
                continue
            found[(key, index)] = (path, int(status.st_size), status.st_mtime)
    return found


def _remove_entry(path: str) -> None:
    try:
        os.remove(path)
    except OSError:
        return
    # Best-effort removal of a now-empty shard-key directory.
    try:
        os.rmdir(os.path.dirname(path))
    except OSError:
        pass


def collect_garbage(
    directory, *, max_bytes: int, dry_run: bool = False
) -> GcReport:
    """Evict LRU cache entries until the block files fit ``max_bytes``.

    Returns a :class:`GcReport`; with ``dry_run`` the plan is computed
    (and the report filled) without deleting anything.
    """
    directory = os.fspath(directory)
    if max_bytes < 0:
        raise StoreError(f"max_bytes must be >= 0, got {max_bytes}")
    if not os.path.isdir(directory):
        raise StoreError(f"no cache directory at {directory}")
    report = GcReport(budget=int(max_bytes), dry_run=bool(dry_run))
    with ExperimentCatalog(directory) as catalog:
        protected = catalog.protected_shards()
        on_disk = _scan_objects(directory)
        total = sum(size for _, size, _ in on_disk.values())
        report.bytes_before = total

        rows = catalog.list_shards()
        known = {(row["shard_key"], row["block_index"]) for row in rows}
        for row in rows:
            if (row["shard_key"], row["block_index"]) not in on_disk:
                # File gone (evicted elsewhere, quarantined): reconcile.
                if not dry_run:
                    catalog.forget_shard(row["shard_key"], row["block_index"])

        for (key, index), (_, size, _) in on_disk.items():
            if key in protected and index <= protected[key]:
                report.protected_entries += 1
                report.protected_bytes += size

        def evictable(key: str, index: int) -> bool:
            return not (key in protected and index <= protected[key])

        # Pass 1: orphans (no catalog row), oldest file first.
        orphans = sorted(
            (entry for entry in on_disk if entry not in known),
            key=lambda entry: (on_disk[entry][2], entry),
        )
        # Pass 2: catalog rows in LRU order (list_shards sorts by
        # last_used_at ascending).
        recorded = (
            (row["shard_key"], row["block_index"])
            for row in rows
            if (row["shard_key"], row["block_index"]) in on_disk
        )
        for pass_index, candidates in enumerate((orphans, recorded)):
            for key, index in candidates:
                if total <= max_bytes:
                    break
                if not evictable(key, index):
                    continue
                path, size, _ = on_disk[(key, index)]
                if not dry_run:
                    _remove_entry(path)
                    catalog.forget_shard(key, index)
                total -= size
                report.evicted_entries += 1
                report.evicted_bytes += size
                report.evicted.append((key, index))
                if pass_index == 0:
                    report.orphans_evicted += 1

        report.bytes_after = total
        report.over_budget = total > max_bytes
    return report


def cache_usage(directory) -> dict:
    """Summary counters for ``repro ls``: entry/byte totals on disk."""
    on_disk = _scan_objects(os.fspath(directory))
    return {
        "entries": len(on_disk),
        "bytes": int(sum(size for _, size, _ in on_disk.values())),
        "shard_keys": len({key for key, _ in on_disk}),
    }
