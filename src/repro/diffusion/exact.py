"""Exact expected spread by possible-world enumeration.

For a graph with ``m`` edges there are ``2^m`` possible worlds; for each
world ``X`` with probability ``Pr[X]``, node ``v`` clicks iff some seed
``s`` that accepted its CTP coin reaches ``v`` in ``X``.  Because seed
coins are independent of edge coins,

``Pr[v clicks | X] = 1 − Π_{s ∈ S : s ⇝_X v} (1 − δ(s))``

and the expectation is the ``Pr[X]``-weighted sum.  This is exponential in
``m`` and guarded accordingly — it exists to verify the Monte-Carlo and
RR-set machinery on toy instances such as the Fig. 1 gadget (6 edges).
"""

from __future__ import annotations

import numpy as np

from repro.diffusion.possible_worlds import reachable_from, world_probability
from repro.graph.digraph import DirectedGraph
from repro.utils.validation import check_probability_array

#: Refuse enumeration beyond this many edges (2^20 ≈ 1M worlds).
MAX_EXACT_EDGES = 20


def exact_click_probabilities(
    graph: DirectedGraph,
    edge_probabilities,
    seeds,
    *,
    ctps=None,
) -> np.ndarray:
    """Exact per-node click probabilities under TIC-CTP.

    Parameters mirror :func:`repro.diffusion.ic.simulate_clicks`.

    Raises
    ------
    ValueError
        If the graph has more than :data:`MAX_EXACT_EDGES` edges.
    """
    m = graph.num_edges
    if m > MAX_EXACT_EDGES:
        raise ValueError(
            f"exact enumeration supports at most {MAX_EXACT_EDGES} edges, graph has {m}"
        )
    probs = check_probability_array("edge_probabilities", edge_probabilities)
    if probs.shape != (m,):
        raise ValueError(f"edge_probabilities must have shape ({m},)")
    seeds = np.unique(np.asarray(seeds, dtype=np.int64))
    n = graph.num_nodes
    if seeds.size == 0:
        return np.zeros(n)
    if ctps is None:
        delta = np.ones(n)
    else:
        delta = np.asarray(ctps, dtype=np.float64)
        if delta.shape != (n,):
            raise ValueError(f"ctps must have shape ({n},)")

    click = np.zeros(n, dtype=np.float64)
    bits = np.arange(m)
    for code in range(1 << m):
        live = ((code >> bits) & 1).astype(bool)
        pr_world = world_probability(probs, live)
        if pr_world == 0.0:
            continue
        # miss[v] = Π over seeds reaching v of (1 - δ(s))
        miss = np.ones(n)
        for s in seeds:
            reached = reachable_from(graph, live, [s])
            miss[reached] *= 1.0 - delta[s]
        click += pr_world * (1.0 - miss)
    return click


def exact_spread(graph: DirectedGraph, edge_probabilities, seeds, *, ctps=None) -> float:
    """Exact ``σ_i(S)`` — the sum of exact per-node click probabilities."""
    return float(exact_click_probabilities(graph, edge_probabilities, seeds, ctps=ctps).sum())
