"""Spread oracles: the pluggable ``σ_i(S)`` evaluators behind Algorithm 1.

The greedy allocator of §4.1 only needs the ability to evaluate expected
spread for candidate seed sets.  Three interchangeable oracles:

* :class:`ExactSpreadOracle` — possible-world enumeration (toy graphs);
* :class:`MonteCarloSpreadOracle` — the paper's MC estimation [19], with
  common random numbers across evaluations so that marginal gains are
  differences of correlated estimates (far less noise for greedy);
* an RR-set oracle lives in :mod:`repro.rrset.estimator` (it needs the
  collection machinery).

All oracles memoise on the (ad, frozen seed set) pair.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

import numpy as np

from repro.diffusion.exact import exact_spread
from repro.diffusion.ic import simulate_clicks
from repro.utils.rng import keyed_generator

if TYPE_CHECKING:  # imported lazily to avoid a package-level cycle:
    # advertising.advertiser -> topics -> topics.learning -> diffusion
    from repro.advertising.problem import AdAllocationProblem


class SpreadOracle(ABC):
    """Evaluates expected spread ``σ_i(S)`` for a Problem-1 instance."""

    def __init__(self, problem: "AdAllocationProblem") -> None:
        self.problem = problem

    @abstractmethod
    def spread(self, ad: int, seeds: frozenset[int]) -> float:
        """Expected number of clicks for ad ``ad`` with seed set ``seeds``."""

    def revenue(self, ad: int, seeds: frozenset[int]) -> float:
        """``Π_i(S) = cpe(i) · σ_i(S)``."""
        return self.problem.catalog[ad].cpe * self.spread(ad, seeds)


class CachingSpreadOracle(SpreadOracle):
    """Shared memoisation layer for the concrete oracles."""

    def __init__(self, problem: "AdAllocationProblem") -> None:
        super().__init__(problem)
        self._cache: dict[tuple[int, frozenset[int]], float] = {}

    def spread(self, ad: int, seeds: frozenset[int]) -> float:
        seeds = frozenset(int(s) for s in seeds)
        key = (ad, seeds)
        if key not in self._cache:
            self._cache[key] = self._compute(ad, seeds)
        return self._cache[key]

    def _compute(self, ad: int, seeds: frozenset[int]) -> float:
        raise NotImplementedError

    @property
    def cache_size(self) -> int:
        """Number of memoised evaluations."""
        return len(self._cache)


class ExactSpreadOracle(CachingSpreadOracle):
    """Exact enumeration — only for graphs with at most ~20 edges."""

    def _compute(self, ad: int, seeds: frozenset[int]) -> float:
        if not seeds:
            return 0.0
        return exact_spread(
            self.problem.graph,
            self.problem.ad_edge_probabilities(ad),
            np.fromiter(seeds, dtype=np.int64),
            ctps=self.problem.ad_ctps(ad),
        )


class MonteCarloSpreadOracle(CachingSpreadOracle):
    """Monte-Carlo oracle with common random numbers.

    Every evaluation of ad ``i`` reuses the same per-run random seeds, so
    two seed sets are simulated in the *same* sequence of possible worlds;
    marginal gains ``σ(S ∪ {x}) − σ(S)`` are then exact differences within
    each world and the greedy comparison is far more stable than with
    independent estimates.
    """

    def __init__(
        self, problem: "AdAllocationProblem", *, num_runs: int = 200, seed=None
    ) -> None:
        super().__init__(problem)
        if num_runs < 1:
            raise ValueError(f"num_runs must be >= 1, got {num_runs}")
        self.num_runs = int(num_runs)
        sequence = (
            seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
        )
        self._run_seeds = sequence.generate_state(self.num_runs, dtype=np.uint64)

    def _compute(self, ad: int, seeds: frozenset[int]) -> float:
        if not seeds:
            return 0.0
        graph = self.problem.graph
        probs = self.problem.ad_edge_probabilities(ad)
        ctps = self.problem.ad_ctps(ad)
        seed_array = np.fromiter(seeds, dtype=np.int64)
        total = 0
        for run_seed in self._run_seeds:
            # Common random numbers, keyed by (run, ad): the stream is a
            # pure function of the key, so every evaluation of ad ``ad``
            # replays the same possible worlds (stream-identical to the
            # historical np.random.default_rng([run_seed, ad]) call).
            rng = keyed_generator(int(run_seed), ad)
            total += int(simulate_clicks(graph, probs, seed_array, ctps=ctps, rng=rng).sum())
        return total / self.num_runs
