"""Continuous-time independent cascade (the §7 extension).

The paper's conclusions name "continuous-time propagation models" as the
first avenue for future work (following Du et al. [12]).  This module
implements the standard continuous-time IC (CTIC) extension of the
TIC-CTP semantics:

* when user ``u`` clicks at time ``t``, each out-edge ``(u, v)`` fires
  independently with its influence probability ``p^i_{u,v}``; if it
  fires, the click reaches ``v`` after a random transmission delay drawn
  from an exponential distribution with edge-specific ``rate``;
* ``v`` clicks at the *earliest* time any in-edge delivers, provided
  that time is within the campaign horizon ``τ``;
* seeds click at time 0 with their CTPs (and, as everywhere in this
  library, a failed seed remains activatable through in-neighbors).

As ``τ → ∞`` the expected number of clicks converges to the discrete
TIC-CTP spread — the horizon only censors, never re-routes, the cascade
— which the tests verify against the exact enumerator.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.diffusion.montecarlo import SpreadEstimate, combine_mean_variance
from repro.graph.digraph import DirectedGraph
from repro.utils.rng import as_generator
from repro.utils.validation import check_probability_array


@dataclass(frozen=True)
class ContinuousCascade:
    """Result of one continuous-time simulation run.

    Attributes
    ----------
    click_times:
        Per-node click time; ``inf`` for nodes that never click.
    horizon:
        The censoring horizon ``τ`` used.
    """

    click_times: np.ndarray
    horizon: float

    def clicked(self) -> np.ndarray:
        """Boolean click vector within the horizon."""
        return np.isfinite(self.click_times)

    def num_clicks(self) -> int:
        """Number of clicks within the horizon."""
        return int(np.isfinite(self.click_times).sum())


def simulate_continuous(
    graph: DirectedGraph,
    edge_probabilities,
    seeds,
    *,
    horizon: float,
    delay_rates=1.0,
    ctps=None,
    rng=None,
) -> ContinuousCascade:
    """One continuous-time TIC-CTP cascade (Dijkstra over random delays).

    Parameters
    ----------
    graph:
        The social graph.
    edge_probabilities:
        Per-canonical-edge firing probabilities ``p^i_{u,v}``.
    seeds:
        Directly targeted users; they click at time 0 subject to CTPs.
    horizon:
        Campaign horizon ``τ > 0``; later arrivals are censored.
    delay_rates:
        Scalar or per-edge exponential rates for transmission delays.
    ctps:
        Optional per-node CTPs ``δ(u, i)``.
    rng:
        Seed or generator.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be > 0, got {horizon}")
    probs = check_probability_array("edge_probabilities", edge_probabilities)
    if probs.shape != (graph.num_edges,):
        raise ValueError(f"edge_probabilities must have shape ({graph.num_edges},)")
    rates = np.broadcast_to(
        np.asarray(delay_rates, dtype=np.float64), (graph.num_edges,)
    )
    if rates.size and rates.min() <= 0:
        raise ValueError("delay rates must be > 0")
    rng = as_generator(rng)
    seeds = np.unique(np.asarray(seeds, dtype=np.int64))

    times = np.full(graph.num_nodes, np.inf)
    if seeds.size == 0:
        return ContinuousCascade(click_times=times, horizon=float(horizon))
    if ctps is None:
        accepted = seeds
    else:
        delta = np.asarray(ctps, dtype=np.float64)
        accepted = seeds[rng.random(seeds.size) < delta[seeds]]

    # Earliest-arrival Dijkstra: each edge's coin and delay are drawn at
    # most once, when its source is finalised — equivalent to drawing a
    # full random shortest-path metric upfront.
    finalised = np.zeros(graph.num_nodes, dtype=bool)
    queue: list[tuple[float, int]] = [(0.0, int(s)) for s in accepted]
    times[accepted] = 0.0
    heapq.heapify(queue)
    while queue:
        now, node = heapq.heappop(queue)
        if finalised[node] or now > horizon:
            continue
        finalised[node] = True
        start, end = graph.out_indptr[node], graph.out_indptr[node + 1]
        if start == end:
            continue
        slots = np.arange(start, end)
        fire = rng.random(slots.size) < probs[slots]
        if not fire.any():
            continue
        fired = slots[fire]
        arrivals = now + rng.exponential(1.0 / rates[fired])
        for slot, arrival in zip(fired, arrivals):
            target = int(graph.out_targets[slot])
            if arrival <= horizon and arrival < times[target]:
                times[target] = arrival
                heapq.heappush(queue, (float(arrival), target))
    times[times > horizon] = np.inf
    return ContinuousCascade(click_times=times, horizon=float(horizon))


def estimate_continuous_spread(
    graph: DirectedGraph,
    edge_probabilities,
    seeds,
    *,
    horizon: float,
    delay_rates=1.0,
    ctps=None,
    num_runs: int = 1_000,
    seed=None,
) -> SpreadEstimate:
    """Monte-Carlo expected clicks within ``τ`` under continuous time."""
    if num_runs < 1:
        raise ValueError(f"num_runs must be >= 1, got {num_runs}")
    rng = as_generator(seed)
    counts = [
        simulate_continuous(
            graph,
            edge_probabilities,
            seeds,
            horizon=horizon,
            delay_rates=delay_rates,
            ctps=ctps,
            rng=rng,
        ).num_clicks()
        for _ in range(num_runs)
    ]
    mean, std_error = combine_mean_variance(counts)
    return SpreadEstimate(mean=mean, std_error=std_error, num_runs=num_runs)
