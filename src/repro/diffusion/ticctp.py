"""TIC-CTP convenience layer: topic model in, spread out.

For a fixed ad, TIC-CTP collapses to IC-with-CTP over the Eq.-(1) mixed
probabilities (Lemma 1's observation); these wrappers perform the collapse
and delegate to :mod:`repro.diffusion.ic`.
"""

from __future__ import annotations

from repro.diffusion.ic import estimate_spread
from repro.diffusion.montecarlo import SpreadEstimate
from repro.topics.distribution import TopicDistribution
from repro.topics.model import TopicModel


def tic_ctp_estimate_spread(
    model: TopicModel,
    distribution: TopicDistribution,
    seeds,
    *,
    ctps=None,
    num_runs: int = 10_000,
    seed=None,
) -> SpreadEstimate:
    """Monte-Carlo ``σ_i(S)`` under the TIC-CTP model for ad ``~γ_i``.

    ``ctps=None`` derives the CTPs from the topic model's per-topic
    seeding probabilities (the §3 definition of ``δ(u, i)``); pass an
    explicit per-node array to override (the §6 experimental setting).
    """
    edge_probs = model.ad_edge_probabilities(distribution)
    if ctps is None:
        ctps = model.ad_ctps(distribution)
    return estimate_spread(
        model.graph,
        edge_probs,
        seeds,
        ctps=ctps,
        num_runs=num_runs,
        seed=seed,
    )
