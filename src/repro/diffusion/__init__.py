"""Diffusion engines for the IC / TIC-CTP propagation model (§3).

Three evaluation regimes, all agreeing on semantics:

* :mod:`repro.diffusion.ic` — single-run vectorised simulation and
  Monte-Carlo spread estimation (the paper's 10K-run referee, §6);
* :mod:`repro.diffusion.exact` — exact expected spread by possible-world
  enumeration, feasible on toy graphs (Fig. 1 / Lemma 1 checks);
* :mod:`repro.diffusion.spread` — caching spread oracles that plug into
  the Greedy allocator (Algorithm 1).

Model semantics (TIC-CTP): a user targeted as a seed clicks with its CTP
``δ(u, i)``; any user — including a seed whose coin failed — can later be
activated through an in-neighbor's successful influence attempt.  Each
live edge attempt happens once, with probability ``p^i_{u,v}`` from
Eq. (1).
"""

from repro.diffusion.continuous import (
    ContinuousCascade,
    estimate_continuous_spread,
    simulate_continuous,
)
from repro.diffusion.exact import exact_click_probabilities, exact_spread
from repro.diffusion.ic import estimate_spread, simulate_clicks, simulate_rounds
from repro.diffusion.lt import (
    estimate_lt_spread,
    sample_lt_live_edges,
    sample_lt_rr_sets,
    simulate_lt_clicks,
)
from repro.diffusion.montecarlo import SpreadEstimate
from repro.diffusion.possible_worlds import reachable_from, sample_live_edges
from repro.diffusion.spread import (
    CachingSpreadOracle,
    ExactSpreadOracle,
    MonteCarloSpreadOracle,
    SpreadOracle,
)
from repro.diffusion.ticctp import tic_ctp_estimate_spread

__all__ = [
    "simulate_clicks",
    "simulate_rounds",
    "estimate_spread",
    "simulate_lt_clicks",
    "estimate_lt_spread",
    "sample_lt_live_edges",
    "sample_lt_rr_sets",
    "ContinuousCascade",
    "simulate_continuous",
    "estimate_continuous_spread",
    "SpreadEstimate",
    "sample_live_edges",
    "reachable_from",
    "exact_spread",
    "exact_click_probabilities",
    "SpreadOracle",
    "CachingSpreadOracle",
    "MonteCarloSpreadOracle",
    "ExactSpreadOracle",
    "tic_ctp_estimate_spread",
]
