"""Monte-Carlo estimates with uncertainty (the §6 evaluation referee)."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class SpreadEstimate:
    """A Monte-Carlo spread (expected clicks) estimate.

    Attributes
    ----------
    mean:
        Sample mean of activated-node counts across runs.
    std_error:
        Standard error of the mean (0 when ``num_runs < 2``).
    num_runs:
        Number of simulations averaged.
    """

    mean: float
    std_error: float
    num_runs: int

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation CI, default 95%."""
        half = z * self.std_error
        return (self.mean - half, self.mean + half)

    def __float__(self) -> float:
        return self.mean


def combine_mean_variance(values) -> tuple[float, float]:
    """Mean and standard error of a sequence of per-run outcomes."""
    count = len(values)
    if count == 0:
        return 0.0, 0.0
    mean = sum(values) / count
    if count < 2:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (count - 1)
    return mean, math.sqrt(variance / count)
