"""Possible-world semantics (Lemma 1's proof device).

A possible world ``X`` fixes each edge as *live* (with probability
``p_{u,v}``) or *blocked*; a node is activated by a seed set iff a seed
reaches it through live edges.  The Monte-Carlo engines flip edge coins
lazily, but tests and the exact enumerator need materialised worlds —
this module provides them.
"""

from __future__ import annotations

import numpy as np

from repro.diffusion._frontier import gather_edge_slots
from repro.graph.digraph import DirectedGraph
from repro.utils.rng import as_generator
from repro.utils.validation import check_probability_array


def sample_live_edges(edge_probabilities, *, seed=None) -> np.ndarray:
    """One possible world: a boolean live-mask over canonical edge ids."""
    probs = check_probability_array("edge_probabilities", edge_probabilities)
    rng = as_generator(seed)
    return rng.random(probs.size) < probs


def world_probability(edge_probabilities, live_mask) -> float:
    """``Pr[X]`` of a fully specified world (used by the exact enumerator)."""
    probs = check_probability_array("edge_probabilities", edge_probabilities)
    live_mask = np.asarray(live_mask, dtype=bool)
    if live_mask.shape != probs.shape:
        raise ValueError("live_mask must align with edge_probabilities")
    factors = np.where(live_mask, probs, 1.0 - probs)
    return float(np.prod(factors))


def reachable_from(graph: DirectedGraph, live_mask, sources) -> np.ndarray:
    """Boolean array: which nodes are reachable from ``sources`` via live
    edges (sources are reachable from themselves)."""
    live_mask = np.asarray(live_mask, dtype=bool)
    if live_mask.shape != (graph.num_edges,):
        raise ValueError(f"live_mask must have shape ({graph.num_edges},)")
    reached = np.zeros(graph.num_nodes, dtype=bool)
    frontier = np.unique(np.asarray(sources, dtype=np.int64))
    if frontier.size == 0:
        return reached
    reached[frontier] = True
    while frontier.size:
        slots = gather_edge_slots(graph.out_indptr, frontier)
        if slots.size == 0:
            break
        # Out-CSR slots coincide with canonical edge ids.
        slots = slots[live_mask[slots]]
        targets = graph.out_targets[slots]
        fresh = np.unique(targets[~reached[targets]])
        reached[fresh] = True
        frontier = fresh
    return reached
