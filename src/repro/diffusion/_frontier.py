"""Backwards-compatible alias: the frontier primitive lives with the
graph substrate (it has no diffusion-specific dependencies and the
connectivity algorithms need it too)."""

from repro.graph._traversal import gather_edge_slots

__all__ = ["gather_edge_slots"]
