"""Vectorised IC / IC-CTP simulation.

One simulation run flips the seed coins (CTPs), then runs the independent
cascade forward with *lazy* edge coins: an edge's coin is flipped exactly
when its source first becomes active, which matches the "one independent
attempt" semantics of §3 and never touches edges outside the cascade.
"""

from __future__ import annotations

import numpy as np

from repro.diffusion._frontier import gather_edge_slots
from repro.diffusion.montecarlo import SpreadEstimate, combine_mean_variance
from repro.graph.digraph import DirectedGraph
from repro.utils.rng import as_generator
from repro.utils.validation import check_probability_array


def simulate_clicks(
    graph: DirectedGraph,
    edge_probabilities,
    seeds,
    *,
    ctps=None,
    rng=None,
) -> np.ndarray:
    """One TIC-CTP run; returns the boolean click/activation vector.

    Parameters
    ----------
    graph:
        The social graph.
    edge_probabilities:
        Per-canonical-edge probabilities ``p^i_{u,v}`` for the ad.
    seeds:
        User ids directly targeted (the seed set ``S_i``).
    ctps:
        Per-node CTPs ``δ(u, i)``; ``None`` means every targeted seed
        clicks (plain IC).  A seed whose CTP coin fails is *not* initially
        active but remains activatable through in-neighbors.
    rng:
        Seed or generator.
    """
    probs = check_probability_array("edge_probabilities", edge_probabilities)
    if probs.shape != (graph.num_edges,):
        raise ValueError(f"edge_probabilities must have shape ({graph.num_edges},)")
    rng = as_generator(rng)
    seeds = np.unique(np.asarray(seeds, dtype=np.int64))
    active = np.zeros(graph.num_nodes, dtype=bool)
    if seeds.size == 0:
        return active
    if ctps is None:
        accepted = seeds
    else:
        ctps = np.asarray(ctps, dtype=np.float64)
        accepted = seeds[rng.random(seeds.size) < ctps[seeds]]
    if accepted.size == 0:
        return active
    active[accepted] = True
    frontier = accepted
    while frontier.size:
        slots = gather_edge_slots(graph.out_indptr, frontier)
        if slots.size == 0:
            break
        # Out-CSR slots are canonical edge ids, so probs index directly.
        success = rng.random(slots.size) < probs[slots]
        targets = graph.out_targets[slots[success]]
        fresh = np.unique(targets[~active[targets]])
        active[fresh] = True
        frontier = fresh
    return active


def simulate_rounds(
    graph: DirectedGraph,
    edge_probabilities,
    seeds,
    *,
    ctps=None,
    rng=None,
) -> np.ndarray:
    """One TIC-CTP run returning per-node activation rounds.

    Round 0 holds the seeds whose CTP coin succeeded; round ``t+1`` holds
    nodes first activated by round-``t`` clickers; ``-1`` marks nodes that
    never click.  This is the cascade trace the TIC learning module
    (:mod:`repro.topics.learning`) consumes — the paper's Flixster
    probabilities were learned from exactly such traces [3].
    """
    probs = check_probability_array("edge_probabilities", edge_probabilities)
    if probs.shape != (graph.num_edges,):
        raise ValueError(f"edge_probabilities must have shape ({graph.num_edges},)")
    rng = as_generator(rng)
    seeds = np.unique(np.asarray(seeds, dtype=np.int64))
    rounds = np.full(graph.num_nodes, -1, dtype=np.int64)
    if seeds.size == 0:
        return rounds
    if ctps is None:
        accepted = seeds
    else:
        delta = np.asarray(ctps, dtype=np.float64)
        accepted = seeds[rng.random(seeds.size) < delta[seeds]]
    if accepted.size == 0:
        return rounds
    rounds[accepted] = 0
    frontier = accepted
    step = 0
    while frontier.size:
        step += 1
        slots = gather_edge_slots(graph.out_indptr, frontier)
        if slots.size == 0:
            break
        success = rng.random(slots.size) < probs[slots]
        targets = graph.out_targets[slots[success]]
        fresh = np.unique(targets[rounds[targets] < 0])
        rounds[fresh] = step
        frontier = fresh
    return rounds


def estimate_spread(
    graph: DirectedGraph,
    edge_probabilities,
    seeds,
    *,
    ctps=None,
    num_runs: int = 10_000,
    seed=None,
) -> SpreadEstimate:
    """Monte-Carlo estimate of ``σ_i(S_i)`` (expected number of clicks).

    The paper evaluates final allocations with 10 000 runs (§6); that is
    the default here, overridable for speed.
    """
    if num_runs < 1:
        raise ValueError(f"num_runs must be >= 1, got {num_runs}")
    rng = as_generator(seed)
    seeds = np.unique(np.asarray(seeds, dtype=np.int64))
    if seeds.size == 0:
        return SpreadEstimate(mean=0.0, std_error=0.0, num_runs=num_runs)
    counts = [
        int(simulate_clicks(graph, edge_probabilities, seeds, ctps=ctps, rng=rng).sum())
        for _ in range(num_runs)
    ]
    mean, std_error = combine_mean_variance(counts)
    return SpreadEstimate(mean=mean, std_error=std_error, num_runs=num_runs)
