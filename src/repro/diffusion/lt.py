"""The Linear Threshold (LT) model of Kempe et al. [19].

The paper's framework is IC-based, but the influence-maximization
substrate it builds on (greedy + RR-sets, §2/§5) applies verbatim to LT
— Kempe et al.'s other canonical model — so a complete reproduction of
that substrate ships both.  Semantics:

* each edge carries a weight ``b_{u,v} ≥ 0`` with ``Σ_u b_{u,v} ≤ 1``;
* node ``v`` activates when the weight of its active in-neighbors
  crosses a uniform random threshold ``θ_v ~ U[0, 1]``.

Kempe et al.'s live-edge equivalence makes this a reachability model:
every node independently picks **at most one** incoming edge (edge
``(u, v)`` with probability ``b_{u,v}``, none with ``1 − Σ_u b_{u,v}``);
a node activates iff a seed reaches it through picked edges.  That
equivalence is what the simulator and the LT RR-set sampler below
implement, and CTPs compose with it exactly as in IC-CTP (a seed clicks
with ``δ``; a failed seed remains reachable through its picked edge).
"""

from __future__ import annotations

import numpy as np

from repro.diffusion.montecarlo import SpreadEstimate, combine_mean_variance
from repro.diffusion.possible_worlds import reachable_from
from repro.graph.digraph import DirectedGraph
from repro.utils.rng import as_generator


def check_lt_weights(graph: DirectedGraph, weights) -> np.ndarray:
    """Validate LT edge weights: non-negative, per-target sums ≤ 1."""
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (graph.num_edges,):
        raise ValueError(f"weights must have shape ({graph.num_edges},)")
    if weights.size and weights.min() < 0:
        raise ValueError("LT weights must be non-negative")
    incoming = np.zeros(graph.num_nodes)
    np.add.at(incoming, graph.edge_targets, weights)
    if incoming.size and incoming.max() > 1.0 + 1e-9:
        worst = int(np.argmax(incoming))
        raise ValueError(
            f"incoming LT weights of node {worst} sum to {incoming[worst]:.4f} > 1"
        )
    return weights


def sample_lt_live_edges(graph: DirectedGraph, weights, *, rng=None) -> np.ndarray:
    """One LT possible world: a boolean live mask with ≤ 1 live in-edge
    per node (Kempe et al.'s live-edge construction)."""
    weights = check_lt_weights(graph, weights)
    rng = as_generator(rng)
    live = np.zeros(graph.num_edges, dtype=bool)
    if graph.num_edges == 0:
        return live
    # Weights along the in-CSR; a global cumulative sum plus per-node
    # exclusive bases turns "pick one in-edge per node" into a single
    # vectorised searchsorted.
    in_weights = weights[graph.in_edge_ids]
    cumulative = np.cumsum(in_weights)
    starts = graph.in_indptr[:-1]
    ends = graph.in_indptr[1:]
    bases = np.concatenate(([0.0], cumulative))[starts]
    draws = bases + rng.random(graph.num_nodes)
    slots = np.searchsorted(cumulative, draws, side="left")
    picked = slots < ends  # a slot beyond the node's slice means "no edge"
    live[graph.in_edge_ids[slots[picked]]] = True
    return live


def simulate_lt_clicks(
    graph: DirectedGraph,
    weights,
    seeds,
    *,
    ctps=None,
    rng=None,
) -> np.ndarray:
    """One LT(-CTP) run; returns the boolean click vector."""
    rng = as_generator(rng)
    seeds = np.unique(np.asarray(seeds, dtype=np.int64))
    if seeds.size == 0:
        return np.zeros(graph.num_nodes, dtype=bool)
    if ctps is None:
        accepted = seeds
    else:
        delta = np.asarray(ctps, dtype=np.float64)
        accepted = seeds[rng.random(seeds.size) < delta[seeds]]
    if accepted.size == 0:
        return np.zeros(graph.num_nodes, dtype=bool)
    live = sample_lt_live_edges(graph, weights, rng=rng)
    return reachable_from(graph, live, accepted)


def estimate_lt_spread(
    graph: DirectedGraph,
    weights,
    seeds,
    *,
    ctps=None,
    num_runs: int = 1_000,
    seed=None,
) -> SpreadEstimate:
    """Monte-Carlo LT(-CTP) spread."""
    if num_runs < 1:
        raise ValueError(f"num_runs must be >= 1, got {num_runs}")
    rng = as_generator(seed)
    counts = [
        int(simulate_lt_clicks(graph, weights, seeds, ctps=ctps, rng=rng).sum())
        for _ in range(num_runs)
    ]
    mean, std_error = combine_mean_variance(counts)
    return SpreadEstimate(mean=mean, std_error=std_error, num_runs=num_runs)


def sample_lt_rr_set(
    graph: DirectedGraph,
    weights,
    *,
    rng=None,
    root: int | None = None,
) -> np.ndarray:
    """One random LT RR-set.

    Under the live-edge equivalence each node has at most one picked
    in-edge, so the reverse reachable set of a root is a *path*: walk
    backwards, picking one in-neighbor per step, until no edge is picked
    or a node repeats.  ``n · F_R(S)`` over these sets estimates the LT
    spread (the LT instantiation of Proposition 1, Borgs et al. [5]).
    """
    weights = check_lt_weights(graph, weights)
    rng = as_generator(rng)
    if root is None:
        root = int(rng.integers(0, graph.num_nodes))
    members = [root]
    visited = {root}
    node = root
    while True:
        start, end = graph.in_indptr[node], graph.in_indptr[node + 1]
        if start == end:
            break
        slice_weights = weights[graph.in_edge_ids[start:end]]
        draw = rng.random()
        cumulative = np.cumsum(slice_weights)
        slot = int(np.searchsorted(cumulative, draw, side="left"))
        if slot >= end - start:
            break  # picked "no incoming edge"
        parent = int(graph.in_sources[start + slot])
        if parent in visited:
            break
        visited.add(parent)
        members.append(parent)
        node = parent
    return np.asarray(members, dtype=np.int64)


def sample_lt_rr_sets(
    graph: DirectedGraph,
    weights,
    count: int,
    *,
    rng=None,
) -> list[np.ndarray]:
    """``count`` independent LT RR-sets."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    rng = as_generator(rng)
    return [sample_lt_rr_set(graph, weights, rng=rng) for _ in range(count)]
