"""Inline suppression comments: ``# reprolint: disable=CODE``.

A finding is suppressed when the physical line it is reported on (the
AST node's ``lineno``) carries a disable comment naming its code — or
naming ``all``.  Multi-line statements anchor findings at the statement
head, so that is where the comment goes.

Grammar (whitespace-tolerant)::

    # reprolint: disable=R101
    # reprolint: disable=R101,R104  -- justification text after is fine
    # reprolint: disable=all

Suppressions are *per line*, deliberately: a file-wide waiver belongs in
:class:`~repro.analysis.config.AnalysisConfig`'s seam lists, where it is
reviewable as policy rather than scattered as comments.
"""

from __future__ import annotations

import re

from repro.analysis.findings import Finding

_DISABLE_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_*,\s]+)")

#: The wildcard token: suppresses every rule on the line.
ALL = "all"


def line_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map 1-based line numbers to the codes disabled on that line."""
    table: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _DISABLE_RE.search(text)
        if match is None:
            continue
        codes = frozenset(
            token.strip().upper() if token.strip().lower() != ALL else ALL
            for token in match.group(1).split(",")
            if token.strip()
        )
        if codes:
            table[lineno] = codes
    return table


def is_suppressed(finding: Finding, suppressions: dict[int, frozenset[str]]) -> bool:
    """Whether the finding's line disables its code (or ``all``)."""
    codes = suppressions.get(finding.line)
    if codes is None:
        return False
    return ALL in codes or finding.code.upper() in codes
