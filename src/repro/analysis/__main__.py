"""``python -m repro.analysis`` — the standalone linter entry point."""

from repro.analysis.linter import main

if __name__ == "__main__":
    raise SystemExit(main())
