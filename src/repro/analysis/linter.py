"""The ``repro lint`` driver: file discovery, parsing, rule dispatch.

Exit codes follow the compiler convention the CLI already uses:
``0`` clean, ``1`` findings, ``2`` usage/IO errors (bad ``--select``
code, unreadable path).  A file that fails to *parse* is reported as a
finding with the reserved code ``R100`` rather than crashing the run —
a broken file in a lint sweep is a result, not an infrastructure error.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.config import DEFAULT_CONFIG, AnalysisConfig
from repro.analysis.findings import Finding, format_report
from repro.analysis.rules import LintContext, Rule, default_rules, rules_by_code, run_rules
from repro.analysis.suppressions import is_suppressed, line_suppressions
from repro.errors import ConfigurationError

#: Reserved code for files the linter cannot parse.
PARSE_ERROR_CODE = "R100"

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


def iter_python_files(paths: Iterable) -> list[Path]:
    """Every ``.py`` file under ``paths`` (files kept as-is, directories
    walked recursively, cache/VCS directories skipped), de-duplicated
    and sorted for a stable report order."""
    found: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise ConfigurationError(f"no such file or directory: {path}")
        if path.is_file():
            found.add(path)
            continue
        for candidate in path.rglob("*.py"):
            if not any(part in _SKIP_DIRS for part in candidate.parts):
                found.add(candidate)
    return sorted(found)


def lint_file(
    path, config: AnalysisConfig = DEFAULT_CONFIG, rules: Sequence[Rule] | None = None
) -> list[Finding]:
    """All unsuppressed findings for one file, sorted by location."""
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                path=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                code=PARSE_ERROR_CODE,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    context = LintContext(path, tree, config)
    findings = run_rules(default_rules() if rules is None else rules, context)
    suppressions = line_suppressions(source)
    return sorted(f for f in findings if not is_suppressed(f, suppressions))


def lint_paths(
    paths: Iterable,
    config: AnalysisConfig = DEFAULT_CONFIG,
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """All unsuppressed findings under ``paths``, sorted by location."""
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, config, rules))
    return sorted(findings)


def _select_rules(select: str | None) -> list[Rule] | None:
    if select is None:
        return None
    registry = rules_by_code()
    chosen: list[Rule] = []
    for token in select.split(","):
        code = token.strip().upper()
        if not code:
            continue
        if code not in registry:
            raise ConfigurationError(
                f"unknown rule code {code!r}; known: {', '.join(sorted(registry))}"
            )
        chosen.append(registry[code]())
    if not chosen:
        raise ConfigurationError("--select named no rules")
    return chosen


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Determinism-contract linter: checks the REPRO1xx invariants "
            "(RNG discipline, seed sources, hot-path iteration order, "
            "shared-memory hygiene, pool-buffer encapsulation)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all), e.g. R101,R105",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def run(argv: Sequence[str] | None = None, *, out=None) -> int:
    """Parse arguments, lint, print the report; returns the exit code.

    This is both the ``python -m repro.analysis`` entry point and the
    body of the ``repro lint`` subcommand (which passes the subcommand's
    remainder args through).
    """
    out = sys.stdout if out is None else out
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for cls in rules_by_code().values():
            print(f"{cls.code}  {cls.description}", file=out)
        return 0
    rules = _select_rules(args.select)
    findings = lint_paths(args.paths, rules=rules)
    print(format_report(findings), file=out)
    return 1 if findings else 0


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry point with the CLI's error convention."""
    try:
        return run(argv)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
