"""Lint findings: what a rule reports and how it prints.

A finding is one violation at one source location.  The textual format
is the classic compiler shape — ``path:line:col: CODE message`` — so
editors, CI annotations, and humans all parse it the same way.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Ordering is ``(path, line, col, code)`` so reports read top-to-bottom
    per file regardless of which rule fired first.
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        """``path:line:col: CODE message`` (col is 1-based for editors)."""
        return f"{self.path}:{self.line}:{self.col + 1}: {self.code} {self.message}"


def format_report(findings: list[Finding]) -> str:
    """The full report: one line per finding plus a summary line."""
    lines = [finding.format() for finding in findings]
    count = len(findings)
    lines.append(
        "repro lint: clean" if count == 0
        else f"repro lint: {count} finding{'s' if count != 1 else ''}"
    )
    return "\n".join(lines)
