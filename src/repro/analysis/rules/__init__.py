"""The rule registry.

Rules register by inclusion in :data:`ALL_RULES`; the linter
instantiates them fresh per run via :func:`default_rules` (rules are
stateless, but fresh instances keep any future per-run caches private).
Codes are unique — :func:`rules_by_code` is the ``--select`` lookup.
"""

from __future__ import annotations

from repro.analysis.rules.base import LintContext, Rule, dotted_name, run_rules
from repro.analysis.rules.r101_rng import RngDisciplineRule
from repro.analysis.rules.r102_seed_sources import SeedSourceRule
from repro.analysis.rules.r103_unordered_iteration import UnorderedIterationRule
from repro.analysis.rules.r104_shared_memory import SharedMemoryUnlinkRule
from repro.analysis.rules.r105_pool_internals import PoolInternalsRule

#: Every shipped rule class, in code order.
ALL_RULES: tuple[type[Rule], ...] = (
    RngDisciplineRule,
    SeedSourceRule,
    UnorderedIterationRule,
    SharedMemoryUnlinkRule,
    PoolInternalsRule,
)


def default_rules() -> list[Rule]:
    """Fresh instances of every shipped rule."""
    return [cls() for cls in ALL_RULES]


def rules_by_code() -> dict[str, type[Rule]]:
    """``{"R101": RngDisciplineRule, ...}``."""
    return {cls.code: cls for cls in ALL_RULES}


__all__ = [
    "ALL_RULES",
    "LintContext",
    "PoolInternalsRule",
    "RngDisciplineRule",
    "Rule",
    "SeedSourceRule",
    "SharedMemoryUnlinkRule",
    "UnorderedIterationRule",
    "default_rules",
    "dotted_name",
    "rules_by_code",
    "run_rules",
]
