"""R103 — unordered iteration in hot-path modules.

In ``rrset/`` and ``algorithms/tirm.py``, iteration order feeds seed
selection and pool splicing, so iterating a ``set``/``frozenset`` —
whose order depends on hash seeding and insertion history — is a
determinism bug even when every element is eventually visited.  The rule
is syntactic: it flags *set-producing expressions* (literals,
comprehensions, ``set()``/``frozenset()`` calls, set-algebra methods)
consumed by an order-sensitive sink (``for`` targets, comprehension
sources, ``list``/``tuple``/``enumerate``/``iter``/``np.fromiter``,
``str.join``).  Order-insensitive consumers — ``sorted``, ``min``,
``max``, ``sum``, ``len``, ``any``, ``all``, membership — are fine and
are the suggested fix.

Plain dict / ``.values()`` / ``.keys()`` iteration is deliberately *not*
flagged: Python dicts iterate in insertion order, and the hot paths rely
on that (e.g. TIRM's marginal-coverage maps sum revenue in insertion
order).  The invariant to protect there is *what order things were
inserted in*, which is a dataflow property no syntactic rule can check.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules.base import LintContext, Rule

#: ``x.union(y)`` and friends return sets whatever ``x`` is typed as
#: here — method names specific enough that false positives are rare.
SET_ALGEBRA_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)

#: Builtins whose *argument* order flows into their output order.
ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate", "iter"})


def _is_set_producing(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in SET_ALGEBRA_METHODS:
            return True
    return False


class UnorderedIterationRule(Rule):
    code = "R103"
    description = (
        "no order-sensitive iteration over sets in hot-path modules "
        "(rrset/, algorithms/tirm.py) — wrap in sorted()"
    )

    def _finding(self, context: LintContext, node: ast.AST, sink: str) -> Finding:
        return context.finding(
            node,
            self.code,
            f"iteration order of a set is not deterministic, and here it "
            f"feeds {sink} in a hot-path module — wrap in sorted() (or keep "
            f"an explicitly ordered container)",
        )

    def check(self, context: LintContext) -> Iterator[Finding]:
        if not context.config.is_hot_path(context.module):
            return
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_producing(node.iter):
                    yield self._finding(context, node.iter, "a for loop")
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                for comp in node.generators:
                    if _is_set_producing(comp.iter):
                        yield self._finding(context, comp.iter, "a comprehension")
            elif isinstance(node, ast.SetComp):
                # A set comprehension's own output is unordered anyway;
                # what matters is where *it* flows, which the Call /
                # for-loop cases above catch.
                continue
            elif isinstance(node, ast.Call):
                func = node.func
                args = node.args
                if (
                    isinstance(func, ast.Name)
                    and func.id in ORDER_SENSITIVE_CALLS
                    and args
                    and _is_set_producing(args[0])
                ):
                    yield self._finding(context, args[0], f"{func.id}()")
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr == "fromiter"
                    and args
                    and _is_set_producing(args[0])
                ):
                    yield self._finding(context, args[0], "np.fromiter()")
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr == "join"
                    and args
                    and _is_set_producing(args[0])
                ):
                    yield self._finding(context, args[0], "str.join()")
            elif isinstance(node, ast.Starred) and _is_set_producing(node.value):
                yield self._finding(context, node.value, "argument unpacking")
