"""R102 — no nondeterministic seed sources.

The contract's root is one integer entropy value
(:func:`repro.utils.rng.seed_entropy`); every stream derives from it by
pure spawn-key arithmetic.  Wall-clock time, OS entropy, and entropy-less
``SeedSequence()`` (which reads ``os.urandom`` under the hood) are the
classic ways a "reproducible" run quietly stops being one — they are
allowed only inside ``utils/rng.py``, where the ``seed=None`` →
fresh-entropy conversion is *supposed* to live, and nowhere else.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules.base import LintContext, Rule, dotted_name

#: Dotted-call suffixes that read a nondeterministic source.  Matched
#: against the full dotted name's tail so both ``time.time()`` and
#: ``import time as t; t.time()`` resolve (module aliases for these are
#: rare enough that suffix matching is the right cost/benefit).
NONDETERMINISTIC_CALLS = {
    "time.time": "wall-clock seed source",
    "time.time_ns": "wall-clock seed source",
    "datetime.now": "wall-clock seed source",
    "datetime.utcnow": "wall-clock seed source",
    "os.urandom": "OS entropy",
    "os.getrandom": "OS entropy",
    "uuid.uuid1": "time/MAC-derived entropy",
    "uuid.uuid4": "OS entropy",
    "secrets.token_bytes": "OS entropy",
    "secrets.token_hex": "OS entropy",
    "secrets.randbits": "OS entropy",
}


def _is_entropyless_seed_sequence(call: ast.Call, context: LintContext) -> bool:
    """``SeedSequence()`` with no positional entropy and no ``entropy=``
    keyword (or an explicit ``entropy=None``) draws fresh OS entropy."""
    func = call.func
    name = dotted_name(func)
    is_seed_sequence = False
    if name is not None and "." in name:
        head, *rest = name.split(".")
        is_seed_sequence = (
            head in context.numpy_aliases and rest[-1] == "SeedSequence"
        )
    elif isinstance(func, ast.Name) and func.id == "SeedSequence":
        origin = context.from_imports.get("SeedSequence", "")
        is_seed_sequence = origin.startswith("numpy")
    if not is_seed_sequence:
        return False
    if call.args:
        return False
    for keyword in call.keywords:
        if keyword.arg == "entropy":
            return isinstance(keyword.value, ast.Constant) and (
                keyword.value.value is None
            )
        if keyword.arg is None:  # **kwargs — can't see inside; trust it
            return False
    return True


class SeedSourceRule(Rule):
    code = "R102"
    description = (
        "no nondeterministic seed sources (time.time, os.urandom, "
        "entropy-less SeedSequence()) outside utils/rng.py"
    )

    def check(self, context: LintContext) -> Iterator[Finding]:
        if context.config.is_seed_source_seam(context.module):
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is not None:
                for suffix, kind in NONDETERMINISTIC_CALLS.items():
                    if name == suffix or name.endswith("." + suffix):
                        yield context.finding(
                            node,
                            self.code,
                            f"nondeterministic seed source {suffix} ({kind}) — "
                            f"derive entropy via repro.utils.rng.seed_entropy",
                        )
                        break
            if _is_entropyless_seed_sequence(node, context):
                yield context.finding(
                    node,
                    self.code,
                    "entropy-less SeedSequence() draws fresh OS entropy — "
                    "pass explicit entropy or use repro.utils.rng.seed_entropy",
                )
