"""R104 — resource hygiene: shm segments unlinked, file handles scoped.

``SharedMemory(create=True)`` allocates a kernel object that outlives
the process; a path that exits without ``unlink()`` leaks ``/dev/shm``
until reboot.  The engine's transport code unlinks exactly once on every
path (PR 6), and this rule keeps it that way: a scope that creates a
segment must contain an ``unlink()`` on its *success* flow (plain
statements, ``try`` body, or ``finally``) **and** one on an *error*
flow (``except`` handler or ``finally``).

The rule is scope-local by design — it cannot see ownership handoffs,
where the creator returns the segment name and a different scope
unlinks (the descriptor transport does exactly this).  Those sites are
correct by a cross-scope argument the linter cannot check, and carry a
``# reprolint: disable=R104`` with the justification in the comment.

In the storage tier (``resource_hygiene_modules``, i.e. ``store/``)
the rule additionally flags a bare ``open()`` whose result is not
managed by a ``with`` block: the shard cache writes block files on hot
sampling paths, and a handle that escapes its statement stays open
across error paths — on the same leak axis as an unlinked segment, so
it lives under the same code.

In the service tier (``service_modules``, i.e. ``service/`` and the
distributed tier ``dist/``) the rule enforces the same discipline for
network resources: a scope that creates an asyncio server
(``asyncio.start_server``) or a socket (``socket.socket`` /
``socket.create_server`` / ``socket.create_connection``) must reach a
``close()`` or ``wait_closed()`` call on both its success and error
flows — unless the object is managed by a ``with`` / ``async with``
block, which closes on every path by construction.  The resident
service and the coordinator hold these objects across whole client and
worker lifetimes, so one missed close on an error path accumulates
forever.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules.base import LintContext, Rule, dotted_name


#: Dotted-call suffixes that create a network resource needing an
#: explicit close (service-tier check).  Matched like R102's seed
#: sources: full name or dotted tail.
NETWORK_CREATORS = {
    "asyncio.start_server": "asyncio server",
    "socket.socket": "socket",
    "socket.create_server": "listening socket",
    "socket.create_connection": "socket",
}


def _creates_network_resource(call: ast.Call) -> str | None:
    name = dotted_name(call.func)
    if name is None:
        return None
    for suffix, kind in NETWORK_CREATORS.items():
        if name == suffix or name.endswith("." + suffix):
            return kind
    return None


def _creates_segment(call: ast.Call) -> bool:
    name = dotted_name(call.func)
    if name is None or name.split(".")[-1] != "SharedMemory":
        return False
    for keyword in call.keywords:
        if keyword.arg == "create":
            return (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            )
    return False


class _ScopeScan(ast.NodeVisitor):
    """Collect, within one function scope, the segment-create calls and
    where unlink calls sit relative to error handling."""

    def __init__(self) -> None:
        self.creates: list[ast.Call] = []
        self.success_unlink = False
        self.error_unlink = False
        self._in_error_flow = 0

    # Nested scopes are scanned separately — don't descend.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    def visit_Try(self, node: ast.Try) -> None:
        for child in node.body + node.orelse:
            self.visit(child)
        self._in_error_flow += 1
        for handler in node.handlers:
            self.visit(handler)
        self._in_error_flow -= 1
        # ``finally`` runs on both flows.
        for child in node.finalbody:
            self.visit(child)
            for sub in ast.walk(child):
                if self._is_unlink(sub):
                    self.error_unlink = True

    def _is_unlink(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "unlink"
        )

    def visit_Call(self, node: ast.Call) -> None:
        if _creates_segment(node):
            self.creates.append(node)
        if self._is_unlink(node):
            if self._in_error_flow:
                self.error_unlink = True
            else:
                self.success_unlink = True
        self.generic_visit(node)


class _ServiceScopeScan(ast.NodeVisitor):
    """Collect, within one function scope, the network-resource creates
    (not managed by ``with``) and where close calls sit relative to
    error handling — the socket analogue of :class:`_ScopeScan`."""

    #: Call attributes that count as closing a network resource.
    CLOSERS = frozenset({"close", "wait_closed"})

    def __init__(self, managed: set[int]) -> None:
        self._managed = managed
        self.creates: list[tuple[ast.Call, str]] = []
        self.success_close = False
        self.error_close = False
        self._in_error_flow = 0

    # Nested scopes are scanned separately — don't descend.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    def visit_Try(self, node: ast.Try) -> None:
        for child in node.body + node.orelse:
            self.visit(child)
        self._in_error_flow += 1
        for handler in node.handlers:
            self.visit(handler)
        self._in_error_flow -= 1
        # ``finally`` runs on both flows.
        for child in node.finalbody:
            self.visit(child)
            for sub in ast.walk(child):
                if self._is_close(sub):
                    self.error_close = True

    def _is_close(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in self.CLOSERS
        )

    def visit_Call(self, node: ast.Call) -> None:
        kind = _creates_network_resource(node)
        if kind is not None and id(node) not in self._managed:
            self.creates.append((node, kind))
        if self._is_close(node):
            if self._in_error_flow:
                self.error_close = True
            else:
                self.success_close = True
        self.generic_visit(node)


class SharedMemoryUnlinkRule(Rule):
    code = "R104"
    description = (
        "SharedMemory(create=True) needs a reachable unlink() on every "
        "path of its scope (success and error); in storage-tier modules "
        "open() must be managed by a with block"
    )

    def _scopes(self, tree: ast.Module):
        yield tree
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def _check_file_handles(self, context: LintContext) -> Iterator[Finding]:
        """Storage-tier extension: every bare ``open()`` call must be a
        ``with`` item's context expression, so the handle cannot outlive
        its statement on any path."""
        managed: set[int] = set()
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    managed.add(id(item.context_expr))
        for node in ast.walk(context.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "open"
                and id(node) not in managed
            ):
                yield context.finding(
                    node,
                    self.code,
                    "bare open() outside a with block in a storage-tier "
                    "module — the handle can outlive its statement on "
                    "error paths; use `with open(...) as ...`",
                )

    def _check_network_resources(self, context: LintContext) -> Iterator[Finding]:
        """Service-tier extension: servers and sockets created in a
        scope need a reachable close on its success and error flows,
        unless a ``with`` block manages them."""
        managed: set[int] = set()
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    expr = item.context_expr
                    managed.add(id(expr))
                    # ``with await asyncio.start_server(...)``: the
                    # create call sits under the Await wrapper.
                    if isinstance(expr, ast.Await):
                        managed.add(id(expr.value))
        for scope in self._scopes(context.tree):
            scan = _ServiceScopeScan(managed)
            for statement in scope.body:
                scan.visit(statement)
            if not scan.creates:
                continue
            missing = []
            if not scan.success_close:
                missing.append("success path")
            if not scan.error_close:
                missing.append("error path (except/finally)")
            if not missing:
                continue
            for call, kind in scan.creates:
                yield context.finding(
                    call,
                    self.code,
                    f"{kind} created without a reachable close()/"
                    f"wait_closed() on the {' or '.join(missing)} of this "
                    f"scope — the resident service leaks it across client "
                    f"lifetimes; manage it with a `with` block or close it "
                    f"in a finally",
                )

    def check(self, context: LintContext) -> Iterator[Finding]:
        if context.config.is_resource_hygiene(context.module):
            yield from self._check_file_handles(context)
        if context.config.is_service(context.module):
            yield from self._check_network_resources(context)
        for scope in self._scopes(context.tree):
            scan = _ScopeScan()
            body = scope.body if not isinstance(scope, ast.Module) else scope.body
            for statement in body:
                scan.visit(statement)
            if not scan.creates:
                continue
            missing = []
            if not scan.success_unlink:
                missing.append("success path")
            if not scan.error_unlink:
                missing.append("error path (except/finally)")
            if not missing:
                continue
            for call in scan.creates:
                yield context.finding(
                    call,
                    self.code,
                    f"SharedMemory(create=True) without a reachable unlink() "
                    f"on the {' or '.join(missing)} of this scope — leak on "
                    f"/dev/shm; if ownership transfers to another scope, "
                    f"suppress with the justification in the comment",
                )
